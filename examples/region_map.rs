//! Figures 1 and 2 as ASCII art — the paper's headline result.
//!
//! Run with: `cargo run --release --example region_map`
//!
//! For a grid of `(cc, cd)` points we measure the worst-case cost ratio of
//! SA and of DA against the exact offline optimum over a battery of
//! adversarial and random schedules, and print who wins where:
//! `D` = DA superior, `S` = SA superior, `?` = unseparated,
//! `x` = cannot be true (`cc > cd`). The measured maps are printed next to
//! the paper's analytic boundaries.

use doma::analysis::region::{empirical_region_map, RegionConfig};
use doma::core::Environment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = RegionConfig {
        n: 5,
        step: 0.25,
        max: 2.0,
        schedule_len: 32,
        seeds: 2,
    };
    for env in [Environment::Stationary, Environment::Mobile] {
        let map = empirical_region_map(env, &config)?;
        println!("{}", map.render(false));
        println!("{}", map.render(true));
        println!(
            "agreement with the paper's analytic regions: {:.0}%\n",
            100.0 * map.agreement_with_paper()
        );
    }
    println!(
        "Reading Figure 1: DA wins wherever a data message costs more than an\n\
         I/O (cd > 1); SA wins where communication is nearly free (cc + cd < 0.5);\n\
         the band between is the paper's open 'Unknown' region. In the mobile\n\
         model (Figure 2) DA wins everywhere feasible — SA is not competitive."
    );
    Ok(())
}

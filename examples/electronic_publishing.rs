//! Electronic publishing — the §1.1 co-authored document scenario.
//!
//! Run with: `cargo run --example electronic_publishing`
//!
//! A document is co-authored from several sites: for a while one site is
//! "hot" (an author revising and re-reading), then the hot spot moves.
//! We compare four allocation policies on this *regular* pattern and on a
//! *chaotic* one (§5.1's distinction), under stationary computing.

use doma::algorithms::baselines::SlidingWindowConvergent;
use doma::algorithms::{DynamicAllocation, OfflineOptimal, StaticAllocation};
use doma::core::{run_online, CostModel, OnlineDom, ProcSet, ProcessorId, Schedule};
use doma::workload::{ChaoticWorkload, HotspotWorkload, ScheduleGen};

fn cost_of(
    algo: &mut dyn OnlineDom,
    schedule: &Schedule,
    model: &CostModel,
) -> Result<f64, Box<dyn std::error::Error>> {
    Ok(run_online(algo, schedule)?.costed.total_cost(model))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = CostModel::stationary(0.25, 1.0)?;
    let n = 5;

    // A "work session" pattern: each phase of 60 requests, one site reads
    // heavily (85%) and occasionally commits edits; the hotspot rotates.
    let regular = HotspotWorkload::new(n, 60, 0.85)?.generate(600, 7);
    // And the unpredictable pattern: per-burst random popularity.
    let chaotic = ChaoticWorkload::new(n, 10)?.generate(600, 7);

    let init = ProcSet::from_iter([0, 1]);
    println!("electronic publishing, {n} sites, 600 requests, SC model (cc=0.25, cd=1.0)\n");
    println!("  policy       | regular (rotating author) | chaotic");

    let mut results: Vec<(&str, f64, f64)> = Vec::new();
    let mut sa = StaticAllocation::new(init)?;
    results.push((
        "SA",
        cost_of(&mut sa, &regular, &model)?,
        cost_of(&mut sa, &chaotic, &model)?,
    ));
    let mut da = DynamicAllocation::new(ProcSet::from_iter([0]), ProcessorId::new(1))?;
    results.push((
        "DA",
        cost_of(&mut da, &regular, &model)?,
        cost_of(&mut da, &chaotic, &model)?,
    ));
    let mut conv = SlidingWindowConvergent::new(n, 2, init, 60, 30)?;
    results.push((
        "Convergent",
        cost_of(&mut conv, &regular, &model)?,
        cost_of(&mut conv, &chaotic, &model)?,
    ));

    for (name, reg, cha) in &results {
        println!("  {name:<12} | {reg:>26.1} | {cha:>7.1}");
    }

    // The offline optimum for scale (n = 5 is comfortably exact).
    let opt = OfflineOptimal::new(n, 2, init, model)?;
    let opt_regular = opt.optimal_cost(&regular)?;
    let opt_chaotic = opt.optimal_cost(&chaotic)?;
    println!("  {:<12} | {opt_regular:>26.1} | {opt_chaotic:>7.1}", "OPT");

    let da_row = results.iter().find(|r| r.0 == "DA").expect("DA ran");
    let sa_row = results.iter().find(|r| r.0 == "SA").expect("SA ran");
    println!(
        "\nOn the author-rotation pattern DA pays {:.2}x OPT vs SA's {:.2}x —\n\
         the document follows whoever is working on it, which is the paper's\n\
         motivating claim for dynamic allocation in electronic publishing.",
        da_row.1 / opt_regular,
        sa_row.1 / opt_regular,
    );
    assert!(da_row.1 < sa_row.1);
    Ok(())
}

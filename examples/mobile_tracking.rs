//! Mobile location tracking — the §1.1/§2 scenario, run end-to-end.
//!
//! Run with: `cargo run --example mobile_tracking`
//!
//! A mobile user's *location object* is written by the cell the user is
//! currently attached to and read by callers looking the user up. We run
//! the workload three ways:
//!
//! 1. as a real DA protocol (base station = core, t = 2) on the
//!    discrete-event simulator, checking the tallies against the analytic
//!    cost engine;
//! 2. as SA vs DA under the **mobile** cost model (I/O is free; every
//!    wireless message is billed), showing DA's dominance (Figure 2);
//! 3. with a base-station failure, demonstrating the quorum fallback and
//!    missing-writes recovery of §2.

use doma::algorithms::{DynamicAllocation, StaticAllocation};
use doma::core::{run_online, CostModel, ProcSet, ProcessorId, Request};
use doma::protocol::failover::FailoverDriver;
use doma::protocol::ProtocolSim;
use doma::workload::{MobileWorkload, ScheduleGen};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 3 cells, 4 caller processors, 30% handoff probability, 70% reads.
    let workload = MobileWorkload::new(3, 4, 0.3, 0.7)?;
    let n = workload.universe();
    let schedule = workload.generate(300, 42);
    println!(
        "mobile workload: {} processors (base station 0, cells 1-3, callers 4-7), {} requests ({} reads / {} writes)",
        n,
        schedule.len(),
        schedule.read_count(),
        schedule.write_count()
    );

    // --- 1. The real protocol, on the simulator ---------------------------
    let mut sim = ProtocolSim::mobile(n)?;
    let report = sim.execute(&schedule)?;
    println!(
        "\nprotocol run: {} control msgs, {} data msgs, {} I/Os, mean read latency {:.1} ticks",
        report.cost.control, report.cost.data, report.cost.io, report.mean_read_latency
    );

    let mut da = DynamicAllocation::new(ProcSet::from_iter([0]), ProcessorId::new(1))?;
    let analytic = run_online(&mut da, &schedule)?;
    assert_eq!(
        report.cost, analytic.costed.total,
        "simulated tallies must equal the analytic cost model"
    );
    println!("analytic model agrees tally-for-tally ✓");

    // --- 2. SA vs DA under the mobile cost model --------------------------
    let model = CostModel::mobile(0.2, 1.0)?;
    let mut sa = StaticAllocation::new(ProcSet::from_iter([0, 1]))?;
    let sa_cost = run_online(&mut sa, &schedule)?.costed.total_cost(&model);
    let da_cost = analytic.costed.total_cost(&model);
    println!(
        "\nmobile cost model (cc=0.2, cd=1.0, I/O free): SA = {sa_cost:.1}, DA = {da_cost:.1}  (DA/SA = {:.2})",
        da_cost / sa_cost
    );
    assert!(
        da_cost < sa_cost,
        "Figure 2: DA dominates in mobile computing"
    );

    // --- 3. Base-station failure and recovery -----------------------------
    println!("\ninjecting base-station failure…");
    let sim = ProtocolSim::mobile(n)?;
    let mut driver = FailoverDriver::new(sim, n);
    driver.execute_request(Request::write(2usize))?;
    driver.crash(ProcessorId::new(0)); // the core fails → quorum mode
    driver.execute_request(Request::write(3usize))?; // still writable
    driver.execute_request(Request::read(5usize))?; // still readable
    let v = driver.sim().latest_version();
    println!(
        "  while down: version {v} reached {} live replicas via quorum writes",
        driver.live_holders_of(v)
    );
    driver.recover(ProcessorId::new(0)); // missing-writes catch-up
    assert!(
        driver.sim().holders_of(v).contains(ProcessorId::new(0)),
        "recovered base station must hold the latest version"
    );
    println!("  base station recovered and caught up to {v} ✓");
    Ok(())
}

//! Quickstart: the paper's model in five minutes.
//!
//! Run with: `cargo run --example quickstart`
//!
//! We take the §1.3 motivating schedule `r1 r1 r2 w2 r2 r2 r2`, run the
//! static (SA) and dynamic (DA) allocation algorithms on it, and compare
//! both against the exact offline optimum (OPT) under the stationary
//! cost model.

use doma::algorithms::{DynamicAllocation, OfflineOptimal, StaticAllocation};
use doma::core::{run_offline, run_online, CostModel, ProcSet, ProcessorId, Schedule};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The schedule: processor 1 reads twice, then processor 2 writes and
    // keeps reading. "r1" = read by processor 1, "w2" = write by 2.
    let schedule: Schedule = "r1 r1 r2 w2 r2 r2 r2".parse()?;
    println!("schedule: {schedule}");

    // Stationary computing: I/O costs 1, a control message 0.5, a data
    // message 1.0. (cc <= cd is enforced — a data message carries the
    // object plus the control fields.)
    let model = CostModel::stationary(0.5, 1.0)?;

    // SA: read-one-write-all over the fixed scheme {0, 1}.
    let q = ProcSet::from_iter([0, 1]);
    let mut sa = StaticAllocation::new(q)?;
    let sa_run = run_online(&mut sa, &schedule)?;

    // DA: core F = {1} always holds the object; processor 0 is the
    // initial floating member; readers join the scheme via saving-reads.
    let mut da = DynamicAllocation::new(ProcSet::from_iter([1]), ProcessorId::new(0))?;
    let da_run = run_online(&mut da, &schedule)?;

    // OPT: the offline optimum over 3 processors with availability
    // threshold t = 2 — the yardstick of the paper's competitive analysis.
    let opt = OfflineOptimal::new(3, 2, q, model)?;
    let opt_run = run_offline(&opt, &schedule)?;

    println!("\n  algorithm | control msgs | data msgs | I/Os | total cost");
    for (name, run) in [("SA", &sa_run), ("DA", &da_run), ("OPT", &opt_run)] {
        let t = &run.costed.total;
        println!(
            "  {name:>9} | {:>12} | {:>9} | {:>4} | {:.2}",
            t.control,
            t.data,
            t.io,
            run.costed.total_cost(&model)
        );
    }

    println!("\nDA's allocation schedule: {}", da_run.alloc);
    println!("OPT's allocation schedule: {}", opt_run.alloc);
    println!(
        "\nDynamic allocation moved the object to processor 2 at the write,\n\
         making the last three reads local — exactly the §1.3 argument."
    );

    assert!(da_run.costed.total_cost(&model) < sa_run.costed.total_cost(&model));
    assert!(opt_run.costed.total_cost(&model) <= da_run.costed.total_cost(&model));
    Ok(())
}

//! Multi-user location tracking: many objects, core placement policies.
//!
//! Run with: `cargo run --example multi_user_tracking`
//!
//! §1.1 describes per-user location objects, written on movement and read
//! by callers. With many users there are many objects; the paper's
//! single-object analysis applies to each independently, but *load* does
//! not — if every user's DA core lands on the same processor, that
//! processor does all the work. This example measures the three placement
//! policies on a Zipf-popular population of mobile users.

use doma::algorithms::multi::{run_multi, Placement};
use doma::core::CostModel;
use doma::workload::MultiMobileWorkload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let users = 24;
    let workload = MultiMobileWorkload::new(users, 5, 6, 0.3, 0.7)?;
    let n = workload.universe();
    let schedule = workload.generate_multi(3000, 17);
    let model = CostModel::stationary(0.25, 1.0)?;
    println!(
        "{} mobile users over {} processors (base station + 5 cells + 6 callers), {} requests\n",
        users,
        n,
        schedule.len()
    );

    println!("  placement   | priced cost | max node I/O | imbalance");
    let mut loads = Vec::new();
    for (name, placement) in [
        ("same-core", Placement::SameCore),
        ("round-robin", Placement::RoundRobin),
        ("load-aware", Placement::LoadAware),
    ] {
        let report = run_multi(n, 2, placement, &schedule)?;
        println!(
            "  {name:<11} | {:>11.0} | {:>12} | {:>8.2}x",
            report.total.eval(&model),
            report.max_load(),
            report.imbalance()
        );
        loads.push((name, report));
    }

    let same = &loads[0].1;
    let aware = &loads[2].1;
    println!("\nper-processor I/O load (same-core → load-aware):");
    for i in 0..n {
        println!(
            "  P{i:<2} {:>6} → {:>6}  {}",
            same.load[i],
            aware.load[i],
            "#".repeat((aware.load[i] / 40) as usize)
        );
    }

    assert!(aware.max_load() < same.max_load());
    println!(
        "\nSpreading the per-user cores cut the hottest processor's I/O from {} to {} \
         at (near) identical total cost — the multi-object extension the paper's \
         §6.1 'other models' remark invites.",
        same.max_load(),
        aware.max_load()
    );
    Ok(())
}

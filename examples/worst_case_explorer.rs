//! Worst-case explorer: see the adversaries behind the paper's bounds.
//!
//! Run with: `cargo run --release --example worst_case_explorer`
//!
//! Competitive analysis lives and dies by adversarial schedules. This
//! example hunts for them three ways — exhaustively over short schedules,
//! greedily over long horizons, and exhaustively over *repeated patterns*
//! (the honest asymptotic exhibit) — and prints what it finds for both SA
//! and DA, next to the paper's bounds.

use doma::algorithms::search::{
    best_amplified_pattern, exhaustive_worst_case, greedy_adversary, SearchConfig,
};
use doma::algorithms::{DynamicAllocation, StaticAllocation};
use doma::core::{CostModel, ProcSet, ProcessorId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // SA under a "hostile" model: expensive messages.
    let model = CostModel::stationary(0.5, 1.5)?;
    let cfg = SearchConfig {
        n: 3,
        t: 2,
        len: 6,
        model,
    };
    let mut sa = StaticAllocation::new(ProcSet::from_iter([0, 1]))?;
    println!(
        "SA, SC model cc=0.5 cd=1.5 (Theorem 1 bound = {:.2}):",
        model.sa_bound().unwrap()
    );
    let r = exhaustive_worst_case(&mut sa, &cfg)?;
    println!(
        "  exhaustive len 6 : ratio {:.3} on '{}' ({} schedules tried)",
        r.ratio, r.witness, r.evaluated
    );
    let g = greedy_adversary(
        &mut sa,
        &SearchConfig {
            len: 48,
            ..cfg.clone()
        },
    )?;
    println!(
        "  greedy len 48    : full-horizon ratio {:.3} (prefix best {:.3})",
        g.full_ratio, g.best_prefix.ratio
    );

    // DA under vanishing communication costs — the Proposition 2 regime.
    let model = CostModel::stationary(0.01, 0.01)?;
    let cfg = SearchConfig {
        n: 3,
        t: 2,
        len: 5,
        model,
    };
    let mut da = DynamicAllocation::new(ProcSet::from_iter([0]), ProcessorId::new(1))?;
    println!(
        "\nDA, SC model cc=cd=0.01 (Theorem 2 bound = {:.2}, Prop 2 lower bound = 1.5):",
        model.da_bound().unwrap()
    );
    let r = exhaustive_worst_case(&mut da, &cfg)?;
    println!(
        "  exhaustive len 5 : ratio {:.3} on '{}' — inflated by the additive constant",
        r.ratio, r.witness
    );
    for plen in [3usize, 4, 5] {
        let p = best_amplified_pattern(
            &mut da,
            &SearchConfig {
                len: plen,
                ..cfg.clone()
            },
            plen,
            60,
        )?;
        println!(
            "  pattern len {plen} x60: sustained ratio {:.3} on '{}' repeated",
            p.ratio, p.witness
        );
    }
    println!(
        "\nThe sustained ratios are the honest exhibits: repeating the pattern\n\
         amortizes the additive constant of the competitiveness definition,\n\
         so what remains is the genuine multiplicative factor."
    );
    Ok(())
}

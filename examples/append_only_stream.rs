//! The §6.2 append-only model: a satellite image stream.
//!
//! Run with: `cargo run --example append_only_stream`
//!
//! A satellite produces one image per minute; each image is received at
//! one of two generating earth stations (a "write" of the latest object)
//! and consumed at arbitrary stations until the next image arrives.
//! Reliability demands every image reach at least `t = 2` stations.
//!
//! SA = `t` permanent standing orders (every image pushed to a fixed pair
//! of stations). DA = `t - 1` permanent standing orders plus *temporary*
//! standing orders created when a station pulls the latest image
//! (cancelled by the next image). The paper's §6.2 says the SA/DA
//! analysis applies verbatim; this example measures it.

use doma::algorithms::{DynamicAllocation, StaticAllocation};
use doma::core::{run_online, CostModel, ProcSet, ProcessorId};
use doma::workload::{AppendOnlyWorkload, ScheduleGen};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stations = 6;
    let generators = 2;
    println!("append-only stream: {stations} earth stations, images generated at stations 0-1\n");
    println!("  reads/image | model | SA cost | DA cost | DA/SA");

    for reads_per_write in [0.5, 2.0, 8.0] {
        let workload = AppendOnlyWorkload::new(stations, generators, reads_per_write)?;
        let schedule = workload.generate(1200, 11);
        for model in [
            CostModel::stationary(0.2, 0.8)?,
            CostModel::mobile(0.2, 0.8)?,
        ] {
            let mut sa = StaticAllocation::new(ProcSet::from_iter([0, 1]))?;
            let sa_cost = run_online(&mut sa, &schedule)?.costed.total_cost(&model);
            let mut da = DynamicAllocation::new(ProcSet::from_iter([0]), ProcessorId::new(1))?;
            let da_cost = run_online(&mut da, &schedule)?.costed.total_cost(&model);
            println!(
                "  {reads_per_write:>11} | {:>5} | {sa_cost:>7.0} | {da_cost:>7.0} | {:.2}",
                model.environment().to_string(),
                da_cost / sa_cost
            );
        }
    }

    println!(
        "\nWith few readers per image, temporary standing orders are wasted\n\
         (each is invalidated by the next image) and SA's fixed pair is fine;\n\
         as readership grows, DA's pull-once-read-locally behaviour wins —\n\
         the same trade-off as Figure 1, transplanted to versioned streams."
    );
    Ok(())
}

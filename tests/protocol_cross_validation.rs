//! Integration: the simulated message-passing protocols must match the
//! analytic cost engine *exactly* — control message for control message,
//! I/O for I/O — across randomized workloads and configurations.

use doma::algorithms::{DynamicAllocation, StaticAllocation};
use doma::core::{run_online, ProcSet, ProcessorId, Schedule};
use doma::protocol::ProtocolSim;
use doma::workload::{
    AppendOnlyWorkload, ChaoticWorkload, HotspotWorkload, MobileWorkload, ScheduleGen,
    UniformWorkload, ZipfWorkload,
};

fn workloads(n: usize) -> Vec<Box<dyn ScheduleGen>> {
    vec![
        Box::new(UniformWorkload::new(n, 0.7).unwrap()),
        Box::new(UniformWorkload::new(n, 0.2).unwrap()),
        Box::new(ZipfWorkload::new(n, 1.2, 0.6).unwrap()),
        Box::new(HotspotWorkload::new(n, 15, 0.8).unwrap()),
        Box::new(ChaoticWorkload::new(n, 7).unwrap()),
        Box::new(AppendOnlyWorkload::new(n, 2, 2.5).unwrap()),
    ]
}

#[test]
fn sa_protocol_matches_analytic_on_random_workloads() {
    let n = 6;
    let q = ProcSet::from_iter([0, 1, 2]); // t = 3
    for gen in workloads(n) {
        for seed in 0..5 {
            let schedule = gen.generate(80, seed);
            let mut sim = ProtocolSim::new_sa(n, q).unwrap();
            let report = sim.execute(&schedule).unwrap();
            let mut sa = StaticAllocation::new(q).unwrap();
            let analytic = run_online(&mut sa, &schedule).unwrap();
            assert_eq!(
                report.cost,
                analytic.costed.total,
                "SA tally mismatch on {}/seed{seed}: schedule {schedule}",
                gen.name()
            );
            assert_eq!(report.final_holders, analytic.costed.final_scheme);
            assert_eq!(report.dropped_messages, 0);
        }
    }
}

#[test]
fn da_protocol_matches_analytic_on_random_workloads() {
    let n = 6;
    let f = ProcSet::from_iter([0, 3]);
    let p = ProcessorId::new(5);
    for gen in workloads(n) {
        for seed in 0..5 {
            let schedule = gen.generate(80, seed);
            let mut sim = ProtocolSim::new_da(n, f, p).unwrap();
            let report = sim.execute(&schedule).unwrap();
            let mut da = DynamicAllocation::new(f, p).unwrap();
            let analytic = run_online(&mut da, &schedule).unwrap();
            assert_eq!(
                report.cost,
                analytic.costed.total,
                "DA tally mismatch on {}/seed{seed}: schedule {schedule}",
                gen.name()
            );
            assert_eq!(report.final_holders, analytic.costed.final_scheme);
        }
    }
}

#[test]
fn da_protocol_matches_on_mobile_traces() {
    let workload = MobileWorkload::new(4, 3, 0.4, 0.6).unwrap();
    let n = workload.universe();
    for seed in 0..8 {
        let schedule = workload.generate(120, seed);
        let mut sim = ProtocolSim::mobile(n).unwrap();
        let report = sim.execute(&schedule).unwrap();
        let mut da = DynamicAllocation::new(ProcSet::from_iter([0]), ProcessorId::new(1)).unwrap();
        let analytic = run_online(&mut da, &schedule).unwrap();
        assert_eq!(report.cost, analytic.costed.total, "seed {seed}");
        assert_eq!(report.final_holders, analytic.costed.final_scheme);
    }
}

#[test]
fn protocol_state_is_consistent_with_schedule_semantics() {
    // After every request, the valid-replica set equals the allocation
    // scheme the analytic engine predicts, step by step.
    let schedule: Schedule = "r4 w2 r3 r4 w0 r2 w5 r1 r1".parse().unwrap();
    let f = ProcSet::from_iter([0]);
    let p = ProcessorId::new(1);
    let mut sim = ProtocolSim::new_da(6, f, p).unwrap();
    let mut da = DynamicAllocation::new(f, p).unwrap();
    let analytic = run_online(&mut da, &schedule).unwrap();
    for (k, request) in schedule.iter().enumerate() {
        sim.execute_request(request).unwrap();
        let expected = analytic.alloc.scheme_at(k + 1);
        assert_eq!(
            sim.report().final_holders,
            expected,
            "replica set diverged after request {k} ({request})"
        );
    }
}

#[test]
fn read_latency_reflects_locality() {
    // A workload of only member reads is all-local (latency 0); a workload
    // of outsider first-reads pays request+data latency.
    let mut sim = ProtocolSim::new_sa(5, ProcSet::from_iter([0, 1])).unwrap();
    let local: Schedule = "r0 r1 r0 r1".parse().unwrap();
    let report = sim.execute(&local).unwrap();
    assert_eq!(report.mean_read_latency, 0.0);

    let mut sim = ProtocolSim::new_sa(5, ProcSet::from_iter([0, 1])).unwrap();
    let remote: Schedule = "r2 r3 r4".parse().unwrap();
    let report = sim.execute(&remote).unwrap();
    // Control latency (1) + data latency (3) with the default network.
    assert_eq!(report.mean_read_latency, 4.0);
}

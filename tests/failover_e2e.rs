//! End-to-end failure scenarios: crash, quorum fallback, missing-writes
//! recovery, and durability of the redo-log substrate — the §2 sketch
//! exercised across `doma-protocol`, `doma-sim` and `doma-storage`.

use doma::core::{ProcSet, ProcessorId, Request};
use doma::protocol::failover::FailoverDriver;
use doma::protocol::ProtocolSim;
use doma::workload::{ScheduleGen, UniformWorkload};

fn da_cluster(n: usize) -> FailoverDriver {
    let sim = ProtocolSim::new_da(n, ProcSet::from_iter([0]), ProcessorId::new(1)).unwrap();
    FailoverDriver::new(sim, n)
}

#[test]
fn full_failure_cycle_preserves_latest_version() {
    let mut d = da_cluster(5);

    // Normal operation.
    d.execute_request(Request::write(2usize)).unwrap();
    d.execute_request(Request::read(4usize)).unwrap();

    // Core failure → quorum mode; service continues.
    d.crash(ProcessorId::new(0));
    d.execute_request(Request::write(3usize)).unwrap();
    d.execute_request(Request::read(2usize)).unwrap();
    let v_during = d.sim().latest_version();
    assert!(d.live_holders_of(v_during) >= 2);

    // Recovery: catch-up then normal mode; more traffic.
    d.recover(ProcessorId::new(0));
    assert!(d.sim().holders_of(v_during).contains(ProcessorId::new(0)));
    d.execute_request(Request::write(4usize)).unwrap();
    d.execute_request(Request::read(3usize)).unwrap();
    let v_final = d.sim().latest_version();
    // Normal DA: the writer, the core, and the saving-reader hold v_final.
    let holders = d.sim().holders_of(v_final);
    assert!(holders.contains(ProcessorId::new(0)), "{holders}");
    assert!(holders.contains(ProcessorId::new(4)), "{holders}");
    assert!(holders.contains(ProcessorId::new(3)), "{holders}");
}

#[test]
fn repeated_failures_of_different_nodes() {
    let mut d = da_cluster(5);
    let workload = UniformWorkload::new(5, 0.6).unwrap();
    let schedule = workload.generate(30, 3);
    for (k, request) in schedule.iter().enumerate() {
        // Periodically bounce a node (alternating core / non-core).
        if k == 10 {
            d.crash(ProcessorId::new(0));
        }
        if k == 15 {
            d.recover(ProcessorId::new(0));
        }
        if k == 20 {
            d.crash(ProcessorId::new(4));
        }
        if k == 25 {
            d.recover(ProcessorId::new(4));
        }
        // Skip requests issued by currently crashed processors (their
        // clients are down too).
        let issuer_down = ((10..15).contains(&k) && request.issuer.index() == 0)
            || ((20..25).contains(&k) && request.issuer.index() == 4);
        if !issuer_down {
            d.execute_request(request).unwrap();
        }
    }
    // After the dust settles the cluster is in normal mode and consistent:
    // the latest version is held by at least t = 2 processors.
    let v = d.sim().latest_version();
    assert!(d.live_holders_of(v) >= 2);
}

#[test]
fn store_recovery_is_exact_after_crash() {
    // Crash a node that had saved a replica; on recovery the redo log
    // reproduces its exact pre-crash store state (stale or valid).
    let mut d = da_cluster(4);
    d.execute_request(Request::read(3usize)).unwrap(); // 3 joins via saving-read
    d.execute_request(Request::write(2usize)).unwrap(); // 3 invalidated
    let sim = d.sim_mut();
    let before_version = sim
        .engine_ref()
        .actor(doma::sim::NodeId(3))
        .replica_version();
    sim.engine_mut().schedule_crash(doma::sim::NodeId(3), 0);
    sim.engine_mut().run_until_idle();
    sim.engine_mut().schedule_recover(doma::sim::NodeId(3), 0);
    sim.engine_mut().run_until_idle();
    let node = sim.engine_ref().actor(doma::sim::NodeId(3));
    assert_eq!(node.replica_version(), before_version);
    assert!(
        !node.holds_valid(),
        "invalidation must survive the crash (it was logged)"
    );
}

#[test]
fn crash_during_write_is_detected_at_quiescence() {
    // The core member dies one tick into a write's propagation — after
    // the WriteProp messages are sent but (data latency is 3 ticks)
    // before they are delivered. The failure detector reacts at the next
    // quiescence, like a timeout-based detector noticing stalled traffic.
    let mut d = da_cluster(5);
    d.execute_request(Request::write(2usize)).unwrap();
    let v_before = d.sim().latest_version();

    d.crash_in(ProcessorId::new(0), 1);
    d.execute_request(Request::write(3usize)).unwrap();
    let v_crash = d.sim().latest_version();
    assert!(v_crash > v_before);

    // Detection fired inside execute_request: the survivors are in quorum
    // mode, and the mode-entry push spread the latest committed version
    // to a write majority even though the core member never applied it.
    for i in 1..5 {
        assert!(
            d.sim()
                .engine_ref()
                .actor(doma::sim::NodeId(i))
                .in_quorum_mode(),
            "node {i} must have fallen back to quorum mode"
        );
    }
    assert!(
        d.live_holders_of(v_crash) >= 3,
        "majority must hold the mid-crash write"
    );

    // Quorum service continues; recovery resolves the missing writes.
    d.execute_request(Request::write(4usize)).unwrap();
    let v_during = d.sim().latest_version();
    d.recover(ProcessorId::new(0));
    assert!(
        d.sim().holders_of(v_during).contains(ProcessorId::new(0)),
        "catch-up must deliver the writes the core member missed"
    );
    for i in 0..5 {
        assert!(!d
            .sim()
            .engine_ref()
            .actor(doma::sim::NodeId(i))
            .in_quorum_mode());
    }
}

#[test]
fn floating_member_crash_engages_failover() {
    // The floating member p is part of the home scheme F ∪ {p}: core
    // writes snap the allocation back to it, so its crash endangers the
    // next write exactly like a core crash and must engage the fallback.
    let mut d = da_cluster(5);
    d.execute_request(Request::write(0usize)).unwrap(); // core write: scheme F ∪ {p}
    d.crash(ProcessorId::new(1)); // p down
    assert!(
        d.sim()
            .engine_ref()
            .actor(doma::sim::NodeId(0))
            .in_quorum_mode(),
        "a scheme-member crash must trigger quorum fallback"
    );

    // Writes keep committing to live majorities while p is down.
    d.execute_request(Request::write(0usize)).unwrap();
    d.execute_request(Request::write(3usize)).unwrap();
    let v = d.sim().latest_version();
    assert!(d.live_holders_of(v) >= 3);

    // Recovery: p catches up on the writes it missed, normal mode
    // resumes, and the home scheme is fully current again.
    d.recover(ProcessorId::new(1));
    assert!(
        d.sim().holders_of(v).contains(ProcessorId::new(1)),
        "the floater must be current after catch-up"
    );
    for i in 0..5 {
        assert!(!d
            .sim()
            .engine_ref()
            .actor(doma::sim::NodeId(i))
            .in_quorum_mode());
    }
    // Normal DA service: a core write reaches the whole home scheme.
    d.execute_request(Request::write(0usize)).unwrap();
    let v2 = d.sim().latest_version();
    assert!(d.sim().holders_of(v2).contains(ProcessorId::new(0)));
    assert!(d.sim().holders_of(v2).contains(ProcessorId::new(1)));
}

#[test]
fn quorum_mode_intersects_reads_and_writes() {
    // With the core down, do several writes from different processors and
    // read from yet another: the read must return the *latest* version
    // (read quorum ∩ write quorum ≠ ∅).
    let mut d = da_cluster(7);
    d.crash(ProcessorId::new(0));
    for w in [2usize, 3, 4, 5] {
        d.execute_request(Request::write(w)).unwrap();
    }
    let latest = d.sim().latest_version();
    d.execute_request(Request::read(6usize)).unwrap();
    // Reader 6 completed its read; in quorum mode it does not store the
    // result, so we check it *observed* it indirectly: the read completed
    // and the majority holds `latest`.
    assert_eq!(d.sim().report().reads_completed, 1);
    assert!(d.live_holders_of(latest) >= 4, "majority must hold latest");
}

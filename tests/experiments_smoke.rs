//! Smoke-runs every experiment driver at fast settings and asserts the
//! paper-shaped outcomes (who wins, bounds hold, tightness reached).
//! EXPERIMENTS.md's claims are backed by these assertions.

use doma::analysis::experiments;
use doma::analysis::region::RegionConfig;
use doma::core::CostModel;

fn fast_region() -> RegionConfig {
    RegionConfig {
        n: 5,
        step: 0.5,
        max: 2.0,
        schedule_len: 24,
        seeds: 1,
    }
}

#[test]
fn e1_figure1_agrees_with_paper() {
    let r = experiments::fig1(&fast_region()).unwrap();
    assert!(
        r.metrics["agreement"] >= 0.9,
        "Figure 1 agreement too low: {}",
        r.metrics["agreement"]
    );
    assert!(r.to_markdown().contains("Figure 1"));
}

#[test]
fn e2_figure2_agrees_with_paper() {
    let r = experiments::fig2(&fast_region()).unwrap();
    assert!(
        r.metrics["agreement"] >= 0.99,
        "Figure 2: DA must never lose in MC, agreement {}",
        r.metrics["agreement"]
    );
}

#[test]
fn e3_sa_bound_is_tight() {
    let r = experiments::thm1_sa_tightness(&[8, 64, 256]).unwrap();
    assert!(r.metrics["adversary_ratio"] <= r.metrics["bound"] + 1e-9);
    assert!(r.metrics["adversary_ratio"] >= 0.97 * r.metrics["bound"]);
}

#[test]
fn e4_e5_da_bounds_hold() {
    let r = experiments::thm23_da_upper_bounds().unwrap();
    assert!(r.metrics["max_fraction_of_bound"] <= 1.0 + 1e-9);
}

#[test]
fn e6_da_lower_bound_nontrivial() {
    let r = experiments::prop2_da_lower_bound(false).unwrap();
    assert!(r.metrics["best_ratio"] >= 1.3);
}

#[test]
fn e7_sa_mc_divergence_is_linear() {
    let r = experiments::prop3_sa_mc_divergence(&[16, 64, 256]).unwrap();
    // 16 → 256 is 16x the length; ratio growth should be ~16x.
    assert!(r.metrics["growth"] > 8.0, "growth {}", r.metrics["growth"]);
}

#[test]
fn e8_da_mc_bound_holds() {
    let r = experiments::thm4_da_mobile().unwrap();
    assert!(r.metrics["max_fraction_of_bound"] <= 1.0 + 1e-9);
}

#[test]
fn e9_sweep_crosses_to_da_as_reads_grow() {
    let r = experiments::sweep_e9(CostModel::stationary(0.25, 1.0).unwrap()).unwrap();
    assert!(
        r.metrics.contains_key("crossover"),
        "expected a DA-beats-SA crossover in the swept range"
    );
}

#[test]
fn e10_example_ordering() {
    let r = experiments::example13().unwrap();
    assert!(r.metrics["opt"] <= r.metrics["da"]);
    assert!(r.metrics["da"] < r.metrics["sa"]);
}

#[test]
fn e11_protocol_matches_model_exactly() {
    let r = experiments::mobile_e11(80, 11).unwrap();
    assert_eq!(r.metrics["exact_match"], 1.0);
}

#[test]
fn e12_append_only_da_dominates_in_mc() {
    let r = experiments::append_e12(200, 9).unwrap();
    assert!(r.metrics["da_over_sa_MC"] < 1.0);
}

#[test]
fn e14_ablations_have_the_expected_signs() {
    let r = experiments::ablation_e14(400, 13).unwrap();
    assert!(r.metrics["DA_hotspot"] < r.metrics["DA-nosave_hotspot"]);
    assert!(r.metrics["DA_hotspot"] < r.metrics["SA_hotspot"]);
    assert!(r.metrics["WriteInvalidate (t=1)_hotspot"] <= r.metrics["DA_hotspot"] + 1e-9);
}

//! Property test: the simulated wire protocols and the analytic cost
//! engine agree *exactly* on arbitrary schedules — the strongest statement
//! of the repository's central cross-validation invariant.
//!
//! Runs on the in-tree `doma-testkit` harness with a reduced case count:
//! each case drives a full protocol simulation.

use doma::algorithms::{
    ClusteredAllocation, CostOblivious, DynamicAllocation, MobileMirror, OfflineOptimal,
    SlidingWindowConvergent, StaticAllocation, WriteInvalidateCache,
};
use doma::core::{run_online, CostModel, OnlineDom, ProcSet, ProcessorId, Request, Schedule};
use doma::protocol::{PlanOracle, ProtocolSim};
use doma_testkit::property::{self as prop, Gen};
use doma_testkit::TestRng;

const N: usize = 6;

fn init_pair() -> ProcSet {
    ProcSet::from_iter([0, 1])
}

/// Every first-class allocator as an analytic instance — the tournament
/// roster (SA, DA, promoted baselines, contenders) behind one trait
/// object.
fn analytic_roster() -> Vec<Box<dyn OnlineDom>> {
    vec![
        Box::new(StaticAllocation::new(init_pair()).unwrap()),
        Box::new(DynamicAllocation::new(ProcSet::from_iter([0]), ProcessorId::new(1)).unwrap()),
        Box::new(SlidingWindowConvergent::new(N, 2, init_pair(), 8, 4).unwrap()),
        Box::new(WriteInvalidateCache::new(init_pair()).unwrap()),
        Box::new(CostOblivious::new(N, 2, init_pair(), 2).unwrap()),
        Box::new(MobileMirror::new(N, 2, init_pair()).unwrap()),
        Box::new(ClusteredAllocation::new(N, 2, init_pair()).unwrap()),
    ]
}

/// The same roster as protocol simulators (adaptive entrants via the
/// plan-oracle driver), labeled with the obs `algo` metric label.
fn sim_roster() -> Vec<(&'static str, ProtocolSim)> {
    let adaptive: Vec<(&'static str, Box<dyn PlanOracle>)> = vec![
        (
            "convergent",
            Box::new(SlidingWindowConvergent::new(N, 2, init_pair(), 8, 4).unwrap()),
        ),
        (
            "write-invalidate",
            Box::new(WriteInvalidateCache::new(init_pair()).unwrap()),
        ),
        (
            "cost-oblivious",
            Box::new(CostOblivious::new(N, 2, init_pair(), 2).unwrap()),
        ),
        (
            "mobile-mirror",
            Box::new(MobileMirror::new(N, 2, init_pair()).unwrap()),
        ),
        (
            "clustered",
            Box::new(ClusteredAllocation::new(N, 2, init_pair()).unwrap()),
        ),
    ];
    let mut roster = vec![
        ("sa", ProtocolSim::new_sa(N, init_pair()).unwrap()),
        (
            "da",
            ProtocolSim::new_da(N, ProcSet::from_iter([0]), ProcessorId::new(1)).unwrap(),
        ),
    ];
    for (name, oracle) in adaptive {
        roster.push((name, ProtocolSim::new_adaptive(N, oracle).unwrap()));
    }
    roster
}

/// One adaptive entrant: the plan-executing protocol must match
/// `run_online` on the same algorithm exactly.
fn check_adaptive_parity<A: OnlineDom + Clone + Send + 'static>(algo: A, schedule: &Schedule) {
    let mut sim = ProtocolSim::new_adaptive(N, Box::new(algo.clone())).unwrap();
    let report = sim.execute(schedule).unwrap();
    let mut analytic_algo = algo;
    analytic_algo.reset();
    let name = analytic_algo.name().to_string();
    let analytic = run_online(&mut analytic_algo, schedule).unwrap();
    assert_eq!(report.cost, analytic.costed.total, "{name} on {schedule}");
    assert_eq!(report.final_holders, analytic.costed.final_scheme, "{name}");
    assert_eq!(report.dropped_messages, 0, "{name}");
    assert_eq!(
        report.reads_completed as usize,
        schedule.read_count(),
        "{name}"
    );
}

/// Requests over `N` issuers; shrinks writes to reads and issuers toward 0.
struct RequestGen;

impl Gen for RequestGen {
    type Value = Request;

    fn generate(&self, rng: &mut TestRng) -> Request {
        let p = prop::range(0usize..N).generate(rng);
        if prop::bools().generate(rng) {
            Request::read(p)
        } else {
            Request::write(p)
        }
    }

    fn shrink(&self, v: &Request) -> Vec<Request> {
        let mut out = Vec::new();
        if v.op == doma::core::Op::Write {
            out.push(Request::read(v.issuer));
        }
        for issuer in prop::range(0usize..N).shrink(&v.issuer.index()) {
            out.push(Request {
                op: v.op,
                issuer: ProcessorId::new(issuer),
            });
        }
        out
    }
}

fn arb_schedule() -> impl Gen<Value = Schedule> {
    prop::iso(
        prop::vec_in(RequestGen, 0..60),
        Schedule::from_requests,
        |s: &Schedule| s.iter().collect(),
    )
}

doma_testkit::property! {
    #[cases(64)]
    /// SA: protocol tallies == analytic tallies, replica set == scheme.
    fn sa_parity(schedule in arb_schedule()) {
        let q = ProcSet::from_iter([0, 1]);
        let mut sim = ProtocolSim::new_sa(N, q).unwrap();
        let report = sim.execute(&schedule).unwrap();
        let mut sa = StaticAllocation::new(q).unwrap();
        let analytic = run_online(&mut sa, &schedule).unwrap();
        assert_eq!(report.cost, analytic.costed.total, "on {}", schedule);
        assert_eq!(report.final_holders, analytic.costed.final_scheme);
        assert_eq!(report.dropped_messages, 0);
        assert_eq!(report.reads_completed as usize, schedule.read_count());
    }

    #[cases(64)]
    /// DA: same, with join-lists and floater tracking in play.
    fn da_parity(schedule in arb_schedule()) {
        let f = ProcSet::from_iter([0]);
        let p = ProcessorId::new(1);
        let mut sim = ProtocolSim::new_da(N, f, p).unwrap();
        let report = sim.execute(&schedule).unwrap();
        let mut da = DynamicAllocation::new(f, p).unwrap();
        let analytic = run_online(&mut da, &schedule).unwrap();
        assert_eq!(report.cost, analytic.costed.total, "on {}", schedule);
        assert_eq!(report.final_holders, analytic.costed.final_scheme);
        assert_eq!(report.reads_completed as usize, schedule.read_count());
    }

    #[cases(64)]
    /// DA with a wider core (t = 3): the invalidation bookkeeping is the
    /// subtle part, so cover a second configuration.
    fn da_parity_wider_core(schedule in arb_schedule()) {
        let f = ProcSet::from_iter([2, 4]);
        let p = ProcessorId::new(0);
        let mut sim = ProtocolSim::new_da(N, f, p).unwrap();
        let report = sim.execute(&schedule).unwrap();
        let mut da = DynamicAllocation::new(f, p).unwrap();
        let analytic = run_online(&mut da, &schedule).unwrap();
        assert_eq!(report.cost, analytic.costed.total, "on {}", schedule);
        assert_eq!(report.final_holders, analytic.costed.final_scheme);
    }

    #[cases(16)]
    /// The promoted baselines run through the plan-oracle driver match
    /// `run_online` exactly — the tournament-promotion analogue of
    /// `sa_parity`/`da_parity`.
    fn promoted_baseline_parity(schedule in arb_schedule()) {
        check_adaptive_parity(
            SlidingWindowConvergent::new(N, 2, init_pair(), 8, 4).unwrap(),
            &schedule,
        );
        check_adaptive_parity(WriteInvalidateCache::new(init_pair()).unwrap(), &schedule);
    }

    #[cases(16)]
    /// The three tournament contenders match `run_online` exactly too.
    fn contender_parity(schedule in arb_schedule()) {
        check_adaptive_parity(CostOblivious::new(N, 2, init_pair(), 2).unwrap(), &schedule);
        check_adaptive_parity(MobileMirror::new(N, 2, init_pair()).unwrap(), &schedule);
        check_adaptive_parity(ClusteredAllocation::new(N, 2, init_pair()).unwrap(), &schedule);
    }

    #[cases(16)]
    /// The observability registry decomposes the same tallies: summing
    /// the per-(algo, node, op) cost counters reproduces the report's
    /// CostVector exactly, for every first-class allocator. Chained with
    /// the parity properties above, the registry therefore agrees with
    /// the analytic cost engine too.
    fn obs_registry_parity(schedule in arb_schedule()) {
        for (algo, mut sim) in sim_roster() {
            let obs = sim.attach_obs(64);
            let report = sim.execute(&schedule).unwrap();
            sim.obs_flush();
            let snap = obs.metrics().snapshot();
            assert_eq!(
                snap.sum_counters("protocol", "cost.control"),
                report.cost.control,
                "{algo} control on {}", schedule
            );
            assert_eq!(
                snap.sum_counters("protocol", "cost.data"),
                report.cost.data,
                "{algo} data on {}", schedule
            );
            assert_eq!(
                snap.sum_counters("protocol", "cost.io"),
                report.cost.io,
                "{algo} io on {}", schedule
            );
        }
    }

    #[cases(12)]
    /// Differential floor: no online allocator may beat the exact offline
    /// optimum built with its own threshold and initial scheme, under
    /// either environment's pricing.
    fn no_algorithm_beats_opt(schedule in arb_schedule()) {
        let models = [
            CostModel::stationary(0.25, 1.0).unwrap(),
            CostModel::mobile(1.0, 4.0).unwrap(),
        ];
        for algo in &mut analytic_roster() {
            algo.reset();
            let name = algo.name().to_string();
            let outcome = run_online(&mut **algo, &schedule).unwrap();
            for model in &models {
                let opt = OfflineOptimal::new(N, algo.t(), algo.initial_scheme(), *model).unwrap();
                let opt_cost = opt.optimal_cost(&schedule).unwrap();
                let algo_cost = outcome.costed.total_cost(model);
                assert!(
                    algo_cost + 1e-9 >= opt_cost,
                    "{name} beat OPT under {:?} on {}: {algo_cost} < {opt_cost}",
                    model.environment(),
                    schedule
                );
            }
        }
    }
}

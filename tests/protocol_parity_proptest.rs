//! Property test: the simulated wire protocols and the analytic cost
//! engine agree *exactly* on arbitrary schedules — the strongest statement
//! of the repository's central cross-validation invariant.
//!
//! Runs on the in-tree `doma-testkit` harness with a reduced case count:
//! each case drives a full protocol simulation.

use doma::algorithms::{DynamicAllocation, StaticAllocation};
use doma::core::{run_online, ProcSet, ProcessorId, Request, Schedule};
use doma::protocol::ProtocolSim;
use doma_testkit::property::{self as prop, Gen};
use doma_testkit::TestRng;

const N: usize = 6;

/// Requests over `N` issuers; shrinks writes to reads and issuers toward 0.
struct RequestGen;

impl Gen for RequestGen {
    type Value = Request;

    fn generate(&self, rng: &mut TestRng) -> Request {
        let p = prop::range(0usize..N).generate(rng);
        if prop::bools().generate(rng) {
            Request::read(p)
        } else {
            Request::write(p)
        }
    }

    fn shrink(&self, v: &Request) -> Vec<Request> {
        let mut out = Vec::new();
        if v.op == doma::core::Op::Write {
            out.push(Request::read(v.issuer));
        }
        for issuer in prop::range(0usize..N).shrink(&v.issuer.index()) {
            out.push(Request {
                op: v.op,
                issuer: ProcessorId::new(issuer),
            });
        }
        out
    }
}

fn arb_schedule() -> impl Gen<Value = Schedule> {
    prop::iso(
        prop::vec_in(RequestGen, 0..60),
        Schedule::from_requests,
        |s: &Schedule| s.iter().collect(),
    )
}

doma_testkit::property! {
    #[cases(64)]
    /// SA: protocol tallies == analytic tallies, replica set == scheme.
    fn sa_parity(schedule in arb_schedule()) {
        let q = ProcSet::from_iter([0, 1]);
        let mut sim = ProtocolSim::new_sa(N, q).unwrap();
        let report = sim.execute(&schedule).unwrap();
        let mut sa = StaticAllocation::new(q).unwrap();
        let analytic = run_online(&mut sa, &schedule).unwrap();
        assert_eq!(report.cost, analytic.costed.total, "on {}", schedule);
        assert_eq!(report.final_holders, analytic.costed.final_scheme);
        assert_eq!(report.dropped_messages, 0);
        assert_eq!(report.reads_completed as usize, schedule.read_count());
    }

    #[cases(64)]
    /// DA: same, with join-lists and floater tracking in play.
    fn da_parity(schedule in arb_schedule()) {
        let f = ProcSet::from_iter([0]);
        let p = ProcessorId::new(1);
        let mut sim = ProtocolSim::new_da(N, f, p).unwrap();
        let report = sim.execute(&schedule).unwrap();
        let mut da = DynamicAllocation::new(f, p).unwrap();
        let analytic = run_online(&mut da, &schedule).unwrap();
        assert_eq!(report.cost, analytic.costed.total, "on {}", schedule);
        assert_eq!(report.final_holders, analytic.costed.final_scheme);
        assert_eq!(report.reads_completed as usize, schedule.read_count());
    }

    #[cases(64)]
    /// DA with a wider core (t = 3): the invalidation bookkeeping is the
    /// subtle part, so cover a second configuration.
    fn da_parity_wider_core(schedule in arb_schedule()) {
        let f = ProcSet::from_iter([2, 4]);
        let p = ProcessorId::new(0);
        let mut sim = ProtocolSim::new_da(N, f, p).unwrap();
        let report = sim.execute(&schedule).unwrap();
        let mut da = DynamicAllocation::new(f, p).unwrap();
        let analytic = run_online(&mut da, &schedule).unwrap();
        assert_eq!(report.cost, analytic.costed.total, "on {}", schedule);
        assert_eq!(report.final_holders, analytic.costed.final_scheme);
    }

    #[cases(32)]
    /// The observability registry decomposes the same tallies: summing
    /// the per-(algo, node, op) cost counters reproduces the report's
    /// CostVector exactly, for SA and DA alike. Chained with the parity
    /// properties above, the registry therefore agrees with the analytic
    /// cost engine too.
    fn obs_registry_parity(schedule in arb_schedule()) {
        for algo in ["sa", "da"] {
            let mut sim = match algo {
                "sa" => ProtocolSim::new_sa(N, ProcSet::from_iter([0, 1])).unwrap(),
                _ => ProtocolSim::new_da(N, ProcSet::from_iter([0]), ProcessorId::new(1)).unwrap(),
            };
            let obs = sim.attach_obs(64);
            let report = sim.execute(&schedule).unwrap();
            sim.obs_flush();
            let snap = obs.metrics().snapshot();
            assert_eq!(
                snap.sum_counters("protocol", "cost.control"),
                report.cost.control,
                "{algo} control on {}", schedule
            );
            assert_eq!(
                snap.sum_counters("protocol", "cost.data"),
                report.cost.data,
                "{algo} data on {}", schedule
            );
            assert_eq!(
                snap.sum_counters("protocol", "cost.io"),
                report.cost.io,
                "{algo} io on {}", schedule
            );
        }
    }
}

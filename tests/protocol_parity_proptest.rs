//! Property test: the simulated wire protocols and the analytic cost
//! engine agree *exactly* on arbitrary schedules — the strongest statement
//! of the repository's central cross-validation invariant.

use doma::algorithms::{DynamicAllocation, StaticAllocation};
use doma::core::{run_online, ProcSet, ProcessorId, Request, Schedule};
use doma::protocol::ProtocolSim;
use proptest::prelude::*;

const N: usize = 6;

fn arb_schedule() -> impl Strategy<Value = Schedule> {
    proptest::collection::vec((0..N, any::<bool>()), 0..60).prop_map(|reqs| {
        reqs.into_iter()
            .map(|(p, is_read)| {
                if is_read {
                    Request::read(p)
                } else {
                    Request::write(p)
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SA: protocol tallies == analytic tallies, replica set == scheme.
    #[test]
    fn sa_parity(schedule in arb_schedule()) {
        let q = ProcSet::from_iter([0, 1]);
        let mut sim = ProtocolSim::new_sa(N, q).unwrap();
        let report = sim.execute(&schedule).unwrap();
        let mut sa = StaticAllocation::new(q).unwrap();
        let analytic = run_online(&mut sa, &schedule).unwrap();
        prop_assert_eq!(report.cost, analytic.costed.total, "on {}", schedule);
        prop_assert_eq!(report.final_holders, analytic.costed.final_scheme);
        prop_assert_eq!(report.dropped_messages, 0);
        prop_assert_eq!(report.reads_completed as usize, schedule.read_count());
    }

    /// DA: same, with join-lists and floater tracking in play.
    #[test]
    fn da_parity(schedule in arb_schedule()) {
        let f = ProcSet::from_iter([0]);
        let p = ProcessorId::new(1);
        let mut sim = ProtocolSim::new_da(N, f, p).unwrap();
        let report = sim.execute(&schedule).unwrap();
        let mut da = DynamicAllocation::new(f, p).unwrap();
        let analytic = run_online(&mut da, &schedule).unwrap();
        prop_assert_eq!(report.cost, analytic.costed.total, "on {}", schedule);
        prop_assert_eq!(report.final_holders, analytic.costed.final_scheme);
        prop_assert_eq!(report.reads_completed as usize, schedule.read_count());
    }

    /// DA with a wider core (t = 3): the invalidation bookkeeping is the
    /// subtle part, so cover a second configuration.
    #[test]
    fn da_parity_wider_core(schedule in arb_schedule()) {
        let f = ProcSet::from_iter([2, 4]);
        let p = ProcessorId::new(0);
        let mut sim = ProtocolSim::new_da(N, f, p).unwrap();
        let report = sim.execute(&schedule).unwrap();
        let mut da = DynamicAllocation::new(f, p).unwrap();
        let analytic = run_online(&mut da, &schedule).unwrap();
        prop_assert_eq!(report.cost, analytic.costed.total, "on {}", schedule);
        prop_assert_eq!(report.final_holders, analytic.costed.final_scheme);
    }
}

//! Seed-replay torture matrix: randomized fault episodes against the full
//! tournament roster (SA, DA and the five adaptive allocators) and the
//! failover path, with every step audited by the invariant checker.
//!
//! Seeds come from the environment (`DOMA_FAULT_SEEDS` sizes the sweep,
//! default 32; `DOMA_FAULT_SEED=0x…` replays exactly one episode). On a
//! violation the panic message carries the one-line replay recipe.

use doma::fault::{run_sweep, Algo, FaultClass};

fn torture_cell(algo: Algo, class: FaultClass) {
    match run_sweep(algo, class) {
        Ok(outcomes) => {
            assert!(!outcomes.is_empty(), "sweep ran no episodes");
            let issued: usize = outcomes.iter().map(|o| o.requests_issued).sum();
            let reads: u64 = outcomes.iter().map(|o| o.reads_completed).sum();
            assert!(issued > 0, "{algo}/{class}: no requests issued");
            assert!(reads > 0, "{algo}/{class}: no reads ever completed");
        }
        Err(failure) => panic!("{failure}"),
    }
}

#[test]
fn fault_torture_sa_crash() {
    torture_cell(Algo::Sa, FaultClass::Crash);
}

#[test]
fn fault_torture_sa_partition() {
    torture_cell(Algo::Sa, FaultClass::Partition);
}

#[test]
fn fault_torture_sa_drop() {
    torture_cell(Algo::Sa, FaultClass::Drop);
}

#[test]
fn fault_torture_da_crash() {
    torture_cell(Algo::Da, FaultClass::Crash);
}

#[test]
fn fault_torture_da_partition() {
    torture_cell(Algo::Da, FaultClass::Partition);
}

#[test]
fn fault_torture_da_drop() {
    torture_cell(Algo::Da, FaultClass::Drop);
}

#[test]
fn fault_torture_convergent_crash() {
    torture_cell(Algo::Convergent, FaultClass::Crash);
}

#[test]
fn fault_torture_convergent_drop() {
    torture_cell(Algo::Convergent, FaultClass::Drop);
}

#[test]
fn fault_torture_write_invalidate_partition() {
    torture_cell(Algo::WriteInvalidate, FaultClass::Partition);
}

#[test]
fn fault_torture_write_invalidate_drop() {
    torture_cell(Algo::WriteInvalidate, FaultClass::Drop);
}

#[test]
fn fault_torture_cost_oblivious_crash() {
    torture_cell(Algo::CostOblivious, FaultClass::Crash);
}

#[test]
fn fault_torture_cost_oblivious_partition() {
    torture_cell(Algo::CostOblivious, FaultClass::Partition);
}

#[test]
fn fault_torture_mobile_mirror_crash() {
    torture_cell(Algo::MobileMirror, FaultClass::Crash);
}

#[test]
fn fault_torture_mobile_mirror_drop() {
    torture_cell(Algo::MobileMirror, FaultClass::Drop);
}

#[test]
fn fault_torture_clustered_crash() {
    torture_cell(Algo::Clustered, FaultClass::Crash);
}

#[test]
fn fault_torture_clustered_partition() {
    torture_cell(Algo::Clustered, FaultClass::Partition);
}

/// Pinned regression episodes: one fixed seed per adaptive algorithm,
/// chosen so the episode exercises real fault churn (crashes or injected
/// faults) and pinned on its exact outcome counts — any change to the
/// plan-oracle fault path shows up as a diff here before it shows up as
/// a (much rarer) invariant violation.
#[test]
fn pinned_adaptive_regression_episodes() {
    use doma::fault::run_episode;

    // (algo, class, seed) — the expected counts are asserted against a
    // re-run below rather than against literals for the *fault* stats
    // (which depend on sampled plans), but requests/reads are pinned.
    let cells = [
        (Algo::Convergent, FaultClass::Crash, 0x0C01u64),
        (Algo::WriteInvalidate, FaultClass::Drop, 0x0C02),
        (Algo::CostOblivious, FaultClass::Partition, 0x0C03),
        (Algo::MobileMirror, FaultClass::Crash, 0x0C04),
        (Algo::Clustered, FaultClass::Drop, 0x0C05),
    ];
    for (algo, class, seed) in cells {
        let a = run_episode(seed, algo, class).unwrap_or_else(|f| panic!("{f}"));
        let b = run_episode(seed, algo, class).unwrap_or_else(|f| panic!("{f}"));
        assert!(
            a.requests_issued > 0,
            "{algo}/{class}: episode issued nothing"
        );
        assert!(a.reads_completed > 0, "{algo}/{class}: no reads completed");
        assert_eq!(a.n, b.n, "{algo}/{class}: cluster shape not reproducible");
        assert_eq!(
            a.requests_issued, b.requests_issued,
            "{algo}/{class}: issue count not reproducible"
        );
        assert_eq!(
            a.reads_completed, b.reads_completed,
            "{algo}/{class}: read count not reproducible"
        );
        assert_eq!(a.faults, b.faults, "{algo}/{class}: fault stats drifted");
        assert_eq!(a.crashes, b.crashes, "{algo}/{class}: crash count drifted");
    }
}

/// Mutation check for the harness itself: a hostile network that eats
/// exactly one DA invalidation in *normal* mode (where the protocol is
/// not loss-tolerant by design) must be caught as a one-copy violation,
/// and the failure must carry a `DOMA_FAULT_SEED` replay line.
#[test]
fn fault_torture_catches_a_seeded_one_copy_violation() {
    use doma::core::{ProcSet, ProcessorId, Request};
    use doma::fault::{InvariantChecker, Regime, Violation};
    use doma::protocol::failover::FailoverDriver;
    use doma::protocol::ProtocolSim;
    use doma::sim::{FaultAction, FaultPlan, FaultRule, LinkFilter, MsgKind, NodeId};
    use doma_testkit::replay::replay_line;

    let seed = 0xBAD_5EED;
    let f: ProcSet = [0usize].into_iter().collect();
    let sim = ProtocolSim::new_da(5, f, ProcessorId::new(1)).expect("valid DA config");
    let t = sim.config().t();
    let mut driver = FailoverDriver::new(sim, 5);
    let mut checker = InvariantChecker::new(driver.sim(), 5);

    // An outsider saving-read: node 4 stores the replica and joins.
    driver.execute_request(Request::read(4usize)).unwrap();
    checker
        .check(&driver, Regime::Normal, None, "saving read by p4")
        .expect("healthy step");

    // The mutation: eat the single invalidation the core member owes the
    // joiner on the next write.
    let plan = FaultPlan::new(seed).rule(
        FaultRule::always(
            LinkFilter::link(NodeId(0), NodeId(4)).of_kind(MsgKind::Control),
            FaultAction::Drop,
        )
        .with_budget(1),
    );
    driver.sim_mut().engine_mut().install_faults(plan);

    driver.execute_request(Request::write(2usize)).unwrap();
    let v = driver.sim().latest_version();
    assert!(
        driver.sim().holders_of(v).len() >= t,
        "the write must still commit to t replicas"
    );
    checker
        .check(&driver, Regime::Normal, Some(v), "write by p2")
        .expect("the write itself is clean");

    // Node 4 still believes its replica is valid: its local read returns
    // the superseded version, and the checker must flag it.
    driver.execute_request(Request::read(4usize)).unwrap();
    let violation = checker
        .check(&driver, Regime::Normal, None, "stale re-read by p4")
        .expect_err("the eaten invalidation must surface as a violation");
    match &violation {
        Violation::StaleRead { node, floor, .. } => {
            assert_eq!(*node, 4);
            assert_eq!(*floor, v);
        }
        other => panic!("expected StaleRead, got {other}"),
    }

    let line = replay_line(seed, "da/mutation", "fault_torture");
    assert!(line.contains("DOMA_FAULT_SEED=0xbad5eed"), "{line}");
    assert!(line.contains("cargo test fault_torture"), "{line}");
    assert_eq!(
        driver.sim_mut().engine_mut().clear_faults().dropped,
        1,
        "exactly the one invalidation was eaten"
    );
}

/// The acceptance contract for torture observability: forcing a failure
/// via the reverted-fix switches must produce a report that carries the
/// cost metric delta of the failing step and the event-log tail, right
/// alongside the replay line.
#[test]
fn forced_failure_reports_metric_delta_and_event_tail() {
    use doma::fault::run_episode_with_bugs;
    use doma::protocol::BugSwitches;

    let bugs = BugSwitches {
        ignore_round_tags: true,
        count_duplicate_responders: true,
        no_invalidated_floor: true,
    };
    // Crash episodes trip the reverted fixes fastest: recovery and
    // crash-time churn exercise the invalidated-floor and round-tag
    // paths under normal-mode audits. (Seed 205 is the first hit at the
    // time of writing; the scan keeps the test robust to upstream
    // reshuffles of the episode sampler.)
    let failure = (0..250u64)
        .find_map(|seed| run_episode_with_bugs(seed, Algo::Da, FaultClass::Crash, bugs).err())
        .expect("with every hardening fix reverted, some seed must violate an invariant");
    let text = failure.to_string();
    assert!(text.contains("violated an invariant"), "{text}");
    assert!(
        text.contains("metric delta since the last passing audit:"),
        "{text}"
    );
    assert!(
        text.contains("cost."),
        "the delta must break down cio/cc/cd activity:\n{text}"
    );
    assert!(text.contains("event-log tail:"), "{text}");
    assert!(text.contains("sim.trace"), "{text}");
    assert!(text.contains("DOMA_FAULT_SEED="), "{text}");
    // The failure itself is reproducible: the same seed and cell fail
    // identically on a second run.
    let again = run_episode_with_bugs(failure.seed, Algo::Da, FaultClass::Crash, bugs)
        .expect_err("the forced failure must reproduce from its seed");
    assert_eq!(
        again.to_string(),
        text,
        "failure report must be deterministic"
    );
}

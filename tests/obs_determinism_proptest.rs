//! Property test: the observability subsystem is deterministic end to
//! end — re-running a torture episode under the same seed produces a
//! byte-identical metrics/event JSON snapshot, across every algorithm ×
//! fault-class cell. This is the contract that makes obs output safe to
//! diff in CI and to attach to replay lines.

use doma::fault::{episode_obs_json, Algo, FaultClass};
use doma_testkit::property as prop;

doma_testkit::property! {
    #[cases(12)]
    /// Same seed ⇒ byte-identical snapshot; the cell is derived from the
    /// seed so shrinking keeps the failing cell stable.
    fn episode_obs_json_is_byte_identical(seed in prop::range(0u64..1_000_000)) {
        let algo = if seed % 2 == 0 { Algo::Sa } else { Algo::Da };
        let class = match seed % 3 {
            0 => FaultClass::Crash,
            1 => FaultClass::Partition,
            _ => FaultClass::Drop,
        };
        let first = episode_obs_json(seed, algo, class);
        let second = episode_obs_json(seed, algo, class);
        assert_eq!(
            first, second,
            "obs JSON diverged across two runs of seed {seed:#x}"
        );
        assert!(first.contains("\"metrics\""), "snapshot missing metrics key");
        assert!(first.contains("\"events\""), "snapshot missing events key");
        assert!(
            first.contains("\"dropped_events\""),
            "snapshot missing dropped_events key"
        );
    }
}

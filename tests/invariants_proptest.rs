//! Property-based tests of the model's core invariants, spanning
//! `doma-core`, `doma-algorithms` and the cost engine. Runs on the
//! in-tree `doma-testkit` harness; a failure prints the minimal shrunk
//! schedule plus a `DOMA_PROP_SEED` replay line.

use doma::algorithms::bounds::per_request_lower_bound;
use doma::algorithms::{DynamicAllocation, NaiveDpOptimal, OfflineOptimal, StaticAllocation};
use doma::core::{
    cost_of_schedule, run_offline, run_online, validate_allocation, CostModel, ProcSet,
    ProcessorId, Request, Schedule,
};
use doma_testkit::property::{self as prop, Gen};
use doma_testkit::TestRng;

const N: usize = 5;

/// Requests over `N` issuers; shrinks writes to reads and issuers toward 0.
struct RequestGen {
    n: usize,
}

impl Gen for RequestGen {
    type Value = Request;

    fn generate(&self, rng: &mut TestRng) -> Request {
        let p = prop::range(0usize..self.n).generate(rng);
        if prop::bools().generate(rng) {
            Request::read(p)
        } else {
            Request::write(p)
        }
    }

    fn shrink(&self, v: &Request) -> Vec<Request> {
        let mut out = Vec::new();
        if v.op == doma::core::Op::Write {
            out.push(Request::read(v.issuer));
        }
        for issuer in prop::range(0usize..self.n).shrink(&v.issuer.index()) {
            out.push(Request {
                op: v.op,
                issuer: ProcessorId::new(issuer),
            });
        }
        out
    }
}

fn arb_schedule(max_len: usize) -> impl Gen<Value = Schedule> {
    prop::iso(
        prop::vec_in(RequestGen { n: N }, 0..max_len),
        Schedule::from_requests,
        |s: &Schedule| s.iter().collect(),
    )
}

/// Stationary models with `0 <= cc <= cd < 2`, shrinking both toward 0.
fn arb_sc_model() -> impl Gen<Value = CostModel> {
    prop::map(
        prop::pair(prop::range(0.0f64..2.0), prop::range(0.0f64..2.0)),
        |(a, b)| {
            let (cc, cd) = if a <= b { (a, b) } else { (b, a) };
            CostModel::stationary(cc, cd).expect("cc <= cd by construction")
        },
    )
}

/// Mobile models with `cd > 0` and `cc = cd * frac <= cd`.
fn arb_mc_model() -> impl Gen<Value = CostModel> {
    prop::map(
        prop::pair(prop::range(0.01f64..2.0), prop::range(0.0f64..1.0)),
        |(cd, frac)| CostModel::mobile(cd * frac, cd).expect("cc <= cd by construction"),
    )
}

doma_testkit::property! {
    /// SA and DA always produce legal, t-available allocation schedules
    /// (run_online validates internally and would return Err otherwise),
    /// and the standalone validator agrees.
    fn sa_da_outputs_are_always_valid(schedule in arb_schedule(40)) {
        let q = ProcSet::from_iter([0, 1]);
        let mut sa = StaticAllocation::new(q).unwrap();
        let sa_run = run_online(&mut sa, &schedule).expect("SA must be valid");
        assert!(validate_allocation(&sa_run.alloc, 2).is_valid());

        let mut da = DynamicAllocation::new(ProcSet::from_iter([0]), ProcessorId::new(1)).unwrap();
        let da_run = run_online(&mut da, &schedule).expect("DA must be valid");
        assert!(validate_allocation(&da_run.alloc, 2).is_valid());

        // DA's core invariant: F is in the scheme at every step.
        for k in 0..=schedule.len() {
            assert!(da_run.alloc.scheme_at(k).contains(ProcessorId::new(0)));
        }
    }

    /// OPT is a true lower bound for every online algorithm, sits above
    /// the analytic per-request bound, and its reconstructed allocation
    /// schedule re-costs to exactly the DP value.
    fn opt_sandwich(schedule in arb_schedule(25), model in arb_sc_model()) {
        let init = ProcSet::from_iter([0, 1]);
        let opt = OfflineOptimal::new(N, 2, init, model).unwrap();
        let opt_run = run_offline(&opt, &schedule).expect("OPT output must validate");
        let opt_cost = opt_run.costed.total_cost(&model);
        let dp_cost = opt.optimal_cost(&schedule).unwrap();
        assert!((opt_cost - dp_cost).abs() < 1e-6,
            "reconstruction {opt_cost} != DP {dp_cost}");

        let lb = per_request_lower_bound(&schedule, &model, 2);
        assert!(lb <= dp_cost + 1e-6, "lower bound {lb} > OPT {dp_cost}");

        let mut sa = StaticAllocation::new(init).unwrap();
        let sa_cost = run_online(&mut sa, &schedule).unwrap().costed.total_cost(&model);
        assert!(dp_cost <= sa_cost + 1e-6);

        let mut da = DynamicAllocation::new(ProcSet::from_iter([0]), ProcessorId::new(1)).unwrap();
        let da_cost = run_online(&mut da, &schedule).unwrap().costed.total_cost(&model);
        assert!(dp_cost <= da_cost + 1e-6);
    }

    /// The optimized O(2^n·n) DP agrees exactly with the naive O(4^n)
    /// reference on every input.
    fn fast_dp_equals_naive_dp(schedule in arb_schedule(15), model in arb_sc_model()) {
        let init = ProcSet::from_iter([0, 1]);
        let fast = OfflineOptimal::new(N, 2, init, model).unwrap();
        let naive = NaiveDpOptimal::new(N, 2, init, model).unwrap();
        let a = fast.optimal_cost(&schedule).unwrap();
        let b = naive.optimal_cost(&schedule).unwrap();
        assert!((a - b).abs() < 1e-9, "fast {a} != naive {b} on {schedule}");
    }

    /// Theorem 1: SA never exceeds (1 + cc + cd) · OPT in SC.
    fn theorem_1_holds(schedule in arb_schedule(30), model in arb_sc_model()) {
        let init = ProcSet::from_iter([0, 1]);
        let opt = OfflineOptimal::new(N, 2, init, model).unwrap();
        let opt_cost = opt.optimal_cost(&schedule).unwrap();
        let mut sa = StaticAllocation::new(init).unwrap();
        let sa_cost = run_online(&mut sa, &schedule).unwrap().costed.total_cost(&model);
        let bound = model.sa_bound().unwrap();
        assert!(sa_cost <= bound * opt_cost + 1e-6,
            "SA {sa_cost} > {bound} * OPT {opt_cost} on {schedule}");
    }

    /// Theorems 2 & 3: DA never exceeds its SC bound.
    fn theorems_2_3_hold(schedule in arb_schedule(30), model in arb_sc_model()) {
        let init = ProcSet::from_iter([0, 1]);
        let opt = OfflineOptimal::new(N, 2, init, model).unwrap();
        let opt_cost = opt.optimal_cost(&schedule).unwrap();
        let mut da = DynamicAllocation::new(ProcSet::from_iter([0]), ProcessorId::new(1)).unwrap();
        let da_cost = run_online(&mut da, &schedule).unwrap().costed.total_cost(&model);
        let bound = model.da_bound().unwrap();
        assert!(da_cost <= bound * opt_cost + 1e-6,
            "DA {da_cost} > {bound} * OPT {opt_cost} on {schedule}");
    }

    /// Theorem 4: DA never exceeds (2 + 3cc/cd) · OPT in MC.
    fn theorem_4_holds(schedule in arb_schedule(30), model in arb_mc_model()) {
        let init = ProcSet::from_iter([0, 1]);
        let opt = OfflineOptimal::new(N, 2, init, model).unwrap();
        let opt_cost = opt.optimal_cost(&schedule).unwrap();
        let mut da = DynamicAllocation::new(ProcSet::from_iter([0]), ProcessorId::new(1)).unwrap();
        let da_cost = run_online(&mut da, &schedule).unwrap().costed.total_cost(&model);
        let bound = model.da_bound().unwrap();
        assert!(da_cost <= bound * opt_cost + 1e-6,
            "DA {da_cost} > {bound} * OPT {opt_cost} on {schedule}");
    }

    /// Cost accounting is internally consistent: the per-request tallies
    /// sum to the total, and re-costing a schedule is deterministic.
    fn cost_accounting_is_additive(schedule in arb_schedule(30)) {
        let mut da = DynamicAllocation::new(ProcSet::from_iter([0]), ProcessorId::new(1)).unwrap();
        let run = run_online(&mut da, &schedule).unwrap();
        let sum: doma::core::CostVector =
            run.costed.per_request.iter().map(|p| p.cost).sum();
        assert_eq!(sum, run.costed.total);
        let again = cost_of_schedule(&run.alloc, 2).unwrap();
        assert_eq!(again.total, run.costed.total);
    }

    /// Scheme evolution bookkeeping agrees between the incremental engine
    /// and the O(k) `scheme_at` recomputation.
    fn scheme_at_matches_engine(schedule in arb_schedule(20)) {
        let mut da = DynamicAllocation::new(ProcSet::from_iter([0]), ProcessorId::new(1)).unwrap();
        let run = run_online(&mut da, &schedule).unwrap();
        for (k, pr) in run.costed.per_request.iter().enumerate() {
            assert_eq!(run.alloc.scheme_at(k), pr.scheme);
        }
        assert_eq!(run.alloc.final_scheme(), run.costed.final_scheme);
    }
}

/// Fixed-seed anchors: deterministic schedules that exercise the same
/// invariants as the properties above, pinned so a generator change can
/// never silently shift coverage.
#[cfg(test)]
mod regressions {
    use super::*;
    use doma::workload::{ScheduleGen, UniformWorkload};

    #[test]
    fn theorem_1_on_fixed_seed_workload() {
        let schedule = UniformWorkload::new(N, 0.5).unwrap().generate(30, 0xD0AA);
        let model = CostModel::stationary(0.25, 1.0).unwrap();
        let init = ProcSet::from_iter([0, 1]);
        let opt_cost = OfflineOptimal::new(N, 2, init, model)
            .unwrap()
            .optimal_cost(&schedule)
            .unwrap();
        let mut sa = StaticAllocation::new(init).unwrap();
        let sa_cost = run_online(&mut sa, &schedule)
            .unwrap()
            .costed
            .total_cost(&model);
        assert!(sa_cost <= model.sa_bound().unwrap() * opt_cost + 1e-6);
    }

    #[test]
    fn dp_agreement_on_fixed_seed_workload() {
        let schedule = UniformWorkload::new(N, 0.7).unwrap().generate(12, 7);
        let model = CostModel::stationary(0.5, 1.5).unwrap();
        let init = ProcSet::from_iter([0, 1]);
        let fast = OfflineOptimal::new(N, 2, init, model).unwrap();
        let naive = NaiveDpOptimal::new(N, 2, init, model).unwrap();
        assert!(
            (fast.optimal_cost(&schedule).unwrap() - naive.optimal_cost(&schedule).unwrap()).abs()
                < 1e-9
        );
    }
}

//! Property-based tests of the model's core invariants, spanning
//! `doma-core`, `doma-algorithms` and the cost engine.

use doma::algorithms::bounds::per_request_lower_bound;
use doma::algorithms::{
    DynamicAllocation, NaiveDpOptimal, OfflineOptimal, StaticAllocation,
};
use doma::core::{
    cost_of_schedule, run_offline, run_online, validate_allocation, CostModel, ProcSet,
    ProcessorId, Request, Schedule,
};
use proptest::prelude::*;

const N: usize = 5;

fn arb_request() -> impl Strategy<Value = Request> {
    (0..N, any::<bool>()).prop_map(|(p, is_read)| {
        if is_read {
            Request::read(p)
        } else {
            Request::write(p)
        }
    })
}

fn arb_schedule(max_len: usize) -> impl Strategy<Value = Schedule> {
    proptest::collection::vec(arb_request(), 0..max_len).prop_map(Schedule::from_requests)
}

fn arb_sc_model() -> impl Strategy<Value = CostModel> {
    (0.0f64..2.0, 0.0f64..2.0).prop_map(|(a, b)| {
        let (cc, cd) = if a <= b { (a, b) } else { (b, a) };
        CostModel::stationary(cc, cd).expect("cc <= cd by construction")
    })
}

fn arb_mc_model() -> impl Strategy<Value = CostModel> {
    (0.01f64..2.0, 0.0f64..1.0).prop_map(|(cd, frac)| {
        CostModel::mobile(cd * frac, cd).expect("cc <= cd by construction")
    })
}

proptest! {
    /// SA and DA always produce legal, t-available allocation schedules
    /// (run_online validates internally and would return Err otherwise),
    /// and the standalone validator agrees.
    #[test]
    fn sa_da_outputs_are_always_valid(schedule in arb_schedule(40)) {
        let q = ProcSet::from_iter([0, 1]);
        let mut sa = StaticAllocation::new(q).unwrap();
        let sa_run = run_online(&mut sa, &schedule).expect("SA must be valid");
        prop_assert!(validate_allocation(&sa_run.alloc, 2).is_valid());

        let mut da = DynamicAllocation::new(ProcSet::from_iter([0]), ProcessorId::new(1)).unwrap();
        let da_run = run_online(&mut da, &schedule).expect("DA must be valid");
        prop_assert!(validate_allocation(&da_run.alloc, 2).is_valid());

        // DA's core invariant: F is in the scheme at every step.
        for k in 0..=schedule.len() {
            prop_assert!(da_run.alloc.scheme_at(k).contains(ProcessorId::new(0)));
        }
    }

    /// OPT is a true lower bound for every online algorithm, sits above
    /// the analytic per-request bound, and its reconstructed allocation
    /// schedule re-costs to exactly the DP value.
    #[test]
    fn opt_sandwich(schedule in arb_schedule(25), model in arb_sc_model()) {
        let init = ProcSet::from_iter([0, 1]);
        let opt = OfflineOptimal::new(N, 2, init, model).unwrap();
        let opt_run = run_offline(&opt, &schedule).expect("OPT output must validate");
        let opt_cost = opt_run.costed.total_cost(&model);
        let dp_cost = opt.optimal_cost(&schedule).unwrap();
        prop_assert!((opt_cost - dp_cost).abs() < 1e-6,
            "reconstruction {opt_cost} != DP {dp_cost}");

        let lb = per_request_lower_bound(&schedule, &model, 2);
        prop_assert!(lb <= dp_cost + 1e-6, "lower bound {lb} > OPT {dp_cost}");

        let mut sa = StaticAllocation::new(init).unwrap();
        let sa_cost = run_online(&mut sa, &schedule).unwrap().costed.total_cost(&model);
        prop_assert!(dp_cost <= sa_cost + 1e-6);

        let mut da = DynamicAllocation::new(ProcSet::from_iter([0]), ProcessorId::new(1)).unwrap();
        let da_cost = run_online(&mut da, &schedule).unwrap().costed.total_cost(&model);
        prop_assert!(dp_cost <= da_cost + 1e-6);
    }

    /// The optimized O(2^n·n) DP agrees exactly with the naive O(4^n)
    /// reference on every input.
    #[test]
    fn fast_dp_equals_naive_dp(schedule in arb_schedule(15), model in arb_sc_model()) {
        let init = ProcSet::from_iter([0, 1]);
        let fast = OfflineOptimal::new(N, 2, init, model).unwrap();
        let naive = NaiveDpOptimal::new(N, 2, init, model).unwrap();
        let a = fast.optimal_cost(&schedule).unwrap();
        let b = naive.optimal_cost(&schedule).unwrap();
        prop_assert!((a - b).abs() < 1e-9, "fast {a} != naive {b} on {schedule}");
    }

    /// Theorem 1: SA never exceeds (1 + cc + cd) · OPT in SC.
    #[test]
    fn theorem_1_holds(schedule in arb_schedule(30), model in arb_sc_model()) {
        let init = ProcSet::from_iter([0, 1]);
        let opt = OfflineOptimal::new(N, 2, init, model).unwrap();
        let opt_cost = opt.optimal_cost(&schedule).unwrap();
        let mut sa = StaticAllocation::new(init).unwrap();
        let sa_cost = run_online(&mut sa, &schedule).unwrap().costed.total_cost(&model);
        let bound = model.sa_bound().unwrap();
        prop_assert!(sa_cost <= bound * opt_cost + 1e-6,
            "SA {sa_cost} > {bound} * OPT {opt_cost} on {schedule}");
    }

    /// Theorems 2 & 3: DA never exceeds its SC bound.
    #[test]
    fn theorems_2_3_hold(schedule in arb_schedule(30), model in arb_sc_model()) {
        let init = ProcSet::from_iter([0, 1]);
        let opt = OfflineOptimal::new(N, 2, init, model).unwrap();
        let opt_cost = opt.optimal_cost(&schedule).unwrap();
        let mut da = DynamicAllocation::new(ProcSet::from_iter([0]), ProcessorId::new(1)).unwrap();
        let da_cost = run_online(&mut da, &schedule).unwrap().costed.total_cost(&model);
        let bound = model.da_bound().unwrap();
        prop_assert!(da_cost <= bound * opt_cost + 1e-6,
            "DA {da_cost} > {bound} * OPT {opt_cost} on {schedule}");
    }

    /// Theorem 4: DA never exceeds (2 + 3cc/cd) · OPT in MC.
    #[test]
    fn theorem_4_holds(schedule in arb_schedule(30), model in arb_mc_model()) {
        let init = ProcSet::from_iter([0, 1]);
        let opt = OfflineOptimal::new(N, 2, init, model).unwrap();
        let opt_cost = opt.optimal_cost(&schedule).unwrap();
        let mut da = DynamicAllocation::new(ProcSet::from_iter([0]), ProcessorId::new(1)).unwrap();
        let da_cost = run_online(&mut da, &schedule).unwrap().costed.total_cost(&model);
        let bound = model.da_bound().unwrap();
        prop_assert!(da_cost <= bound * opt_cost + 1e-6,
            "DA {da_cost} > {bound} * OPT {opt_cost} on {schedule}");
    }

    /// Cost accounting is internally consistent: the per-request tallies
    /// sum to the total, and re-costing a schedule is deterministic.
    #[test]
    fn cost_accounting_is_additive(schedule in arb_schedule(30)) {
        let mut da = DynamicAllocation::new(ProcSet::from_iter([0]), ProcessorId::new(1)).unwrap();
        let run = run_online(&mut da, &schedule).unwrap();
        let sum: doma::core::CostVector =
            run.costed.per_request.iter().map(|p| p.cost).sum();
        prop_assert_eq!(sum, run.costed.total);
        let again = cost_of_schedule(&run.alloc, 2).unwrap();
        prop_assert_eq!(again.total, run.costed.total);
    }

    /// Scheme evolution bookkeeping agrees between the incremental engine
    /// and the O(k) `scheme_at` recomputation.
    #[test]
    fn scheme_at_matches_engine(schedule in arb_schedule(20)) {
        let mut da = DynamicAllocation::new(ProcSet::from_iter([0]), ProcessorId::new(1)).unwrap();
        let run = run_online(&mut da, &schedule).unwrap();
        for (k, pr) in run.costed.per_request.iter().enumerate() {
            prop_assert_eq!(run.alloc.scheme_at(k), pr.scheme);
        }
        prop_assert_eq!(run.alloc.final_scheme(), run.costed.final_scheme);
    }
}

//! Per-entrant golden-digest regression wall (satellite of the
//! scenario-engine PR): every tournament entrant runs the §6.2
//! append-only/standing-order scenario (`append-only-6-2`, the Huang &
//! Wolfson satellite-image workload) and must reproduce a pinned obs
//! digest.
//!
//! The builtin file pins the digest for its own entrant (`sa`); this
//! wall extends the pin to all seven allocators so a behavioural drift
//! in *any* entrant — not just the one the builtin happens to name — is
//! caught by `cargo test`.
//!
//! If a digest changes intentionally, re-harvest with the ignored
//! `print_append_only_digests` helper below and update `GOLDEN`.

use doma::scenario::{builtin, runner, Entrant};

/// Pinned FNV-1a digests of the obs snapshot for `append-only-6-2`, one
/// per entrant, in `Entrant::ALL` order.
const GOLDEN: [(&str, &str); 7] = [
    ("sa", "0xb64ce3fa9b390fdb"),
    ("da", "0x773b0d7e294d00b2"),
    ("convergent", "0xfc0c7651e2b1c10f"),
    ("write-invalidate", "0xa1b34cf52d14f5b5"),
    ("cost-oblivious", "0xf676c9b71f1558ff"),
    ("mobile-mirror", "0xabc95445324d6957"),
    ("clustered", "0x70cc709293a64cad"),
];

/// The §6.2 scenario re-targeted at `entrant`: same catalog, seed and
/// phases; the availability floor follows the entrant's own `t` (the
/// write-invalidate cache keeps a single valid copy by design) and the
/// file's `sa` digest pin is cleared so this wall supplies its own.
fn scenario_for(entrant: Entrant) -> doma::scenario::Scenario {
    let mut s = builtin::load("append-only-6-2").expect("builtin parses");
    s.entrant = entrant;
    s.expect.min_valid_holders = Some(entrant.t());
    // The file's churn ceiling of 0 is an SA-specific invariant; the
    // dynamic allocators are allowed (indeed expected) to migrate.
    s.expect.max_scheme_churn = None;
    s.golden = None;
    s
}

#[test]
fn every_entrant_reproduces_its_pinned_append_only_digest() {
    assert_eq!(GOLDEN.len(), Entrant::ALL.len());
    let mut drifted = Vec::new();
    for (entrant, (name, golden)) in Entrant::ALL.into_iter().zip(GOLDEN) {
        assert_eq!(entrant.as_str(), name, "GOLDEN out of roster order");
        let report = runner::run(&scenario_for(entrant)).expect("scenario runs");
        assert!(report.passed(), "{name}: {:?}", report.violations);
        if report.digest != golden {
            drifted.push(format!("{name}: pinned {golden}, got {}", report.digest));
        }
    }
    assert!(
        drifted.is_empty(),
        "append-only digest drift (re-pin via print_append_only_digests if intended):\n{}",
        drifted.join("\n")
    );
}

#[test]
fn entrants_are_deterministic_on_the_append_only_scenario() {
    for entrant in Entrant::ALL {
        let s = scenario_for(entrant);
        let a = runner::run(&s).expect("first run");
        let b = runner::run(&s).expect("second run");
        assert_eq!(
            a.snapshot_json,
            b.snapshot_json,
            "{} not replay-stable",
            entrant.as_str()
        );
    }
}

/// Harvest helper: `cargo test -q print_append_only_digests -- --ignored
/// --nocapture` prints the current digest table in `GOLDEN` format.
#[test]
#[ignore = "harvest helper, not a regression test"]
fn print_append_only_digests() {
    for entrant in Entrant::ALL {
        let report = runner::run(&scenario_for(entrant)).expect("scenario runs");
        println!("    (\"{}\", \"{}\"),", entrant.as_str(), report.digest);
    }
}

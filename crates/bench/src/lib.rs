//! Anchor crate for the workspace's criterion-free benchmark harness.
//!
//! The benchmarks themselves live under `benches/` and run on the
//! in-tree [`doma_testkit::bench`] harness; this library exists so the
//! bench targets have a crate to attach to. It intentionally exports
//! nothing of substance.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Marker function proving the bench crate builds; the real entry points
/// are the `benches/` targets.
pub fn bench_crate() {}

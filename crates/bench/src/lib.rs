pub fn bench_crate() {}

//! E13 — the offline-optimal DP's scaling: the optimized O(2ⁿ·n)
//! transitions against the naive O(4ⁿ) reference, across system sizes and
//! schedule lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use doma_algorithms::{NaiveDpOptimal, OfflineOptimal};
use doma_core::{CostModel, ProcSet, Schedule};
use doma_workload::{ScheduleGen, UniformWorkload};

fn schedule_for(n: usize, len: usize) -> Schedule {
    UniformWorkload::new(n, 0.6).expect("valid").generate(len, 42)
}

fn bench(c: &mut Criterion) {
    let model = CostModel::stationary(0.3, 0.9).expect("valid");
    let init = ProcSet::from_iter([0, 1]);

    let mut group = c.benchmark_group("opt_scaling_n");
    for n in [4usize, 6, 8, 10, 12] {
        let schedule = schedule_for(n, 64);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("fast_dp", n), &schedule, |b, s| {
            let opt = OfflineOptimal::new(n, 2, init, model).expect("valid");
            b.iter(|| opt.optimal_cost(s).expect("cost"))
        });
        if n <= 10 {
            group.bench_with_input(BenchmarkId::new("naive_dp", n), &schedule, |b, s| {
                let opt = NaiveDpOptimal::new(n, 2, init, model).expect("valid");
                b.iter(|| opt.optimal_cost(s).expect("cost"))
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("opt_scaling_len");
    for len in [64usize, 256, 1024] {
        let schedule = schedule_for(8, len);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("fast_dp_n8", len), &schedule, |b, s| {
            let opt = OfflineOptimal::new(8, 2, init, model).expect("valid");
            b.iter(|| opt.optimal_cost(s).expect("cost"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

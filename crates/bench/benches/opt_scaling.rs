//! E13 — the offline-optimal DP's scaling: the optimized O(2ⁿ·n)
//! transitions against the naive O(4ⁿ) reference, across system sizes and
//! schedule lengths.

use doma_algorithms::{NaiveDpOptimal, OfflineOptimal};
use doma_core::{CostModel, ProcSet, Schedule};
use doma_testkit::bench::{Bench, BenchId};
use doma_workload::{ScheduleGen, UniformWorkload};

fn schedule_for(n: usize, len: usize) -> Schedule {
    UniformWorkload::new(n, 0.6)
        .expect("valid")
        .generate(len, 42)
}

fn bench(c: &mut Bench) {
    let model = CostModel::stationary(0.3, 0.9).expect("valid");
    let init = ProcSet::from_iter([0, 1]);

    let mut group = c.group("opt_scaling_n");
    for n in [4usize, 6, 8, 10, 12] {
        let schedule = schedule_for(n, 64);
        group.throughput_elements(64);
        group.bench_with_input(BenchId::new("fast_dp", n), &schedule, |b, s| {
            let opt = OfflineOptimal::new(n, 2, init, model).expect("valid");
            b.iter(|| opt.optimal_cost(s).expect("cost"))
        });
        if n <= 10 {
            group.bench_with_input(BenchId::new("naive_dp", n), &schedule, |b, s| {
                let opt = NaiveDpOptimal::new(n, 2, init, model).expect("valid");
                b.iter(|| opt.optimal_cost(s).expect("cost"))
            });
        }
    }
    group.finish();

    let mut group = c.group("opt_scaling_len");
    for len in [64usize, 256, 1024] {
        let schedule = schedule_for(8, len);
        group.throughput_elements(len as u64);
        group.bench_with_input(BenchId::new("fast_dp_n8", len), &schedule, |b, s| {
            let opt = OfflineOptimal::new(8, 2, init, model).expect("valid");
            b.iter(|| opt.optimal_cost(s).expect("cost"))
        });
    }
    group.finish();
}

doma_testkit::bench_main!(bench);

//! E15 — shared-bus contention: read-burst response time under the two
//! media, and how DA's saving-reads collapse repeat-burst contention.

use doma_core::{ProcSet, ProcessorId};
use doma_protocol::ProtocolSim;
use doma_sim::NetworkConfig;
use doma_testkit::bench::{Bench, BenchId};

fn readers(k: usize) -> Vec<ProcessorId> {
    (2..2 + k).map(ProcessorId::new).collect()
}

fn bench(c: &mut Bench) {
    let n = 24;
    let q = ProcSet::from_iter([0, 1]);

    println!("\nE15: burst response time (ticks), SA, point-to-point vs shared bus");
    for k in [1usize, 2, 4, 8, 16] {
        let mut p2p = ProtocolSim::new_sa(n, q).expect("valid");
        let a = p2p.execute_read_burst(&readers(k)).expect("burst");
        let mut bus =
            ProtocolSim::new_sa_with(n, q, NetworkConfig::shared_bus(1, 3)).expect("valid");
        let b = bus.execute_read_burst(&readers(k)).expect("burst");
        println!(
            "  burst {k:>2}: p2p {:>5.1}, bus {:>5.1} (queue wait {})",
            a.mean_response, b.mean_response, b.bus_queue_wait
        );
    }
    println!();

    let mut group = c.group("contention");
    for k in [4usize, 16] {
        group.bench_with_input(BenchId::new("sa_bus_burst", k), &k, |bch, &k| {
            bch.iter(|| {
                let mut bus =
                    ProtocolSim::new_sa_with(n, q, NetworkConfig::shared_bus(1, 3)).expect("valid");
                bus.execute_read_burst(&readers(k)).expect("burst")
            })
        });
        group.bench_with_input(BenchId::new("da_double_burst", k), &k, |bch, &k| {
            bch.iter(|| {
                let mut bus = ProtocolSim::new_da_with(
                    n,
                    ProcSet::from_iter([0]),
                    ProcessorId::new(1),
                    NetworkConfig::shared_bus(1, 3),
                )
                .expect("valid");
                let _ = bus.execute_read_burst(&readers(k)).expect("burst");
                bus.execute_read_burst(&readers(k)).expect("burst")
            })
        });
    }
    group.finish();
}

doma_testkit::bench_main!(bench);

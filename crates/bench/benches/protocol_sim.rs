//! E11 — protocol-simulation throughput: executing schedules as real
//! message exchanges (SA vs DA, plus the mobile deployment), in requests
//! per second.

use doma_core::{ProcSet, ProcessorId};
use doma_protocol::ProtocolSim;
use doma_testkit::bench::{Bench, BenchId};
use doma_workload::{MobileWorkload, ScheduleGen, UniformWorkload};

fn bench(c: &mut Bench) {
    let mut group = c.group("protocol_sim");
    for len in [200usize, 1_000] {
        let schedule = UniformWorkload::new(8, 0.7)
            .expect("valid")
            .generate(len, 5);
        group.throughput_elements(len as u64);
        group.bench_with_input(BenchId::new("sa_cluster8", len), &schedule, |b, s| {
            b.iter(|| {
                let mut sim = ProtocolSim::new_sa(8, ProcSet::from_iter([0, 1])).expect("valid");
                sim.execute(s).expect("run")
            })
        });
        group.bench_with_input(BenchId::new("da_cluster8", len), &schedule, |b, s| {
            b.iter(|| {
                let mut sim = ProtocolSim::new_da(8, ProcSet::from_iter([0]), ProcessorId::new(1))
                    .expect("valid");
                sim.execute(s).expect("run")
            })
        });
    }

    let workload = MobileWorkload::new(3, 4, 0.3, 0.7).expect("valid");
    let schedule = workload.generate(500, 9);
    group.throughput_elements(500);
    group.bench_function("mobile_base_station", |b| {
        b.iter(|| {
            let mut sim = ProtocolSim::mobile(workload.universe()).expect("valid");
            sim.execute(&schedule).expect("run")
        })
    });
    group.finish();

    // Attach the observability snapshot of one instrumented run, so the
    // bench report carries the message/cost breakdown alongside the
    // timings (the timed runs above stay uninstrumented).
    let obs_schedule = UniformWorkload::new(8, 0.7)
        .expect("valid")
        .generate(200, 5);
    let mut sim =
        ProtocolSim::new_da(8, ProcSet::from_iter([0]), ProcessorId::new(1)).expect("valid");
    let obs = sim.attach_obs(64);
    sim.execute(&obs_schedule).expect("run");
    sim.obs_flush();
    c.attach_json("protocol_sim/da_cluster8_obs", obs.snapshot_json());
}

doma_testkit::bench_main!(bench);

//! E2 — Figure 2 (mobile-computing region map): DA dominates everywhere
//! feasible.

use doma_analysis::region::{empirical_region_map, Region, RegionConfig};
use doma_core::Environment;
use doma_testkit::bench::Bench;

fn bench(c: &mut Bench) {
    let config = RegionConfig {
        n: 5,
        step: 0.5,
        max: 2.0,
        schedule_len: 24,
        seeds: 1,
    };
    let map = empirical_region_map(Environment::Mobile, &config).expect("region map");
    println!("\n{}", map.render(false));
    let sa_wins = map
        .points
        .iter()
        .filter(|p| p.measured == Region::SaSuperior)
        .count();
    println!("cells where SA measured superior (paper predicts 0): {sa_wins}\n");

    let mut group = c.group("fig2_region");
    group.sample_size(10);
    group.bench_function("map_4x4_grid", |b| {
        b.iter(|| empirical_region_map(Environment::Mobile, &config).expect("region map"))
    });
    group.finish();
}

doma_testkit::bench_main!(bench);

//! E14 — ablations: what DA's ingredients (saving-reads, the availability
//! core, history-awareness) each buy, on regular vs chaotic workloads.

use doma_algorithms::baselines::{DaNoSave, SlidingWindowConvergent, WriteInvalidateCache};
use doma_algorithms::{DynamicAllocation, StaticAllocation};
use doma_core::{run_online, CostModel, OnlineDom, ProcSet, ProcessorId, Schedule};
use doma_testkit::bench::Bench;
use doma_workload::{ChaoticWorkload, HotspotWorkload, ScheduleGen};

fn cost(algo: &mut dyn OnlineDom, s: &Schedule, m: &CostModel) -> f64 {
    run_online(algo, s).expect("valid").costed.total_cost(m)
}

fn bench(c: &mut Bench) {
    let model = CostModel::stationary(0.25, 1.0).expect("valid");
    let regular = HotspotWorkload::new(5, 40, 0.85)
        .expect("valid")
        .generate(2_000, 7);
    let chaotic = ChaoticWorkload::new(5, 10)
        .expect("valid")
        .generate(2_000, 7);
    let init = ProcSet::from_iter([0, 1]);

    println!("\nE14: total cost, 2000 requests (SC, cc=0.25, cd=1.0)");
    println!("  algorithm             | hotspot | chaotic");
    let f = ProcSet::from_iter([0]);
    let p1 = ProcessorId::new(1);
    let mut rows: Vec<(&str, Box<dyn OnlineDom>)> = vec![
        ("SA", Box::new(StaticAllocation::new(init).expect("valid"))),
        (
            "DA",
            Box::new(DynamicAllocation::new(f, p1).expect("valid")),
        ),
        ("DA-nosave", Box::new(DaNoSave::new(f, p1).expect("valid"))),
        (
            "Convergent",
            Box::new(SlidingWindowConvergent::new(5, 2, init, 40, 20).expect("valid")),
        ),
        (
            "WriteInvalidate t=1",
            Box::new(WriteInvalidateCache::new(init).expect("valid")),
        ),
    ];
    for (name, algo) in &mut rows {
        println!(
            "  {name:<21} | {:>7.0} | {:>7.0}",
            cost(algo.as_mut(), &regular, &model),
            cost(algo.as_mut(), &chaotic, &model)
        );
    }
    println!();

    let mut group = c.group("ablation");
    for (name, algo) in &mut rows {
        group.bench_function(format!("{name}/hotspot"), |b| {
            b.iter(|| cost(algo.as_mut(), &regular, &model))
        });
    }
    group.finish();
}

doma_testkit::bench_main!(bench);

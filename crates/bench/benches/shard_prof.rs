//! Deterministic phase profiler for the sharded driver (ISSUE 9): where
//! does the `sharded/1` − `sequential` wall-clock delta go?
//!
//! The sampled group measures the two endpoints the perf-regression
//! gate (`domactl perf` in verify.sh) watches: the sequential driver
//! and the K=1 sharded driver on the shard-scaling workload shape
//! (64 objects, 5k requests, 8 nodes). The second half decomposes one
//! K=1 sharded run into the driver's named phases using the
//! [`ShardedSim`] phase API — `partition`, `project`, thread `spawn`,
//! per-shard engine `setup` ([`ProtocolSim::new_catalog`]), `execute`,
//! and the report/obs `merge` ([`ShardedSim::merge_outcomes`]) — timing
//! each phase over repeated runs and attaching the medians plus the
//! fraction of the sharded-minus-sequential delta they explain
//! (`attributed_fraction`; the committed `BENCH_prof.json` baseline
//! must attribute ≥ 90%). Setup and execute are timed *inside* a
//! spawned worker, exactly like the real thread path runs them, so the
//! decomposition reconstructs the whole sharded run and the residual is
//! pure measurement noise.

use doma_algorithms::multi::Placement;
use doma_core::ObjectId;
use doma_protocol::{ProtocolConfig, ProtocolSim, ShardOutcome, ShardedSim};
use doma_testkit::bench::{Bench, BenchId};
use doma_workload::{MultiScheduleGen, MultiUniformWorkload};
use std::collections::BTreeMap;
use std::time::Instant;

const N: usize = 8;
const OBJECTS: u64 = 64;
const SEED: u64 = 42;
const READ_FRACTION: f64 = 0.8;
const REQUESTS: usize = 5_000;

/// The shard-scaling catalog: 64 objects alternating SA and DA
/// configurations around an 8-node ring.
fn catalog() -> BTreeMap<ObjectId, ProtocolConfig> {
    (0..OBJECTS)
        .map(|o| {
            let base = (o as usize) % (N - 1);
            let config = if o % 2 == 0 {
                ProtocolConfig::Sa {
                    q: [base, base + 1].into_iter().collect(),
                }
            } else {
                ProtocolConfig::Da {
                    f: [base].into_iter().collect(),
                    p: doma_core::ProcessorId::new(base + 1),
                }
            };
            (ObjectId(o), config)
        })
        .collect()
}

fn median_ns(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn bench(c: &mut Bench) {
    let configs = catalog();
    let schedule = MultiUniformWorkload::new(OBJECTS, N, READ_FRACTION)
        .expect("valid")
        .generate_multi(REQUESTS, SEED);

    // The two perf-gated endpoints, as sampled benchmarks.
    let mut group = c.group("shard_prof");
    group.throughput_elements(REQUESTS as u64);
    group.bench_with_input(BenchId::new("sequential", "64obj"), &schedule, |b, s| {
        b.iter(|| {
            let mut sim = ProtocolSim::new_catalog(N, catalog()).expect("valid");
            sim.execute_multi(s).expect("run")
        })
    });
    group.bench_with_input(BenchId::new("sharded", 1usize), &schedule, |b, s| {
        b.iter(|| {
            ShardedSim::new(N, configs.clone(), 1, Placement::RoundRobin)
                .expect("valid")
                .execute_multi(s)
                .expect("run")
        })
    });
    group.finish();

    // Phase decomposition of the K=1 sharded run, medians over `reps`
    // repeats (fewer under `--test`, where only coverage matters).
    let test_mode = std::env::args().any(|a| a == "--test");
    let reps = if test_mode { 3 } else { 25 };
    let sharded = ShardedSim::new(N, configs.clone(), 1, Placement::RoundRobin).expect("valid");
    let mut samples: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    let push = |map: &mut BTreeMap<&str, Vec<f64>>, phase: &'static str, start: Instant| {
        map.entry(phase)
            .or_default()
            .push(start.elapsed().as_nanos() as f64);
    };

    for _ in 0..reps {
        // Sequential endpoint, timed inline so the attribution below is
        // self-consistent (same box, same moment, same measurement).
        let start = Instant::now();
        let mut sim = ProtocolSim::new_catalog(N, catalog()).expect("valid");
        let expected = sim.execute_multi(&schedule).expect("run");
        push(&mut samples, "sequential", start);

        // The real thread path, for the delta being explained.
        let start = Instant::now();
        sharded.execute_multi(&schedule).expect("run");
        push(&mut samples, "sharded1", start);

        // Phase 1: object → shard assignment.
        let start = Instant::now();
        let assignment = sharded.partition(&schedule).expect("catalog is closed");
        push(&mut samples, "partition", start);

        // Phase 2: per-shard catalog + schedule projection (the copies).
        let start = Instant::now();
        let inputs = sharded.project(&schedule, &assignment);
        push(&mut samples, "project", start);

        // Phases 3 + 4, per shard: engine setup, then execution (holder
        // collection rides in the execute phase). Both run inside a
        // spawned worker thread, timed in-thread, so they are measured
        // under the same conditions as the real `execute_multi` thread
        // path; the scope time not covered by the in-thread stopwatches
        // is the spawn/join overhead, recorded as its own phase.
        let scope_start = Instant::now();
        let timed: Vec<(f64, f64, ShardOutcome)> = std::thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .into_iter()
                .map(|(shard_catalog, shard_schedule)| {
                    scope.spawn(move || {
                        let objects: Vec<ObjectId> = shard_catalog.keys().copied().collect();
                        let start = Instant::now();
                        let mut sim = ProtocolSim::new_catalog(N, shard_catalog).expect("valid");
                        let setup_ns = start.elapsed().as_nanos() as f64;
                        let start = Instant::now();
                        let report = sim.execute_multi(&shard_schedule).expect("run");
                        let holders = objects
                            .into_iter()
                            .map(|o| (o, sim.valid_holders_of(o)))
                            .collect();
                        let execute_ns = start.elapsed().as_nanos() as f64;
                        (
                            setup_ns,
                            execute_ns,
                            ShardOutcome {
                                report,
                                holders,
                                obs: None,
                            },
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let scope_ns = scope_start.elapsed().as_nanos() as f64;
        let setup_ns: f64 = timed.iter().map(|(s, _, _)| s).sum();
        let execute_ns: f64 = timed.iter().map(|(_, e, _)| e).sum();
        let outcomes: Vec<ShardOutcome> = timed.into_iter().map(|(_, _, o)| o).collect();
        samples.entry("setup").or_default().push(setup_ns);
        samples.entry("execute").or_default().push(execute_ns);
        samples
            .entry("spawn")
            .or_default()
            .push((scope_ns - setup_ns - execute_ns).max(0.0));

        // Phase 5: fold the shard outcomes into the final run.
        let start = Instant::now();
        let run = sharded.merge_outcomes(assignment, outcomes);
        push(&mut samples, "merge", start);
        assert_eq!(
            run.report, expected,
            "phase decomposition must preserve sequential parity"
        );
    }

    let med: BTreeMap<&str, f64> = samples
        .iter_mut()
        .map(|(phase, s)| (*phase, median_ns(s)))
        .collect();
    let phases_total: f64 = ["partition", "project", "spawn", "setup", "execute", "merge"]
        .iter()
        .map(|p| med[p])
        .sum();
    let overhead_delta = med["sharded1"] - med["sequential"];
    let explained_delta = phases_total - med["sequential"];
    let attributed_fraction = if overhead_delta > 0.0 {
        explained_delta / overhead_delta
    } else {
        1.0
    };
    c.attach_json(
        "shard_prof/phases",
        format!(
            "{{\"objects\": {OBJECTS}, \"requests\": {REQUESTS}, \"n\": {N}, \
             \"seed\": {SEED}, \"read_fraction\": {READ_FRACTION}, \"shards\": 1, \
             \"reps\": {reps}, \"phase_median_ns\": {{\
             \"partition\": {partition:.0}, \"project\": {project:.0}, \
             \"spawn\": {spawn:.0}, \"setup\": {setup:.0}, \
             \"execute\": {execute:.0}, \"merge\": {merge:.0}}}, \
             \"phases_total_ns\": {phases_total:.0}, \
             \"sequential_median_ns\": {sequential:.0}, \
             \"sharded1_median_ns\": {sharded1:.0}, \
             \"overhead_delta_ns\": {overhead_delta:.0}, \
             \"explained_delta_ns\": {explained_delta:.0}, \
             \"attributed_fraction\": {attributed_fraction:.3}}}",
            partition = med["partition"],
            project = med["project"],
            spawn = med["spawn"],
            setup = med["setup"],
            execute = med["execute"],
            merge = med["merge"],
            sequential = med["sequential"],
            sharded1 = med["sharded1"],
        ),
    );
}

doma_testkit::bench_main!(bench);

//! Core-engine throughput: costing allocation schedules and running the
//! online algorithms, in requests per second.

use doma_algorithms::{DynamicAllocation, StaticAllocation};
use doma_core::{cost_of_schedule, run_online, ProcSet, ProcessorId, Schedule};
use doma_testkit::bench::{Bench, BenchId};
use doma_workload::{ScheduleGen, UniformWorkload, ZipfWorkload};

fn bench(c: &mut Bench) {
    let mut group = c.group("cost_engine");
    for len in [1_000usize, 10_000, 100_000] {
        let schedule: Schedule = UniformWorkload::new(16, 0.7)
            .expect("valid")
            .generate(len, 7);
        group.throughput_elements(len as u64);

        group.bench_with_input(BenchId::new("run_sa", len), &schedule, |b, s| {
            let mut sa = StaticAllocation::new(ProcSet::from_iter([0, 1])).expect("valid");
            b.iter(|| run_online(&mut sa, s).expect("valid run").costed.total)
        });
        group.bench_with_input(BenchId::new("run_da", len), &schedule, |b, s| {
            let mut da = DynamicAllocation::new(ProcSet::from_iter([0]), ProcessorId::new(1))
                .expect("valid");
            b.iter(|| run_online(&mut da, s).expect("valid run").costed.total)
        });
        group.bench_with_input(BenchId::new("recost_schedule", len), &schedule, |b, s| {
            let mut da = DynamicAllocation::new(ProcSet::from_iter([0]), ProcessorId::new(1))
                .expect("valid");
            let alloc = run_online(&mut da, s).expect("valid run").alloc;
            b.iter(|| cost_of_schedule(&alloc, 2).expect("valid").total)
        });
    }

    // Skewed access: the Zipf path (sampling included, as a workload-
    // generation throughput number).
    {
        let len = 10_000usize;
        group.throughput_elements(len as u64);
        group.bench_function(BenchId::new("generate_zipf", len), |b| {
            let gen = ZipfWorkload::new(16, 1.1, 0.7).expect("valid");
            b.iter(|| gen.generate(len, 3))
        });
    }
    group.finish();
}

doma_testkit::bench_main!(bench);

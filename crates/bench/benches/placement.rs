//! E18 — multi-object core placement: load hotspot vs policy, plus
//! catalog throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use doma_algorithms::multi::{run_multi, Placement};
use doma_workload::MultiMobileWorkload;

fn bench(c: &mut Criterion) {
    let workload = MultiMobileWorkload::new(24, 5, 6, 0.3, 0.7).expect("valid");
    let n = workload.universe();
    let schedule = workload.generate_multi(3000, 17);

    println!("\nE18: placement policy vs hotspot load ({} requests, {} users)", schedule.len(), 24);
    for (name, placement) in [
        ("same-core", Placement::SameCore),
        ("round-robin", Placement::RoundRobin),
        ("load-aware", Placement::LoadAware),
    ] {
        let r = run_multi(n, 2, placement, &schedule).expect("run");
        println!(
            "  {name:<11}: max load {:>5}, imbalance {:.2}x, tallies {}",
            r.max_load(),
            r.imbalance(),
            r.total
        );
    }
    println!();

    let mut group = c.benchmark_group("placement");
    group.throughput(Throughput::Elements(schedule.len() as u64));
    for (name, placement) in [
        ("same_core", Placement::SameCore),
        ("round_robin", Placement::RoundRobin),
        ("load_aware", Placement::LoadAware),
    ] {
        group.bench_with_input(BenchmarkId::new("run_multi", name), &placement, |b, &p| {
            b.iter(|| run_multi(n, 2, p, &schedule).expect("run"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E18 — multi-object core placement: load hotspot vs policy, plus
//! catalog throughput.

use doma_algorithms::multi::{run_multi, Placement};
use doma_testkit::bench::{Bench, BenchId};
use doma_workload::MultiMobileWorkload;

fn bench(c: &mut Bench) {
    let workload = MultiMobileWorkload::new(24, 5, 6, 0.3, 0.7).expect("valid");
    let n = workload.universe();
    let schedule = workload.generate_multi(3000, 17);

    println!(
        "\nE18: placement policy vs hotspot load ({} requests, {} users)",
        schedule.len(),
        24
    );
    for (name, placement) in [
        ("same-core", Placement::SameCore),
        ("round-robin", Placement::RoundRobin),
        ("load-aware", Placement::LoadAware),
    ] {
        let r = run_multi(n, 2, placement, &schedule).expect("run");
        println!(
            "  {name:<11}: max load {:>5}, imbalance {:.2}x, tallies {}",
            r.max_load(),
            r.imbalance(),
            r.total
        );
    }
    println!();

    let mut group = c.group("placement");
    group.throughput_elements(schedule.len() as u64);
    for (name, placement) in [
        ("same_core", Placement::SameCore),
        ("round_robin", Placement::RoundRobin),
        ("load_aware", Placement::LoadAware),
    ] {
        group.bench_with_input(BenchId::new("run_multi", name), &placement, |b, &p| {
            b.iter(|| run_multi(n, 2, p, &schedule).expect("run"))
        });
    }
    group.finish();
}

doma_testkit::bench_main!(bench);

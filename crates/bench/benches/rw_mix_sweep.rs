//! E9 — the read/write-mix sweep: prints the SA/DA/Convergent cost curves
//! and the DA-beats-SA crossover, and benchmarks the sweep machinery.

use doma_analysis::sweep::{da_crossover, read_write_mix_sweep, SweepConfig};
use doma_core::CostModel;
use doma_testkit::bench::Bench;

fn bench(c: &mut Bench) {
    let model = CostModel::stationary(0.25, 1.0).expect("valid");
    let config = SweepConfig::default_for(model);
    let points = read_write_mix_sweep(&config).expect("sweep");
    println!("\nE9: mean cost per request vs read fraction (cc=0.25, cd=1.0, SC)");
    println!("  read%  |    SA |    DA | Convergent");
    for p in &points {
        println!(
            "  {:>5.0}% | {:>5.2} | {:>5.2} | {:>10.2}",
            100.0 * p.read_fraction,
            p.sa,
            p.da,
            p.convergent
        );
    }
    match da_crossover(&points) {
        Some(x) => println!("  DA overtakes SA at read fraction ~{x:.2}\n"),
        None => println!("  no crossover in range\n"),
    }

    let mut group = c.group("rw_mix_sweep");
    group.sample_size(10);
    let quick = SweepConfig {
        n: 5,
        len: 120,
        seeds: 3,
        model,
        read_fractions: vec![0.1, 0.3, 0.5, 0.7, 0.9],
    };
    group.bench_function("five_point_sweep", |b| {
        b.iter(|| read_write_mix_sweep(&quick).expect("sweep"))
    });
    group.finish();
}

doma_testkit::bench_main!(bench);

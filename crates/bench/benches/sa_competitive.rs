//! E3 — Theorem 1 / Proposition 1: SA's competitive ratio on the
//! remote-reader adversary (printed series) and the cost of measuring it.

use doma_algorithms::{adversary, OfflineOptimal, StaticAllocation};
use doma_core::{run_online, CostModel, ProcSet, ProcessorId};
use doma_testkit::bench::{Bench, BenchId};

fn bench(c: &mut Bench) {
    let model = CostModel::stationary(0.5, 1.5).expect("valid");
    let bound = model.sa_bound().expect("SC");
    let q = ProcSet::from_iter([0, 1]);
    let opt = OfflineOptimal::new(5, 2, q, model).expect("valid");

    println!("\nE3: SA/OPT ratio vs schedule length (bound = {bound:.2})");
    for len in [8usize, 32, 128, 512] {
        let schedule = adversary::remote_reader(ProcessorId::new(2), len);
        let mut sa = StaticAllocation::new(q).expect("valid");
        let sa_cost = run_online(&mut sa, &schedule)
            .expect("valid run")
            .costed
            .total_cost(&model);
        let opt_cost = opt.optimal_cost(&schedule).expect("valid");
        println!(
            "  len {len:>4}: ratio {:.4} ({:.1}% of bound)",
            sa_cost / opt_cost,
            100.0 * sa_cost / opt_cost / bound
        );
    }
    println!();

    let mut group = c.group("sa_competitive");
    for len in [32usize, 128, 512] {
        let schedule = adversary::remote_reader(ProcessorId::new(2), len);
        group.bench_with_input(BenchId::new("sa_vs_opt", len), &schedule, |b, s| {
            let mut sa = StaticAllocation::new(q).expect("valid");
            b.iter(|| {
                let sa_cost = run_online(&mut sa, s)
                    .expect("valid run")
                    .costed
                    .total_cost(&model);
                let opt_cost = opt.optimal_cost(s).expect("valid");
                sa_cost / opt_cost
            })
        });
    }
    group.finish();
}

doma_testkit::bench_main!(bench);

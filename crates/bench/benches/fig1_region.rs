//! E1 — Figure 1 (stationary-computing region map).
//!
//! `cargo bench -p doma-bench --bench fig1_region` regenerates the
//! measured Figure 1 (printed once before timing) and benchmarks the cost
//! of producing it at smoke and paper resolutions.

use doma_analysis::region::{empirical_region_map, RegionConfig};
use doma_core::Environment;
use doma_testkit::bench::Bench;

fn fast_config() -> RegionConfig {
    RegionConfig {
        n: 5,
        step: 0.5,
        max: 2.0,
        schedule_len: 24,
        seeds: 1,
    }
}

fn bench(c: &mut Bench) {
    // Print the figure once, so `cargo bench` output contains the artifact.
    let map = empirical_region_map(Environment::Stationary, &fast_config()).expect("region map");
    println!("\n{}", map.render(false));
    println!("{}", map.render(true));
    println!(
        "agreement with paper: {:.0}%\n",
        100.0 * map.agreement_with_paper()
    );

    let mut group = c.group("fig1_region");
    group.sample_size(10);
    group.bench_function("map_4x4_grid", |b| {
        b.iter(|| {
            empirical_region_map(Environment::Stationary, &fast_config()).expect("region map")
        })
    });
    group.finish();
}

doma_testkit::bench_main!(bench);

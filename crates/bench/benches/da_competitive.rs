//! E4/E5/E6/E8 — DA's competitive behaviour: battery worst case against
//! the Theorem 2/3 bounds (SC), the Theorem 4 bound (MC), and the
//! exhaustive lower-bound search behind Proposition 2.

use doma_algorithms::search::{exhaustive_worst_case, SearchConfig};
use doma_algorithms::DynamicAllocation;
use doma_analysis::battery::standard_battery;
use doma_analysis::ratio::summarize;
use doma_core::{CostModel, ProcSet, ProcessorId};
use doma_testkit::bench::{Bench, BenchId};

fn da() -> DynamicAllocation {
    DynamicAllocation::new(ProcSet::from_iter([0]), ProcessorId::new(1)).expect("valid")
}

fn bench(c: &mut Bench) {
    // Print the series the tables in EXPERIMENTS.md record.
    println!("\nE4/E5: DA worst battery ratio vs bound");
    for (cc, cd) in [(0.1, 0.5), (0.3, 0.8), (0.2, 1.5), (0.8, 2.0)] {
        let model = CostModel::stationary(cc, cd).expect("valid");
        let battery = standard_battery(5, 48, 2);
        let mut algo = da();
        let s = summarize(&mut algo, &model, 5, &battery).expect("measure");
        println!(
            "  cc={cc:.1} cd={cd:.1}: worst {:.3} vs bound {:.3} (witness {})",
            s.worst,
            model.da_bound().expect("SC"),
            s.worst_witness
        );
    }
    println!("\nE8: DA worst battery ratio in MC vs bound 2+3cc/cd");
    for r in [0.25, 0.5, 1.0] {
        let model = CostModel::mobile(r, 1.0).expect("valid");
        let battery = standard_battery(5, 48, 2);
        let mut algo = da();
        let s = summarize(&mut algo, &model, 5, &battery).expect("measure");
        println!(
            "  cc/cd={r:.2}: worst {:.3} vs bound {:.3}",
            s.worst,
            model.da_bound().expect("cd>0")
        );
    }
    println!();

    let mut group = c.group("da_competitive");
    group.sample_size(10);
    let model = CostModel::stationary(0.3, 0.8).expect("valid");
    let battery = standard_battery(5, 48, 2);
    group.bench_function("battery_summary", |b| {
        let mut algo = da();
        b.iter(|| summarize(&mut algo, &model, 5, &battery).expect("measure"))
    });
    for len in [4usize, 5, 6] {
        group.bench_with_input(BenchId::new("exhaustive_search", len), &len, |b, &len| {
            let small = CostModel::stationary(0.01, 0.01).expect("valid");
            let mut algo = da();
            b.iter(|| {
                exhaustive_worst_case(
                    &mut algo,
                    &SearchConfig {
                        n: 3,
                        t: 2,
                        len,
                        model: small,
                    },
                )
                .expect("search")
            })
        });
    }
    group.finish();
}

doma_testkit::bench_main!(bench);

//! Shard-scaling benchmark: object-sharded parallel execution
//! ([`ShardedSim`]) vs the sequential driver, on multi-object uniform
//! traffic.
//!
//! Two parts:
//!
//! * a sampled group over a moderate workload (64 objects, 5k requests)
//!   at K ∈ {1, 2, 4, 8} shards, plus the sequential driver as the
//!   node-table microbench (its hot path is the per-object slot lookup
//!   inside `DomNode`);
//! * a one-shot run of the acceptance workload (64 objects, 100k
//!   requests) at each K, attached to the JSON report with wall-clock
//!   times, the machine's core count, and the node-table before/after
//!   numbers. Thread scaling is bounded by the cores actually present —
//!   the report records `machine_cores` precisely so a single-core CI
//!   box's flat curve isn't mistaken for a sharding defect.

use doma_algorithms::multi::Placement;
use doma_core::ObjectId;
use doma_protocol::{ProtocolConfig, ProtocolSim, ShardedSim};
use doma_testkit::bench::{Bench, BenchId};
use doma_workload::{MultiScheduleGen, MultiUniformWorkload};
use std::collections::BTreeMap;
use std::time::Instant;

const N: usize = 8;
const OBJECTS: u64 = 64;
const SEED: u64 = 42;
const READ_FRACTION: f64 = 0.8;

/// The experiment catalog: a contiguous 64-object catalog alternating
/// SA and DA configurations around an 8-node ring.
fn catalog() -> BTreeMap<ObjectId, ProtocolConfig> {
    (0..OBJECTS)
        .map(|o| {
            let base = (o as usize) % (N - 1);
            let config = if o % 2 == 0 {
                ProtocolConfig::Sa {
                    q: [base, base + 1].into_iter().collect(),
                }
            } else {
                ProtocolConfig::Da {
                    f: [base].into_iter().collect(),
                    p: doma_core::ProcessorId::new(base + 1),
                }
            };
            (ObjectId(o), config)
        })
        .collect()
}

fn bench(c: &mut Bench) {
    let configs = catalog();
    let gen = MultiUniformWorkload::new(OBJECTS, N, READ_FRACTION).expect("valid");
    let schedule = gen.generate_multi(5_000, SEED);

    let mut group = c.group("shard_scaling");
    group.throughput_elements(5_000);
    group.bench_with_input(BenchId::new("sequential", "64obj"), &schedule, |b, s| {
        b.iter(|| {
            let mut sim = ProtocolSim::new_catalog(N, catalog()).expect("valid");
            sim.execute_multi(s).expect("run")
        })
    });
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchId::new("sharded", shards), &schedule, |b, s| {
            b.iter(|| {
                ShardedSim::new(N, configs.clone(), shards, Placement::RoundRobin)
                    .expect("valid")
                    .execute_multi(s)
                    .expect("run")
            })
        });
    }
    group.finish();

    // One-shot acceptance workload: 64 objects × 100k requests per K.
    // Wall-clock once per shard count (the sampled group above carries
    // the statistics; this records the headline experiment).
    let big = gen.generate_multi(100_000, SEED);
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut runs = String::from("[");
    for (i, shards) in [1usize, 2, 4, 8].into_iter().enumerate() {
        let sharded =
            ShardedSim::new(N, configs.clone(), shards, Placement::RoundRobin).expect("valid");
        let start = Instant::now();
        let run = sharded.execute_multi(&big).expect("run");
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        if i > 0 {
            runs.push_str(", ");
        }
        runs.push_str(&format!(
            "{{\"shards\": {shards}, \"wall_ms\": {wall_ms:.1}, \
             \"requests_per_sec\": {:.0}, \"reads_completed\": {}}}",
            100_000.0 / (wall_ms * 1e-3),
            run.report.reads_completed
        ));
    }
    runs.push(']');
    c.attach_json(
        "shard_scaling/acceptance_64obj_100k",
        format!(
            "{{\"objects\": {OBJECTS}, \"requests\": 100000, \"n\": {N}, \
             \"read_fraction\": {READ_FRACTION}, \"seed\": {SEED}, \
             \"placement\": \"round-robin\", \"machine_cores\": {cores}, \
             \"runs\": {runs}}}"
        ),
    );

    // Node-table refactor record: medians of this same sampled group,
    // measured on the same box immediately before `DomNode`'s per-object
    // BTreeMaps were replaced with dense slot-indexed tables. The "after"
    // side is the live `shard_scaling/*` entries of this report.
    c.attach_json(
        "shard_scaling/node_table_before",
        "{\"tables\": \"BTreeMap<ObjectId, _>\", \
          \"median_ns\": {\"sequential/64obj\": 2953933, \"sharded/1\": 4059588, \
          \"sharded/2\": 3439737, \"sharded/4\": 3349866, \"sharded/8\": 3421457}}"
            .to_string(),
    );
}

doma_testkit::bench_main!(bench);

//! The loopback parity wall: the §6.2 append-only scenario over real
//! Unix-domain sockets must reproduce the deterministic sim twin exactly
//! — same allocation-scheme trajectory, same cost totals, same protocol
//! obs metrics — across cluster sizes and pinned seeds.

use doma_analysis::cluster::run_twin;
use doma_net::TransportKind;

/// Runs the twin harness, treating a socket-less sandbox as a skip (the
/// verify wall prints the same notice) and anything else as a failure.
fn twin_or_skip(
    scenario: &doma_scenario::Scenario,
    kind: TransportKind,
    nodes: Option<usize>,
) -> Option<doma_analysis::cluster::TwinReport> {
    match run_twin(scenario, kind, nodes) {
        Ok(report) => Some(report),
        Err(e) if e.starts_with("sockets unavailable") => {
            eprintln!("skipping cluster twin test: {e}");
            None
        }
        Err(e) => panic!("twin run failed: {e}"),
    }
}

/// K ∈ {2, 3, 5} nodes over UDS running the §6.2 append-only scenario
/// produce the same trajectory and obs cost totals as the sim twin, for
/// three pinned seeds each.
#[test]
fn append_only_6_2_matches_sim_across_k_and_seeds() {
    let base = doma_scenario::builtin::load("append-only-6-2").unwrap();
    for k in [2usize, 3, 5] {
        for seed in [7u64, 11, 1994] {
            let mut scenario = base.clone();
            scenario.seed = seed;
            let Some(report) = twin_or_skip(&scenario, TransportKind::Uds, Some(k)) else {
                return;
            };
            assert!(
                report.matches(),
                "k={k} seed={seed} diverged: {:?}",
                report.diffs
            );
            assert_eq!(report.n, k);
            assert_eq!(report.requests, 40);
            assert_eq!(report.sim_trajectory.len(), 40);
            // The twin JSONs are byte-identical, so `domactl obs diff`
            // on the exported snapshots reports a clean diff too.
            assert_eq!(report.sim_obs_json, report.net_obs_json);
            let d = doma_analysis::obsdiff::diff_texts(
                &report.sim_obs_json,
                &report.net_obs_json,
                None,
            )
            .unwrap();
            assert!(d.is_clean());
        }
    }
}

/// An adaptive entrant (driver-side oracle, plan-carrying requests)
/// reaches parity over TCP loopback as well.
#[test]
fn adaptive_entrant_matches_sim_over_tcp() {
    let scenario = doma_scenario::builtin::load("diurnal-drift").unwrap();
    let Some(report) = twin_or_skip(&scenario, TransportKind::Tcp, None) else {
        return;
    };
    assert!(report.matches(), "diverged: {:?}", report.diffs);
    assert!(report.net_cost.control + report.net_cost.data > 0);
}

/// Fault-bearing scenarios are rejected up front: the real runtime is
/// failure-free, and a silent no-fault replay would diff against the
/// wrong oracle.
#[test]
fn fault_scenarios_are_rejected() {
    let scenario = doma_scenario::builtin::load("jittery-uplink").unwrap();
    assert!(!scenario.faults.is_empty(), "fixture lost its faults");
    let err = run_twin(&scenario, TransportKind::Uds, None).unwrap_err();
    assert!(err.contains("failure-free"), "unexpected error: {err}");
}

/// `--nodes` overrides resize both twins coherently: parity holds at a
/// size the scenario author never pinned.
#[test]
fn nodes_override_resizes_both_twins() {
    let scenario = doma_scenario::builtin::load("trace-replay").unwrap();
    let Some(report) = twin_or_skip(&scenario, TransportKind::Uds, Some(8)) else {
        return;
    };
    assert_eq!(report.n, 8);
    assert!(report.matches(), "diverged: {:?}", report.diffs);
}

//! The `(cd, cc)` plane partitions of Figures 1 and 2.
//!
//! The paper's analytic boundaries (stationary computing):
//!
//! * `cc > cd` — **Cannot be true**: a data message carries the control
//!   fields plus the object, so it cannot be cheaper.
//! * `cd > 1` — **DA superior**: SA's tight factor `1 + cc + cd` exceeds
//!   DA's `2 + cc` bound (Theorem 3 vs Proposition 1).
//! * `cc + cd < 0.5` — **SA superior**: SA's factor `1 + cc + cd < 1.5`
//!   beats DA's 1.5 lower bound (Theorem 1 vs Proposition 2).
//! * otherwise — **Unknown** (the gap between DA's bounds).
//!
//! In mobile computing (Figure 2) DA is superior on the entire feasible
//! half-plane, because SA is not competitive at all (Proposition 3).
//!
//! [`empirical_region_map`] re-derives the winner at each grid point by
//! *measurement*: worst-case ratio of SA and of DA over the standard
//! battery against the exact offline optimum.

use crate::battery::{standard_battery, NamedSchedule};
use crate::ratio::{standard_algorithms, summarize};
use doma_core::{CostModel, Environment, Result};
use std::fmt;

/// A cell of the region map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// `cc > cd` — excluded by the message-cost argument.
    CannotBeTrue,
    /// DA provably (or measurably) beats SA.
    DaSuperior,
    /// SA provably (or measurably) beats DA.
    SaSuperior,
    /// The paper's open gap.
    Unknown,
}

impl Region {
    /// The single-character glyph used in the ASCII map.
    pub fn glyph(self) -> char {
        match self {
            Region::CannotBeTrue => 'x',
            Region::DaSuperior => 'D',
            Region::SaSuperior => 'S',
            Region::Unknown => '?',
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Region::CannotBeTrue => "cannot-be-true",
            Region::DaSuperior => "DA-superior",
            Region::SaSuperior => "SA-superior",
            Region::Unknown => "unknown",
        };
        write!(f, "{s}")
    }
}

/// The paper's analytic classification of a `(cc, cd)` point.
pub fn analytic_region(env: Environment, cc: f64, cd: f64) -> Region {
    if cc > cd {
        return Region::CannotBeTrue;
    }
    match env {
        Environment::Stationary => {
            if cd > 1.0 {
                Region::DaSuperior
            } else if cc + cd < 0.5 {
                Region::SaSuperior
            } else {
                Region::Unknown
            }
        }
        Environment::Mobile => Region::DaSuperior,
    }
}

/// One measured grid point.
#[derive(Debug, Clone)]
pub struct RegionPoint {
    /// Control-message cost.
    pub cc: f64,
    /// Data-message cost.
    pub cd: f64,
    /// SA's worst measured ratio over the battery.
    pub sa_worst: f64,
    /// DA's worst measured ratio over the battery.
    pub da_worst: f64,
    /// The measured winner (lower worst-case ratio).
    pub measured: Region,
    /// The paper's analytic classification.
    pub analytic: Region,
}

/// A measured region map over a `(cd, cc)` grid.
#[derive(Debug, Clone)]
pub struct RegionMap {
    /// Which cost model family the map is for.
    pub env: Environment,
    /// Distinct `cd` values, ascending (columns).
    pub cd_values: Vec<f64>,
    /// Distinct `cc` values, ascending (rows).
    pub cc_values: Vec<f64>,
    /// Row-major `cc × cd` grid of measured points.
    pub points: Vec<RegionPoint>,
}

/// Configuration of the measured map.
#[derive(Debug, Clone)]
pub struct RegionConfig {
    /// System size (≥ 4; the standard battery's conventions).
    pub n: usize,
    /// Grid step on both axes.
    pub step: f64,
    /// Axis maximum (the paper's figures show `(0, 2]`).
    pub max: f64,
    /// Battery schedule length.
    pub schedule_len: usize,
    /// Battery random-seed count.
    pub seeds: u64,
}

impl Default for RegionConfig {
    fn default() -> Self {
        RegionConfig {
            n: 5,
            step: 0.25,
            max: 2.0,
            schedule_len: 40,
            seeds: 2,
        }
    }
}

/// Measures the winner at each feasible grid point (the `cc > cd` half is
/// marked [`Region::CannotBeTrue`] without measurement — those models are
/// unconstructible by [`CostModel`]'s invariant).
pub fn empirical_region_map(env: Environment, config: &RegionConfig) -> Result<RegionMap> {
    let battery = standard_battery(config.n, config.schedule_len, config.seeds);
    let steps = (config.max / config.step).round() as usize;
    let values: Vec<f64> = (1..=steps).map(|i| i as f64 * config.step).collect();
    let mut points = Vec::with_capacity(values.len() * values.len());
    for &cc in &values {
        for &cd in &values {
            points.push(measure_point(env, cc, cd, config.n, &battery)?);
        }
    }
    Ok(RegionMap {
        env,
        cd_values: values.clone(),
        cc_values: values,
        points,
    })
}

fn measure_point(
    env: Environment,
    cc: f64,
    cd: f64,
    n: usize,
    battery: &[NamedSchedule],
) -> Result<RegionPoint> {
    let analytic = analytic_region(env, cc, cd);
    if analytic == Region::CannotBeTrue {
        return Ok(RegionPoint {
            cc,
            cd,
            sa_worst: f64::NAN,
            da_worst: f64::NAN,
            measured: Region::CannotBeTrue,
            analytic,
        });
    }
    let model = match env {
        Environment::Stationary => CostModel::stationary(cc, cd),
        Environment::Mobile => CostModel::mobile(cc, cd),
    }
    .expect("cc <= cd on the feasible half");
    let (mut sa, mut da) = standard_algorithms();
    let sa_summary = summarize(&mut sa, &model, n, battery)?;
    let da_summary = summarize(&mut da, &model, n, battery)?;
    // Winner by worst-case ratio, with a 2% dead-band reported as Unknown.
    let measured = if !sa_summary.worst.is_finite() && !da_summary.worst.is_finite() {
        Region::Unknown
    } else if sa_summary.worst > 1.02 * da_summary.worst {
        Region::DaSuperior
    } else if da_summary.worst > 1.02 * sa_summary.worst {
        Region::SaSuperior
    } else {
        Region::Unknown
    };
    Ok(RegionPoint {
        cc,
        cd,
        sa_worst: sa_summary.worst,
        da_worst: da_summary.worst,
        measured,
        analytic,
    })
}

impl RegionMap {
    /// The point at `(cc_index, cd_index)`.
    pub fn point(&self, cc_index: usize, cd_index: usize) -> &RegionPoint {
        &self.points[cc_index * self.cd_values.len() + cd_index]
    }

    /// Renders the map like the paper's figures: `cc` on the vertical
    /// axis (top = high), `cd` on the horizontal, one glyph per cell
    /// (`D` = DA superior, `S` = SA superior, `?` = unknown, `x` = cannot
    /// be true). `analytic = true` renders the paper's boundaries instead
    /// of the measured winners.
    pub fn render(&self, analytic: bool) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} region map ({}): cc vertical, cd horizontal\n",
            if analytic { "Analytic" } else { "Measured" },
            self.env
        ));
        for (i, &cc) in self.cc_values.iter().enumerate().rev() {
            out.push_str(&format!("cc={cc:4.2} |"));
            for j in 0..self.cd_values.len() {
                let p = self.point(i, j);
                let r = if analytic { p.analytic } else { p.measured };
                out.push(' ');
                out.push(r.glyph());
            }
            out.push('\n');
        }
        out.push_str("        +");
        for _ in &self.cd_values {
            out.push_str("--");
        }
        out.push('\n');
        out.push_str("          ");
        out.push_str(
            &self
                .cd_values
                .iter()
                .map(|v| format!("{v:.1}"))
                .collect::<Vec<_>>()
                .join(" "),
        );
        out.push('\n');
        out
    }

    /// Fraction of feasible (not cannot-be-true) points where the measured
    /// winner is consistent with the paper: in an analytic `D` or `S`
    /// region the measurement must not name the *other* algorithm
    /// (measured `Unknown` counts as consistent — a finite battery can
    /// fail to separate them); in the analytic `Unknown` region everything
    /// is consistent.
    pub fn agreement_with_paper(&self) -> f64 {
        let mut feasible = 0usize;
        let mut consistent = 0usize;
        for p in &self.points {
            if p.analytic == Region::CannotBeTrue {
                continue;
            }
            feasible += 1;
            let ok = match p.analytic {
                Region::DaSuperior => p.measured != Region::SaSuperior,
                Region::SaSuperior => p.measured != Region::DaSuperior,
                _ => true,
            };
            if ok {
                consistent += 1;
            }
        }
        consistent as f64 / feasible.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_boundaries_match_figure_1() {
        let sc = Environment::Stationary;
        assert_eq!(analytic_region(sc, 1.5, 1.0), Region::CannotBeTrue);
        assert_eq!(analytic_region(sc, 0.5, 1.5), Region::DaSuperior);
        assert_eq!(analytic_region(sc, 0.1, 0.2), Region::SaSuperior);
        assert_eq!(analytic_region(sc, 0.3, 0.9), Region::Unknown);
        // Boundary cases: cd exactly 1 and cc + cd exactly 0.5 are Unknown.
        assert_eq!(analytic_region(sc, 0.25, 1.0), Region::Unknown);
        assert_eq!(analytic_region(sc, 0.25, 0.25), Region::Unknown);
    }

    #[test]
    fn analytic_boundaries_match_figure_2() {
        let mc = Environment::Mobile;
        assert_eq!(analytic_region(mc, 1.5, 1.0), Region::CannotBeTrue);
        assert_eq!(analytic_region(mc, 0.1, 0.2), Region::DaSuperior);
        assert_eq!(analytic_region(mc, 1.0, 2.0), Region::DaSuperior);
    }

    #[test]
    fn small_measured_map_is_consistent_with_paper() {
        let config = RegionConfig {
            n: 5,
            step: 0.5,
            max: 2.0,
            schedule_len: 24,
            seeds: 1,
        };
        let map = empirical_region_map(Environment::Stationary, &config).unwrap();
        assert_eq!(map.points.len(), 16);
        assert!(
            map.agreement_with_paper() >= 0.9,
            "agreement {} too low",
            map.agreement_with_paper()
        );
        let art = map.render(false);
        assert!(art.contains("cc=2.00"));
        let art_analytic = map.render(true);
        assert!(art_analytic.contains('x'), "{art_analytic}");
    }

    #[test]
    fn mobile_map_names_da_everywhere_feasible() {
        let config = RegionConfig {
            n: 5,
            step: 1.0,
            max: 2.0,
            schedule_len: 24,
            seeds: 1,
        };
        let map = empirical_region_map(Environment::Mobile, &config).unwrap();
        for p in &map.points {
            if p.analytic != Region::CannotBeTrue {
                assert_ne!(
                    p.measured,
                    Region::SaSuperior,
                    "SA cannot win in MC at cc={}, cd={}",
                    p.cc,
                    p.cd
                );
            }
        }
    }

    #[test]
    fn glyphs_and_display() {
        assert_eq!(Region::DaSuperior.glyph(), 'D');
        assert_eq!(Region::SaSuperior.to_string(), "SA-superior");
    }
}

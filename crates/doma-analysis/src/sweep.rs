//! Average-case parameter sweeps (experiment E9), parallelized with
//! `std::thread::scope`.

use doma_algorithms::baselines::SlidingWindowConvergent;
use doma_core::{run_online, CostModel, DomAlgorithm, OnlineDom, Result};
use doma_workload::{ScheduleGen, UniformWorkload};

/// Mean cost-per-request of SA, DA and the convergent baseline at one
/// read-fraction point, averaged over several seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The read fraction of the workload.
    pub read_fraction: f64,
    /// SA mean cost per request.
    pub sa: f64,
    /// DA mean cost per request.
    pub da: f64,
    /// Convergent-baseline mean cost per request.
    pub convergent: f64,
}

/// Configuration of the read/write-mix sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// System size.
    pub n: usize,
    /// Schedule length per sample.
    pub len: usize,
    /// Seeds averaged per point.
    pub seeds: u64,
    /// The cost model.
    pub model: CostModel,
    /// Read fractions to sweep.
    pub read_fractions: Vec<f64>,
}

impl SweepConfig {
    /// The default E9 sweep: 5 processors, 200-request schedules,
    /// 8 seeds, read fractions 0.05 .. 0.95.
    pub fn default_for(model: CostModel) -> Self {
        SweepConfig {
            n: 5,
            len: 200,
            seeds: 8,
            model,
            read_fractions: (1..20).map(|i| i as f64 * 0.05).collect(),
        }
    }
}

fn mean_cost_per_request<A: OnlineDom + ?Sized>(
    algo: &mut A,
    model: &CostModel,
    gen: &UniformWorkload,
    len: usize,
    seeds: u64,
) -> Result<f64> {
    let mut total = 0.0;
    for seed in 0..seeds {
        let schedule = gen.generate(len, seed);
        total += run_online(algo, &schedule)?.costed.total_cost(model);
    }
    Ok(total / (seeds as f64 * len as f64))
}

fn sweep_point(config: &SweepConfig, read_fraction: f64) -> Result<SweepPoint> {
    let gen = UniformWorkload::new(config.n, read_fraction)?;
    let (mut sa, mut da) = crate::ratio::standard_algorithms();
    let init = sa.initial_scheme();
    let mut conv = SlidingWindowConvergent::new(config.n, 2, init, 40, 20)?;
    Ok(SweepPoint {
        read_fraction,
        sa: mean_cost_per_request(&mut sa, &config.model, &gen, config.len, config.seeds)?,
        da: mean_cost_per_request(&mut da, &config.model, &gen, config.len, config.seeds)?,
        convergent: mean_cost_per_request(
            &mut conv,
            &config.model,
            &gen,
            config.len,
            config.seeds,
        )?,
    })
}

/// Runs the sweep, one thread per point (`std::thread::scope` — the
/// points are independent, and the scope joins and propagates panics).
pub fn read_write_mix_sweep(config: &SweepConfig) -> Result<Vec<SweepPoint>> {
    let mut results: Vec<Option<Result<SweepPoint>>> =
        (0..config.read_fractions.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot, &rf) in results.iter_mut().zip(&config.read_fractions) {
            scope.spawn(move || {
                *slot = Some(sweep_point(config, rf));
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// The read fraction above which DA's mean cost drops below SA's, if the
/// sweep crosses (linear scan; the curves are monotone enough in practice).
pub fn da_crossover(points: &[SweepPoint]) -> Option<f64> {
    points.iter().find(|p| p.da < p.sa).map(|p| p.read_fraction)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> SweepConfig {
        SweepConfig {
            n: 5,
            len: 120,
            seeds: 3,
            model: CostModel::stationary(0.25, 1.0).unwrap(),
            read_fractions: vec![0.1, 0.5, 0.9],
        }
    }

    #[test]
    fn sweep_produces_one_point_per_fraction() {
        let points = read_write_mix_sweep(&quick_config()).unwrap();
        assert_eq!(points.len(), 3);
        assert!((points[0].read_fraction - 0.1).abs() < 1e-12);
        for p in &points {
            assert!(p.sa > 0.0 && p.da > 0.0 && p.convergent > 0.0);
        }
    }

    #[test]
    fn da_wins_read_heavy_uniform_workloads() {
        // With reads spread over 5 processors and Q = {0,1}, most reads
        // are remote for SA; DA's saving-reads amortize them.
        let points = read_write_mix_sweep(&quick_config()).unwrap();
        let read_heavy = points.last().unwrap();
        assert!(
            read_heavy.da < read_heavy.sa,
            "DA ({}) should beat SA ({}) at 90% reads",
            read_heavy.da,
            read_heavy.sa
        );
    }

    #[test]
    fn crossover_detection() {
        let pts = vec![
            SweepPoint {
                read_fraction: 0.1,
                sa: 1.0,
                da: 2.0,
                convergent: 1.5,
            },
            SweepPoint {
                read_fraction: 0.5,
                sa: 1.0,
                da: 0.9,
                convergent: 1.5,
            },
        ];
        assert_eq!(da_crossover(&pts), Some(0.5));
        assert_eq!(da_crossover(&pts[..1]), None);
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = read_write_mix_sweep(&quick_config()).unwrap();
        let b = read_write_mix_sweep(&quick_config()).unwrap();
        assert_eq!(a, b);
    }
}

//! `domactl` — command-line front end for the library.
//!
//! ```text
//! domactl cost     --schedule "r1 r1 w2 r2" [--algo sa|da|opt|all]
//!                  [--model sc|mc] [--cc 0.25] [--cd 1.0] [--t 2]
//!                  [--verbose]
//! domactl stats    --schedule "r1 r1 w2 r2"
//! domactl simulate --schedule "..." [--algo sa|da] [--n 6]
//! domactl obs      --schedule "..." [--algo sa|da] [--n 6]
//!                  [--format json|table] [--events 256]
//! domactl generate --workload uniform|zipf|hotspot|chaotic|mobile|append
//!                  [--n 6] [--len 50] [--seed 0] [--read-fraction 0.7]
//! domactl shard    [--objects 16] [--requests 10000] [--shards 1,2,4,8]
//!                  [--n 8] [--t 2] [--placement same-core|round-robin|load-aware]
//!                  [--seed 0] [--read-fraction 0.8]
//! domactl tournament [--n 6] [--len 40] [--seed 7] [--out BENCH_tournament.json]
//!                  [--format table|json]
//! domactl scenario <name|path|all|list> [--format table|json]
//!                  [--diff <baseline.json>] [--transport sim|tcp|uds]
//! domactl cluster  <scenario|workload> --nodes N [--transport tcp|uds]
//!                  [--entrant sa|da|...] [--len 40] [--seed 7]
//!                  [--read-fraction 0.7]
//! domactl trace    <scenario|workload> [--format table|chrome] [--top 10]
//!                  [--events N] [--algo sa|da] [--n 6] [--len 50] [--seed 0]
//!                  [--read-fraction 0.7]
//! domactl obs diff <a.json> <b.json> [--scenario NAME]
//! domactl perf     <current.json> [--baseline BENCH_prof.json]
//!                  [--threshold 0.25]
//! domactl lint     [--root PATH] [--format table|json] [--rule <id>]
//! ```
//!
//! Schedules use the paper's notation: whitespace-separated `r<i>` / `w<i>`
//! tokens. `--file <path>` reads the schedule from a file instead.

use doma_algorithms::multi::Placement;
use doma_algorithms::{DynamicAllocation, OfflineOptimal, StaticAllocation};
use doma_core::{
    run_offline, run_online, schedule_stats, CostModel, ObjectId, ProcSet, ProcessorId, RunOutcome,
    Schedule,
};
use doma_protocol::{ProtocolConfig, ProtocolSim, ShardedSim};
use doma_workload::{
    AppendOnlyWorkload, ChaoticWorkload, HotspotWorkload, MobileWorkload, MultiScheduleGen,
    MultiUniformWorkload, ScheduleGen, UniformWorkload, ZipfWorkload,
};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

/// Parsed command-line options: positional command + `--key value` flags
/// (`--verbose` is a bare flag).
#[derive(Debug, Default)]
struct Opts {
    command: String,
    /// The first positional operand after the command (the scenario
    /// name or path for `domactl scenario …`, the trace target, the
    /// `diff` subcommand of `obs`, …).
    target: Option<String>,
    /// Further positional operands, for the commands that take them
    /// (`obs diff <a> <b>`).
    extra: Vec<String>,
    flags: BTreeMap<String, String>,
    verbose: bool,
}

/// How many positional operands a command accepts after its name.
fn positional_arity(command: &str) -> usize {
    match command {
        "scenario" | "trace" | "perf" | "cluster" => 1,
        "obs" => 3, // bare `obs`, or `obs diff <a> <b>`
        _ => 0,
    }
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts::default();
    let mut positionals: Vec<String> = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if arg == "--verbose" {
            opts.verbose = true;
        } else if let Some(key) = arg.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            opts.flags.insert(key.to_string(), value.clone());
        } else if opts.command.is_empty() {
            opts.command = arg.clone();
        } else {
            positionals.push(arg.clone());
        }
    }
    if opts.command.is_empty() {
        return Err(
            "missing command (cost | stats | simulate | obs | generate | shard | tournament | scenario | cluster | trace | perf | lint)"
                .to_string(),
        );
    }
    let arity = positional_arity(&opts.command);
    if positionals.len() > arity {
        return Err(format!("unexpected argument '{}'", positionals[arity]));
    }
    let mut it = positionals.into_iter();
    opts.target = it.next();
    opts.extra = it.collect();
    Ok(opts)
}

impl Opts {
    fn get(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number '{v}'")),
        }
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad integer '{v}'")),
        }
    }

    fn schedule(&self) -> Result<Schedule, String> {
        let text = if let Some(path) = self.flags.get("file") {
            std::fs::read_to_string(path).map_err(|e| format!("--file {path}: {e}"))?
        } else if let Some(s) = self.flags.get("schedule") {
            s.clone()
        } else {
            return Err("need --schedule \"r1 w2 ...\" or --file <path>".to_string());
        };
        text.parse::<Schedule>().map_err(|e| e.to_string())
    }

    fn model(&self) -> Result<CostModel, String> {
        let cc = self.get_f64("cc", 0.25)?;
        let cd = self.get_f64("cd", 1.0)?;
        match self.get("model", "sc").as_str() {
            "sc" => CostModel::stationary(cc, cd).map_err(|e| e.to_string()),
            "mc" => CostModel::mobile(cc, cd).map_err(|e| e.to_string()),
            other => Err(format!("--model must be sc or mc, got '{other}'")),
        }
    }
}

fn universe_for(schedule: &Schedule, opts: &Opts) -> Result<usize, String> {
    let min = schedule.min_processors().max(3);
    let n = opts.get_usize("n", min)?;
    if n < min {
        return Err(format!(
            "--n {n} too small; the schedule uses {min} processors"
        ));
    }
    Ok(n)
}

fn print_outcome(name: &str, outcome: &RunOutcome, model: &CostModel, verbose: bool) {
    let t = &outcome.costed.total;
    println!(
        "{name:>4}: cost {:.3}  ({} control, {} data, {} I/O)  final scheme {}",
        outcome.costed.total_cost(model),
        t.control,
        t.data,
        t.io,
        outcome.costed.final_scheme
    );
    if verbose {
        for pr in &outcome.costed.per_request {
            println!(
                "        {}  scheme {}  cost {}",
                pr.step, pr.scheme, pr.cost
            );
        }
    }
}

fn cmd_cost(opts: &Opts) -> Result<(), String> {
    let schedule = opts.schedule()?;
    let model = opts.model()?;
    let t = opts.get_usize("t", 2)?;
    let n = universe_for(&schedule, opts)?;
    if t < 2 || t >= n {
        return Err(format!("need 2 <= t < n (t={t}, n={n})"));
    }
    let algo = opts.get("algo", "all");
    let q: ProcSet = (0..t).collect();
    let f: ProcSet = (0..t - 1).collect();
    let p = ProcessorId::new(t - 1);
    println!(
        "schedule: {schedule}\nmodel: {} cc={} cd={} cio={}  t={t}  n={n}  initial scheme {q}",
        model.environment(),
        model.cc(),
        model.cd(),
        model.cio()
    );
    let err = |e: doma_core::DomaError| e.to_string();
    if algo == "sa" || algo == "all" {
        let mut sa = StaticAllocation::new(q).map_err(err)?;
        print_outcome(
            "SA",
            &run_online(&mut sa, &schedule).map_err(err)?,
            &model,
            opts.verbose,
        );
    }
    if algo == "da" || algo == "all" {
        let mut da = DynamicAllocation::new(f, p).map_err(err)?;
        print_outcome(
            "DA",
            &run_online(&mut da, &schedule).map_err(err)?,
            &model,
            opts.verbose,
        );
    }
    if algo == "opt" || algo == "all" {
        let opt = OfflineOptimal::new(n, t, q, model).map_err(err)?;
        print_outcome(
            "OPT",
            &run_offline(&opt, &schedule).map_err(err)?,
            &model,
            opts.verbose,
        );
    }
    if !["sa", "da", "opt", "all"].contains(&algo.as_str()) {
        return Err(format!("--algo must be sa, da, opt or all, got '{algo}'"));
    }
    Ok(())
}

fn cmd_stats(opts: &Opts) -> Result<(), String> {
    let schedule = opts.schedule()?;
    let stats = schedule_stats(&schedule);
    println!(
        "{} requests ({} reads / {} writes), read fraction {:.2}",
        schedule.len(),
        schedule.read_count(),
        schedule.write_count(),
        stats.read_fraction
    );
    println!(
        "mean read-run length {:.2}; mean distinct readers per write interval {:.2}",
        stats.mean_read_run(),
        stats.mean_readers_per_interval
    );
    println!("active processors: {}", stats.active_processors());
    for (i, a) in stats.per_processor.iter().enumerate() {
        if a.total() > 0 {
            println!("  P{i}: {} reads, {} writes", a.reads, a.writes);
        }
    }
    Ok(())
}

fn cmd_simulate(opts: &Opts) -> Result<(), String> {
    let schedule = opts.schedule()?;
    let n = universe_for(&schedule, opts)?;
    let algo = opts.get("algo", "da");
    let err = |e: doma_core::DomaError| e.to_string();
    let mut sim = match algo.as_str() {
        "sa" => ProtocolSim::new_sa(n, ProcSet::from_iter([0usize, 1])).map_err(err)?,
        "da" => ProtocolSim::new_da(n, ProcSet::from_iter([0usize]), ProcessorId::new(1))
            .map_err(err)?,
        other => return Err(format!("--algo must be sa or da, got '{other}'")),
    };
    let report = sim.execute(&schedule).map_err(err)?;
    println!(
        "{} protocol on {n} simulated nodes: {} control msgs, {} data msgs, {} I/Os",
        algo.to_uppercase(),
        report.cost.control,
        report.cost.data,
        report.cost.io
    );
    println!(
        "final replica set {}; {} reads completed, mean latency {:.1} ticks",
        report.final_holders, report.reads_completed, report.mean_read_latency
    );
    Ok(())
}

/// Builds the protocol sim the way `simulate` does, but with the
/// observability bundle attached, executes the schedule, and prints the
/// snapshot — stable JSON by default (byte-identical across runs of the
/// same inputs), or the aligned metric table plus event log with
/// `--format table`.
fn cmd_obs(opts: &Opts) -> Result<(), String> {
    match opts.target.as_deref() {
        Some("diff") => return cmd_obs_diff(opts),
        Some(other) => return Err(format!("unexpected argument '{other}'")),
        None => {}
    }
    let schedule = opts.schedule()?;
    let n = universe_for(&schedule, opts)?;
    let algo = opts.get("algo", "da");
    let events = opts.get_usize("events", 256)?;
    let err = |e: doma_core::DomaError| e.to_string();
    let mut sim = match algo.as_str() {
        "sa" => ProtocolSim::new_sa(n, ProcSet::from_iter([0usize, 1])).map_err(err)?,
        "da" => ProtocolSim::new_da(n, ProcSet::from_iter([0usize]), ProcessorId::new(1))
            .map_err(err)?,
        other => return Err(format!("--algo must be sa or da, got '{other}'")),
    };
    let obs = sim.attach_obs(events);
    let _trace_handle = sim.attach_tracer_on(obs.events().clone());
    sim.execute(&schedule).map_err(err)?;
    sim.obs_flush();
    match opts.get("format", "json").as_str() {
        "json" => println!("{}", obs.snapshot_json()),
        "table" => {
            println!("{}", obs.metrics().snapshot());
            let rendered = obs.events().render();
            if !rendered.is_empty() {
                println!("{rendered}");
            }
        }
        other => return Err(format!("--format must be json or table, got '{other}'")),
    }
    Ok(())
}

/// `domactl obs diff <a.json> <b.json>` — structural diff of two obs
/// snapshots (raw, or wrapped in scenario reports / report arrays;
/// `--scenario NAME` picks one report out of an array). Exits nonzero
/// when the snapshots differ, so scripts can gate on it.
fn cmd_obs_diff(opts: &Opts) -> Result<(), String> {
    let [path_a, path_b] = opts.extra.as_slice() else {
        return Err("usage: domactl obs diff <a.json> <b.json> [--scenario NAME]".to_string());
    };
    let text_a =
        std::fs::read_to_string(path_a).map_err(|e| format!("cannot read {path_a}: {e}"))?;
    let text_b =
        std::fs::read_to_string(path_b).map_err(|e| format!("cannot read {path_b}: {e}"))?;
    let which = opts.flags.get("scenario").map(String::as_str);
    let diff = doma_analysis::obsdiff::diff_texts(&text_a, &text_b, which)?;
    print!("{}", doma_analysis::obsdiff::render(&diff));
    if diff.is_clean() {
        Ok(())
    } else {
        Err(format!("{path_a} and {path_b} differ"))
    }
}

/// `domactl trace <scenario|workload>` — run the target with per-request
/// causal spans enabled and print either the Chrome trace-event JSON
/// (`--format chrome`, perfetto-loadable, byte-stable for a fixed seed)
/// or the slowest-K critical-path report (`--format table`, default).
/// The target is a builtin scenario name, a scenario `.toml` path, or a
/// workload kind (`uniform|zipf|hotspot|chaotic|mobile|append`) run
/// through a single-object SA/DA sim (`--algo`, `--n`, `--len`,
/// `--seed`, `--read-fraction`).
fn cmd_trace(opts: &Opts) -> Result<(), String> {
    use doma_obs::trace::{chrome_trace, slowest_report, TraceModel};
    let target = opts.target.clone().ok_or_else(|| {
        format!(
            "need a target: domactl trace <scenario|workload>\nbuiltins: {}\nworkloads: uniform, zipf, hotspot, chaotic, mobile, append",
            doma_scenario::builtin::names().join(", ")
        )
    })?;
    let format = opts.get("format", "table");
    if !["table", "chrome"].contains(&format.as_str()) {
        return Err(format!("--format must be table or chrome, got '{format}'"));
    }
    let top = opts.get_usize("top", 10)?;
    let workloads = ["uniform", "zipf", "hotspot", "chaotic", "mobile", "append"];

    let (model, header) = if target.ends_with(".toml")
        || target.contains('/')
        || doma_scenario::builtin::names().contains(&target.as_str())
    {
        let mut scenario = if target.ends_with(".toml") || target.contains('/') {
            let text = std::fs::read_to_string(&target)
                .map_err(|e| format!("cannot read {target}: {e}"))?;
            doma_scenario::Scenario::parse(&text).map_err(|e| format!("{target}: {e}"))?
        } else {
            doma_scenario::builtin::load(&target).map_err(|e| e.to_string())?
        };
        if opts.flags.contains_key("events") {
            scenario.events = opts.get_usize("events", scenario.events)?;
        }
        let (report, obs) =
            doma_scenario::run_traced(&scenario).map_err(|e| format!("{}: {e}", scenario.name))?;
        for violation in &report.violations {
            eprintln!("warning: {}: {violation}", report.scenario);
        }
        let header = format!(
            "trace: scenario {} ({} entrant, {} requests, cost {} control / {} data / {} I/O)",
            report.scenario,
            report.entrant,
            report.requests,
            report.cost.control,
            report.cost.data,
            report.cost.io
        );
        (TraceModel::from_obs(&obs), header)
    } else if workloads.contains(&target.as_str()) {
        let n = opts.get_usize("n", 6)?;
        let len = opts.get_usize("len", 50)?;
        let seed = opts.get_usize("seed", 0)? as u64;
        let rf = opts.get_f64("read-fraction", 0.7)?;
        let events = opts.get_usize("events", 65_536)?;
        let err = |e: doma_core::DomaError| e.to_string();
        let gen: Box<dyn ScheduleGen> = match target.as_str() {
            "uniform" => Box::new(UniformWorkload::new(n, rf).map_err(err)?),
            "zipf" => Box::new(ZipfWorkload::new(n, 1.0, rf).map_err(err)?),
            "hotspot" => Box::new(HotspotWorkload::new(n, 20, rf).map_err(err)?),
            "chaotic" => Box::new(ChaoticWorkload::new(n, 8).map_err(err)?),
            "mobile" => Box::new(MobileWorkload::new(n / 2, n - n / 2 - 1, 0.3, rf).map_err(err)?),
            "append" => Box::new(AppendOnlyWorkload::new(n, 2, 3.0).map_err(err)?),
            _ => unreachable!("gated by the workloads list"),
        };
        let schedule = gen.generate(len, seed);
        let algo = opts.get("algo", "da");
        let mut sim = match algo.as_str() {
            "sa" => ProtocolSim::new_sa(n, ProcSet::from_iter([0usize, 1])).map_err(err)?,
            "da" => ProtocolSim::new_da(n, ProcSet::from_iter([0usize]), ProcessorId::new(1))
                .map_err(err)?,
            other => return Err(format!("--algo must be sa or da, got '{other}'")),
        };
        let obs = sim.attach_obs(events);
        let _trace_handle = sim.attach_tracer_on(obs.events().clone());
        sim.enable_request_spans();
        let report = sim.execute(&schedule).map_err(err)?;
        sim.obs_flush();
        let header = format!(
            "trace: {target} workload ({} on n={n}, {} requests, seed {seed}, cost {} control / {} data / {} I/O)",
            algo.to_uppercase(),
            schedule.len(),
            report.cost.control,
            report.cost.data,
            report.cost.io
        );
        (TraceModel::from_obs(&obs), header)
    } else {
        return Err(format!(
            "unknown trace target '{target}'\nbuiltins: {}\nworkloads: {}",
            doma_scenario::builtin::names().join(", "),
            workloads.join(", ")
        ));
    };

    match format.as_str() {
        "chrome" => println!("{}", chrome_trace(&model)),
        _ => {
            println!("{header}");
            if model.truncated() {
                println!(
                    "  WARNING: event log truncated ({} dropped, {} orphan exits) — raise --events",
                    model.dropped_events, model.orphan_exits
                );
            }
            print!("{}", slowest_report(&model, top));
        }
    }
    Ok(())
}

/// `domactl perf <current.json>` — the perf-regression gate: compares a
/// fresh bench report against the committed baseline
/// (`--baseline BENCH_prof.json`) and exits nonzero when any benchmark's
/// median regressed beyond `--threshold` (default 0.25 = +25%) or a
/// baselined benchmark disappeared.
fn cmd_perf(opts: &Opts) -> Result<(), String> {
    let current = opts.target.clone().ok_or(
        "usage: domactl perf <current.json> [--baseline BENCH_prof.json] [--threshold 0.25]",
    )?;
    let baseline = opts.get("baseline", "BENCH_prof.json");
    let threshold = opts.get_f64("threshold", 0.25)?;
    if !(0.0..10.0).contains(&threshold) {
        return Err(format!("--threshold {threshold} out of range [0, 10)"));
    }
    let baseline_text =
        std::fs::read_to_string(&baseline).map_err(|e| format!("cannot read {baseline}: {e}"))?;
    let current_text =
        std::fs::read_to_string(&current).map_err(|e| format!("cannot read {current}: {e}"))?;
    let cmp = doma_analysis::perfgate::compare(&baseline_text, &current_text, threshold)?;
    print!("{}", doma_analysis::perfgate::render(&cmp));
    if cmp.passed() {
        Ok(())
    } else {
        Err(format!(
            "perf regression vs {baseline} ({} regressed, {} missing)",
            cmp.regressions().len(),
            cmp.missing.len()
        ))
    }
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let n = opts.get_usize("n", 6)?;
    let len = opts.get_usize("len", 50)?;
    let seed = opts.get_usize("seed", 0)? as u64;
    let rf = opts.get_f64("read-fraction", 0.7)?;
    let kind = opts.get("workload", "uniform");
    let err = |e: doma_core::DomaError| e.to_string();
    let gen: Box<dyn ScheduleGen> = match kind.as_str() {
        "uniform" => Box::new(UniformWorkload::new(n, rf).map_err(err)?),
        "zipf" => Box::new(ZipfWorkload::new(n, 1.0, rf).map_err(err)?),
        "hotspot" => Box::new(HotspotWorkload::new(n, 20, rf).map_err(err)?),
        "chaotic" => Box::new(ChaoticWorkload::new(n, 8).map_err(err)?),
        "mobile" => Box::new(MobileWorkload::new(n / 2, n - n / 2 - 1, 0.3, rf).map_err(err)?),
        "append" => Box::new(AppendOnlyWorkload::new(n, 2, 3.0).map_err(err)?),
        other => return Err(format!("unknown --workload '{other}'")),
    };
    println!("{}", gen.generate(len, seed));
    Ok(())
}

/// The shard-scaling experiment: run one multi-object uniform workload
/// sequentially and at each requested shard count, assert exact parity
/// (total cost vector, reads completed, mean latency, final holders), and
/// print the wall-clock table. Scaling is bounded by the machine's cores
/// — the header prints the count so a flat curve on a small box reads as
/// what it is.
fn cmd_shard(opts: &Opts) -> Result<(), String> {
    let objects = opts.get_usize("objects", 16)? as u64;
    let requests = opts.get_usize("requests", 10_000)?;
    let n = opts.get_usize("n", 8)?;
    let t = opts.get_usize("t", 2)?;
    let seed = opts.get_usize("seed", 0)? as u64;
    let rf = opts.get_f64("read-fraction", 0.8)?;
    if t < 2 || t >= n {
        return Err(format!("need 2 <= t < n (t={t}, n={n})"));
    }
    let placement = match opts.get("placement", "round-robin").as_str() {
        "same-core" => Placement::SameCore,
        "round-robin" => Placement::RoundRobin,
        "load-aware" => Placement::LoadAware,
        other => {
            return Err(format!(
                "--placement must be same-core, round-robin or load-aware, got '{other}'"
            ))
        }
    };
    let shard_counts: Vec<usize> = opts
        .get("shards", "1,2,4,8")
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .map_err(|_| format!("--shards: bad shard count '{s}'"))
        })
        .collect::<Result<_, _>>()?;
    let err = |e: doma_core::DomaError| e.to_string();

    // Alternating SA/DA catalog with scheme size t, rotated around the
    // cluster — the same shape the shard_scaling bench uses.
    let configs: BTreeMap<ObjectId, ProtocolConfig> = (0..objects)
        .map(|o| {
            let base = (o as usize) % (n - t + 1);
            let config = if o % 2 == 0 {
                ProtocolConfig::Sa {
                    q: (base..base + t).collect(),
                }
            } else {
                ProtocolConfig::Da {
                    f: (base..base + t - 1).collect(),
                    p: ProcessorId::new(base + t - 1),
                }
            };
            (ObjectId(o), config)
        })
        .collect();
    let schedule = MultiUniformWorkload::new(objects, n, rf)
        .map_err(err)?
        .generate_multi(requests, seed);

    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "shard scaling: {objects} objects, {requests} requests, n={n}, t={t}, \
         read fraction {rf}, seed {seed}, {placement:?} placement, {cores} cores"
    );

    let mut sequential = ProtocolSim::new_catalog(n, configs.clone()).map_err(err)?;
    let start = Instant::now();
    let expected = sequential.execute_multi(&schedule).map_err(err)?;
    let seq_ms = start.elapsed().as_secs_f64() * 1e3;
    println!(
        "  sequential: {seq_ms:8.1} ms  {:9.0} req/s  ({} reads completed)",
        requests as f64 / (seq_ms * 1e-3),
        expected.reads_completed
    );

    for shards in shard_counts {
        let sharded = ShardedSim::new(n, configs.clone(), shards, placement).map_err(err)?;
        let start = Instant::now();
        let run = sharded.execute_multi(&schedule).map_err(err)?;
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        if run.report != expected {
            return Err(format!(
                "parity violation at K={shards}: sharded report diverges from sequential"
            ));
        }
        for object in configs.keys() {
            if run.holders.get(object) != Some(&sequential.valid_holders_of(*object)) {
                return Err(format!(
                    "parity violation at K={shards}: holders of {object} diverge"
                ));
            }
        }
        println!(
            "  K={shards:<3}      {wall_ms:8.1} ms  {:9.0} req/s  parity OK",
            requests as f64 / (wall_ms * 1e-3)
        );
    }
    Ok(())
}

/// The algorithm tournament: every first-class allocator × every workload
/// × the `(cc, cd)` model grid, measured against OPT through the protocol
/// sim with the obs registry cross-checked. Prints the standings table
/// (or the JSON export with `--format json`); `--out <path>` additionally
/// writes the byte-stable JSON artifact.
fn cmd_tournament(opts: &Opts) -> Result<(), String> {
    let spec = doma_analysis::tournament::TournamentSpec {
        n: opts.get_usize("n", 6)?,
        len: opts.get_usize("len", 40)?,
        seed: opts.get_usize("seed", 7)? as u64,
    };
    let cells = doma_analysis::tournament::run_tournament(&spec).map_err(|e| e.to_string())?;
    let json = doma_analysis::tournament::render_json(&spec, &cells);
    match opts.get("format", "table").as_str() {
        "table" => {
            println!(
                "tournament: n={} len={} seed={} ({} cells)",
                spec.n,
                spec.len,
                spec.seed,
                cells.len()
            );
            print!("{}", doma_analysis::tournament::render_table(&cells));
        }
        "json" => print!("{json}"),
        other => return Err(format!("--format must be table or json, got '{other}'")),
    }
    if let Some(path) = opts.flags.get("out") {
        std::fs::write(path, &json).map_err(|e| format!("--out {path}: {e}"))?;
    }
    Ok(())
}

/// Runs a declarative scenario (builtin by name, or a `.toml` file by
/// path) through the protocol simulator with obs attached, audits its
/// expected-invariant block, and prints the report. `scenario list`
/// prints the builtin roster; `scenario all` replays every builtin and
/// fails if any expectation (golden digest included) is violated.
/// Parses a `--transport` value for the socket runtime commands.
fn socket_transport(value: &str) -> Result<doma_net::TransportKind, String> {
    doma_net::TransportKind::parse(value)
        .ok_or_else(|| format!("--transport must be tcp or uds, got '{value}'"))
}

/// The ad-hoc workload names `domactl cluster` accepts in place of a
/// scenario, mirroring `domactl trace`.
const CLUSTER_WORKLOADS: &[&str] = &["uniform", "zipf", "hotspot", "chaotic", "mobile", "append"];

/// Synthesizes a one-phase scenario for an ad-hoc cluster workload, so
/// the twin harness needs only one input shape.
fn synth_workload_scenario(opts: &Opts, workload: &str) -> Result<doma_scenario::Scenario, String> {
    let n = opts.get_usize("n", 6)?;
    let len = opts.get_usize("len", 40)?;
    let seed = opts.get_usize("seed", 7)?;
    let entrant = opts.get("entrant", "sa");
    let rf = opts.get_f64("read-fraction", 0.7)?;
    let phase = match workload {
        "uniform" => format!("read_fraction = {rf}"),
        "zipf" => format!("theta = 1.0\nread_fraction = {rf}"),
        "hotspot" => format!("phase_len = 20\nhot_prob = {rf}"),
        "chaotic" => "redraw_every = 8".to_string(),
        "mobile" => format!(
            "cells = {}\ncallers = {}\nmove_prob = 0.3\nread_fraction = {rf}",
            n / 2,
            n - n / 2 - 1
        ),
        "append" => "generators = 2\nreads_per_write = 3.0".to_string(),
        _ => unreachable!("gated by CLUSTER_WORKLOADS"),
    };
    let workload = if workload == "append" {
        "append-only"
    } else {
        workload
    };
    doma_scenario::Scenario::parse(&format!(
        "[scenario]\n\
         name = \"adhoc-{workload}\"\n\
         description = \"ad-hoc cluster workload\"\n\
         n = {n}\n\
         seed = {seed}\n\
         entrant = \"{entrant}\"\n\
         [model]\n\
         environment = \"sc\"\n\
         cc = 0.25\n\
         cd = 1.0\n\
         [[phase]]\n\
         name = \"main\"\n\
         workload = \"{workload}\"\n\
         len = {len}\n\
         {phase}\n\
         [expect]\n\
         max_dropped_messages = 0\n"
    ))
    .map_err(|e| e.to_string())
}

/// `domactl cluster <scenario|workload>` — spawn N protocol nodes over
/// real sockets, drive the scenario's schedule through them, and
/// cross-check the run against the deterministic sim twin: same seed,
/// same request schedule, therefore (if the transport layer is correct)
/// the same allocation-scheme trajectory and the same obs cost totals.
fn cmd_cluster(opts: &Opts) -> Result<(), String> {
    let target = opts.target.clone().ok_or_else(|| {
        format!(
            "need a target: domactl cluster <scenario|workload> --nodes N [--transport tcp|uds]\n\
             builtins: {}\nworkloads: {}",
            doma_scenario::builtin::names().join(", "),
            CLUSTER_WORKLOADS.join(", ")
        )
    })?;
    let kind = socket_transport(&opts.get("transport", "uds"))?;
    let scenario = if CLUSTER_WORKLOADS.contains(&target.as_str()) {
        synth_workload_scenario(opts, &target)?
    } else if target.ends_with(".toml") || target.contains('/') {
        let text =
            std::fs::read_to_string(&target).map_err(|e| format!("cannot read {target}: {e}"))?;
        doma_scenario::Scenario::parse(&text).map_err(|e| format!("{target}: {e}"))?
    } else {
        doma_scenario::builtin::load(&target).map_err(|e| e.to_string())?
    };
    let nodes = match opts.flags.get("nodes") {
        Some(_) => Some(opts.get_usize("nodes", scenario.n)?),
        None => None,
    };
    match doma_analysis::cluster::run_twin(&scenario, kind, nodes) {
        Ok(report) => {
            print!("{}", report.render());
            if report.matches() {
                Ok(())
            } else {
                Err(format!(
                    "cluster diverged from the sim twin ({} difference(s))",
                    report.diffs.len()
                ))
            }
        }
        Err(e) if e.starts_with("sockets unavailable") => {
            println!("notice: {e}; cluster run skipped");
            Ok(())
        }
        Err(e) => Err(e),
    }
}

fn cmd_scenario(opts: &Opts) -> Result<(), String> {
    let target = opts
        .target
        .clone()
        .or_else(|| opts.flags.get("name").cloned())
        .ok_or_else(|| {
            format!(
                "need a scenario: domactl scenario <name|path|all|list>\nbuiltins: {}",
                doma_scenario::builtin::names().join(", ")
            )
        })?;
    let format = opts.get("format", "table");
    if !["table", "json"].contains(&format.as_str()) {
        return Err(format!("--format must be table or json, got '{format}'"));
    }
    let transport = opts.get("transport", "sim");
    if !["sim", "tcp", "uds"].contains(&transport.as_str()) {
        return Err(format!(
            "--transport must be sim, tcp or uds, got '{transport}'"
        ));
    }
    if target == "list" {
        for name in doma_scenario::builtin::names() {
            let s = doma_scenario::builtin::load(name).map_err(|e| format!("{name}: {e}"))?;
            println!("{name:<22} {}", s.description);
        }
        return Ok(());
    }
    let scenarios: Vec<doma_scenario::Scenario> = if target == "all" {
        doma_scenario::builtin::names()
            .into_iter()
            .map(|name| doma_scenario::builtin::load(name).map_err(|e| format!("{name}: {e}")))
            .collect::<Result<_, _>>()?
    } else if target.ends_with(".toml") || target.contains('/') {
        let text =
            std::fs::read_to_string(&target).map_err(|e| format!("cannot read {target}: {e}"))?;
        vec![doma_scenario::Scenario::parse(&text).map_err(|e| format!("{target}: {e}"))?]
    } else {
        vec![doma_scenario::builtin::load(&target).map_err(|e| e.to_string())?]
    };

    let baseline = match opts.flags.get("diff") {
        Some(path) => {
            Some(std::fs::read_to_string(path).map_err(|e| format!("--diff {path}: {e}"))?)
        }
        None => None,
    };
    let mut failed = Vec::new();
    let mut json_rows = Vec::new();
    let mut diffs = Vec::new();
    for scenario in &scenarios {
        let report = doma_scenario::run(scenario).map_err(|e| format!("{}: {e}", scenario.name))?;
        match format.as_str() {
            "json" => json_rows.push(report.render_json()),
            _ => print!("{}", report.render_table()),
        }
        if let Some(baseline_text) = &baseline {
            let d = doma_analysis::obsdiff::diff_texts(
                baseline_text,
                &report.snapshot_json,
                Some(&report.scenario),
            )
            .map_err(|e| format!("--diff {}: {e}", report.scenario))?;
            diffs.push(format!(
                "{}: {}",
                report.scenario,
                doma_analysis::obsdiff::render(&d)
            ));
        }
        if !report.passed() {
            failed.push(format!(
                "{}: {}",
                report.scenario,
                report.violations.join("; ")
            ));
        }
        // `--transport tcp|uds`: replay the scenario over real sockets
        // and hold the cluster to the sim run the golden digest pinned.
        if transport != "sim" {
            let note = |msg: &str| {
                if format != "json" {
                    println!("{msg}");
                }
            };
            if !scenario.faults.is_empty() {
                note(&format!(
                    "  transport {transport}: skipped (scenario injects faults; \
                     the real runtime is failure-free)"
                ));
                continue;
            }
            match doma_analysis::cluster::run_twin(scenario, socket_transport(&transport)?, None) {
                Ok(twin) if twin.matches() => note(&format!(
                    "  transport {transport}: MATCH — cluster reproduced the sim twin \
                     ({} requests)",
                    twin.requests
                )),
                Ok(twin) => {
                    for d in &twin.diffs {
                        note(&format!("  transport {transport}: DIVERGED — {d}"));
                    }
                    failed.push(format!(
                        "{}: cluster diverged from the sim twin over {transport} \
                         ({} difference(s))",
                        report.scenario,
                        twin.diffs.len()
                    ));
                }
                Err(e) if e.starts_with("sockets unavailable") => {
                    note(&format!("notice: {e}; cluster replay skipped"));
                }
                Err(e) => return Err(e),
            }
        }
    }
    if format == "json" {
        println!("[\n  {}\n]", json_rows.join(",\n  "));
    }
    for diff in &diffs {
        print!("{diff}");
    }
    if !failed.is_empty() {
        return Err(format!(
            "scenario expectations failed:\n  {}",
            failed.join("\n  ")
        ));
    }
    Ok(())
}

/// `domactl lint [--root PATH] [--format table|json] [--rule <id>]` —
/// the static-analysis wall, runnable outside verify.sh. Exits nonzero
/// on any finding (after `--rule` filtering), so scripts can gate on it.
fn cmd_lint(opts: &Opts) -> Result<(), String> {
    let root = opts.get("root", ".");
    let ws = doma_lint::load_workspace(std::path::Path::new(&root))?;
    let mut report = doma_lint::run(&ws)?;
    if let Some(rule) = opts.flags.get("rule") {
        report.findings.retain(|f| f.rule == rule);
    }
    match opts.get("format", "table").as_str() {
        "json" => print!("{}", doma_lint::render_json(&report)),
        "table" => print!("{}", doma_lint::render_table(&report)),
        other => return Err(format!("--format must be table or json, got '{other}'")),
    }
    if report.findings.is_empty() {
        Ok(())
    } else {
        Err(format!("{} lint finding(s)", report.findings.len()))
    }
}

fn usage() -> String {
    "usage: domactl <cost|stats|simulate|obs|generate|shard|tournament|scenario|cluster|trace|perf|lint> [--flags]\n\
     try: domactl cost --schedule \"r1 r1 r2 w2 r2 r2 r2\" --cc 0.5 --cd 1.0\n\
     try: domactl scenario list\n\
     try: domactl cluster append-only-6-2 --nodes 3 --transport uds\n\
     try: domactl trace append-only-6-2 --format chrome\n\
     try: domactl lint --format json"
        .to_string()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = parse_args(&args).and_then(|opts| match opts.command.as_str() {
        "cost" => cmd_cost(&opts),
        "stats" => cmd_stats(&opts),
        "simulate" => cmd_simulate(&opts),
        "obs" => cmd_obs(&opts),
        "generate" => cmd_generate(&opts),
        "shard" => cmd_shard(&opts),
        "tournament" => cmd_tournament(&opts),
        "scenario" => cmd_scenario(&opts),
        "cluster" => cmd_cluster(&opts),
        "trace" => cmd_trace(&opts),
        "perf" => cmd_perf(&opts),
        "lint" => cmd_lint(&opts),
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parser_accepts_flags_and_command() {
        let o = parse_args(&args(&["cost", "--cc", "0.5", "--verbose", "--algo", "da"])).unwrap();
        assert_eq!(o.command, "cost");
        assert!(o.verbose);
        assert_eq!(o.get("algo", "all"), "da");
        assert_eq!(o.get_f64("cc", 0.0).unwrap(), 0.5);
        assert_eq!(o.get_f64("cd", 1.25).unwrap(), 1.25);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["cost", "--cc"])).is_err());
        // Positional arity is per-command: `scenario` takes one operand,
        // `cost` takes none, `obs diff` takes three.
        let o = parse_args(&args(&["scenario", "flash-crowd"])).unwrap();
        assert_eq!(o.target.as_deref(), Some("flash-crowd"));
        assert!(parse_args(&args(&["cost", "stray", "stray2"])).is_err());
        assert!(parse_args(&args(&["cost", "stray"])).is_err());
        assert!(parse_args(&args(&["scenario", "a", "b"])).is_err());
        assert!(parse_args(&args(&["trace", "a", "b"])).is_err());
        let o = parse_args(&args(&["cost", "--cc", "abc"])).unwrap();
        assert!(o.get_f64("cc", 0.0).is_err());
    }

    #[test]
    fn parser_accepts_multi_positional_obs_diff() {
        let o = parse_args(&args(&["obs", "diff", "a.json", "b.json"])).unwrap();
        assert_eq!(o.target.as_deref(), Some("diff"));
        assert_eq!(o.extra, vec!["a.json".to_string(), "b.json".to_string()]);
        assert!(parse_args(&args(&["obs", "diff", "a", "b", "c"])).is_err());
        // `obs` with a non-diff positional is rejected by the command.
        let o = parse_args(&args(&["obs", "bogus", "--schedule", "r1"])).unwrap();
        assert!(cmd_obs(&o).unwrap_err().contains("unexpected argument"));
        // `obs diff` with fewer than two files is a usage error.
        let o = parse_args(&args(&["obs", "diff", "only-one"])).unwrap();
        assert!(cmd_obs(&o).unwrap_err().contains("usage:"));
    }

    #[test]
    fn schedule_and_model_extraction() {
        let o = parse_args(&args(&[
            "cost",
            "--schedule",
            "r1 w2",
            "--model",
            "mc",
            "--cc",
            "0.2",
            "--cd",
            "0.9",
        ]))
        .unwrap();
        let s = o.schedule().unwrap();
        assert_eq!(s.len(), 2);
        let m = o.model().unwrap();
        assert_eq!(m.cio(), 0.0);
        let bad = parse_args(&args(&["cost", "--model", "xy", "--schedule", "r1"])).unwrap();
        assert!(bad.model().is_err());
        let none = parse_args(&args(&["cost"])).unwrap();
        assert!(none.schedule().is_err());
    }

    #[test]
    fn commands_run_end_to_end() {
        let o = parse_args(&args(&["cost", "--schedule", "r1 r1 r2 w2 r2"])).unwrap();
        cmd_cost(&o).unwrap();
        let o = parse_args(&args(&["stats", "--schedule", "r1 r1 w0 r2"])).unwrap();
        cmd_stats(&o).unwrap();
        let o = parse_args(&args(&[
            "simulate",
            "--schedule",
            "r2 w3 r2",
            "--algo",
            "da",
        ]))
        .unwrap();
        cmd_simulate(&o).unwrap();
        let o = parse_args(&args(&["generate", "--workload", "zipf", "--len", "10"])).unwrap();
        cmd_generate(&o).unwrap();
        let o = parse_args(&args(&["obs", "--schedule", "r2 w3 r2", "--algo", "sa"])).unwrap();
        cmd_obs(&o).unwrap();
        let o = parse_args(&args(&[
            "obs",
            "--schedule",
            "r2 w3 r2",
            "--format",
            "table",
        ]))
        .unwrap();
        cmd_obs(&o).unwrap();
    }

    #[test]
    fn shard_runs_and_validates_flags() {
        let o = parse_args(&args(&[
            "shard",
            "--objects",
            "6",
            "--requests",
            "200",
            "--shards",
            "1,2,3",
            "--n",
            "6",
        ]))
        .unwrap();
        cmd_shard(&o).unwrap();
        let o = parse_args(&args(&["shard", "--placement", "zigzag"])).unwrap();
        assert!(cmd_shard(&o).is_err());
        let o = parse_args(&args(&["shard", "--shards", "1,x"])).unwrap();
        assert!(cmd_shard(&o).is_err());
        let o = parse_args(&args(&["shard", "--t", "9", "--n", "4"])).unwrap();
        assert!(cmd_shard(&o).is_err());
    }

    #[test]
    fn tournament_runs_and_rejects_bad_format() {
        let o = parse_args(&args(&[
            "tournament",
            "--n",
            "5",
            "--len",
            "12",
            "--seed",
            "3",
        ]))
        .unwrap();
        cmd_tournament(&o).unwrap();
        let o = parse_args(&args(&[
            "tournament",
            "--n",
            "5",
            "--len",
            "12",
            "--format",
            "yaml",
        ]))
        .unwrap();
        assert!(cmd_tournament(&o).is_err());
    }

    #[test]
    fn scenario_lists_and_runs_builtins() {
        let o = parse_args(&args(&["scenario", "list"])).unwrap();
        cmd_scenario(&o).unwrap();
        let o = parse_args(&args(&["scenario"])).unwrap();
        let e = cmd_scenario(&o).unwrap_err();
        assert!(e.contains("builtins:"), "{e}");
        let o = parse_args(&args(&["scenario", "flash-crowd", "--format", "yaml"])).unwrap();
        assert!(cmd_scenario(&o).unwrap_err().contains("--format"));
        let o = parse_args(&args(&["scenario", "no-such-scenario"])).unwrap();
        assert!(cmd_scenario(&o).unwrap_err().contains("unknown builtin"));
        let o = parse_args(&args(&["scenario", "/no/such/file.toml"])).unwrap();
        assert!(cmd_scenario(&o).unwrap_err().contains("cannot read"));
    }

    #[test]
    fn obs_rejects_bad_format() {
        let o = parse_args(&args(&["obs", "--schedule", "r1", "--format", "xml"])).unwrap();
        assert!(cmd_obs(&o).is_err());
    }

    fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("domactl-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn trace_runs_scenarios_and_workloads() {
        let o = parse_args(&args(&["trace", "append-only-6-2"])).unwrap();
        cmd_trace(&o).unwrap();
        let o = parse_args(&args(&["trace", "append-only-6-2", "--format", "chrome"])).unwrap();
        cmd_trace(&o).unwrap();
        let o = parse_args(&args(&[
            "trace", "uniform", "--len", "12", "--algo", "sa", "--top", "3",
        ]))
        .unwrap();
        cmd_trace(&o).unwrap();
        let o = parse_args(&args(&["trace", "no-such-target"])).unwrap();
        assert!(cmd_trace(&o).unwrap_err().contains("unknown trace target"));
        let o = parse_args(&args(&["trace", "uniform", "--format", "svg"])).unwrap();
        assert!(cmd_trace(&o).unwrap_err().contains("--format"));
        let o = parse_args(&args(&["trace"])).unwrap();
        assert!(cmd_trace(&o).unwrap_err().contains("need a target"));
    }

    #[test]
    fn obs_diff_detects_changes_and_clean_runs() {
        let snap_a = "{\"dropped_events\": 0, \"events\": [], \"metrics\": \
             [{\"component\": \"p\", \"name\": \"x\", \"labels\": {}, \
             \"kind\": \"counter\", \"value\": 1}]}";
        let snap_b = snap_a.replace("\"value\": 1", "\"value\": 2");
        let a = temp_file("diff_a.json", snap_a);
        let b = temp_file("diff_b.json", &snap_b);
        let same = parse_args(&args(&[
            "obs",
            "diff",
            a.to_str().unwrap(),
            a.to_str().unwrap(),
        ]))
        .unwrap();
        cmd_obs(&same).unwrap();
        let differ = parse_args(&args(&[
            "obs",
            "diff",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(cmd_obs(&differ).unwrap_err().contains("differ"));
    }

    #[test]
    fn scenario_diff_flag_compares_against_a_baseline() {
        let scenario = doma_scenario::builtin::load("append-only-6-2").unwrap();
        let report = doma_scenario::run(&scenario).unwrap();
        let baseline = temp_file("scenario_baseline.json", &report.snapshot_json);
        let o = parse_args(&args(&[
            "scenario",
            "append-only-6-2",
            "--diff",
            baseline.to_str().unwrap(),
        ]))
        .unwrap();
        cmd_scenario(&o).unwrap();
        let o = parse_args(&args(&[
            "scenario",
            "append-only-6-2",
            "--diff",
            "/no/such/baseline.json",
        ]))
        .unwrap();
        assert!(cmd_scenario(&o).unwrap_err().contains("--diff"));
    }

    #[test]
    fn perf_gate_passes_and_fails_on_medians() {
        let base = temp_file(
            "perf_base.json",
            "[{\"group\": \"g\", \"name\": \"a\", \"samples\": 3, \
             \"iters_per_sample\": 1, \"mean_ns\": 100.0, \"median_ns\": 100.0, \
             \"stddev_ns\": 0.0, \"min_ns\": 100.0, \"max_ns\": 100.0}]",
        );
        let ok = temp_file("perf_ok.json", &std::fs::read_to_string(&base).unwrap());
        let slow = temp_file(
            "perf_slow.json",
            &std::fs::read_to_string(&base)
                .unwrap()
                .replace("\"median_ns\": 100.0", "\"median_ns\": 200.0"),
        );
        let o = parse_args(&args(&[
            "perf",
            ok.to_str().unwrap(),
            "--baseline",
            base.to_str().unwrap(),
        ]))
        .unwrap();
        cmd_perf(&o).unwrap();
        let o = parse_args(&args(&[
            "perf",
            slow.to_str().unwrap(),
            "--baseline",
            base.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(cmd_perf(&o).unwrap_err().contains("perf regression"));
        let o = parse_args(&args(&["perf"])).unwrap();
        assert!(cmd_perf(&o).unwrap_err().contains("usage:"));
        let o = parse_args(&args(&["perf", "x", "--threshold", "99"])).unwrap();
        assert!(cmd_perf(&o).unwrap_err().contains("--threshold"));
    }

    #[test]
    fn cost_rejects_bad_t_and_algo() {
        let o = parse_args(&args(&["cost", "--schedule", "r1", "--t", "9"])).unwrap();
        assert!(cmd_cost(&o).is_err());
        let o = parse_args(&args(&["cost", "--schedule", "r1", "--algo", "zzz"])).unwrap();
        assert!(cmd_cost(&o).is_err());
    }
}

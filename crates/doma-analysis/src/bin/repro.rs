//! `repro` — regenerates every figure and bound of the paper.
//!
//! ```text
//! repro [all|fig1|fig2|thm1|thm23|thm4|prop2|prop3|sweep|example13|mobile|append|ablation|shard|…]
//!       [--fast]
//! ```
//!
//! `--fast` shrinks grids and batteries for a quick smoke run (used by CI
//! and the integration tests); the default settings match EXPERIMENTS.md.

use doma_analysis::experiments;
use doma_analysis::region::RegionConfig;
use doma_core::CostModel;
use std::process::ExitCode;

fn region_config(fast: bool) -> RegionConfig {
    if fast {
        RegionConfig {
            n: 5,
            step: 0.5,
            max: 2.0,
            schedule_len: 24,
            seeds: 1,
        }
    } else {
        RegionConfig {
            n: 5,
            step: 0.25,
            max: 2.0,
            schedule_len: 48,
            seeds: 3,
        }
    }
}

fn run(which: &str, fast: bool) -> doma_core::Result<Vec<experiments::ExpReport>> {
    let lengths: &[usize] = if fast {
        &[8, 32, 128]
    } else {
        &[8, 32, 128, 512, 2048]
    };
    let sweep_model = CostModel::stationary(0.25, 1.0).expect("valid model");
    let mut reports = Vec::new();
    let all = which == "all";
    if all || which == "fig1" {
        reports.push(experiments::fig1(&region_config(fast))?);
    }
    if all || which == "fig2" {
        reports.push(experiments::fig2(&region_config(fast))?);
    }
    if all || which == "thm1" {
        reports.push(experiments::thm1_sa_tightness(lengths)?);
    }
    if all || which == "thm23" {
        reports.push(experiments::thm23_da_upper_bounds()?);
    }
    if all || which == "thm4" {
        reports.push(experiments::thm4_da_mobile()?);
    }
    if all || which == "prop2" {
        reports.push(experiments::prop2_da_lower_bound(!fast)?);
    }
    if all || which == "prop3" {
        reports.push(experiments::prop3_sa_mc_divergence(lengths)?);
    }
    if all || which == "sweep" {
        reports.push(experiments::sweep_e9(sweep_model)?);
    }
    if all || which == "example13" {
        reports.push(experiments::example13()?);
    }
    if all || which == "mobile" {
        reports.push(experiments::mobile_e11(if fast { 60 } else { 400 }, 3)?);
    }
    if all || which == "append" {
        reports.push(experiments::append_e12(if fast { 150 } else { 1000 }, 5)?);
    }
    if all || which == "ablation" {
        reports.push(experiments::ablation_e14(if fast { 300 } else { 2000 }, 7)?);
    }
    if all || which == "failover" {
        reports.push(experiments::failover_e21(if fast { 60 } else { 300 }, 5)?);
    }
    if all || which == "loadcurve" {
        reports.push(experiments::load_curve_e20(if fast { 60 } else { 200 })?);
    }
    if all || which == "contention" {
        reports.push(experiments::contention_e15(if fast {
            &[1, 4, 8]
        } else {
            &[1, 2, 4, 8, 16]
        })?);
    }
    if all || which == "cache" {
        reports.push(experiments::cache_e16(if fast { 300 } else { 1500 }, 3)?);
    }
    if all || which == "tindep" {
        reports.push(experiments::t_independence_e17()?);
    }
    if all || which == "fileallocation" {
        reports.push(experiments::file_allocation_e19(
            if fast { 200 } else { 1000 },
            11,
        )?);
    }
    if all || which == "shard" {
        reports.push(experiments::shard_scaling_e22(
            if fast { 16 } else { 64 },
            if fast { 2_000 } else { 100_000 },
            &[1, 2, 4, 8],
        )?);
    }
    if all || which == "placement" {
        reports.push(experiments::placement_e18(
            40,
            if fast { 600 } else { 4000 },
            3,
        )?);
    }
    Ok(reports)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");
    let known = [
        "all",
        "fig1",
        "fig2",
        "thm1",
        "thm23",
        "thm4",
        "prop2",
        "prop3",
        "sweep",
        "example13",
        "mobile",
        "append",
        "ablation",
        "contention",
        "cache",
        "tindep",
        "placement",
        "fileallocation",
        "loadcurve",
        "failover",
        "shard",
    ];
    if !known.contains(&which) {
        eprintln!(
            "unknown experiment '{which}'; choose one of: {}",
            known.join(", ")
        );
        return ExitCode::FAILURE;
    }
    match run(which, fast) {
        Ok(reports) => {
            if reports.is_empty() {
                eprintln!("nothing to run");
                return ExitCode::FAILURE;
            }
            println!(
                "# Reproduction of Huang & Wolfson, ICDE 1994 ({} mode)\n",
                if fast { "fast" } else { "full" }
            );
            for report in reports {
                println!("{}\n", report.to_markdown());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            ExitCode::FAILURE
        }
    }
}

//! A minimal JSON value parser for the harness's own artifacts.
//!
//! The workspace is zero-dependency, and everything it *emits* is
//! hand-rolled byte-stable JSON (obs snapshots, bench reports, scenario
//! exports). The diff and perf-gate commands need to read those
//! artifacts back, so this module provides the inverse: a small
//! recursive-descent parser into a [`Jv`] tree. Object members keep
//! their textual order (a `Vec` of pairs, not a map), so a rendered
//! diff walks fields in the same order the snapshot printed them.
//!
//! This is a consumer for trusted, self-produced files — it accepts
//! standard JSON and reports the byte offset on malformed input, but
//! does not aim to be a hardened general-purpose parser.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Jv {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`; the harness's integers are
    /// well inside the 2^53 exact range).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Jv>),
    /// An object, members in textual order.
    Obj(Vec<(String, Jv)>),
}

impl Jv {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Jv, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Object member lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Jv> {
        match self {
            Jv::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Jv::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Jv::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer (truncating).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|v| v.max(0.0) as u64)
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Jv]> {
        match self {
            Jv::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Jv)]> {
        match self {
            Jv::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// A compact single-line rendering (diagnostics; not byte-stable
    /// against the original text).
    pub fn render(&self) -> String {
        match self {
            Jv::Null => "null".to_string(),
            Jv::Bool(b) => b.to_string(),
            Jv::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 9e15 {
                    format!("{}", *v as i64)
                } else {
                    format!("{v}")
                }
            }
            Jv::Str(s) => format!("{s:?}"),
            Jv::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Jv::render).collect();
                format!("[{}]", inner.join(", "))
            }
            Jv::Obj(members) => {
                let inner: Vec<String> = members
                    .iter()
                    .map(|(k, v)| format!("{k}: {}", v.render()))
                    .collect();
                format!("{{{}}}", inner.join(", "))
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {}, found {:?}",
            b as char,
            *pos,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Jv, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Jv::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Jv::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Jv::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Jv::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Jv) -> Result<Jv, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Jv, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Jv::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?} at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (snapshots are valid UTF-8).
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Jv, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Jv::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Jv::Arr(items));
            }
            other => {
                return Err(format!(
                    "expected ',' or ']' at byte {}, got {other:?}",
                    *pos
                ))
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Jv, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Jv::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Jv::Obj(members));
            }
            other => {
                return Err(format!(
                    "expected ',' or '}}' at byte {}, got {other:?}",
                    *pos
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_harness_shapes() {
        let v = Jv::parse(
            "{\"dropped_events\": 0, \"events\": [{\"index\": 1, \"name\": \"a.b\", \
             \"fields\": {\"k\": \"v\"}}], \"metrics\": [], \"ok\": true, \"x\": null, \
             \"f\": -2.5e1}",
        )
        .unwrap();
        assert_eq!(v.get("dropped_events").and_then(Jv::as_u64), Some(0));
        assert_eq!(v.get("f").and_then(Jv::as_f64), Some(-25.0));
        assert_eq!(v.get("ok"), Some(&Jv::Bool(true)));
        assert_eq!(v.get("x"), Some(&Jv::Null));
        let events = v.get("events").and_then(Jv::as_array).unwrap();
        assert_eq!(
            events[0]
                .get("fields")
                .and_then(|f| f.get("k"))
                .and_then(Jv::as_str),
            Some("v")
        );
    }

    #[test]
    fn unescapes_strings() {
        let v = Jv::parse("\"a\\\"b\\\\c\\n\\u0041\"").unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Jv::parse("").is_err());
        assert!(Jv::parse("{").is_err());
        assert!(Jv::parse("[1,]").is_err());
        assert!(Jv::parse("{\"a\" 1}").is_err());
        assert!(Jv::parse("12 34").is_err());
        assert!(Jv::parse("tru").is_err());
    }

    #[test]
    fn object_member_order_is_preserved() {
        let v = Jv::parse("{\"z\": 1, \"a\": 2}").unwrap();
        let members = v.as_object().unwrap();
        assert_eq!(members[0].0, "z");
        assert_eq!(members[1].0, "a");
        assert_eq!(v.render(), "{z: 1, a: 2}");
    }
}

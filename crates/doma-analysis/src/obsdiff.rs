//! Structural diff of two obs snapshots (`domactl obs diff`).
//!
//! Both inputs are the byte-stable JSON that [`doma_obs::Obs::snapshot_json`]
//! emits — either raw, wrapped in a scenario report's `"obs"` member, or
//! inside the array `domactl scenario all --format json` prints. The diff
//! is *structural*, not textual: metrics are keyed by
//! `(component, name, labels, kind)` so a reordered or re-run snapshot
//! with the same content diffs clean, while a changed counter shows as
//! one `~` row instead of a wall of JSON. Event streams are compared as
//! per-name record counts plus the `dropped_events` tally — the
//! granularity at which two runs of a deterministic scenario can
//! legitimately differ.

use crate::jsonv::Jv;
use std::collections::BTreeMap;

/// One metric present in both snapshots with different values.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// The metric identity: `component/name{labels} kind`.
    pub key: String,
    /// Rendered value in the first snapshot.
    pub before: String,
    /// Rendered value in the second snapshot.
    pub after: String,
}

/// The structural difference between two obs snapshots.
#[derive(Debug, Clone, Default)]
pub struct ObsDiff {
    /// Metrics only in the second snapshot, with their values.
    pub added: Vec<(String, String)>,
    /// Metrics only in the first snapshot, with their values.
    pub removed: Vec<(String, String)>,
    /// Metrics in both with different values.
    pub changed: Vec<MetricDelta>,
    /// Event names whose record counts differ: `(name, count_a, count_b)`.
    pub events: Vec<(String, u64, u64)>,
    /// Total retained event records in each snapshot.
    pub total_events: (u64, u64),
    /// `dropped_events` in each snapshot.
    pub dropped: (u64, u64),
}

impl ObsDiff {
    /// Whether the two snapshots are structurally identical.
    pub fn is_clean(&self) -> bool {
        self.added.is_empty()
            && self.removed.is_empty()
            && self.changed.is_empty()
            && self.events.is_empty()
            && self.dropped.0 == self.dropped.1
    }
}

/// Locates the obs snapshot inside a parsed document: accepts a raw
/// snapshot (`events` + `metrics` members), a scenario report
/// (`"obs": {…}`), or an array of reports — `which` selects by scenario
/// name, otherwise the array must contain exactly one report.
pub fn extract_obs<'a>(doc: &'a Jv, which: Option<&str>) -> Result<&'a Jv, String> {
    if doc.get("events").is_some() && doc.get("metrics").is_some() {
        return Ok(doc);
    }
    if let Some(obs) = doc.get("obs") {
        return extract_obs(obs, which);
    }
    if let Some(items) = doc.as_array() {
        let report = match which {
            Some(name) => items
                .iter()
                .find(|r| r.get("scenario").and_then(Jv::as_str) == Some(name))
                .ok_or_else(|| format!("no scenario named '{name}' in the report array"))?,
            None if items.len() == 1 => &items[0],
            None => {
                return Err(format!(
                    "report array has {} entries; pass a scenario name to pick one",
                    items.len()
                ))
            }
        };
        return extract_obs(report, which);
    }
    Err("document is neither an obs snapshot nor a scenario report".to_string())
}

/// Renders a metric row's value for diff display.
fn metric_value(row: &Jv) -> String {
    match row.get("kind").and_then(Jv::as_str) {
        Some("histogram") => row
            .get("buckets")
            .map(Jv::render)
            .unwrap_or_else(|| "<no buckets>".to_string()),
        _ => row
            .get("value")
            .map(Jv::render)
            .unwrap_or_else(|| "<no value>".to_string()),
    }
}

/// The metric identity key: `component/name{k=v,…} kind`. Labels are
/// emitted in snapshot order, which the registry already sorts.
fn metric_key(row: &Jv) -> String {
    let component = row.get("component").and_then(Jv::as_str).unwrap_or("?");
    let name = row.get("name").and_then(Jv::as_str).unwrap_or("?");
    let kind = row.get("kind").and_then(Jv::as_str).unwrap_or("?");
    let labels = match row.get("labels").and_then(Jv::as_object) {
        Some(members) if !members.is_empty() => {
            let pairs: Vec<String> = members
                .iter()
                .map(|(k, v)| format!("{k}={}", v.as_str().unwrap_or("?")))
                .collect();
            format!("{{{}}}", pairs.join(","))
        }
        _ => String::new(),
    };
    format!("{component}/{name}{labels} {kind}")
}

fn metric_map(snapshot: &Jv) -> Result<BTreeMap<String, String>, String> {
    let rows = snapshot
        .get("metrics")
        .and_then(Jv::as_array)
        .ok_or("snapshot has no \"metrics\" array")?;
    Ok(rows
        .iter()
        .map(|row| (metric_key(row), metric_value(row)))
        .collect())
}

fn event_counts(snapshot: &Jv) -> Result<(BTreeMap<String, u64>, u64, u64), String> {
    let rows = snapshot
        .get("events")
        .and_then(Jv::as_array)
        .ok_or("snapshot has no \"events\" array")?;
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for row in rows {
        let name = row.get("name").and_then(Jv::as_str).unwrap_or("?");
        *counts.entry(name.to_string()).or_insert(0) += 1;
    }
    let dropped = snapshot
        .get("dropped_events")
        .and_then(Jv::as_u64)
        .unwrap_or(0);
    Ok((counts, rows.len() as u64, dropped))
}

/// Computes the structural diff between two parsed obs snapshots.
pub fn diff(a: &Jv, b: &Jv) -> Result<ObsDiff, String> {
    let metrics_a = metric_map(a)?;
    let metrics_b = metric_map(b)?;
    let mut out = ObsDiff::default();
    for (key, value) in &metrics_a {
        match metrics_b.get(key) {
            None => out.removed.push((key.clone(), value.clone())),
            Some(other) if other != value => out.changed.push(MetricDelta {
                key: key.clone(),
                before: value.clone(),
                after: other.clone(),
            }),
            Some(_) => {}
        }
    }
    for (key, value) in &metrics_b {
        if !metrics_a.contains_key(key) {
            out.added.push((key.clone(), value.clone()));
        }
    }
    let (counts_a, total_a, dropped_a) = event_counts(a)?;
    let (counts_b, total_b, dropped_b) = event_counts(b)?;
    let mut names: Vec<&String> = counts_a.keys().chain(counts_b.keys()).collect();
    names.sort();
    names.dedup();
    for name in names {
        let ca = counts_a.get(name).copied().unwrap_or(0);
        let cb = counts_b.get(name).copied().unwrap_or(0);
        if ca != cb {
            out.events.push((name.clone(), ca, cb));
        }
    }
    out.total_events = (total_a, total_b);
    out.dropped = (dropped_a, dropped_b);
    Ok(out)
}

/// Parses both snapshot documents and diffs them; `which` selects a
/// scenario by name when a document is a report array.
pub fn diff_texts(a: &str, b: &str, which: Option<&str>) -> Result<ObsDiff, String> {
    let doc_a = Jv::parse(a).map_err(|e| format!("first snapshot: {e}"))?;
    let doc_b = Jv::parse(b).map_err(|e| format!("second snapshot: {e}"))?;
    diff(extract_obs(&doc_a, which)?, extract_obs(&doc_b, which)?)
}

/// Renders the diff as a stable text report (one line per difference).
pub fn render(d: &ObsDiff) -> String {
    if d.is_clean() {
        return "obs diff: snapshots are structurally identical\n".to_string();
    }
    let mut out = format!(
        "obs diff: {} added, {} removed, {} changed metric(s); {} event name(s) differ\n",
        d.added.len(),
        d.removed.len(),
        d.changed.len(),
        d.events.len()
    );
    for (key, value) in &d.removed {
        out.push_str(&format!("  - {key} = {value}\n"));
    }
    for (key, value) in &d.added {
        out.push_str(&format!("  + {key} = {value}\n"));
    }
    for delta in &d.changed {
        out.push_str(&format!(
            "  ~ {}: {} -> {}\n",
            delta.key, delta.before, delta.after
        ));
    }
    for (name, ca, cb) in &d.events {
        out.push_str(&format!("  events {name}: {ca} -> {cb}\n"));
    }
    out.push_str(&format!(
        "  events total: {} -> {} (dropped {} -> {})\n",
        d.total_events.0, d.total_events.1, d.dropped.0, d.dropped.1
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(metrics: &str, events: &str, dropped: u64) -> String {
        format!(
            "{{\"dropped_events\": {dropped}, \"events\": [{events}], \"metrics\": [{metrics}]}}"
        )
    }

    const COUNTER_A: &str = "{\"component\": \"protocol\", \"name\": \"cost.control\", \
         \"labels\": {\"op\": \"read\"}, \"kind\": \"counter\", \"value\": 3}";
    const COUNTER_A2: &str = "{\"component\": \"protocol\", \"name\": \"cost.control\", \
         \"labels\": {\"op\": \"read\"}, \"kind\": \"counter\", \"value\": 5}";
    const COUNTER_B: &str = "{\"component\": \"protocol\", \"name\": \"cost.data\", \
         \"labels\": {}, \"kind\": \"counter\", \"value\": 1}";
    const EVENT: &str = "{\"index\": 0, \"time\": 1, \"name\": \"sim.trace\", \
         \"phase\": \"point\", \"fields\": {}}";

    #[test]
    fn identical_snapshots_diff_clean() {
        let s = snap(COUNTER_A, EVENT, 0);
        let d = diff_texts(&s, &s, None).unwrap();
        assert!(d.is_clean());
        assert_eq!(
            render(&d),
            "obs diff: snapshots are structurally identical\n"
        );
    }

    #[test]
    fn added_removed_changed_and_event_deltas() {
        let a = snap(COUNTER_A, EVENT, 0);
        let b = snap(
            &format!("{COUNTER_A2}, {COUNTER_B}"),
            &format!("{EVENT}, {EVENT}"),
            2,
        );
        let d = diff_texts(&a, &b, None).unwrap();
        assert!(!d.is_clean());
        assert_eq!(d.added.len(), 1);
        assert!(d.added[0].0.contains("cost.data"));
        assert!(d.removed.is_empty());
        assert_eq!(d.changed.len(), 1);
        assert_eq!(d.changed[0].key, "protocol/cost.control{op=read} counter");
        assert_eq!(
            (d.changed[0].before.as_str(), d.changed[0].after.as_str()),
            ("3", "5")
        );
        assert_eq!(d.events, vec![("sim.trace".to_string(), 1, 2)]);
        assert_eq!(d.dropped, (0, 2));
        let text = render(&d);
        assert!(text.contains("~ protocol/cost.control{op=read} counter: 3 -> 5"));
        assert!(text.contains("dropped 0 -> 2"));
    }

    #[test]
    fn unwraps_reports_and_report_arrays() {
        let inner = snap(COUNTER_A, EVENT, 0);
        let report =
            format!("{{\"scenario\": \"append-only-6-2\", \"violations\": [], \"obs\": {inner}}}");
        let arr = format!("[{report}]");
        let d = diff_texts(&arr, &inner, None).unwrap();
        assert!(d.is_clean());
        let named = diff_texts(&arr, &inner, Some("append-only-6-2")).unwrap();
        assert!(named.is_clean());
        assert!(diff_texts(&arr, &inner, Some("missing")).is_err());
    }

    #[test]
    fn rejects_non_snapshots() {
        assert!(diff_texts("{\"x\": 1}", "{\"x\": 1}", None).is_err());
        assert!(diff_texts("not json", "{}", None).is_err());
    }
}

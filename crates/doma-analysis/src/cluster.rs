//! The real-runtime twin harness behind `domactl cluster`: runs a
//! scenario's schedule through the socket cluster **and** the
//! deterministic simulator, then structurally diffs the two runs.
//!
//! Both twins share one seed of truth: [`doma_scenario::build_schedule`]
//! materializes the request schedule, [`doma_scenario::build_spec`]
//! describes the deployment, and [`doma_protocol::ClientPlanner`] plans
//! every request identically on both sides. A correct transport layer
//! therefore has nothing left to disagree about — the diff covers the
//! per-request allocation-scheme trajectory, the exact cost totals, and
//! the byte-stable protocol obs metrics.
//!
//! Event timestamps differ between twins by construction (the sim's
//! global virtual clock vs the cluster's per-node delivery ticks), so
//! the obs comparison covers the `protocol` *metrics* — all of which
//! are delivery-order-independent counters — and excludes the event log.

use doma_core::{CostVector, DomaError, ProcSet, Request, Schedule};
use doma_net::{Cluster, TransportKind};
use doma_obs::{MetricsSnapshot, Obs};
use doma_scenario::Scenario;
use std::collections::BTreeMap;

/// The outcome of one twin run: both trajectories, both tallies, and
/// every structural difference found (empty = the runtimes agree).
#[derive(Debug, Clone)]
pub struct TwinReport {
    /// The scenario that ran.
    pub scenario: String,
    /// Cluster size (after any `--nodes` override).
    pub n: usize,
    /// The socket transport the cluster used.
    pub transport: &'static str,
    /// Requests executed by each twin.
    pub requests: usize,
    /// The sim twin's per-request valid-holder trajectory.
    pub sim_trajectory: Vec<ProcSet>,
    /// The cluster's per-request valid-holder trajectory.
    pub net_trajectory: Vec<ProcSet>,
    /// The sim twin's exact cost totals.
    pub sim_cost: CostVector,
    /// The cluster's exact cost totals.
    pub net_cost: CostVector,
    /// The sim twin's protocol obs snapshot (byte-stable JSON).
    pub sim_obs_json: String,
    /// The cluster's protocol obs snapshot (byte-stable JSON).
    pub net_obs_json: String,
    /// Every divergence, in audit order.
    pub diffs: Vec<String>,
}

impl TwinReport {
    /// Whether the cluster reproduced the sim twin exactly.
    pub fn matches(&self) -> bool {
        self.diffs.is_empty()
    }

    /// A human-readable verdict block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cluster {} ({} nodes, {} transport, {} requests)\n",
            self.scenario, self.n, self.transport, self.requests
        ));
        out.push_str(&format!(
            "  sim twin: {} control, {} data, {} I/O\n",
            self.sim_cost.control, self.sim_cost.data, self.sim_cost.io
        ));
        out.push_str(&format!(
            "  cluster:  {} control, {} data, {} I/O\n",
            self.net_cost.control, self.net_cost.data, self.net_cost.io
        ));
        if self.matches() {
            out.push_str("  parity: MATCH — trajectory, cost totals and protocol obs identical\n");
        } else {
            for d in &self.diffs {
                out.push_str(&format!("  parity: DIVERGED — {d}\n"));
            }
        }
        out
    }
}

/// Wraps filtered metrics as a standalone obs snapshot document, so the
/// twin JSONs feed straight into `domactl obs diff`.
fn obs_doc(snapshot: &MetricsSnapshot) -> String {
    format!(
        "{{\"dropped_events\": 0, \"events\": [], \"metrics\": {}}}",
        snapshot.to_json()
    )
}

/// The protocol-component slice of an obs bundle's metrics.
fn protocol_metrics(obs: &Obs) -> MetricsSnapshot {
    let snap = obs.metrics().snapshot();
    MetricsSnapshot {
        metrics: snap
            .metrics
            .into_iter()
            .filter(|(k, _)| k.component == "protocol")
            .collect(),
    }
}

/// Runs `scenario` through the socket cluster and the deterministic sim
/// and diffs the two runs. `nodes` overrides the scenario's cluster size
/// (both twins are resized, so parity still holds).
///
/// Returns `Err(DomaError::Net)` when the platform refuses sockets —
/// callers report "runtime unavailable" and skip, rather than failing.
pub fn run_twin(
    scenario: &Scenario,
    kind: TransportKind,
    nodes: Option<usize>,
) -> Result<TwinReport, String> {
    let mut scenario = scenario.clone();
    if let Some(n) = nodes {
        scenario.n = n;
    }
    if !scenario.faults.is_empty() {
        return Err(format!(
            "scenario '{}' injects faults; the real runtime executes failure-free \
             workloads only — replay it with --transport sim",
            scenario.name
        ));
    }
    let schedule =
        doma_scenario::build_schedule(&scenario).map_err(|e| format!("{}: {e}", scenario.name))?;
    let spec =
        doma_scenario::build_spec(&scenario).map_err(|e| format!("{}: {e}", scenario.name))?;
    run_twin_schedule(&scenario, spec, &schedule, kind)
}

fn run_twin_schedule(
    scenario: &Scenario,
    spec: doma_scenario::ClusterSpec,
    schedule: &Schedule,
    kind: TransportKind,
) -> Result<TwinReport, String> {
    let object = doma_protocol::ProtocolSim::object();
    let err = |e: DomaError| format!("{}: {e}", scenario.name);

    // The deterministic twin, stepped per request to record the
    // trajectory the cluster must reproduce.
    let mut sim =
        doma_scenario::build_sim(scenario).map_err(|e| format!("{}: {e}", scenario.name))?;
    let sim_obs = sim.attach_obs(scenario.events);
    let mut sim_trajectory = Vec::with_capacity(schedule.len());
    for request in schedule.iter() {
        sim.execute_request_on(object, request).map_err(err)?;
        sim_trajectory.push(sim.valid_holders_of(object));
    }
    let sim_report = sim.report();
    let sim_metrics = protocol_metrics(&sim_obs);

    // The real-runtime twin: same config, same oracle, same planner —
    // only the transport differs. Socket refusal is DomaError::Net and
    // must stay distinguishable from a parity failure.
    let mut configs = BTreeMap::new();
    configs.insert(object, spec.config);
    let oracles = spec.oracle.map(|o| (object, o)).into_iter().collect();
    let net_obs = Obs::new(scenario.events);
    let mut cluster = Cluster::new(scenario.n, configs, oracles, kind, Some(net_obs.clone()))
        .map_err(|e| match e {
            DomaError::Net(msg) => format!("sockets unavailable: {msg}"),
            other => format!("{}: {other}", scenario.name),
        })?;
    let run = (|| -> doma_core::Result<(Vec<ProcSet>, doma_net::ClusterReport)> {
        let trajectory = cluster.execute_schedule(object, schedule)?;
        let report = cluster.report()?;
        Ok((trajectory, report))
    })();
    let shutdown = cluster.shutdown();
    let (net_trajectory, net_report) = run.map_err(err)?;
    shutdown.map_err(err)?;
    let net_metrics = protocol_metrics(&net_obs);

    let mut diffs = Vec::new();
    if net_trajectory != sim_trajectory {
        let at = net_trajectory
            .iter()
            .zip(sim_trajectory.iter())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| net_trajectory.len().min(sim_trajectory.len()));
        let req: Vec<Request> = schedule.iter().collect();
        diffs.push(format!(
            "allocation-scheme trajectory diverges at request {at} ({:?}): cluster {} vs sim {}",
            req.get(at).map(|r| r.to_string()).unwrap_or_default(),
            net_trajectory
                .get(at)
                .map(|s| s.to_string())
                .unwrap_or_else(|| "<missing>".into()),
            sim_trajectory
                .get(at)
                .map(|s| s.to_string())
                .unwrap_or_else(|| "<missing>".into()),
        ));
    }
    if net_report.cost != sim_report.cost {
        diffs.push(format!(
            "cost totals: cluster {:?} vs sim {:?}",
            net_report.cost, sim_report.cost
        ));
    }
    if net_report.final_holders != sim_report.final_holders {
        diffs.push(format!(
            "final holders: cluster {} vs sim {}",
            net_report.final_holders, sim_report.final_holders
        ));
    }
    if net_report.reads_completed != sim_report.reads_completed {
        diffs.push(format!(
            "reads completed: cluster {} vs sim {}",
            net_report.reads_completed, sim_report.reads_completed
        ));
    }
    if net_report.errors > 0 {
        diffs.push(format!(
            "cluster recorded {} protocol error(s)",
            net_report.errors
        ));
    }
    let sim_obs_json = obs_doc(&sim_metrics);
    let net_obs_json = obs_doc(&net_metrics);
    if sim_obs_json != net_obs_json {
        let detail = crate::obsdiff::diff_texts(&sim_obs_json, &net_obs_json, None)
            .map(|d| crate::obsdiff::render(&d))
            .unwrap_or_else(|e| format!("(obs diff failed: {e})\n"));
        diffs.push(format!(
            "protocol obs metrics diverge:\n{}",
            detail.trim_end()
        ));
    }

    Ok(TwinReport {
        scenario: scenario.name.clone(),
        n: scenario.n,
        transport: match kind {
            TransportKind::Tcp => "tcp",
            TransportKind::Uds => "uds",
        },
        requests: schedule.len(),
        sim_trajectory,
        net_trajectory,
        sim_cost: sim_report.cost,
        net_cost: net_report.cost,
        sim_obs_json,
        net_obs_json,
        diffs,
    })
}

//! Empirical competitive-ratio measurement against the exact offline
//! optimum.

use crate::battery::NamedSchedule;
use doma_algorithms::OfflineOptimal;
use doma_core::{run_online, CostModel, OnlineDom, ProcSet, Result, Schedule};

/// One algorithm-vs-OPT measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioPoint {
    /// The online algorithm's cost.
    pub algo_cost: f64,
    /// The offline optimum's cost.
    pub opt_cost: f64,
    /// `algo_cost / opt_cost` (`f64::INFINITY` when OPT is free but the
    /// algorithm paid — possible in the mobile model; `1.0` when both are
    /// free).
    pub ratio: f64,
}

/// Measures one schedule.
pub fn measure<A: OnlineDom + ?Sized>(
    algo: &mut A,
    opt: &OfflineOptimal,
    model: &CostModel,
    schedule: &Schedule,
) -> Result<RatioPoint> {
    let algo_cost = run_online(algo, schedule)?.costed.total_cost(model);
    let opt_cost = opt.optimal_cost(schedule)?;
    let ratio = if opt_cost > 0.0 {
        algo_cost / opt_cost
    } else if algo_cost > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };
    Ok(RatioPoint {
        algo_cost,
        opt_cost,
        ratio,
    })
}

/// Worst and mean ratio over a battery.
#[derive(Debug, Clone)]
pub struct RatioSummary {
    /// The largest ratio observed.
    pub worst: f64,
    /// The name of the battery schedule achieving it.
    pub worst_witness: String,
    /// The arithmetic mean ratio (infinite points excluded; `mean_finite`
    /// is `NaN` only if every point was infinite).
    pub mean_finite: f64,
    /// How many schedules were measured.
    pub measured: usize,
    /// How many had an infinite ratio.
    pub infinite: usize,
}

/// Runs an algorithm over a whole battery and summarizes.
pub fn summarize<A: OnlineDom + ?Sized>(
    algo: &mut A,
    model: &CostModel,
    n: usize,
    battery: &[NamedSchedule],
) -> Result<RatioSummary> {
    let opt = OfflineOptimal::new(n, algo.t(), algo.initial_scheme(), *model)?;
    let mut worst = f64::NEG_INFINITY;
    let mut worst_witness = String::new();
    let mut finite_sum = 0.0;
    let mut finite_count = 0usize;
    let mut infinite = 0usize;
    for named in battery {
        let point = measure(algo, &opt, model, &named.schedule)?;
        if point.ratio > worst {
            worst = point.ratio;
            worst_witness = named.name.clone();
        }
        if point.ratio.is_finite() {
            finite_sum += point.ratio;
            finite_count += 1;
        } else {
            infinite += 1;
        }
    }
    Ok(RatioSummary {
        worst,
        worst_witness,
        mean_finite: finite_sum / finite_count.max(1) as f64,
        measured: battery.len(),
        infinite,
    })
}

/// Convenience: the standard SA and DA instances used throughout the
/// experiments (SA over `{0,1}`, DA with core `{0}` and floater `1`,
/// i.e. `t = 2`).
pub fn standard_algorithms() -> (
    doma_algorithms::StaticAllocation,
    doma_algorithms::DynamicAllocation,
) {
    let q: ProcSet = [0usize, 1].into_iter().collect();
    let sa = doma_algorithms::StaticAllocation::new(q).expect("valid Q");
    let da = doma_algorithms::DynamicAllocation::new(
        [0usize].into_iter().collect(),
        doma_core::ProcessorId::new(1),
    )
    .expect("valid F/p");
    (sa, da)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::battery::standard_battery;
    use doma_core::DomAlgorithm;

    #[test]
    fn sa_summary_respects_theorem_1() {
        let model = CostModel::stationary(0.3, 0.8).unwrap();
        let battery = standard_battery(5, 40, 2);
        let (mut sa, _) = standard_algorithms();
        let s = summarize(&mut sa, &model, 5, &battery).unwrap();
        assert!(
            s.worst <= model.sa_bound().unwrap() + 1e-9,
            "worst={}",
            s.worst
        );
        assert!(s.worst >= 1.0);
        assert!(s.mean_finite >= 1.0 && s.mean_finite <= s.worst);
        assert_eq!(s.infinite, 0);
        assert_eq!(s.measured, battery.len());
        assert!(!s.worst_witness.is_empty());
    }

    #[test]
    fn da_summary_respects_theorem_2() {
        let model = CostModel::stationary(0.3, 0.8).unwrap();
        let battery = standard_battery(5, 40, 2);
        let (_, mut da) = standard_algorithms();
        let s = summarize(&mut da, &model, 5, &battery).unwrap();
        assert!(
            s.worst <= model.da_bound().unwrap() + 1e-9,
            "worst={}",
            s.worst
        );
    }

    #[test]
    fn mobile_sa_shows_infinite_or_huge_ratios() {
        // In MC a read-only battery entry served locally by OPT is free;
        // SA still pays per remote read.
        let model = CostModel::mobile(0.3, 0.8).unwrap();
        let battery = standard_battery(5, 40, 1);
        let (mut sa, _) = standard_algorithms();
        let s = summarize(&mut sa, &model, 5, &battery).unwrap();
        assert!(
            s.worst > 10.0,
            "SA in MC should blow up on the remote-reader battery entry, got {}",
            s.worst
        );
    }

    #[test]
    fn ratio_of_identical_costs_is_one() {
        // A schedule of local reads by a member is optimal for SA itself.
        let model = CostModel::stationary(0.3, 0.8).unwrap();
        let (mut sa, _) = standard_algorithms();
        let opt = OfflineOptimal::new(4, 2, sa.initial_scheme(), model).unwrap();
        let schedule: Schedule = "r0 r1 r0".parse().unwrap();
        let p = measure(&mut sa, &opt, &model, &schedule).unwrap();
        assert!((p.ratio - 1.0).abs() < 1e-9);
    }
}

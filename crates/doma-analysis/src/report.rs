//! Minimal markdown / CSV table rendering (no serde needed — the tables
//! are small and the formats trivial).

use std::fmt::Write as _;

/// A rectangular table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (w, cell) in widths.iter().zip(cells) {
                let _ = write!(out, " {cell:<w$} |");
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas, quotes or
    /// newlines).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains(['"', ',', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let mut render = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        render(&self.header);
        for row in &self.rows {
            render(row);
        }
        out
    }
}

/// Formats an `f64` compactly for tables: up to 3 decimals, `inf` for
/// infinities, `-` for NaN.
pub fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "inf" } else { "-inf" }.to_string()
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering_aligns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.push_row(vec!["1", "2"]);
        t.push_row(vec!["wider-cell", "3"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a"));
        assert!(md.contains("| wider-cell | 3"));
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("|--"));
        // All lines equal width (aligned).
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(vec!["x", "y"]);
        t.push_row(vec!["a,b", "he said \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(
            csv.lines().nth(1).unwrap(),
            "\"a,b\",\"he said \"\"hi\"\"\""
        );
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a"]);
        t.push_row(vec!["1", "2"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1.23456), "1.235");
        assert_eq!(fmt_f64(f64::INFINITY), "inf");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-inf");
        assert_eq!(fmt_f64(f64::NAN), "-");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        t.push_row(vec!["1"]);
        assert_eq!(t.len(), 1);
    }
}

//! Schedule batteries: the fixed mix of adversarial and random schedules
//! the region maps and bound checks are measured over.

use doma_algorithms::adversary;
use doma_core::{ProcessorId, Schedule};
use doma_workload::{ScheduleGen, UniformWorkload, ZipfWorkload};

/// A named schedule (for witness reporting).
#[derive(Debug, Clone)]
pub struct NamedSchedule {
    /// Where the schedule came from ("remote-reader", "uniform-0.5/seed3"…).
    pub name: String,
    /// The schedule itself.
    pub schedule: Schedule,
}

/// The standard battery over `n` processors (`n ≥ 4`): the paper's
/// adversarial patterns plus seeded uniform/Zipf workloads at several
/// read fractions.
///
/// Conventions (shared with the experiments): SA's scheme is `{0, 1}`,
/// DA's core is `{0}` with floater `1`, so processors `2..n` are the
/// "outsiders" the adversaries exercise.
pub fn standard_battery(n: usize, len: usize, seeds: u64) -> Vec<NamedSchedule> {
    battery_with_outsiders(n, len, seeds, 2)
}

/// Like [`standard_battery`], but with the adversarial "outsider"
/// processors starting at `first_outsider` — used by the t-independence
/// experiment, where the scheme is `{0..t}` and outsiders must start at
/// `t`.
pub fn battery_with_outsiders(
    n: usize,
    len: usize,
    seeds: u64,
    first_outsider: usize,
) -> Vec<NamedSchedule> {
    assert!(n >= 4, "battery needs at least 4 processors");
    assert!(
        first_outsider + 1 < n,
        "need two outsiders within the universe"
    );
    let outsider = ProcessorId::new(first_outsider);
    let outsider2 = ProcessorId::new(first_outsider + 1);
    let insider = ProcessorId::new(0);
    let mut battery = vec![
        NamedSchedule {
            name: "remote-reader".into(),
            schedule: adversary::remote_reader(outsider, len),
        },
        NamedSchedule {
            name: "read-write-ping-pong".into(),
            schedule: adversary::read_write_ping_pong(outsider, insider, len / 2),
        },
        NamedSchedule {
            name: "rotating-reader".into(),
            schedule: adversary::rotating_reader(&[outsider, outsider2], insider, len / 3),
        },
        NamedSchedule {
            name: "bursty-reader".into(),
            schedule: adversary::bursty_reader(outsider, insider, 4, len / 5),
        },
        NamedSchedule {
            name: "write-heavy-outsider".into(),
            schedule: adversary::bursty_reader(outsider, outsider2, 1, len / 2),
        },
    ];
    for seed in 0..seeds {
        for read_fraction in [0.25, 0.5, 0.9] {
            let g = UniformWorkload::new(n, read_fraction).expect("valid");
            battery.push(NamedSchedule {
                name: format!("uniform-{read_fraction}/seed{seed}"),
                schedule: g.generate(len, seed),
            });
        }
        let g = ZipfWorkload::new(n, 1.0, 0.8).expect("valid");
        battery.push(NamedSchedule {
            name: format!("zipf-0.8/seed{seed}"),
            schedule: g.generate(len, seed),
        });
    }
    battery
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_composition() {
        let b = standard_battery(5, 30, 2);
        assert_eq!(b.len(), 5 + 2 * 4);
        assert!(b.iter().all(|s| !s.schedule.is_empty()));
        assert!(b.iter().all(|s| s.schedule.min_processors() <= 5));
        // Names are unique.
        let mut names: Vec<&str> = b.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), b.len());
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn battery_needs_four_processors() {
        let _ = standard_battery(3, 30, 1);
    }
}

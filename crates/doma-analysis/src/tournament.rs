//! The algorithm tournament: every first-class allocator run as a real
//! message-passing protocol over every workload generator, priced on a
//! `(cc, cd)` cost-model grid and measured against the exact offline
//! optimum.
//!
//! Each entrant executes once per workload through [`ProtocolSim`] (SA and
//! DA natively, the adaptive allocators as driver-side plan oracles) with
//! the observability bundle attached. A run is rejected unless the summed
//! `protocol.cost.*` registry counters equal the simulator's exact tallies
//! — the tournament doubles as a differential test of the obs pipeline.
//! The measured tally is then priced under every grid model and divided by
//! [`OfflineOptimal`]'s exact cost, yielding the measured competitive
//! ratio per cell (the Figure 1/Figure 2 quantity). Where the paper proves
//! a bound (SA Theorem 1; DA Theorems 2–4) the cell also records it and
//! whether the measurement respects it.
//!
//! Everything is deterministic: fixed seeds, fixed iteration order, fixed
//! float formatting — [`render_json`] is byte-identical across runs.

use doma_algorithms::{
    ClusteredAllocation, CostOblivious, MobileMirror, OfflineOptimal, SlidingWindowConvergent,
    WriteInvalidateCache,
};
use doma_core::{CostModel, CostVector, DomaError, ProcSet, ProcessorId, Result, Schedule};
use doma_protocol::{PlanOracle, ProtocolSim};
use doma_workload::{
    ChaoticWorkload, HotspotWorkload, MobileWorkload, ScheduleGen, UniformWorkload, ZipfWorkload,
};

/// Tournament dimensions: universe size, schedule length and the seed fed
/// to every workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TournamentSpec {
    /// Processors in the simulated cluster.
    pub n: usize,
    /// Requests per generated schedule.
    pub len: usize,
    /// Workload generator seed.
    pub seed: u64,
}

impl Default for TournamentSpec {
    fn default() -> Self {
        TournamentSpec {
            n: 6,
            len: 40,
            seed: 7,
        }
    }
}

/// One `(algorithm, workload, model)` cell of the tournament.
#[derive(Debug, Clone)]
pub struct TournamentCell {
    /// Algorithm label (matches the obs `algo` metric label).
    pub algo: &'static str,
    /// Workload generator name.
    pub workload: String,
    /// `"sc"` (stationary) or `"mc"` (mobile).
    pub environment: &'static str,
    /// Control-message unit cost of the cell's model.
    pub cc: f64,
    /// Data-message unit cost of the cell's model.
    pub cd: f64,
    /// The simulator's exact resource tally for this (algo, workload) run.
    pub measured: CostVector,
    /// The measured tally priced under the cell's model.
    pub algo_cost: f64,
    /// The exact offline optimum for the same schedule, threshold and
    /// initial scheme.
    pub opt_cost: f64,
    /// `algo_cost / opt_cost` (`f64::INFINITY` when OPT is free but the
    /// algorithm paid; `1.0` when both are free).
    pub ratio: f64,
    /// The paper's competitiveness bound where one exists (SA in SC, DA in
    /// SC and MC), else `None`.
    pub bound: Option<f64>,
}

impl TournamentCell {
    /// Whether the measured ratio respects the paper bound (`None` when no
    /// bound applies).
    pub fn within_bound(&self) -> Option<bool> {
        self.bound.map(|b| self.ratio <= b + 1e-9)
    }
}

/// How an entrant is realized on the protocol simulator.
enum Kind {
    Sa,
    Da,
    Adaptive(fn(usize) -> Result<Box<dyn PlanOracle>>),
}

/// One first-class allocator entered in the tournament.
struct Entrant {
    name: &'static str,
    t: usize,
    initial: ProcSet,
    kind: Kind,
}

fn pair() -> ProcSet {
    [0usize, 1].into_iter().collect()
}

/// The six-plus-one field: SA, DA, the two promoted ablation baselines and
/// the three contenders. Names match [`doma_protocol::AdaptiveAlgo`]'s
/// metric labels.
fn entrants() -> Vec<Entrant> {
    vec![
        Entrant {
            name: "sa",
            t: 2,
            initial: pair(),
            kind: Kind::Sa,
        },
        Entrant {
            name: "da",
            t: 2,
            initial: pair(),
            kind: Kind::Da,
        },
        Entrant {
            name: "convergent",
            t: 2,
            initial: pair(),
            kind: Kind::Adaptive(|n| {
                Ok(Box::new(SlidingWindowConvergent::new(n, 2, pair(), 8, 4)?))
            }),
        },
        Entrant {
            name: "write-invalidate",
            t: 1,
            initial: pair(),
            kind: Kind::Adaptive(|_| Ok(Box::new(WriteInvalidateCache::new(pair())?))),
        },
        Entrant {
            name: "cost-oblivious",
            t: 2,
            initial: pair(),
            kind: Kind::Adaptive(|n| Ok(Box::new(CostOblivious::new(n, 2, pair(), 2)?))),
        },
        Entrant {
            name: "mobile-mirror",
            t: 2,
            initial: pair(),
            kind: Kind::Adaptive(|n| Ok(Box::new(MobileMirror::new(n, 2, pair())?))),
        },
        Entrant {
            name: "clustered",
            t: 2,
            initial: pair(),
            kind: Kind::Adaptive(|n| Ok(Box::new(ClusteredAllocation::new(n, 2, pair())?))),
        },
    ]
}

/// The workload roster (every single-object generator the repo ships).
fn workloads(n: usize) -> Result<Vec<Box<dyn ScheduleGen>>> {
    Ok(vec![
        Box::new(UniformWorkload::new(n, 0.7)?),
        Box::new(ZipfWorkload::new(n, 1.0, 0.7)?),
        Box::new(HotspotWorkload::new(n, 10, 0.8)?),
        Box::new(ChaoticWorkload::new(n, 8)?),
        Box::new(MobileWorkload::new(n / 2, n - n / 2 - 1, 0.3, 0.6)?),
    ])
}

/// The `(cc, cd)` grid crossed with both environments — the corners of
/// the Figure 1 (SC) and Figure 2 (MC) planes.
pub fn standard_grid() -> Vec<CostModel> {
    let mut models = Vec::new();
    for &cc in &[0.25, 1.0] {
        for &cd in &[1.0, 4.0] {
            models.push(CostModel::stationary(cc, cd).expect("valid grid model"));
            models.push(CostModel::mobile(cc, cd).expect("valid grid model"));
        }
    }
    models
}

fn env_label(model: &CostModel) -> &'static str {
    if model.cio() > 0.0 {
        "sc"
    } else {
        "mc"
    }
}

fn paper_bound(algo: &str, model: &CostModel) -> Option<f64> {
    match algo {
        "sa" => model.sa_bound(),
        "da" => model.da_bound(),
        _ => None,
    }
}

/// Executes one entrant over one schedule through the protocol simulator
/// with obs attached, returning the exact measured tally after the
/// registry-parity check.
fn measure_protocol(entrant: &Entrant, n: usize, schedule: &Schedule) -> Result<CostVector> {
    let mut sim = match &entrant.kind {
        Kind::Sa => ProtocolSim::new_sa(n, entrant.initial)?,
        Kind::Da => ProtocolSim::new_da(n, ProcSet::from_iter([0usize]), ProcessorId::new(1))?,
        Kind::Adaptive(make) => ProtocolSim::new_adaptive(n, make(n)?)?,
    };
    let obs = sim.attach_obs(64);
    let report = sim.execute(schedule)?;
    sim.obs_flush();
    if report.dropped_messages != 0 {
        return Err(DomaError::InvalidConfig(format!(
            "tournament run dropped {} messages ({} failure-free)",
            report.dropped_messages, entrant.name
        )));
    }
    let snap = obs.metrics().snapshot();
    let counted = CostVector::new(
        snap.sum_counters("protocol", "cost.control"),
        snap.sum_counters("protocol", "cost.data"),
        snap.sum_counters("protocol", "cost.io"),
    );
    if counted != report.cost {
        return Err(DomaError::InvalidConfig(format!(
            "obs parity violation for {}: registry {:?} vs simulator {:?}",
            entrant.name, counted, report.cost
        )));
    }
    Ok(report.cost)
}

/// Runs the full tournament: every entrant × every workload × every grid
/// model, in a fixed deterministic order (algorithm, then workload, then
/// model).
pub fn run_tournament(spec: &TournamentSpec) -> Result<Vec<TournamentCell>> {
    let grid = standard_grid();
    let mut cells = Vec::new();
    for entrant in &entrants() {
        for gen in &workloads(spec.n)? {
            let schedule = gen.generate(spec.len, spec.seed);
            let measured = measure_protocol(entrant, spec.n, &schedule)?;
            for model in &grid {
                let opt = OfflineOptimal::new(spec.n, entrant.t, entrant.initial, *model)?;
                let opt_cost = opt.optimal_cost(&schedule)?;
                let algo_cost = measured.eval(model);
                let ratio = if opt_cost > 0.0 {
                    algo_cost / opt_cost
                } else if algo_cost > 0.0 {
                    f64::INFINITY
                } else {
                    1.0
                };
                cells.push(TournamentCell {
                    algo: entrant.name,
                    workload: gen.name().to_string(),
                    environment: env_label(model),
                    cc: model.cc(),
                    cd: model.cd(),
                    measured,
                    algo_cost,
                    opt_cost,
                    ratio,
                    bound: paper_bound(entrant.name, model),
                });
            }
        }
    }
    Ok(cells)
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |b| format!("{b:.4}"))
}

fn json_opt_bool(v: Option<bool>) -> String {
    v.map_or_else(|| "null".to_string(), |b| b.to_string())
}

/// Renders the tournament as the repo's flat-JSON-array bench convention
/// (one record per line, fixed float formatting — byte-identical across
/// runs of the same spec).
pub fn render_json(spec: &TournamentSpec, cells: &[TournamentCell]) -> String {
    let mut out = String::from("[\n");
    for cell in cells {
        out.push_str(&format!(
            "  {{\"group\": \"tournament\", \"algo\": \"{}\", \"workload\": \"{}\", \
             \"model\": \"{}\", \"cc\": {:.2}, \"cd\": {:.2}, \
             \"control\": {}, \"data\": {}, \"io\": {}, \
             \"algo_cost\": {}, \"opt_cost\": {}, \"ratio\": {}, \
             \"bound\": {}, \"within_bound\": {}}},\n",
            cell.algo,
            cell.workload,
            cell.environment,
            cell.cc,
            cell.cd,
            cell.measured.control,
            cell.measured.data,
            cell.measured.io,
            json_f64(cell.algo_cost),
            json_f64(cell.opt_cost),
            json_f64(cell.ratio),
            json_opt(cell.bound),
            json_opt_bool(cell.within_bound()),
        ));
    }
    let algos = cells
        .iter()
        .map(|c| c.algo)
        .collect::<std::collections::BTreeSet<_>>();
    let gens = cells
        .iter()
        .map(|c| c.workload.as_str())
        .collect::<std::collections::BTreeSet<_>>();
    let models = cells
        .iter()
        .map(|c| (c.environment, format!("{:.2}/{:.2}", c.cc, c.cd)))
        .collect::<std::collections::BTreeSet<_>>();
    out.push_str(&format!(
        "  {{\"attachment\": \"tournament/spec\", \"payload\": {{\"n\": {}, \"len\": {}, \
         \"seed\": {}, \"algorithms\": {}, \"workloads\": {}, \"models\": {}, \"cells\": {}}}}}\n]\n",
        spec.n,
        spec.len,
        spec.seed,
        algos.len(),
        gens.len(),
        models.len(),
        cells.len(),
    ));
    out
}

/// Renders a human-readable summary: one line per cell plus a per-entrant
/// worst-ratio standings table.
pub fn render_table(cells: &[TournamentCell]) -> String {
    let mut out = String::new();
    out.push_str("algo              workload  model cc    cd     cost      opt     ratio  bound\n");
    for cell in cells {
        let bound = cell
            .bound
            .map_or_else(|| "-".to_string(), |b| format!("{b:.2}"));
        out.push_str(&format!(
            "{:<17} {:<9} {:<5} {:<5.2} {:<5.2} {:>8.2} {:>8.2} {:>9} {:>6}\n",
            cell.algo,
            cell.workload,
            cell.environment,
            cell.cc,
            cell.cd,
            cell.algo_cost,
            cell.opt_cost,
            if cell.ratio.is_finite() {
                format!("{:.4}", cell.ratio)
            } else {
                "inf".to_string()
            },
            bound,
        ));
    }
    out.push_str("\nstandings (worst measured ratio, finite cells):\n");
    let mut worst: Vec<(&str, f64)> = Vec::new();
    for cell in cells {
        if !cell.ratio.is_finite() {
            continue;
        }
        match worst.iter_mut().find(|(a, _)| *a == cell.algo) {
            Some((_, w)) => *w = w.max(cell.ratio),
            None => worst.push((cell.algo, cell.ratio)),
        }
    }
    worst.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    for (rank, (algo, ratio)) in worst.iter().enumerate() {
        out.push_str(&format!("  {}. {:<17} {:.4}\n", rank + 1, algo, ratio));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tournament_covers_the_full_grid() {
        let spec = TournamentSpec::default();
        let cells = run_tournament(&spec).unwrap();
        // 7 algorithms × 5 workloads × 8 models.
        assert_eq!(cells.len(), 7 * 5 * 8);
        let algos: std::collections::BTreeSet<_> = cells.iter().map(|c| c.algo).collect();
        assert_eq!(
            algos.into_iter().collect::<Vec<_>>(),
            vec![
                "clustered",
                "convergent",
                "cost-oblivious",
                "da",
                "mobile-mirror",
                "sa",
                "write-invalidate"
            ]
        );
        for cell in &cells {
            assert!(
                cell.ratio >= 1.0 - 1e-9,
                "{} on {} ({} cc={} cd={}) beat OPT: ratio {}",
                cell.algo,
                cell.workload,
                cell.environment,
                cell.cc,
                cell.cd,
                cell.ratio
            );
        }
    }

    #[test]
    fn sa_and_da_respect_paper_bounds_on_every_cell() {
        let cells = run_tournament(&TournamentSpec::default()).unwrap();
        for cell in cells.iter().filter(|c| c.bound.is_some()) {
            assert_eq!(
                cell.within_bound(),
                Some(true),
                "{} on {} ({} cc={} cd={}): ratio {} exceeds bound {:?}",
                cell.algo,
                cell.workload,
                cell.environment,
                cell.cc,
                cell.cd,
                cell.ratio,
                cell.bound
            );
        }
    }

    #[test]
    fn json_rendering_is_deterministic_and_structured() {
        let spec = TournamentSpec {
            n: 5,
            len: 20,
            seed: 3,
        };
        let a = render_json(&spec, &run_tournament(&spec).unwrap());
        let b = render_json(&spec, &run_tournament(&spec).unwrap());
        assert_eq!(a, b);
        assert!(a.starts_with("[\n"));
        assert!(a.ends_with("]\n"));
        assert!(a.contains("\"group\": \"tournament\""));
        assert!(a.contains("\"attachment\": \"tournament/spec\""));
        assert!(a.contains("\"algo\": \"write-invalidate\""));
        // No bare infinities may leak into the JSON.
        assert!(!a.contains("inf"));
    }

    #[test]
    fn table_lists_standings_for_every_entrant() {
        let spec = TournamentSpec {
            n: 5,
            len: 20,
            seed: 3,
        };
        let table = render_table(&run_tournament(&spec).unwrap());
        assert!(table.contains("standings"));
        for name in [
            "sa",
            "da",
            "convergent",
            "write-invalidate",
            "cost-oblivious",
            "mobile-mirror",
            "clustered",
        ] {
            assert!(table.contains(name), "missing {name} in standings table");
        }
    }
}

//! One driver per experiment (the E-ids of DESIGN.md §4). Each returns an
//! [`ExpReport`]: a rendered table plus machine-readable `metrics` the
//! integration tests assert on and the `repro` binary prints.

use crate::battery::standard_battery;
use crate::ratio::{standard_algorithms, summarize};
use crate::region::{empirical_region_map, RegionConfig, RegionMap};
use crate::report::{fmt_f64, Table};
use crate::sweep::{da_crossover, read_write_mix_sweep, SweepConfig};
use doma_algorithms::baselines::{DaNoSave, SlidingWindowConvergent, WriteInvalidateCache};
use doma_algorithms::search::{exhaustive_worst_case, SearchConfig};
use doma_algorithms::{adversary, DynamicAllocation, OfflineOptimal, StaticAllocation};
use doma_core::{
    run_online, CostModel, DomAlgorithm, Environment, OnlineDom, ProcSet, ProcessorId, Result,
};
use doma_protocol::ProtocolSim;
use doma_workload::{AppendOnlyWorkload, ChaoticWorkload, HotspotWorkload, ScheduleGen};
use std::collections::BTreeMap;

/// A rendered, machine-checkable experiment result.
#[derive(Debug, Clone)]
pub struct ExpReport {
    /// Experiment id ("E1", …).
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// The main table (what the paper's figure/claim reduces to).
    pub table: Table,
    /// Free-form notes (witnesses, configs).
    pub notes: Vec<String>,
    /// Named scalar results for assertions.
    pub metrics: BTreeMap<String, f64>,
}

impl ExpReport {
    fn new(id: &'static str, title: impl Into<String>, table: Table) -> Self {
        ExpReport {
            id,
            title: title.into(),
            table,
            notes: Vec::new(),
            metrics: BTreeMap::new(),
        }
    }

    /// Renders the report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "## {} — {}\n\n{}",
            self.id,
            self.title,
            self.table.to_markdown()
        );
        for note in &self.notes {
            out.push_str(&format!("\n> {note}\n"));
        }
        out
    }
}

fn region_report(
    id: &'static str,
    env: Environment,
    config: &RegionConfig,
) -> Result<(ExpReport, RegionMap)> {
    let map = empirical_region_map(env, config)?;
    let mut table = Table::new(vec![
        "cc",
        "cd",
        "SA worst ratio",
        "DA worst ratio",
        "measured",
        "paper",
    ]);
    for p in &map.points {
        table.push_row(vec![
            format!("{:.2}", p.cc),
            format!("{:.2}", p.cd),
            fmt_f64(p.sa_worst),
            fmt_f64(p.da_worst),
            p.measured.to_string(),
            p.analytic.to_string(),
        ]);
    }
    let mut report = ExpReport::new(
        id,
        format!(
            "Figure {} — {env} region map (n={}, battery len {}, {} seeds)",
            if env == Environment::Stationary { 1 } else { 2 },
            config.n,
            config.schedule_len,
            config.seeds
        ),
        table,
    );
    report.notes.push(map.render(false));
    report.notes.push(map.render(true));
    report
        .metrics
        .insert("agreement".into(), map.agreement_with_paper());
    Ok((report, map))
}

/// E1: Figure 1 (stationary computing region map).
pub fn fig1(config: &RegionConfig) -> Result<ExpReport> {
    region_report("E1", Environment::Stationary, config).map(|(r, _)| r)
}

/// E2: Figure 2 (mobile computing region map).
pub fn fig2(config: &RegionConfig) -> Result<ExpReport> {
    region_report("E2", Environment::Mobile, config).map(|(r, _)| r)
}

/// E3: Theorem 1 + Proposition 1 — SA is tightly `(1+cc+cd)`-competitive
/// in SC: the measured worst ratio never exceeds the bound and the
/// remote-reader adversary approaches it as the schedule grows.
pub fn thm1_sa_tightness(lengths: &[usize]) -> Result<ExpReport> {
    let model = CostModel::stationary(0.5, 1.5).expect("valid");
    let bound = model.sa_bound().expect("SC");
    let (mut sa, _) = standard_algorithms();
    let opt = OfflineOptimal::new(5, 2, sa.initial_scheme(), model)?;
    let mut table = Table::new(vec![
        "schedule length",
        "SA/OPT ratio",
        "bound 1+cc+cd",
        "% of bound",
    ]);
    let mut last_ratio = 0.0;
    for &len in lengths {
        let schedule = adversary::remote_reader(ProcessorId::new(2), len);
        let point = crate::ratio::measure(&mut sa, &opt, &model, &schedule)?;
        table.push_row(vec![
            len.to_string(),
            fmt_f64(point.ratio),
            fmt_f64(bound),
            format!("{:.1}%", 100.0 * point.ratio / bound),
        ]);
        last_ratio = point.ratio;
    }
    // Upper-bound validation over the battery too.
    let battery = standard_battery(5, 60, 3);
    let battery_worst = summarize(&mut sa, &model, 5, &battery)?;
    let mut report = ExpReport::new(
        "E3",
        format!(
            "Theorem 1 / Proposition 1 — SA tight ({}) at cc=0.5, cd=1.5",
            fmt_f64(bound)
        ),
        table,
    );
    report.notes.push(format!(
        "battery worst ratio {} (witness: {}) — must be <= bound {}",
        fmt_f64(battery_worst.worst),
        battery_worst.worst_witness,
        fmt_f64(bound)
    ));
    report.metrics.insert("bound".into(), bound);
    report.metrics.insert("adversary_ratio".into(), last_ratio);
    report
        .metrics
        .insert("battery_worst".into(), battery_worst.worst);
    Ok(report)
}

/// E4/E5: Theorems 2 & 3 — DA's upper bounds in SC, validated over the
/// battery and exhaustive short-schedule search at several `(cc, cd)`
/// points (both `cd ≤ 1`, bound `2+2cc`, and `cd > 1`, bound `2+cc`).
pub fn thm23_da_upper_bounds() -> Result<ExpReport> {
    let points = [
        (0.1, 0.5),
        (0.3, 0.8),
        (0.5, 1.0),
        (0.2, 1.5), // cd > 1 → Theorem 3 regime
        (0.8, 2.0),
    ];
    let mut table = Table::new(vec![
        "cc",
        "cd",
        "bound",
        "battery worst",
        "exhaustive worst (len 5, n 3)",
        "within bound",
    ]);
    let mut max_frac: f64 = 0.0;
    for (cc, cd) in points {
        let model = CostModel::stationary(cc, cd).expect("valid");
        let bound = model.da_bound().expect("SC");
        let (_, mut da) = standard_algorithms();
        let battery = standard_battery(5, 48, 2);
        let battery_worst = summarize(&mut da, &model, 5, &battery)?.worst;
        let search = exhaustive_worst_case(
            &mut da,
            &SearchConfig {
                n: 3,
                t: 2,
                len: 5,
                model,
            },
        )?;
        let worst = battery_worst.max(search.ratio);
        max_frac = max_frac.max(worst / bound);
        table.push_row(vec![
            format!("{cc:.2}"),
            format!("{cd:.2}"),
            fmt_f64(bound),
            fmt_f64(battery_worst),
            fmt_f64(search.ratio),
            (worst <= bound + 1e-9).to_string(),
        ]);
    }
    let mut report = ExpReport::new(
        "E4/E5",
        "Theorems 2 & 3 — DA upper bounds (2+2cc; 2+cc when cd>1)",
        Table::new(vec![""]), // replaced below
    );
    report.table = table;
    report
        .metrics
        .insert("max_fraction_of_bound".into(), max_frac);
    Ok(report)
}

/// E6: Proposition 2 — DA is not better than 1.5-competitive: exhaustive
/// search with vanishing communication costs exhibits a witness schedule
/// with ratio approaching 1.5 from below (the bound concerns the limit).
pub fn prop2_da_lower_bound(wide: bool) -> Result<ExpReport> {
    use doma_algorithms::search::amplified_ratio;
    let model = CostModel::stationary(0.01, 0.01).expect("valid");
    let mut table = Table::new(vec!["exhibit", "DA/OPT ratio", "witness pattern"]);
    let mut best_finite = 0.0f64;
    let mut best_witness = doma_core::Schedule::new();
    // Exhaustive short-schedule searches (prefix ratios include the
    // additive constant β of the competitiveness definition).
    for len in [4usize, 5, 6] {
        let (_, mut da) = standard_algorithms();
        let r = exhaustive_worst_case(
            &mut da,
            &SearchConfig {
                n: 3,
                t: 2,
                len,
                model,
            },
        )?;
        if r.ratio > best_finite {
            best_finite = r.ratio;
            best_witness = r.witness.clone();
        }
        table.push_row(vec![
            format!("exhaustive len {len}"),
            fmt_f64(r.ratio),
            r.witness.to_string(),
        ]);
    }
    // The asymptotic exhibit: amplify the best witness by repetition so β
    // washes out; the converged value is the honest lower-bound evidence.
    let cfg = SearchConfig {
        n: 3,
        t: 2,
        len: best_witness.len(),
        model,
    };
    let mut amplified = 0.0;
    for repeats in [10usize, 50, 200] {
        let (_, mut da) = standard_algorithms();
        amplified = amplified_ratio(&mut da, &cfg, &best_witness, repeats)?;
        table.push_row(vec![
            format!("witness x{repeats}"),
            fmt_f64(amplified),
            format!("({} requests)", best_witness.len() * repeats),
        ]);
    }
    // Direct asymptotic optimization: exhaust all short *patterns* and
    // rank them by their ratio when repeated many times. The wide search
    // (n = 4, pattern length 6) finds the paper's 1.5: the cycle
    // `w3 r2 r1` costs DA ≈ 6 I/Os (outsider write + two re-joining
    // saving-reads) while OPT keeps {1,2} and pays 4.
    let mut best_pattern_ratio = 0.0;
    let mut searches: Vec<(usize, usize)> = vec![(3, 3), (3, 4), (3, 5)];
    if wide {
        searches.push((4, 5));
        searches.push((4, 6));
    }
    for (n, pattern_len) in searches {
        let (_, mut da) = standard_algorithms();
        let r = doma_algorithms::search::best_amplified_pattern(
            &mut da,
            &SearchConfig {
                n,
                t: 2,
                len: pattern_len,
                model,
            },
            pattern_len,
            60,
        )?;
        best_pattern_ratio = f64::max(best_pattern_ratio, r.ratio);
        table.push_row(vec![
            format!("best pattern n {n} len {pattern_len} x60"),
            fmt_f64(r.ratio),
            r.witness.to_string(),
        ]);
    }
    let mut report = ExpReport::new(
        "E6",
        "Proposition 2 — DA lower bound: worst-case search + asymptotic amplification (cc=cd=0.01)",
        table,
    );
    report.notes.push(format!(
        "best short-schedule ratio {} on '{best_witness}'; best *sustained* \
         (asymptotic) ratio {} — the wide (n=4, len-6) pattern search finds \
         ratio ≈ 1.50, i.e. the paper's Proposition 2 lower bound, realized \
         by repeating `w3 r2 r1`; no pattern ever exceeded DA's Theorem 2 \
         upper bound",
        fmt_f64(best_finite),
        fmt_f64(best_pattern_ratio.max(amplified))
    ));
    report.metrics.insert("best_ratio".into(), best_finite);
    report.metrics.insert("amplified_ratio".into(), amplified);
    report
        .metrics
        .insert("best_pattern_ratio".into(), best_pattern_ratio);
    Ok(report)
}

/// E7: Proposition 3 — SA is not competitive in MC: the remote-reader
/// ratio grows linearly with schedule length.
pub fn prop3_sa_mc_divergence(lengths: &[usize]) -> Result<ExpReport> {
    let model = CostModel::mobile(0.5, 1.5).expect("valid");
    let (mut sa, _) = standard_algorithms();
    let opt = OfflineOptimal::new(5, 2, sa.initial_scheme(), model)?;
    let mut table = Table::new(vec!["schedule length", "SA/OPT ratio"]);
    let mut ratios = Vec::new();
    for &len in lengths {
        let schedule = adversary::remote_reader(ProcessorId::new(2), len);
        let point = crate::ratio::measure(&mut sa, &opt, &model, &schedule)?;
        table.push_row(vec![len.to_string(), fmt_f64(point.ratio)]);
        ratios.push(point.ratio);
    }
    let mut report = ExpReport::new(
        "E7",
        "Proposition 3 — SA is not competitive in MC (ratio grows with length)",
        table,
    );
    if let (Some(first), Some(last)) = (ratios.first(), ratios.last()) {
        report.metrics.insert("growth".into(), last / first);
    }
    Ok(report)
}

/// E8: Theorem 4 — DA is `(2 + 3·cc/cd)`-competitive in MC (≤ 5).
pub fn thm4_da_mobile() -> Result<ExpReport> {
    let ratios = [0.05, 0.25, 0.5, 0.75, 1.0];
    let mut table = Table::new(vec![
        "cc/cd",
        "bound 2+3cc/cd",
        "battery worst",
        "within bound",
    ]);
    let mut max_frac: f64 = 0.0;
    for r in ratios {
        let cd = 1.0;
        let cc = r * cd;
        let model = CostModel::mobile(cc, cd).expect("valid");
        let bound = model.da_bound().expect("cd > 0");
        let (_, mut da) = standard_algorithms();
        let battery = standard_battery(5, 48, 2);
        let worst = summarize(&mut da, &model, 5, &battery)?.worst;
        max_frac = max_frac.max(worst / bound);
        table.push_row(vec![
            format!("{r:.2}"),
            fmt_f64(bound),
            fmt_f64(worst),
            (worst <= bound + 1e-9).to_string(),
        ]);
    }
    let mut report = ExpReport::new(
        "E8",
        "Theorem 4 — DA in MC, bound 2+3cc/cd (≤5)",
        Table::new(vec![""]),
    );
    report.table = table;
    report
        .metrics
        .insert("max_fraction_of_bound".into(), max_frac);
    Ok(report)
}

/// E9: the §1.3 trade-off measured on average-case workloads: mean cost
/// per request vs read fraction, with the DA-beats-SA crossover.
pub fn sweep_e9(model: CostModel) -> Result<ExpReport> {
    let config = SweepConfig::default_for(model);
    let points = read_write_mix_sweep(&config)?;
    let mut table = Table::new(vec!["read fraction", "SA", "DA", "Convergent"]);
    for p in &points {
        table.push_row(vec![
            format!("{:.2}", p.read_fraction),
            fmt_f64(p.sa),
            fmt_f64(p.da),
            fmt_f64(p.convergent),
        ]);
    }
    let crossover = da_crossover(&points);
    let mut report = ExpReport::new(
        "E9",
        format!(
            "Read/write-mix sweep ({} model, cc={}, cd={}): mean cost per request",
            model.environment(),
            model.cc(),
            model.cd()
        ),
        table,
    );
    if let Some(c) = crossover {
        report
            .notes
            .push(format!("DA overtakes SA at read fraction ≈ {c:.2}"));
        report.metrics.insert("crossover".into(), c);
    } else {
        report.notes.push("no crossover in the swept range".into());
    }
    Ok(report)
}

/// E10: the §1.3 worked example `r1 r1 r2 w2 r2 r2 r2` — exact costs of
/// static vs dynamic vs OPT.
pub fn example13() -> Result<ExpReport> {
    let model = CostModel::stationary(0.5, 1.0).expect("valid");
    let schedule = adversary::section_1_3_example();
    let q: ProcSet = [0usize, 1].into_iter().collect();
    let mut sa = StaticAllocation::new(q)?;
    let mut da = DynamicAllocation::new([1usize].into_iter().collect(), ProcessorId::new(0))?;
    let opt = OfflineOptimal::new(3, 2, q, model)?;
    let sa_cost = run_online(&mut sa, &schedule)?.costed.total_cost(&model);
    let da_cost = run_online(&mut da, &schedule)?.costed.total_cost(&model);
    let opt_cost = opt.optimal_cost(&schedule)?;
    let mut table = Table::new(vec!["algorithm", "total cost", "vs OPT"]);
    for (name, cost) in [("SA", sa_cost), ("DA", da_cost), ("OPT", opt_cost)] {
        table.push_row(vec![
            name.to_string(),
            fmt_f64(cost),
            fmt_f64(cost / opt_cost),
        ]);
    }
    let mut report = ExpReport::new(
        "E10",
        format!("§1.3 example '{schedule}' (SC, cc=0.5, cd=1.0, t=2)"),
        table,
    );
    report.metrics.insert("sa".into(), sa_cost);
    report.metrics.insert("da".into(), da_cost);
    report.metrics.insert("opt".into(), opt_cost);
    Ok(report)
}

/// E11: the §2 mobile deployment, run as a *real protocol* on the
/// discrete-event simulator; tallies must equal the analytic prediction.
pub fn mobile_e11(schedule_len: usize, seed: u64) -> Result<ExpReport> {
    let workload = doma_workload::MobileWorkload::new(3, 4, 0.3, 0.7)?;
    let n = workload.universe();
    let schedule = workload.generate(schedule_len, seed);

    let mut sim = ProtocolSim::mobile(n)?;
    let sim_report = sim.execute(&schedule)?;

    let mut da = DynamicAllocation::new([0usize].into_iter().collect(), ProcessorId::new(1))?;
    let analytic = run_online(&mut da, &schedule)?;

    let mut table = Table::new(vec!["tally", "simulated protocol", "analytic model"]);
    table.push_row(vec![
        "control messages".to_string(),
        sim_report.cost.control.to_string(),
        analytic.costed.total.control.to_string(),
    ]);
    table.push_row(vec![
        "data messages".to_string(),
        sim_report.cost.data.to_string(),
        analytic.costed.total.data.to_string(),
    ]);
    table.push_row(vec![
        "I/O operations".to_string(),
        sim_report.cost.io.to_string(),
        analytic.costed.total.io.to_string(),
    ]);
    table.push_row(vec![
        "final replica set".to_string(),
        sim_report.final_holders.to_string(),
        analytic.costed.final_scheme.to_string(),
    ]);
    let exact = sim_report.cost == analytic.costed.total
        && sim_report.final_holders == analytic.costed.final_scheme;
    let mut report = ExpReport::new(
        "E11",
        format!(
            "Mobile base-station deployment (t=2, F={{base}}, {n} processors, {} requests)",
            schedule.len()
        ),
        table,
    );
    report.notes.push(format!(
        "mean read latency {:.1} ticks over {} reads; exact match with analytic model: {exact}",
        sim_report.mean_read_latency, sim_report.reads_completed
    ));
    report
        .metrics
        .insert("exact_match".into(), if exact { 1.0 } else { 0.0 });
    Ok(report)
}

/// E12: the §6.2 append-only model — SA (t standing orders) vs DA (t-1
/// standing orders + temporary ones), in SC and MC.
pub fn append_e12(schedule_len: usize, seed: u64) -> Result<ExpReport> {
    let workload = AppendOnlyWorkload::new(6, 2, 3.0)?;
    let schedule = workload.generate(schedule_len, seed);
    let mut table = Table::new(vec!["model", "SA", "DA", "DA/SA"]);
    let mut metrics = BTreeMap::new();
    for (name, model) in [
        (
            "SC cc=0.2 cd=0.8",
            CostModel::stationary(0.2, 0.8).expect("valid"),
        ),
        (
            "MC cc=0.2 cd=0.8",
            CostModel::mobile(0.2, 0.8).expect("valid"),
        ),
    ] {
        let (mut sa, mut da) = standard_algorithms();
        let sa_cost = run_online(&mut sa, &schedule)?.costed.total_cost(&model);
        let da_cost = run_online(&mut da, &schedule)?.costed.total_cost(&model);
        table.push_row(vec![
            name.to_string(),
            fmt_f64(sa_cost),
            fmt_f64(da_cost),
            fmt_f64(da_cost / sa_cost),
        ]);
        metrics.insert(
            format!("da_over_sa_{}", model.environment()),
            da_cost / sa_cost,
        );
    }
    let mut report = ExpReport::new(
        "E12",
        format!(
            "§6.2 append-only stream (6 stations, 2 generators, {} requests)",
            schedule.len()
        ),
        table,
    );
    report.metrics = metrics;
    Ok(report)
}

/// E14: ablations — what each DA ingredient buys, on regular (hotspot) vs
/// chaotic workloads.
pub fn ablation_e14(schedule_len: usize, seed: u64) -> Result<ExpReport> {
    let model = CostModel::stationary(0.25, 1.0).expect("valid");
    let hotspot = HotspotWorkload::new(5, 40, 0.85)?.generate(schedule_len, seed);
    let chaotic = ChaoticWorkload::new(5, 10)?.generate(schedule_len, seed);
    let mut table = Table::new(vec!["algorithm", "t", "hotspot (regular)", "chaotic"]);
    let mut metrics = BTreeMap::new();

    let mut run_all = |name: &str, algo: &mut dyn OnlineDom| -> Result<()> {
        let hot = run_online(algo, &hotspot)?.costed.total_cost(&model);
        let cha = run_online(algo, &chaotic)?.costed.total_cost(&model);
        table.push_row(vec![
            name.to_string(),
            algo.t().to_string(),
            fmt_f64(hot),
            fmt_f64(cha),
        ]);
        metrics.insert(format!("{name}_hotspot"), hot);
        metrics.insert(format!("{name}_chaotic"), cha);
        Ok(())
    };

    let (mut sa, mut da) = standard_algorithms();
    run_all("SA", &mut sa)?;
    run_all("DA", &mut da)?;
    let init = sa.initial_scheme();
    let mut nosave = DaNoSave::new([0usize].into_iter().collect(), ProcessorId::new(1))?;
    run_all("DA-nosave", &mut nosave)?;
    let mut conv = SlidingWindowConvergent::new(5, 2, init, 40, 20)?;
    run_all("Convergent", &mut conv)?;
    let mut cache = WriteInvalidateCache::new(init)?;
    run_all("WriteInvalidate (t=1)", &mut cache)?;
    let mut quorum =
        doma_algorithms::QuorumConsensus::majority(5, ProcSet::from_iter([0usize, 1, 2]))?;
    run_all("QuorumConsensus", &mut quorum)?;

    let mut report = ExpReport::new(
        "E14",
        "Ablations: saving-reads, availability core, convergence (SC, cc=0.25, cd=1.0)",
        table,
    );
    report.metrics = metrics;
    Ok(report)
}

/// E19: the §5.1 file-allocation comparison — "works on the file-allocation
/// problem do not quantify the cost penalty if the read-write pattern is
/// not known. In contrast, in this paper we do so." We quantify both gaps:
///
/// * **value of knowledge** = SA with a default scheme vs the *best*
///   static scheme chosen with full knowledge of the schedule;
/// * **value of dynamism** = best static vs the dynamic offline optimum.
pub fn file_allocation_e19(schedule_len: usize, seed: u64) -> Result<ExpReport> {
    use doma_algorithms::BestStaticAllocation;
    use doma_workload::{UniformWorkload, ZipfWorkload};
    let model = CostModel::stationary(0.25, 1.0).expect("valid");
    let n = 5;
    let workloads: Vec<(&str, Box<dyn ScheduleGen>)> = vec![
        ("uniform-0.7", Box::new(UniformWorkload::new(n, 0.7)?)),
        ("zipf-0.8", Box::new(ZipfWorkload::new(n, 1.2, 0.8)?)),
        ("hotspot", Box::new(HotspotWorkload::new(n, 40, 0.85)?)),
        ("chaotic", Box::new(ChaoticWorkload::new(n, 10)?)),
    ];
    let mut table = Table::new(vec![
        "workload",
        "SA (default Q)",
        "best static",
        "OPT (dynamic)",
        "knowledge gap",
        "dynamism gap",
    ]);
    let mut metrics = BTreeMap::new();
    for (name, gen) in workloads {
        let schedule = gen.generate(schedule_len, seed);
        let (mut sa, _) = standard_algorithms();
        let sa_cost = run_online(&mut sa, &schedule)?.costed.total_cost(&model);
        let bs = BestStaticAllocation::new(n, 2, model)?;
        let (_, best_static) = bs.best_scheme(&schedule)?;
        let opt = OfflineOptimal::new(n, 2, sa.initial_scheme(), model)?;
        let opt_cost = opt.optimal_cost(&schedule)?;
        table.push_row(vec![
            name.to_string(),
            fmt_f64(sa_cost),
            fmt_f64(best_static),
            fmt_f64(opt_cost),
            fmt_f64(sa_cost / best_static),
            fmt_f64(best_static / opt_cost),
        ]);
        metrics.insert(format!("{name}_knowledge_gap"), sa_cost / best_static);
        metrics.insert(format!("{name}_dynamism_gap"), best_static / opt_cost);
    }
    let mut report = ExpReport::new(
        "E19",
        format!(
            "File-allocation baseline (§5.1): knowledge vs dynamism gaps ({schedule_len} requests, n={n}, t=2)"
        ),
        table,
    );
    report.notes.push(
        "knowledge gap = SA(default)/best-static; dynamism gap = best-static/OPT. \
         The paper's point: even the perfectly informed static scheme cannot \
         recover the dynamism gap."
            .into(),
    );
    report.metrics = metrics;
    Ok(report)
}

/// E21: the price of the §2 failure fallback — the same request stream
/// executed in normal DA mode vs with the core member down (quorum mode),
/// plus the one-off cost of the mode switch and missing-writes catch-up.
pub fn failover_e21(requests: usize, seed: u64) -> Result<ExpReport> {
    use doma_protocol::failover::FailoverDriver;
    use doma_workload::UniformWorkload;
    let n = 7;
    let model = CostModel::stationary(0.25, 1.0).expect("valid");
    let workload = UniformWorkload::new(n, 0.7)?;
    // Exclude the core (0) as an issuer so the same stream is servable in
    // both modes (processor 0's clients are down during the outage).
    let schedule: doma_core::Schedule = workload
        .generate(requests * 2, seed)
        .iter()
        .filter(|r| r.issuer.index() != 0)
        .take(requests)
        .collect();

    // Normal mode.
    let mut normal = ProtocolSim::new_da(n, ProcSet::from_iter([0usize]), ProcessorId::new(1))?;
    let normal_report = normal.execute(&schedule)?;

    // Failure mode: crash the core first, run the same stream in quorum
    // mode, then recover.
    let sim = ProtocolSim::new_da(n, ProcSet::from_iter([0usize]), ProcessorId::new(1))?;
    let mut driver = FailoverDriver::new(sim, n);
    driver.crash(ProcessorId::new(0));
    let after_switch = driver.sim().report().cost;
    for request in schedule.iter() {
        driver.execute_request(request)?;
    }
    let after_outage = driver.sim().report().cost;
    driver.recover(ProcessorId::new(0));
    let after_recovery = driver.sim().report().cost;

    let outage_cost = after_outage.saturating_sub(&after_switch);
    let recovery_cost = after_recovery.saturating_sub(&after_outage);

    let mut table = Table::new(vec!["phase", "control", "data", "I/O", "priced cost"]);
    for (name, v) in [
        ("normal DA (no failure)", normal_report.cost),
        ("quorum mode (core down)", outage_cost),
        ("recovery (catch-up + mode switch)", recovery_cost),
    ] {
        table.push_row(vec![
            name.to_string(),
            v.control.to_string(),
            v.data.to_string(),
            v.io.to_string(),
            fmt_f64(v.eval(&model)),
        ]);
    }
    let overhead = outage_cost.eval(&model) / normal_report.cost.eval(&model);
    let mut report = ExpReport::new(
        "E21",
        format!("Failure-mode overhead (§2): {requests} requests, n={n}, core member down"),
        table,
    );
    report.notes.push(format!(
        "quorum mode costs {overhead:.2}x normal DA for the same stream — \
         availability through majorities is expensive, which is why the paper \
         uses quorums only as the failure fallback"
    ));
    report.metrics.insert("overhead".into(), overhead);
    Ok(report)
}

/// E20: the load curve behind the introduction's Ethernet remark —
/// open-loop read traffic at increasing arrival rates, mean and p95
/// response time on a shared bus vs point-to-point links. The bus knee
/// appears when the arrival interval drops below the data-message
/// service time.
pub fn load_curve_e20(reads: usize) -> Result<ExpReport> {
    use crate::stats::percentile;
    use doma_core::{Request, Schedule};
    use doma_sim::NetworkConfig;
    let n = 10;
    let q: ProcSet = [0usize, 1].into_iter().collect();
    let schedule: Schedule = (0..reads).map(|k| Request::read(2 + (k % 8))).collect();
    let mut table = Table::new(vec![
        "arrival interval (ticks)",
        "p2p mean",
        "bus mean",
        "bus p95",
        "bus queue wait",
    ]);
    let mut metrics = BTreeMap::new();
    for interval in [16u64, 8, 4, 2, 1] {
        let mut p2p = ProtocolSim::new_sa(n, q)?;
        let a = p2p.execute_open_loop(&schedule, interval)?;
        let mut bus = ProtocolSim::new_sa_with(n, q, NetworkConfig::shared_bus(1, 3))?;
        let b = bus.execute_open_loop(&schedule, interval)?;
        let lat: Vec<f64> = b.latencies.iter().map(|&v| v as f64).collect();
        let p95 = percentile(&lat, 95.0).unwrap_or(f64::NAN);
        table.push_row(vec![
            interval.to_string(),
            fmt_f64(a.mean_response),
            fmt_f64(b.mean_response),
            fmt_f64(p95),
            b.bus_queue_wait.to_string(),
        ]);
        metrics.insert(format!("bus_mean_{interval}"), b.mean_response);
        metrics.insert(format!("p2p_mean_{interval}"), a.mean_response);
    }
    let mut report = ExpReport::new(
        "E20",
        format!("Load curve (intro): {reads} open-loop reads, response time vs arrival rate"),
        table,
    );
    report.notes.push(
        "A read occupies the bus for cc+cd = 4 ticks; once arrivals outpace that \
         (interval < 4) the queue grows without bound over the run — the intro's \
         'higher load → contention → higher response time', measured."
            .into(),
    );
    report.metrics = metrics;
    Ok(report)
}

/// E15: the introduction's Ethernet argument, measured — response time of
/// concurrent read bursts on a shared bus vs point-to-point links, and
/// DA's contention collapse once readers hold local replicas.
pub fn contention_e15(burst_sizes: &[usize]) -> Result<ExpReport> {
    use doma_sim::NetworkConfig;
    let n = 24;
    let q: ProcSet = [0usize, 1].into_iter().collect();
    let f: ProcSet = [0usize].into_iter().collect();
    let p = ProcessorId::new(1);
    let mut table = Table::new(vec![
        "burst size",
        "SA p2p mean resp",
        "SA bus mean resp",
        "DA bus 1st burst",
        "DA bus 2nd burst",
        "bus queue wait (SA)",
    ]);
    let mut metrics = BTreeMap::new();
    for &k in burst_sizes {
        if 2 + k > n {
            return Err(doma_core::DomaError::InvalidConfig(format!(
                "burst {k} too large for cluster of {n}"
            )));
        }
        let readers: Vec<ProcessorId> = (2..2 + k).map(ProcessorId::new).collect();

        let mut sa_p2p = ProtocolSim::new_sa(n, q)?;
        let a = sa_p2p.execute_read_burst(&readers)?;
        let mut sa_bus = ProtocolSim::new_sa_with(n, q, NetworkConfig::shared_bus(1, 3))?;
        let b = sa_bus.execute_read_burst(&readers)?;
        let mut da_bus = ProtocolSim::new_da_with(n, f, p, NetworkConfig::shared_bus(1, 3))?;
        let c1 = da_bus.execute_read_burst(&readers)?;
        let c2 = da_bus.execute_read_burst(&readers)?;

        table.push_row(vec![
            k.to_string(),
            fmt_f64(a.mean_response),
            fmt_f64(b.mean_response),
            fmt_f64(c1.mean_response),
            fmt_f64(c2.mean_response),
            b.bus_queue_wait.to_string(),
        ]);
        metrics.insert(format!("sa_bus_{k}"), b.mean_response);
        metrics.insert(format!("da_bus_second_{k}"), c2.mean_response);
    }
    let mut report = ExpReport::new(
        "E15",
        "Bus contention (intro §1.1): read-burst response time, shared bus vs point-to-point",
        table,
    );
    report.notes.push(
        "DA's saving-reads eliminate repeat-burst bus traffic entirely; SA pays \
         contention on every burst."
            .into(),
    );
    report.metrics = metrics;
    Ok(report)
}

/// E16: cache sensitivity — §5.2 argues replicated-database costs differ
/// from CDVM because a replica may live on secondary storage, so *every*
/// read pays an I/O. This ablation adds a CDVM-style memory tier to the
/// protocol nodes and measures how much of the I/O term it removes, and
/// whether the SA-vs-DA comparison survives (it does: caching removes
/// repeat-read I/O for both, but all message costs are untouched).
pub fn cache_e16(schedule_len: usize, seed: u64) -> Result<ExpReport> {
    let workload = HotspotWorkload::new(6, 30, 0.85)?;
    let schedule = workload.generate(schedule_len, seed);
    let model = CostModel::stationary(0.25, 1.0).expect("valid");
    let q: ProcSet = [0usize, 1].into_iter().collect();
    let f: ProcSet = [0usize].into_iter().collect();
    let p1 = ProcessorId::new(1);

    let mut table = Table::new(vec![
        "cluster",
        "cache",
        "I/Os",
        "cache hit ratio",
        "priced cost",
    ]);
    let mut metrics = BTreeMap::new();
    for (name, cached) in [("SA", false), ("SA", true), ("DA", false), ("DA", true)] {
        let cap = usize::from(cached);
        let mut sim = if name == "SA" {
            ProtocolSim::new_sa_cached(6, q, cap)?
        } else {
            ProtocolSim::new_da_cached(6, f, p1, cap)?
        };
        let report = sim.execute(&schedule)?;
        let hits = sim.cache_stats();
        table.push_row(vec![
            name.to_string(),
            if cached { "1 object" } else { "none (paper)" }.to_string(),
            report.cost.io.to_string(),
            if cached {
                format!("{:.2}", hits.hit_ratio())
            } else {
                "-".to_string()
            },
            fmt_f64(report.cost.eval(&model)),
        ]);
        metrics.insert(
            format!("{name}_{}_io", if cached { "cached" } else { "plain" }),
            report.cost.io as f64,
        );
        metrics.insert(
            format!("{name}_{}_cost", if cached { "cached" } else { "plain" }),
            report.cost.eval(&model),
        );
    }
    let mut report = ExpReport::new(
        "E16",
        "Cache sensitivity (§5.2): CDVM-style memory tier vs the paper's all-I/O model",
        table,
    );
    report.metrics = metrics;
    Ok(report)
}

/// E18: multi-object core placement — the natural many-objects extension
/// (§6.1). Objects are cost-independent in the model, but DA core duty is
/// load: placing every object's core on the same processors creates an
/// I/O hotspot. We generate a Zipf-popular catalog of objects and compare
/// the placement policies on total cost and per-processor load.
pub fn placement_e18(objects: u64, requests: usize, seed: u64) -> Result<ExpReport> {
    use doma_algorithms::multi::{run_multi, MultiSchedule, Placement};
    use doma_core::{ObjectId, Request};
    use doma_testkit::rng::{Rng, TestRng};

    let n = 8;
    let model = CostModel::stationary(0.25, 1.0).expect("valid");
    // Zipf-popular objects, uniform issuers, 70% reads.
    let sampler = doma_workload::ZipfSampler::new(objects as usize, 1.0)?;
    let mut rng = TestRng::seed_from_u64(seed);
    let mut schedule = MultiSchedule::default();
    for _ in 0..requests {
        let object = ObjectId(sampler.sample(&mut rng) as u64);
        let issuer = rng.gen_range(0..n);
        let request = if rng.gen_bool(0.7) {
            Request::read(issuer)
        } else {
            Request::write(issuer)
        };
        schedule.push(object, request);
    }

    let mut table = Table::new(vec![
        "placement",
        "priced cost",
        "max proc I/O load",
        "imbalance (max/mean)",
    ]);
    let mut metrics = BTreeMap::new();
    for (name, placement) in [
        ("same-core", Placement::SameCore),
        ("round-robin", Placement::RoundRobin),
        ("load-aware", Placement::LoadAware),
    ] {
        let report = run_multi(n, 2, placement, &schedule)?;
        table.push_row(vec![
            name.to_string(),
            fmt_f64(report.total.eval(&model)),
            report.max_load().to_string(),
            format!("{:.2}", report.imbalance()),
        ]);
        metrics.insert(format!("{name}_max_load"), report.max_load() as f64);
        metrics.insert(format!("{name}_cost"), report.total.eval(&model));
        metrics.insert(format!("{name}_imbalance"), report.imbalance());
    }
    let mut report = ExpReport::new(
        "E18",
        format!(
            "Multi-object core placement ({objects} Zipf objects, {requests} requests, n={n}, t=2)"
        ),
        table,
    );
    report.notes.push(
        "Costs are nearly placement-invariant (only invalidation counts shift); \
         per-processor load is not — spreading cores removes the hotspot."
            .into(),
    );
    report.metrics = metrics;
    Ok(report)
}

/// E22: object-sharded parallel execution — the executable counterpart of
/// E18's analytic placement study. One multi-object uniform workload is
/// run sequentially and through [`doma_protocol::ShardedSim`] at each
/// shard count; every sharded run must reproduce the sequential
/// [`doma_protocol::SimReport`] exactly (the merge is deterministic), and
/// the table records the wall-clock speedup actually achieved on this
/// machine's cores.
pub fn shard_scaling_e22(
    objects: u64,
    requests: usize,
    shard_counts: &[usize],
) -> Result<ExpReport> {
    use doma_algorithms::multi::Placement;
    use doma_core::ObjectId;
    use doma_protocol::{ProtocolConfig, ShardedSim};
    use doma_workload::{MultiScheduleGen, MultiUniformWorkload};
    use std::time::Instant;

    let n = 8;
    let seed = 42;
    let configs: BTreeMap<ObjectId, ProtocolConfig> = (0..objects)
        .map(|o| {
            let base = (o as usize) % (n - 1);
            let config = if o % 2 == 0 {
                ProtocolConfig::Sa {
                    q: [base, base + 1].into_iter().collect(),
                }
            } else {
                ProtocolConfig::Da {
                    f: [base].into_iter().collect(),
                    p: ProcessorId::new(base + 1),
                }
            };
            (ObjectId(o), config)
        })
        .collect();
    let schedule = MultiUniformWorkload::new(objects, n, 0.8)?.generate_multi(requests, seed);

    let mut sequential = ProtocolSim::new_catalog(n, configs.clone())?;
    let start = Instant::now();
    let expected = sequential.execute_multi(&schedule)?;
    let seq_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut table = Table::new(vec!["shards", "wall ms", "req/s", "speedup", "parity"]);
    table.push_row(vec![
        "sequential".to_string(),
        format!("{seq_ms:.1}"),
        format!("{:.0}", requests as f64 / (seq_ms * 1e-3)),
        "1.00".to_string(),
        "—".to_string(),
    ]);
    let mut metrics = BTreeMap::new();
    metrics.insert("sequential_wall_ms".into(), seq_ms);
    let mut all_parity = true;
    for &shards in shard_counts {
        let sharded = ShardedSim::new(n, configs.clone(), shards, Placement::RoundRobin)?;
        let start = Instant::now();
        let run = sharded.execute_multi(&schedule)?;
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let parity = run.report == expected
            && configs
                .keys()
                .all(|o| run.holders.get(o) == Some(&sequential.valid_holders_of(*o)));
        all_parity &= parity;
        table.push_row(vec![
            shards.to_string(),
            format!("{wall_ms:.1}"),
            format!("{:.0}", requests as f64 / (wall_ms * 1e-3)),
            format!("{:.2}", seq_ms / wall_ms),
            if parity { "exact" } else { "DIVERGED" }.to_string(),
        ]);
        metrics.insert(format!("k{shards}_wall_ms"), wall_ms);
        metrics.insert(format!("k{shards}_speedup"), seq_ms / wall_ms);
    }
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut report = ExpReport::new(
        "E22",
        format!(
            "Object-sharded execution ({objects} uniform objects, {requests} requests, \
             n={n}, round-robin placement, {cores} cores)"
        ),
        table,
    );
    report.notes.push(format!(
        "Speedup is bounded by the {cores} core(s) actually present; parity \
         (report, holders, obs totals) holds at every K regardless."
    ));
    report
        .metrics
        .insert("parity".into(), f64::from(all_parity));
    report.metrics.insert("machine_cores".into(), cores as f64);
    metrics.into_iter().for_each(|(k, v)| {
        report.metrics.insert(k, v);
    });
    Ok(report)
}

/// E17: the paper notes its competitiveness factors are *independent of
/// `t`*. We measure the worst battery ratio of SA and DA for several `t`
/// and check it stays within the (t-independent) bounds and roughly flat.
pub fn t_independence_e17() -> Result<ExpReport> {
    let model = CostModel::stationary(0.3, 0.8).expect("valid");
    let n = 8;
    let mut table = Table::new(vec![
        "t",
        "SA worst ratio",
        "SA bound",
        "DA worst ratio",
        "DA bound",
    ]);
    let mut metrics = BTreeMap::new();
    for t in [2usize, 3, 4, 5] {
        let scheme: ProcSet = (0..t).collect();
        let battery = crate::battery::battery_with_outsiders(n, 40, 2, t);
        let mut sa = StaticAllocation::new(scheme)?;
        let sa_worst = summarize(&mut sa, &model, n, &battery)?.worst;
        let f: ProcSet = (0..t - 1).collect();
        let mut da = DynamicAllocation::new(f, ProcessorId::new(t - 1))?;
        let da_worst = summarize(&mut da, &model, n, &battery)?.worst;
        table.push_row(vec![
            t.to_string(),
            fmt_f64(sa_worst),
            fmt_f64(model.sa_bound().expect("SC")),
            fmt_f64(da_worst),
            fmt_f64(model.da_bound().expect("SC")),
        ]);
        metrics.insert(format!("sa_worst_t{t}"), sa_worst);
        metrics.insert(format!("da_worst_t{t}"), da_worst);
    }
    let mut report = ExpReport::new(
        "E17",
        "t-independence: measured worst ratios vs the t-free bounds (SC, cc=0.3, cd=0.8)",
        table,
    );
    report.metrics = metrics;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thm1_report_shows_tightness() {
        let r = thm1_sa_tightness(&[8, 32, 128]).unwrap();
        assert!(r.metrics["adversary_ratio"] <= r.metrics["bound"] + 1e-9);
        assert!(r.metrics["adversary_ratio"] > 0.95 * r.metrics["bound"]);
        assert!(r.metrics["battery_worst"] <= r.metrics["bound"] + 1e-9);
        assert_eq!(r.table.len(), 3);
        assert!(r.to_markdown().contains("E3"));
    }

    #[test]
    fn thm23_bounds_hold() {
        let r = thm23_da_upper_bounds().unwrap();
        assert!(r.metrics["max_fraction_of_bound"] <= 1.0 + 1e-9);
    }

    #[test]
    fn prop2_shows_nontrivial_lower_bound() {
        let r = prop2_da_lower_bound(false).unwrap();
        assert!(
            r.metrics["best_ratio"] >= 1.3,
            "exhaustive search should find ratio >= 1.3, got {}",
            r.metrics["best_ratio"]
        );
    }

    #[test]
    fn prop3_diverges() {
        let r = prop3_sa_mc_divergence(&[8, 64]).unwrap();
        assert!(r.metrics["growth"] > 4.0, "growth {}", r.metrics["growth"]);
    }

    #[test]
    fn thm4_bound_holds() {
        let r = thm4_da_mobile().unwrap();
        assert!(r.metrics["max_fraction_of_bound"] <= 1.0 + 1e-9);
    }

    #[test]
    fn example13_ordering() {
        let r = example13().unwrap();
        assert!(r.metrics["opt"] <= r.metrics["da"] + 1e-9);
        assert!(r.metrics["da"] < r.metrics["sa"]);
    }

    #[test]
    fn mobile_e11_exactly_matches() {
        let r = mobile_e11(60, 3).unwrap();
        assert_eq!(r.metrics["exact_match"], 1.0);
    }

    #[test]
    fn append_e12_da_wins_in_mobile() {
        let r = append_e12(150, 5).unwrap();
        assert!(r.metrics["da_over_sa_MC"] < 1.0, "{:?}", r.metrics);
    }

    #[test]
    fn file_allocation_e19_gaps_are_sensible() {
        let r = file_allocation_e19(300, 11).unwrap();
        for (k, v) in &r.metrics {
            assert!(*v >= 1.0 - 1e-9, "{k} below 1: {v}");
        }
        // On a hotspot workload the dynamism gap is substantial: no fixed
        // scheme can chase a rotating hotspot.
        assert!(r.metrics["hotspot_dynamism_gap"] > 1.05);
    }

    #[test]
    fn failover_e21_quorum_is_dearer() {
        let r = failover_e21(60, 5).unwrap();
        assert!(
            r.metrics["overhead"] > 1.5,
            "quorum mode should cost well above normal DA, got {}",
            r.metrics["overhead"]
        );
    }

    #[test]
    fn load_curve_e20_shows_the_knee() {
        let r = load_curve_e20(60).unwrap();
        // Below saturation the bus matches p2p; past it, it blows up.
        assert_eq!(r.metrics["bus_mean_16"], r.metrics["p2p_mean_16"]);
        assert!(r.metrics["bus_mean_1"] > 4.0 * r.metrics["bus_mean_16"]);
    }

    #[test]
    fn contention_e15_shapes() {
        let r = contention_e15(&[1, 4, 8]).unwrap();
        // Bus response grows with burst size; repeat bursts under DA are free.
        assert!(r.metrics["sa_bus_8"] > r.metrics["sa_bus_1"]);
        assert_eq!(r.metrics["da_bus_second_8"], 0.0);
    }

    #[test]
    fn cache_e16_reduces_io_preserves_ranking() {
        let r = cache_e16(300, 3).unwrap();
        // Caching strictly reduces I/O for both algorithms…
        assert!(r.metrics["SA_cached_io"] < r.metrics["SA_plain_io"]);
        assert!(r.metrics["DA_cached_io"] < r.metrics["DA_plain_io"]);
        // …and DA still beats SA on the hotspot workload either way.
        assert!(r.metrics["DA_plain_cost"] < r.metrics["SA_plain_cost"]);
        assert!(r.metrics["DA_cached_cost"] < r.metrics["SA_cached_cost"]);
    }

    #[test]
    fn placement_e18_spreading_beats_same_core() {
        let r = placement_e18(20, 600, 3).unwrap();
        assert!(r.metrics["round-robin_max_load"] < r.metrics["same-core_max_load"]);
        assert!(r.metrics["load-aware_max_load"] < r.metrics["same-core_max_load"]);
        // Cost stays within a few percent across placements.
        let base = r.metrics["same-core_cost"];
        for k in ["round-robin_cost", "load-aware_cost"] {
            assert!((r.metrics[k] - base).abs() / base < 0.1, "{k} drifted");
        }
    }

    #[test]
    fn t_independence_e17_bounds_hold_for_all_t() {
        let r = t_independence_e17().unwrap();
        let model = CostModel::stationary(0.3, 0.8).unwrap();
        for t in [2usize, 3, 4, 5] {
            assert!(r.metrics[&format!("sa_worst_t{t}")] <= model.sa_bound().unwrap() + 1e-9);
            assert!(r.metrics[&format!("da_worst_t{t}")] <= model.da_bound().unwrap() + 1e-9);
        }
    }

    #[test]
    fn shard_scaling_e22_holds_parity_at_every_k() {
        let r = shard_scaling_e22(8, 400, &[1, 2, 4]).unwrap();
        assert_eq!(r.metrics["parity"], 1.0);
        assert!(r.metrics["machine_cores"] >= 1.0);
        // One sequential row plus one per shard count.
        assert_eq!(r.table.len(), 4);
    }

    #[test]
    fn ablation_e14_sanity() {
        let r = ablation_e14(300, 7).unwrap();
        // Saving-reads must pay off on the hotspot workload.
        assert!(r.metrics["DA_hotspot"] < r.metrics["DA-nosave_hotspot"]);
        // The unconstrained cache (t=1) is at least as cheap as DA — that
        // difference is the price of availability.
        assert!(r.metrics["WriteInvalidate (t=1)_hotspot"] <= r.metrics["DA_hotspot"] + 1e-9);
    }
}

//! Small summary-statistics toolkit for experiment reports: means,
//! deviations, percentiles and normal-approximation confidence intervals.
//! Hand-rolled (the sample sizes here are tiny; no dependency warranted).

/// Summary statistics of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary; returns `None` for an empty sample or one
    /// containing non-finite values.
    pub fn of(sample: &[f64]) -> Option<Summary> {
        if sample.is_empty() || sample.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let n = sample.len();
        let mean = sample.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sample.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = sample.iter().copied().fold(f64::INFINITY, f64::min);
        let max = sample.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }

    /// A 95% normal-approximation confidence interval for the mean
    /// (`mean ± 1.96·σ/√n`). Degenerate (width 0) for n = 1.
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_dev / (self.n as f64).sqrt();
        (self.mean - half, self.mean + half)
    }
}

/// The `q`-th percentile (0–100) by linear interpolation between order
/// statistics. Returns `None` on empty or non-finite input or `q` outside
/// `[0, 100]`.
pub fn percentile(sample: &[f64], q: f64) -> Option<f64> {
    if sample.is_empty() || sample.iter().any(|v| !v.is_finite()) || !(0.0..=100.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!((s.min, s.max), (1.0, 4.0));
        let (lo, hi) = s.ci95();
        assert!(lo < s.mean && s.mean < hi);
    }

    #[test]
    fn summary_edge_cases() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
        assert!(Summary::of(&[1.0, f64::INFINITY]).is_none());
        let one = Summary::of(&[7.0]).unwrap();
        assert_eq!(one.std_dev, 0.0);
        assert_eq!(one.ci95(), (7.0, 7.0));
    }

    #[test]
    fn percentiles() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(percentile(&v, 50.0), Some(2.5));
        assert_eq!(percentile(&v, 25.0), Some(1.75));
        assert!(percentile(&v, 101.0).is_none());
        assert!(percentile(&[], 50.0).is_none());
    }
}

//! Perf-regression gate (`domactl perf`): compares a fresh bench report
//! against a committed baseline and fails on a median regression.
//!
//! Both inputs are the flat JSON array the `doma-testkit` bench harness
//! writes (`target/doma-bench/<binary>.json`): `Record` objects keyed by
//! `group`/`name` with a `median_ns`, plus `attachment` entries that are
//! skipped. The gate compares **medians** — the harness's most
//! wobble-resistant statistic — and fails when
//! `current > baseline * (1 + threshold)` for any benchmark present in
//! the baseline, or when a baseline benchmark is missing from the
//! current report (a silently-deleted bench must not pass the wall).
//! Benchmarks that are new in the current report ride through freely.

use crate::jsonv::Jv;
use std::collections::BTreeMap;

/// One benchmark present in both reports.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// `group/name` identity.
    pub key: String,
    /// Baseline median (ns/iter).
    pub baseline_ns: f64,
    /// Current median (ns/iter).
    pub current_ns: f64,
    /// `current / baseline` (1.0 when the baseline median is zero).
    pub ratio: f64,
}

impl PerfRow {
    /// Whether this row breaches the given regression threshold.
    pub fn regressed(&self, threshold: f64) -> bool {
        self.ratio > 1.0 + threshold
    }
}

/// The outcome of comparing a current bench report to its baseline.
#[derive(Debug, Clone)]
pub struct PerfComparison {
    /// Every benchmark in both reports, in key order.
    pub rows: Vec<PerfRow>,
    /// Baseline benchmarks absent from the current report.
    pub missing: Vec<String>,
    /// The regression threshold the gate was run with (0.25 = +25%).
    pub threshold: f64,
}

impl PerfComparison {
    /// The rows that breach the threshold.
    pub fn regressions(&self) -> Vec<&PerfRow> {
        self.rows
            .iter()
            .filter(|r| r.regressed(self.threshold))
            .collect()
    }

    /// Whether the gate passes: no regressions and no missing benches.
    pub fn passed(&self) -> bool {
        self.missing.is_empty() && self.regressions().is_empty()
    }
}

/// Indexes a bench report: `group/name` → `median_ns`. Attachment
/// entries (no `"group"` member) are skipped.
pub fn index(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let doc = Jv::parse(text)?;
    let items = doc.as_array().ok_or("bench report is not a JSON array")?;
    let mut out = BTreeMap::new();
    for item in items {
        let Some(group) = item.get("group").and_then(Jv::as_str) else {
            continue; // attachment entry
        };
        let name = item
            .get("name")
            .and_then(Jv::as_str)
            .ok_or_else(|| format!("record in group '{group}' has no name"))?;
        let median = item
            .get("median_ns")
            .and_then(Jv::as_f64)
            .ok_or_else(|| format!("record '{group}/{name}' has no median_ns"))?;
        out.insert(format!("{group}/{name}"), median);
    }
    if out.is_empty() {
        return Err("bench report contains no benchmark records".to_string());
    }
    Ok(out)
}

/// Compares a current report against a baseline at the given threshold.
pub fn compare(baseline: &str, current: &str, threshold: f64) -> Result<PerfComparison, String> {
    let base = index(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cur = index(current).map_err(|e| format!("current: {e}"))?;
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for (key, baseline_ns) in &base {
        match cur.get(key) {
            Some(current_ns) => {
                let ratio = if *baseline_ns > 0.0 {
                    current_ns / baseline_ns
                } else {
                    1.0
                };
                rows.push(PerfRow {
                    key: key.clone(),
                    baseline_ns: *baseline_ns,
                    current_ns: *current_ns,
                    ratio,
                });
            }
            None => missing.push(key.clone()),
        }
    }
    Ok(PerfComparison {
        rows,
        missing,
        threshold,
    })
}

/// Renders the comparison as a stable text report: one line per bench
/// with the baseline/current medians and the ratio, flagged rows
/// marked, and a PASS/FAIL verdict line last.
pub fn render(cmp: &PerfComparison) -> String {
    let mut out = format!(
        "perf gate: {} benchmark(s) vs baseline, threshold +{:.0}%\n",
        cmp.rows.len(),
        cmp.threshold * 100.0
    );
    for row in &cmp.rows {
        let flag = if row.regressed(cmp.threshold) {
            "  <-- REGRESSION"
        } else {
            ""
        };
        out.push_str(&format!(
            "  {:<44} {:>12} -> {:>12}  ({:+.1}%){flag}\n",
            row.key,
            doma_testkit::bench::human_ns(row.baseline_ns),
            doma_testkit::bench::human_ns(row.current_ns),
            (row.ratio - 1.0) * 100.0
        ));
    }
    for key in &cmp.missing {
        out.push_str(&format!("  {key:<44} missing from current report\n"));
    }
    let regressed = cmp.regressions().len();
    if cmp.passed() {
        out.push_str("perf gate: PASS\n");
    } else {
        out.push_str(&format!(
            "perf gate: FAIL ({regressed} regression(s), {} missing)\n",
            cmp.missing.len()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rows: &[(&str, &str, f64)]) -> String {
        let body: Vec<String> = rows
            .iter()
            .map(|(g, n, m)| {
                format!(
                    "{{\"group\": \"{g}\", \"name\": \"{n}\", \"samples\": 5, \
                     \"iters_per_sample\": 1, \"mean_ns\": {m}, \"median_ns\": {m}, \
                     \"stddev_ns\": 0.0, \"min_ns\": {m}, \"max_ns\": {m}}}"
                )
            })
            .collect();
        format!("[{}]", body.join(", "))
    }

    #[test]
    fn within_threshold_passes() {
        let base = report(&[("g", "a", 100.0), ("g", "b", 200.0)]);
        let cur = report(&[("g", "a", 120.0), ("g", "b", 190.0)]);
        let cmp = compare(&base, &cur, 0.25).unwrap();
        assert!(cmp.passed());
        assert_eq!(cmp.rows.len(), 2);
        assert!(render(&cmp).contains("perf gate: PASS"));
    }

    #[test]
    fn regression_beyond_threshold_fails() {
        let base = report(&[("g", "a", 100.0)]);
        let cur = report(&[("g", "a", 126.0)]);
        let cmp = compare(&base, &cur, 0.25).unwrap();
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions().len(), 1);
        let text = render(&cmp);
        assert!(text.contains("REGRESSION"), "{text}");
        assert!(text.contains("perf gate: FAIL (1 regression(s), 0 missing)"));
    }

    #[test]
    fn missing_baseline_bench_fails_but_new_bench_passes() {
        let base = report(&[("g", "a", 100.0)]);
        let cur = report(&[("g", "b", 50.0)]);
        let cmp = compare(&base, &cur, 0.25).unwrap();
        assert!(!cmp.passed());
        assert_eq!(cmp.missing, vec!["g/a".to_string()]);
        // New bench alongside the baselined one is fine.
        let cur2 = report(&[("g", "a", 90.0), ("g", "new", 5.0)]);
        assert!(compare(&base, &cur2, 0.25).unwrap().passed());
    }

    #[test]
    fn attachments_are_skipped_and_empty_reports_rejected() {
        let base = report(&[("g", "a", 100.0)]);
        let with_attachment = format!(
            "[{}, {{\"attachment\": \"prof\", \"payload\": {{\"x\": 1}}}}]",
            report(&[("g", "a", 100.0)]).trim_matches(['[', ']'])
        );
        assert!(compare(&base, &with_attachment, 0.25).unwrap().passed());
        assert!(compare("[]", &base, 0.25).is_err());
        assert!(compare(&base, "not json", 0.25).is_err());
    }
}

//! # doma-analysis
//!
//! The experiment harness that regenerates every figure and claim of the
//! paper's evaluation:
//!
//! * [`ratio`] — empirical competitive-ratio measurement of an online
//!   algorithm against the exact offline optimum, over schedule batteries
//!   (adversarial constructions + seeded random workloads).
//! * [`region`] — the `(cd, cc)` plane partitions of **Figure 1**
//!   (stationary computing) and **Figure 2** (mobile computing), both the
//!   paper's analytic boundaries and our measured winners, with an ASCII
//!   renderer that mirrors the figures.
//! * [`sweep`] — average-case cost sweeps (read/write mix, E9) run in
//!   parallel with `std::thread::scope`.
//! * [`tournament`] — every first-class allocator (SA, DA, the promoted
//!   baselines and the contenders) run as a real protocol over every
//!   workload generator, priced on a `(cc, cd)` grid and measured against
//!   the exact offline optimum, with a byte-stable JSON export
//!   (`BENCH_tournament.json`).
//! * [`experiments`] — one driver per experiment id (E1–E21 in DESIGN.md),
//!   returning structured reports the `repro` binary prints and the
//!   integration tests assert on.
//! * [`report`] — markdown/CSV table rendering.
//! * [`stats`] — summary statistics (means, deviations, percentiles,
//!   confidence intervals) for the latency and sweep reports.
//! * [`jsonv`] — a minimal JSON value parser for reading back the
//!   harness's own byte-stable artifacts (obs snapshots, bench reports).
//! * [`obsdiff`] — structural diff of two obs snapshots
//!   (`domactl obs diff`).
//! * [`cluster`] — the real-runtime twin harness: a scenario replayed
//!   over the socket cluster (`doma-net`) and diffed against the
//!   deterministic simulator (`domactl cluster`).
//! * [`perfgate`] — the perf-regression gate comparing a fresh bench
//!   report against the committed `BENCH_prof.json` baseline
//!   (`domactl perf`).
//!
//! Two binaries ship with the crate: `repro` (regenerates every paper
//! artifact) and `domactl` (a CLI for costing, simulating, generating and
//! inspecting schedules).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod battery;
pub mod cluster;
pub mod experiments;
pub mod jsonv;
pub mod obsdiff;
pub mod perfgate;
pub mod ratio;
pub mod region;
pub mod report;
pub mod stats;
pub mod sweep;
pub mod tournament;

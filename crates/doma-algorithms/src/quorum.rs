//! Quorum-consensus allocation — the classic alternative the paper cites
//! ([14] Gifford's weighted voting, [25] Thomas's majority consensus) and
//! falls back to on failures (§2).
//!
//! Reads access a *read quorum* of `qr` copies and take the newest; writes
//! install the object at a *write quorum* of `qw` processors. With
//! `qr + qw > n` every read quorum intersects every write quorum, so reads
//! always see the latest version — this is the one algorithm in the crate
//! that exercises the cost model's multi-member read execution sets
//! (footnote 1 of the paper: "a read request does not necessarily access a
//! single copy").

use doma_core::{
    Decision, DomAlgorithm, DomaError, OnlineDom, ProcSet, ProcessorId, Request, Result,
};

/// Majority-style quorum consensus over a fixed universe of `n`
/// processors.
///
/// The allocation scheme after a write is its write quorum (`qw ≥ t`
/// keeps the availability constraint); a read's execution set is a read
/// quorum chosen to overlap the current scheme (deterministically: the
/// scheme members first, then low-numbered fillers — in the homogeneous
/// cost model any choice costs the same).
#[derive(Debug, Clone)]
pub struct QuorumConsensus {
    n: usize,
    qr: usize,
    qw: usize,
    initial: ProcSet,
    scheme: ProcSet,
}

impl QuorumConsensus {
    /// Creates the algorithm. Requirements: `qr + qw > n` (intersection),
    /// `qw ≥ 2` (the paper's `t ≥ 2` availability), `|initial| ≥ qw`, and
    /// quorums within the universe.
    pub fn new(n: usize, qr: usize, qw: usize, initial: ProcSet) -> Result<Self> {
        if n == 0 || n > doma_core::MAX_PROCESSORS {
            return Err(DomaError::InvalidConfig(format!("bad universe {n}")));
        }
        if qr == 0 || qw < 2 || qr > n || qw > n {
            return Err(DomaError::InvalidConfig(format!(
                "bad quorums qr={qr}, qw={qw} for n={n}"
            )));
        }
        if qr + qw <= n {
            return Err(DomaError::InvalidConfig(format!(
                "qr + qw = {} must exceed n = {n} so quorums intersect",
                qr + qw
            )));
        }
        if initial.len() < qw || !initial.is_subset(ProcSet::universe(n)) {
            return Err(DomaError::InvalidConfig(format!(
                "initial scheme {initial} must hold at least qw={qw} copies within the universe"
            )));
        }
        Ok(QuorumConsensus {
            n,
            qr,
            qw,
            initial,
            scheme: initial,
        })
    }

    /// Majority quorums: `qr = qw = ⌊n/2⌋ + 1` (Thomas, paper ref 25).
    pub fn majority(n: usize, initial: ProcSet) -> Result<Self> {
        let q = n / 2 + 1;
        Self::new(n, q, q, initial)
    }

    /// The read-quorum size.
    pub fn qr(&self) -> usize {
        self.qr
    }

    /// The write-quorum size.
    pub fn qw(&self) -> usize {
        self.qw
    }

    /// Picks `size` processors, preferring `preferred` members first and
    /// including `must` (the issuer of a write, so its own copy is fresh),
    /// filling with the lowest-numbered remaining processors.
    fn pick(&self, size: usize, preferred: ProcSet, must: Option<ProcessorId>) -> ProcSet {
        let mut chosen = ProcSet::EMPTY;
        if let Some(m) = must {
            chosen.insert(m);
        }
        for p in preferred.iter() {
            if chosen.len() >= size {
                break;
            }
            chosen.insert(p);
        }
        for i in 0..self.n {
            if chosen.len() >= size {
                break;
            }
            chosen.insert(ProcessorId::new(i));
        }
        chosen
    }
}

impl DomAlgorithm for QuorumConsensus {
    fn name(&self) -> &str {
        "Quorum"
    }

    fn t(&self) -> usize {
        self.qw
    }

    fn initial_scheme(&self) -> ProcSet {
        self.initial
    }
}

impl OnlineDom for QuorumConsensus {
    fn decide(&mut self, request: Request) -> Decision {
        let i = request.issuer;
        if request.is_read() {
            // A read quorum that overlaps the scheme (it must, since
            // |scheme| >= qw and qr + qw > n, but preferring scheme
            // members keeps the choice deterministic and legal even
            // before any write). Include the issuer when it helps: its
            // own copy is free of the data-message charge.
            let preferred = if self.scheme.contains(i) {
                self.scheme.with(i)
            } else {
                self.scheme
            };
            Decision::exec(self.pick(self.qr, preferred, None))
        } else {
            let exec = self.pick(self.qw, self.scheme, Some(i));
            self.scheme = exec;
            Decision::exec(exec)
        }
    }

    fn reset(&mut self) {
        self.scheme = self.initial;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doma_core::{run_online, CostModel, CostVector, Schedule};

    fn ps(v: &[usize]) -> ProcSet {
        v.iter().copied().collect()
    }

    #[test]
    fn validation() {
        assert!(QuorumConsensus::new(5, 2, 2, ps(&[0, 1])).is_err()); // qr+qw <= n
        assert!(QuorumConsensus::new(5, 3, 3, ps(&[0, 1])).is_err()); // |I| < qw
        assert!(QuorumConsensus::new(5, 0, 5, ps(&[0, 1, 2, 3, 4])).is_err());
        assert!(QuorumConsensus::new(5, 5, 1, ps(&[0])).is_err()); // qw < 2
        assert!(QuorumConsensus::new(5, 3, 3, ps(&[0, 1, 2])).is_ok());
        let m = QuorumConsensus::majority(5, ps(&[0, 1, 2])).unwrap();
        assert_eq!((m.qr(), m.qw()), (3, 3));
    }

    #[test]
    fn always_legal_and_available() {
        let mut q = QuorumConsensus::majority(5, ps(&[0, 1, 2])).unwrap();
        let schedule: Schedule = "r4 w3 r0 r1 w0 r2 w4 r3 r3".parse().unwrap();
        // run_online validates legality + qw-availability throughout.
        let out = run_online(&mut q, &schedule).unwrap();
        assert!(out.costed.final_scheme.len() >= 3);
    }

    #[test]
    fn reads_see_latest_version_through_intersection() {
        // After a write with quorum {3,0,1}, a read quorum of size 3 must
        // intersect it — legality is exactly that intersection.
        let mut q = QuorumConsensus::majority(5, ps(&[0, 1, 2])).unwrap();
        let schedule: Schedule = "w3 r4".parse().unwrap();
        let out = run_online(&mut q, &schedule).unwrap();
        let write_exec = out.alloc.steps[0].exec;
        let read_exec = out.alloc.steps[1].exec;
        assert!(write_exec.intersects(read_exec));
    }

    #[test]
    fn multi_member_read_cost() {
        // Reads pay for the whole quorum: qr=3, issuer outside →
        // 3 control + 3 data + 3 io (the paper's footnote-1 accounting).
        let mut q = QuorumConsensus::new(5, 3, 3, ps(&[0, 1, 2])).unwrap();
        let schedule: Schedule = "r4".parse().unwrap();
        let out = run_online(&mut q, &schedule).unwrap();
        assert_eq!(out.costed.total, CostVector::new(3, 3, 3));
        // Issuer inside the quorum saves one request + one transfer.
        let mut q = QuorumConsensus::new(5, 3, 3, ps(&[0, 1, 2])).unwrap();
        let schedule: Schedule = "r0".parse().unwrap();
        let out = run_online(&mut q, &schedule).unwrap();
        assert_eq!(out.costed.total, CostVector::new(2, 2, 3));
    }

    #[test]
    fn quorum_is_dearer_than_da_on_read_heavy_workloads() {
        // Quorum reads touch ⌈(n+1)/2⌉ copies every time; DA reads are
        // local after the first. The paper's §2 uses quorums only as the
        // failure fallback — this shows why.
        let model = CostModel::stationary(0.2, 0.8).unwrap();
        let schedule: Schedule = "r3 r3 r3 r3 r3 r3 w0 r3 r3 r3".parse().unwrap();
        let mut q = QuorumConsensus::majority(5, ps(&[0, 1, 2])).unwrap();
        let q_cost = run_online(&mut q, &schedule)
            .unwrap()
            .costed
            .total_cost(&model);
        let mut da = crate::DynamicAllocation::new(ps(&[0]), ProcessorId::new(1)).unwrap();
        let da_cost = run_online(&mut da, &schedule)
            .unwrap()
            .costed
            .total_cost(&model);
        assert!(da_cost < q_cost, "DA {da_cost} should beat quorum {q_cost}");
    }

    #[test]
    fn write_quorum_includes_writer() {
        let mut q = QuorumConsensus::majority(5, ps(&[0, 1, 2])).unwrap();
        let d = q.decide(Request::write(4usize));
        assert!(d.exec.contains(ProcessorId::new(4)));
        assert_eq!(d.exec.len(), 3);
    }

    #[test]
    fn reset_restores_scheme() {
        let mut q = QuorumConsensus::majority(5, ps(&[0, 1, 2])).unwrap();
        q.decide(Request::write(4usize));
        q.reset();
        assert_eq!(q.scheme, ps(&[0, 1, 2]));
    }
}

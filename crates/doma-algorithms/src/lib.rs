//! # doma-algorithms
//!
//! The distributed object management algorithms of Huang & Wolfson
//! (ICDE 1994) and the machinery used to compare them:
//!
//! * [`StaticAllocation`] (**SA**, §4.2.1) — read-one-write-all over a
//!   fixed scheme `Q`; `(1 + cc + cd)`-competitive in SC (Theorem 1,
//!   tight by Proposition 1), not competitive in MC (Proposition 3).
//! * [`DynamicAllocation`] (**DA**, §4.2.2) — fixed core `F` of `t-1`
//!   processors plus a floating member; saving-reads and write-invalidation;
//!   `(2 + 2cc)`-competitive in SC (Theorem 2), `(2 + cc)` when `cd > 1`
//!   (Theorem 3), `(2 + 3cc/cd)`-competitive in MC (Theorem 4), and not
//!   better than 1.5-competitive (Proposition 2).
//! * [`OfflineOptimal`] (**OPT**, §4.1) — the exact minimum-cost legal,
//!   t-available allocation schedule, computed by a dynamic program over
//!   allocation schemes with O(2ⁿ·n) per-request transitions.
//! * [`BruteForceOptimal`] and [`NaiveDpOptimal`] — independent, slower
//!   implementations of OPT used to cross-validate the fast DP.
//! * [`adversary`] — the explicit worst-case schedules behind
//!   Propositions 1–3.
//! * [`search`] — exhaustive worst-case-ratio search over all short
//!   schedules (empirical lower bounds on competitiveness).
//! * [`baselines`] — first-class tournament baselines: a convergent
//!   frequency-based allocator (à la Wolfson–Jajodia) and CDVM-style
//!   caching variants, promoted from ablation-only code so the fault
//!   matrix and model checker cover them too.
//! * [`contenders`] — tournament contenders adapted from the online
//!   allocation literature: cost-oblivious reallocation (Bender et al.,
//!   arXiv:1404.2019), multiple-mobile-resource allocation (Feldkord
//!   et al., arXiv:1907.09834) and clustering-based fragment allocation
//!   (arXiv:1310.1190).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adversary;
pub mod baselines;
pub mod bounds;
mod brute;
pub mod contenders;
mod da;
pub mod multi;
mod opt;
pub mod partition;
mod quorum;
mod sa;
pub mod search;
mod static_opt;

pub use baselines::{SlidingWindowConvergent, WriteInvalidateCache};
pub use brute::{BruteForceOptimal, NaiveDpOptimal};
pub use contenders::{ClusteredAllocation, CostOblivious, MobileMirror};
pub use da::DynamicAllocation;
pub use opt::OfflineOptimal;
pub use quorum::QuorumConsensus;
pub use sa::StaticAllocation;
pub use static_opt::BestStaticAllocation;

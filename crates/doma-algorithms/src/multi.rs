//! Multi-object allocation — the natural extension of the paper's
//! single-object analysis (§6.1 notes the results "extend to other
//! models"; a real distributed database manages many objects at once).
//!
//! In the paper's cost model objects are independent: the cost of an
//! interleaved multi-object schedule is the sum of the per-object costs.
//! What *isn't* independent is **load**: if every object's DA core `F`
//! sits on the same processor, that processor performs the I/O of every
//! write and serves every first read. [`MultiObjectDa`] therefore assigns
//! each object a core when it is first touched, under a configurable
//! [`Placement`] policy, and [`run_multi`] reports both the total cost and
//! the per-processor I/O load so the E18 experiment can quantify the
//! placement trade-off.

use crate::DynamicAllocation;
use doma_core::{
    cost_of_schedule, per_processor_io, AllocationSchedule, CostVector, DomAlgorithm, DomaError,
    ObjectId, OnlineDom, ProcSet, ProcessorId, Result,
};
use std::collections::BTreeMap;

pub use doma_core::{MultiRequest, MultiSchedule};

/// How DA cores are placed across processors as objects are first touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Every object's core is `{0, …, t-2}` with floater `t-1` — the
    /// naive choice, which concentrates all core traffic on one set.
    SameCore,
    /// The k-th distinct object's core starts at processor
    /// `(k·(t-1)) mod n` — spreads core duty round-robin.
    RoundRobin,
    /// Each new object's core is placed on the currently least-loaded
    /// processors (load = I/O attributed so far).
    LoadAware,
}

/// A catalog of per-object [`DynamicAllocation`] instances under a common
/// placement policy.
pub struct MultiObjectDa {
    n: usize,
    t: usize,
    placement: Placement,
    instances: BTreeMap<ObjectId, DynamicAllocation>,
    /// Allocation schedules built per object, for costing.
    transcripts: BTreeMap<ObjectId, AllocationSchedule>,
    /// Running per-processor I/O attribution (drives LoadAware).
    load: Vec<u64>,
    created: usize,
}

impl MultiObjectDa {
    /// Creates the catalog for an `n`-processor system with threshold `t`.
    pub fn new(n: usize, t: usize, placement: Placement) -> Result<Self> {
        if t < 2 || t >= n {
            return Err(DomaError::InvalidConfig(format!(
                "need 2 <= t < n (t={t}, n={n})"
            )));
        }
        Ok(MultiObjectDa {
            n,
            t,
            placement,
            instances: BTreeMap::new(),
            transcripts: BTreeMap::new(),
            load: vec![0; n],
            created: 0,
        })
    }

    /// The placement policy in force.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// The core chosen for `object`, if it has been touched.
    pub fn core_of(&self, object: ObjectId) -> Option<ProcSet> {
        self.instances.get(&object).map(|da| da.f())
    }

    fn place(&mut self, object: ObjectId) -> Result<&mut DynamicAllocation> {
        if !self.instances.contains_key(&object) {
            let members = crate::partition::select_members(
                self.placement,
                self.created,
                self.n,
                self.t,
                &self.load,
            );
            let f: ProcSet = members[..self.t - 1].iter().copied().collect();
            let p = ProcessorId::new(members[self.t - 1]);
            let da = DynamicAllocation::new(f, p)?;
            self.transcripts
                .insert(object, AllocationSchedule::new(da.initial_scheme()));
            self.instances.insert(object, da);
            self.created += 1;
        }
        self.instances.get_mut(&object).ok_or_else(|| {
            DomaError::InvalidConfig(format!("object {object:?} vanished after placement"))
        })
    }

    /// Serves one request, updating the object's transcript and the load
    /// attribution.
    pub fn serve(&mut self, mr: MultiRequest) -> Result<()> {
        let t = self.t;
        let da = self.place(mr.object)?;
        let decision = da.decide(mr.request);
        let transcript = self.transcripts.get_mut(&mr.object).ok_or_else(|| {
            DomaError::InvalidConfig(format!("object {:?} has no transcript", mr.object))
        })?;
        transcript.push(mr.request, decision);
        // Incremental load attribution (same rule as per_processor_io).
        for member in decision.exec.iter() {
            self.load[member.index()] += 1;
        }
        if decision.saving && mr.request.is_read() {
            self.load[mr.request.issuer.index()] += 1;
        }
        let _ = t;
        Ok(())
    }

    /// Validates and costs every per-object transcript.
    pub fn finish(self) -> Result<MultiRunReport> {
        let mut per_object = BTreeMap::new();
        let mut total = CostVector::ZERO;
        let mut load = vec![0u64; self.n];
        for (object, transcript) in &self.transcripts {
            let costed = cost_of_schedule(transcript, self.t)?;
            for (slot, l) in load.iter_mut().zip(per_processor_io(&costed, self.n)) {
                *slot += l;
            }
            total += costed.total;
            per_object.insert(*object, costed.total);
        }
        Ok(MultiRunReport {
            per_object,
            total,
            load,
        })
    }
}

/// The outcome of a multi-object run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiRunReport {
    /// Exact tally per object.
    pub per_object: BTreeMap<ObjectId, CostVector>,
    /// Sum over objects.
    pub total: CostVector,
    /// I/O operations attributed to each processor.
    pub load: Vec<u64>,
}

impl MultiRunReport {
    /// The highest per-processor I/O load — the hotspot metric the
    /// placement policies compete on.
    pub fn max_load(&self) -> u64 {
        self.load.iter().copied().max().unwrap_or(0)
    }

    /// Ratio of the hottest processor's load to the mean (1.0 = perfectly
    /// balanced).
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.load.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.load.len() as f64;
        self.max_load() as f64 / mean
    }
}

/// Runs a whole multi-object schedule under a placement policy.
pub fn run_multi(
    n: usize,
    t: usize,
    placement: Placement,
    schedule: &MultiSchedule,
) -> Result<MultiRunReport> {
    let mut catalog = MultiObjectDa::new(n, t, placement)?;
    for &mr in schedule.requests() {
        catalog.serve(mr)?;
    }
    catalog.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use doma_core::{run_online, Request};

    fn sched(pairs: &[(u64, &str)]) -> MultiSchedule {
        let mut s = MultiSchedule::default();
        for (obj, text) in pairs {
            let single: doma_core::Schedule = text.parse().unwrap();
            for r in single.iter() {
                s.push(ObjectId(*obj), r);
            }
        }
        s
    }

    #[test]
    fn validation() {
        assert!(MultiObjectDa::new(4, 1, Placement::SameCore).is_err());
        assert!(MultiObjectDa::new(4, 4, Placement::SameCore).is_err());
        assert!(MultiObjectDa::new(4, 2, Placement::SameCore).is_ok());
    }

    #[test]
    fn schedule_bookkeeping() {
        let s = sched(&[(1, "r2 w3"), (2, "r4")]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.objects(), vec![ObjectId(1), ObjectId(2)]);
        let per = s.per_object();
        assert_eq!(per[&ObjectId(1)].to_string(), "r2 w3");
        assert_eq!(per[&ObjectId(2)].to_string(), "r4");
    }

    /// Objects are independent in the cost model: the multi-object total
    /// equals the sum of single-object DA runs with the same cores.
    #[test]
    fn total_cost_equals_sum_of_single_object_runs() {
        let s = sched(&[(1, "r2 r2 w3 r2"), (2, "w4 r0 r0"), (3, "r1 w1 r2")]);
        let report = run_multi(6, 2, Placement::SameCore, &s).unwrap();
        let mut expected = CostVector::ZERO;
        for (_, single) in s.per_object() {
            let mut da =
                DynamicAllocation::new(ProcSet::from_iter([0usize]), ProcessorId::new(1)).unwrap();
            expected += run_online(&mut da, &single).unwrap().costed.total;
        }
        assert_eq!(report.total, expected);
        assert_eq!(report.per_object.len(), 3);
    }

    #[test]
    fn round_robin_spreads_cores() {
        let s = sched(&[(1, "w2"), (2, "w2"), (3, "w2"), (4, "w2")]);
        let mut catalog = MultiObjectDa::new(8, 2, Placement::RoundRobin).unwrap();
        for &mr in s.requests() {
            catalog.serve(mr).unwrap();
        }
        let cores: Vec<ProcSet> = (1..=4)
            .map(|o| catalog.core_of(ObjectId(o)).unwrap())
            .collect();
        // t = 2 → |F| = 1, advancing by 1 each object.
        assert_eq!(cores[0], ProcSet::from_iter([0usize]));
        assert_eq!(cores[1], ProcSet::from_iter([1usize]));
        assert_eq!(cores[2], ProcSet::from_iter([2usize]));
        assert_eq!(cores[3], ProcSet::from_iter([3usize]));
    }

    #[test]
    fn placement_reduces_hotspot_load_without_changing_cost() {
        // 12 objects, each written repeatedly by scattered writers: with
        // SameCore all core I/O lands on processors {0,1}; RoundRobin and
        // LoadAware spread it.
        let mut s = MultiSchedule::default();
        for obj in 0..12u64 {
            for k in 0..6 {
                s.push(ObjectId(obj), Request::write(((obj as usize) + k) % 8));
            }
        }
        let same = run_multi(8, 2, Placement::SameCore, &s).unwrap();
        let rr = run_multi(8, 2, Placement::RoundRobin, &s).unwrap();
        let aware = run_multi(8, 2, Placement::LoadAware, &s).unwrap();
        // Data-message and I/O tallies are placement-invariant (every DA
        // write ships t-1 copies and stores t); control messages may vary,
        // since invalidation counts depend on whether writers happen to be
        // core members under a given placement.
        assert_eq!(same.total.data, rr.total.data);
        assert_eq!(same.total.io, rr.total.io);
        assert_eq!(same.total.data, aware.total.data);
        assert_eq!(same.total.io, aware.total.io);
        // The hotspot load drops markedly under spreading placements.
        assert!(rr.max_load() < same.max_load());
        assert!(aware.max_load() < same.max_load());
        assert!(rr.imbalance() < same.imbalance());
    }

    #[test]
    fn report_helpers() {
        let r = MultiRunReport {
            per_object: BTreeMap::new(),
            total: CostVector::ZERO,
            load: vec![4, 0, 0, 0],
        };
        assert_eq!(r.max_load(), 4);
        assert!((r.imbalance() - 4.0).abs() < 1e-12);
        let empty = MultiRunReport {
            per_object: BTreeMap::new(),
            total: CostVector::ZERO,
            load: vec![0, 0],
        };
        assert_eq!(empty.imbalance(), 1.0);
    }

    #[test]
    fn load_attribution_matches_costed_transcripts() {
        let s = sched(&[(1, "r2 r2 w3"), (2, "r5 w0 r5")]);
        let mut catalog = MultiObjectDa::new(6, 2, Placement::RoundRobin).unwrap();
        for &mr in s.requests() {
            catalog.serve(mr).unwrap();
        }
        let incremental = catalog.load.clone();
        let report = catalog.finish().unwrap();
        assert_eq!(incremental, report.load);
        assert_eq!(report.load.iter().sum::<u64>(), report.total.io);
    }
}

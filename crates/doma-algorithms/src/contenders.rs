//! Tournament contenders adapted from the related online-allocation
//! literature (ROADMAP item 3: the algorithm tournament).
//!
//! None of these are contributions of the paper; each adapts a published
//! allocation idea to the DOM setting (legal, `t`-available allocation
//! schedules over `n` processors) so the tournament can compare them
//! against SA/DA/OPT under one differential-test wall:
//!
//! * [`CostOblivious`] — storage reallocation in the spirit of Bender
//!   et al. (arXiv:1404.2019): decisions never consult the cost model.
//!   A non-member joins the scheme only after a *threshold* of remote
//!   reads since the last write (the ski-rental rule); writes re-home
//!   the scheme onto the writer plus the most recently active sites and
//!   reset every counter.
//! * [`MobileMirror`] — multiple-mobile-resource online allocation in
//!   the spirit of Feldkord et al. (arXiv:1907.09834): the `t` replicas
//!   behave like mobile servers chasing requests. Every outsider read
//!   pulls a mirror to the reader (saving-read); every write collapses
//!   the mirrors back onto the writer and the `t - 1` most recently
//!   active sites.
//! * [`ClusteredAllocation`] — clustering-based fragment allocation in
//!   the spirit of arXiv:1310.1190: exponentially decayed per-processor
//!   affinities define a *hot cluster*, outsider reads join the scheme
//!   only while the reader is hot, and writes re-home the scheme onto
//!   the cluster.
//!
//! All three implement [`OnlineDom`] and are deterministic pure
//! functions of the request sequence, which is what lets the protocol
//! simulator replay them as driver-side plan oracles with exact cost
//! parity.

use doma_core::{
    Decision, DomAlgorithm, DomaError, OnlineDom, ProcSet, ProcessorId, Request, Result,
    MAX_PROCESSORS,
};

fn validate_adaptive(n: usize, t: usize, initial: ProcSet) -> Result<()> {
    if n == 0 || n > MAX_PROCESSORS {
        return Err(DomaError::InvalidConfig(format!(
            "need 1 <= n <= {MAX_PROCESSORS}, got {n}"
        )));
    }
    if t == 0 || t > n {
        return Err(DomaError::InvalidConfig(format!(
            "need 1 <= t <= n, got t={t}, n={n}"
        )));
    }
    if !initial.is_subset(ProcSet::universe(n)) {
        return Err(DomaError::InvalidConfig(format!(
            "initial {initial} outside universe of {n}"
        )));
    }
    if initial.len() < t {
        return Err(DomaError::InvalidConfig(format!(
            "initial scheme {initial} smaller than t={t}"
        )));
    }
    Ok(())
}

/// A most-recent-first activity list over the processors; the common
/// "who moved last" signal the contenders steer by.
#[derive(Debug, Clone, Default)]
struct Recency {
    order: Vec<ProcessorId>,
}

impl Recency {
    fn touch(&mut self, p: ProcessorId) {
        self.order.retain(|&q| q != p);
        self.order.insert(0, p);
    }

    /// The `k` most recently active processors other than `exclude`.
    fn top(&self, k: usize, exclude: ProcessorId) -> impl Iterator<Item = ProcessorId> + '_ {
        self.order
            .iter()
            .copied()
            .filter(move |&q| q != exclude)
            .take(k)
    }

    fn clear(&mut self) {
        self.order.clear();
    }
}

/// Grows `set` to at least `t` members: first from `preferred` (in
/// order), then by lowest processor index over the `n`-universe.
fn pad_to_t(
    mut set: ProcSet,
    t: usize,
    n: usize,
    preferred: impl Iterator<Item = ProcessorId>,
) -> ProcSet {
    for p in preferred {
        if set.len() >= t {
            break;
        }
        set.insert(p);
    }
    let mut index = 0;
    while set.len() < t && index < n {
        set.insert(ProcessorId::new(index));
        index += 1;
    }
    set
}

/// Cost-oblivious reallocation (after Bender et al., arXiv:1404.2019):
/// the ski-rental rule for replica placement. A non-member pays for
/// `threshold` remote reads before the algorithm commits to replicating
/// at it; a write re-homes the scheme onto the writer plus the `t - 1`
/// most recently active processors and resets every rental counter. The
/// decisions never look at `cc`/`cd` — the point of the adaptation is
/// to measure how far cost-obliviousness falls behind DA per cost cell.
#[derive(Debug, Clone)]
pub struct CostOblivious {
    n: usize,
    t: usize,
    initial: ProcSet,
    threshold: u32,
    // --- mutable state ---
    scheme: ProcSet,
    misses: Vec<u32>,
    recency: Recency,
}

impl CostOblivious {
    /// Creates the allocator (`1 ≤ t ≤ n`, `|initial| ≥ t`,
    /// `threshold ≥ 1`).
    pub fn new(n: usize, t: usize, initial: ProcSet, threshold: u32) -> Result<Self> {
        validate_adaptive(n, t, initial)?;
        if threshold == 0 {
            return Err(DomaError::InvalidConfig(
                "threshold must be positive".to_string(),
            ));
        }
        Ok(CostOblivious {
            n,
            t,
            initial,
            threshold,
            scheme: initial,
            misses: vec![0; n],
            recency: Recency::default(),
        })
    }
}

impl DomAlgorithm for CostOblivious {
    fn name(&self) -> &str {
        "CostOblivious"
    }
    fn t(&self) -> usize {
        self.t
    }
    fn initial_scheme(&self) -> ProcSet {
        self.initial
    }
}

impl OnlineDom for CostOblivious {
    fn decide(&mut self, request: Request) -> Decision {
        let i = request.issuer;
        self.recency.touch(i);
        if request.is_read() {
            if self.scheme.contains(i) {
                return Decision::exec(ProcSet::singleton(i));
            }
            let server = self.scheme.any_member().unwrap_or(i);
            self.misses[i.index()] += 1;
            if self.misses[i.index()] >= self.threshold {
                // Rental paid off: buy the replica.
                self.misses[i.index()] = 0;
                self.scheme.insert(i);
                Decision::saving(ProcSet::singleton(server))
            } else {
                Decision::exec(ProcSet::singleton(server))
            }
        } else {
            let exec = pad_to_t(
                ProcSet::singleton(i),
                self.t,
                self.n,
                self.recency.top(self.t - 1, i),
            );
            self.scheme = exec;
            self.misses.fill(0);
            Decision::exec(exec)
        }
    }

    fn reset(&mut self) {
        self.scheme = self.initial;
        self.misses.fill(0);
        self.recency.clear();
    }
}

/// Multiple-mobile-resource online allocation (after Feldkord et al.,
/// arXiv:1907.09834): the `t` replicas are mobile servers that chase the
/// request sequence. Every outsider read immediately pulls a mirror to
/// the reader (a saving-read, so the scheme grows between writes), and
/// every write collapses the mirrors back onto the writer plus the
/// `t - 1` most recently active sites.
#[derive(Debug, Clone)]
pub struct MobileMirror {
    n: usize,
    t: usize,
    initial: ProcSet,
    // --- mutable state ---
    scheme: ProcSet,
    recency: Recency,
}

impl MobileMirror {
    /// Creates the allocator (`1 ≤ t ≤ n`, `|initial| ≥ t`).
    pub fn new(n: usize, t: usize, initial: ProcSet) -> Result<Self> {
        validate_adaptive(n, t, initial)?;
        Ok(MobileMirror {
            n,
            t,
            initial,
            scheme: initial,
            recency: Recency::default(),
        })
    }
}

impl DomAlgorithm for MobileMirror {
    fn name(&self) -> &str {
        "MobileMirror"
    }
    fn t(&self) -> usize {
        self.t
    }
    fn initial_scheme(&self) -> ProcSet {
        self.initial
    }
}

impl OnlineDom for MobileMirror {
    fn decide(&mut self, request: Request) -> Decision {
        let i = request.issuer;
        self.recency.touch(i);
        if request.is_read() {
            if self.scheme.contains(i) {
                Decision::exec(ProcSet::singleton(i))
            } else {
                let server = self.scheme.any_member().unwrap_or(i);
                self.scheme.insert(i);
                Decision::saving(ProcSet::singleton(server))
            }
        } else {
            let exec = pad_to_t(
                ProcSet::singleton(i),
                self.t,
                self.n,
                self.recency.top(self.t - 1, i),
            );
            self.scheme = exec;
            Decision::exec(exec)
        }
    }

    fn reset(&mut self) {
        self.scheme = self.initial;
        self.recency.clear();
    }
}

/// Per-request affinity boost (integer-scaled so the whole algorithm is
/// exact and deterministic).
const AFFINITY_BOOST: u64 = 256;

/// Clustering-based fragment allocation (after arXiv:1310.1190):
/// exponentially decayed per-processor affinities define a *hot
/// cluster* — every processor whose affinity is at least half the
/// maximum. Outsider reads join the scheme only while the reader is in
/// the cluster; writes re-home the scheme onto the cluster (padded to
/// `t` by affinity rank, ties to the lower index).
#[derive(Debug, Clone)]
pub struct ClusteredAllocation {
    n: usize,
    t: usize,
    initial: ProcSet,
    // --- mutable state ---
    scheme: ProcSet,
    affinity: Vec<u64>,
}

impl ClusteredAllocation {
    /// Creates the allocator (`1 ≤ t ≤ n`, `|initial| ≥ t`).
    pub fn new(n: usize, t: usize, initial: ProcSet) -> Result<Self> {
        validate_adaptive(n, t, initial)?;
        Ok(ClusteredAllocation {
            n,
            t,
            initial,
            scheme: initial,
            affinity: vec![0; n],
        })
    }

    /// Decays every affinity by 1/8 and boosts the issuer — the
    /// exponential forgetting that keeps the cluster tracking the
    /// *current* access pattern.
    fn observe(&mut self, p: ProcessorId) {
        for a in &mut self.affinity {
            *a -= *a / 8;
        }
        self.affinity[p.index()] += AFFINITY_BOOST;
    }

    fn in_cluster(&self, p: ProcessorId) -> bool {
        let max = self.affinity.iter().copied().max().unwrap_or(0);
        2 * self.affinity[p.index()] >= max
    }

    /// Processors ordered by descending affinity, ties to lower index.
    fn affinity_rank(&self) -> Vec<ProcessorId> {
        let mut order: Vec<usize> = (0..self.n).collect();
        order.sort_by_key(|&p| (std::cmp::Reverse(self.affinity[p]), p));
        order.into_iter().map(ProcessorId::new).collect()
    }
}

impl DomAlgorithm for ClusteredAllocation {
    fn name(&self) -> &str {
        "Clustered"
    }
    fn t(&self) -> usize {
        self.t
    }
    fn initial_scheme(&self) -> ProcSet {
        self.initial
    }
}

impl OnlineDom for ClusteredAllocation {
    fn decide(&mut self, request: Request) -> Decision {
        let i = request.issuer;
        self.observe(i);
        if request.is_read() {
            if self.scheme.contains(i) {
                return Decision::exec(ProcSet::singleton(i));
            }
            let server = self.scheme.any_member().unwrap_or(i);
            if self.in_cluster(i) {
                self.scheme.insert(i);
                Decision::saving(ProcSet::singleton(server))
            } else {
                Decision::exec(ProcSet::singleton(server))
            }
        } else {
            let mut cluster = ProcSet::singleton(i);
            for p in 0..self.n {
                if self.in_cluster(ProcessorId::new(p)) {
                    cluster.insert(ProcessorId::new(p));
                }
            }
            let exec = pad_to_t(cluster, self.t, self.n, self.affinity_rank().into_iter());
            self.scheme = exec;
            Decision::exec(exec)
        }
    }

    fn reset(&mut self) {
        self.scheme = self.initial;
        self.affinity.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doma_core::{run_online, CostModel, Schedule};

    fn ps(v: &[usize]) -> ProcSet {
        v.iter().copied().collect()
    }

    #[test]
    fn constructor_validation() {
        assert!(CostOblivious::new(0, 1, ProcSet::EMPTY, 2).is_err());
        assert!(CostOblivious::new(4, 0, ps(&[0]), 2).is_err());
        assert!(CostOblivious::new(4, 2, ps(&[0]), 2).is_err());
        assert!(CostOblivious::new(4, 2, ps(&[0, 1]), 0).is_err());
        assert!(CostOblivious::new(2, 2, ps(&[0, 5]), 2).is_err());
        assert!(CostOblivious::new(4, 2, ps(&[0, 1]), 2).is_ok());
        assert!(MobileMirror::new(4, 5, ps(&[0, 1]),).is_err());
        assert!(MobileMirror::new(4, 2, ps(&[0, 1])).is_ok());
        assert!(ClusteredAllocation::new(4, 2, ps(&[0])).is_err());
        assert!(ClusteredAllocation::new(4, 2, ps(&[0, 1])).is_ok());
    }

    #[test]
    fn cost_oblivious_joins_only_after_threshold() {
        let mut algo = CostOblivious::new(4, 2, ps(&[0, 1]), 3).unwrap();
        let schedule: Schedule = "r2 r2 r2 r2".parse().unwrap();
        let out = run_online(&mut algo, &schedule).unwrap();
        // Reads 1 and 2 rent (no save); read 3 hits the threshold and buys.
        assert!(!out.alloc.steps[0].saving);
        assert!(!out.alloc.steps[1].saving);
        assert!(out.alloc.steps[2].saving);
        // Read 4 is then local.
        assert_eq!(out.alloc.steps[3].exec, ps(&[2]));
    }

    #[test]
    fn cost_oblivious_write_rehomes_on_recent_actors() {
        let mut algo = CostOblivious::new(5, 2, ps(&[0, 1]), 2).unwrap();
        let schedule: Schedule = "r3 w4".parse().unwrap();
        let out = run_online(&mut algo, &schedule).unwrap();
        // The write lands on the writer plus the most recent actor (3).
        assert_eq!(out.costed.final_scheme, ps(&[3, 4]));
    }

    #[test]
    fn mobile_mirror_chases_readers_and_collapses_on_write() {
        let mut algo = MobileMirror::new(5, 2, ps(&[0, 1])).unwrap();
        let schedule: Schedule = "r2 r3 w3".parse().unwrap();
        let out = run_online(&mut algo, &schedule).unwrap();
        assert!(out.alloc.steps[0].saving && out.alloc.steps[1].saving);
        assert_eq!(out.alloc.scheme_at(2), ps(&[0, 1, 2, 3]));
        // Write by 3: collapse to writer + most recent other actor (2).
        assert_eq!(out.costed.final_scheme, ps(&[2, 3]));
    }

    #[test]
    fn clustered_ignores_cold_readers() {
        let mut algo = ClusteredAllocation::new(5, 2, ps(&[0, 1])).unwrap();
        // Processor 2 dominates the affinity mass; a lone read by 4 stays
        // remote (no save) because 4 is far below half the max affinity.
        let schedule: Schedule = "r2 r2 r2 r2 r4".parse().unwrap();
        let out = run_online(&mut algo, &schedule).unwrap();
        assert!(!out.alloc.steps[4].saving, "cold reader must not join");
    }

    #[test]
    fn clustered_write_lands_on_hot_cluster() {
        let mut algo = ClusteredAllocation::new(5, 2, ps(&[0, 1])).unwrap();
        let schedule: Schedule = "r2 r3 r2 r3 w2".parse().unwrap();
        let out = run_online(&mut algo, &schedule).unwrap();
        let scheme = out.costed.final_scheme;
        assert!(scheme.contains(ProcessorId::new(2)), "{scheme}");
        assert!(scheme.contains(ProcessorId::new(3)), "{scheme}");
    }

    #[test]
    fn all_contenders_stay_legal_on_a_mixed_schedule() {
        let schedule: Schedule = "r4 w2 r3 r3 w4 r0 w1 r2 r2 r2 w3 r1 w0 r4".parse().unwrap();
        run_online(
            &mut CostOblivious::new(5, 2, ps(&[0, 1]), 2).unwrap(),
            &schedule,
        )
        .expect("cost-oblivious must stay legal and t-available");
        run_online(
            &mut MobileMirror::new(5, 2, ps(&[0, 1])).unwrap(),
            &schedule,
        )
        .expect("mobile-mirror must stay legal and t-available");
        run_online(
            &mut ClusteredAllocation::new(5, 2, ps(&[0, 1])).unwrap(),
            &schedule,
        )
        .expect("clustered must stay legal and t-available");
    }

    #[test]
    fn contenders_reset_reproduces_first_run() {
        let schedule: Schedule = "r2 r2 w3 r4 r4 w1 r0".parse().unwrap();
        let mut algo = CostOblivious::new(5, 2, ps(&[0, 1]), 2).unwrap();
        let a = run_online(&mut algo, &schedule).unwrap();
        let b = run_online(&mut algo, &schedule).unwrap();
        assert_eq!(a, b, "run_online resets to identical behavior");
    }

    #[test]
    fn mobile_mirror_beats_da_on_migrating_hotspot() {
        // A hotspot that moves: mirrors chase it, DA's fixed core pays
        // remote reads forever.
        let model = CostModel::stationary(0.2, 0.4).unwrap();
        let phase: Schedule = "r3 r3 r3 w3 r4 r4 r4 w4".parse().unwrap();
        let schedule = phase.repeated(8);
        let mut mm = MobileMirror::new(5, 2, ps(&[0, 1])).unwrap();
        let mm_cost = run_online(&mut mm, &schedule)
            .unwrap()
            .costed
            .total_cost(&model);
        let mut da = crate::DynamicAllocation::new(ps(&[0]), ProcessorId::new(1)).unwrap();
        let da_cost = run_online(&mut da, &schedule)
            .unwrap()
            .costed
            .total_cost(&model);
        assert!(
            mm_cost < da_cost,
            "mirrors ({mm_cost}) should beat DA ({da_cost}) on a migrating hotspot"
        );
    }
}

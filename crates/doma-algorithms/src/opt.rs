//! The optimal offline DOM algorithm (OPT) — the competitive-analysis
//! yardstick of §4.1.
//!
//! OPT produces, for a given schedule, initial scheme and cost model, the
//! minimum-cost *legal*, *t-available* allocation schedule. It is computed
//! exactly by a dynamic program whose state is the current allocation
//! scheme (a subset of the `n` processors):
//!
//! * a **read** by `i` either executes locally (`i ∈ Y`), executes remotely
//!   without saving (scheme unchanged), or executes remotely as a
//!   saving-read (scheme gains `i`) — in a homogeneous system a singleton
//!   execution set from the scheme is always optimal for reads, and the
//!   serving member's identity is cost-irrelevant;
//! * a **write** by `i` may choose *any* execution set `X` with `|X| ≥ t`
//!   as the new scheme, paying `cc` per invalidated copy, `cd` per copy
//!   shipped, and `cio` per copy stored.
//!
//! A naive write transition considers every (old scheme, new scheme) pair —
//! O(4ⁿ). We instead compute, for every new scheme `V`,
//! `min over Y of [cost(Y) + cc·|Y \ V|]` with two O(2ⁿ·n) relaxation
//! sweeps (a superset sweep that "drops" copies at `cc` each, then a
//! subset-minimum sweep), giving O(2ⁿ·n) per request. The naive version is
//! kept in [`crate::NaiveDpOptimal`] and cross-checked by tests.

use doma_core::{
    AllocationSchedule, CostModel, Decision, DomAlgorithm, DomaError, OfflineDom, ProcSet, Result,
    Schedule,
};

/// Practical cap on the number of processors for the exact DP (2ⁿ states
/// per request are materialized for backtracking).
pub const MAX_OPT_PROCESSORS: usize = 20;

/// The exact offline-optimal DOM algorithm for a fixed system size `n`,
/// availability threshold `t`, initial scheme and cost model.
///
/// ```
/// use doma_algorithms::OfflineOptimal;
/// use doma_core::{run_offline, CostModel, ProcSet, Schedule};
///
/// let model = CostModel::stationary(0.25, 0.5).unwrap();
/// let opt = OfflineOptimal::new(4, 2, ProcSet::from_iter([0, 1]), model).unwrap();
/// let schedule: Schedule = "r2 r2 r2 w0 r2".parse().unwrap();
/// let out = run_offline(&opt, &schedule).unwrap();
/// // OPT converts the first r2 into a saving-read so the next two are free.
/// assert!(out.alloc.steps[0].saving);
/// ```
#[derive(Debug, Clone)]
pub struct OfflineOptimal {
    n: usize,
    t: usize,
    initial: ProcSet,
    model: CostModel,
}

impl OfflineOptimal {
    /// Creates OPT for an `n`-processor system with threshold `t` and
    /// initial scheme `initial` (`t ≤ |initial|`, `t ≥ 1`, `n ≤ 20`).
    pub fn new(n: usize, t: usize, initial: ProcSet, model: CostModel) -> Result<Self> {
        if n == 0 || n > MAX_OPT_PROCESSORS {
            return Err(DomaError::InvalidConfig(format!(
                "OPT supports 1..={MAX_OPT_PROCESSORS} processors, got {n}"
            )));
        }
        if t == 0 || t > n {
            return Err(DomaError::InvalidConfig(format!(
                "OPT requires 1 <= t <= n, got t={t}, n={n}"
            )));
        }
        if !initial.is_subset(ProcSet::universe(n)) {
            return Err(DomaError::InvalidConfig(format!(
                "initial scheme {initial} not within universe of {n}"
            )));
        }
        if initial.len() < t {
            return Err(DomaError::InvalidConfig(format!(
                "initial scheme {initial} smaller than t={t}"
            )));
        }
        Ok(OfflineOptimal {
            n,
            t,
            initial,
            model,
        })
    }

    /// The cost model OPT optimizes under.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// The system size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Computes only the optimal cost (no allocation schedule
    /// reconstruction); slightly cheaper when just a ratio denominator is
    /// needed.
    pub fn optimal_cost(&self, schedule: &Schedule) -> Result<f64> {
        let table = self.forward(schedule)?;
        Ok(table
            .rows
            .last()
            .map(|row| row.cost.iter().copied().fold(f64::INFINITY, f64::min))
            .unwrap_or(0.0))
    }

    fn forward(&self, schedule: &Schedule) -> Result<DpTable> {
        if schedule.min_processors() > self.n {
            return Err(DomaError::InvalidConfig(format!(
                "schedule references processor {} but n={}",
                schedule.min_processors() - 1,
                self.n
            )));
        }
        let size = 1usize << self.n;
        let cc = self.model.cc();
        let cd = self.model.cd();
        let cio = self.model.cio();

        let mut cur = vec![f64::INFINITY; size];
        cur[self.initial.bits() as usize] = 0.0;
        let mut rows: Vec<DpRow> = Vec::with_capacity(schedule.len());

        // Scratch buffers reused across requests.
        let mut relax = vec![f64::INFINITY; size];
        let mut relax_arg = vec![u32::MAX; size];

        for request in schedule.iter() {
            let i = request.issuer.index();
            let ibit = 1usize << i;
            let mut next = vec![f64::INFINITY; size];
            let mut prev = vec![u32::MAX; size];

            if request.is_read() {
                for (y, &c) in cur.iter().enumerate() {
                    if !c.is_finite() {
                        continue;
                    }
                    if y & ibit != 0 {
                        // Local read.
                        relax_min(&mut next, &mut prev, y, c + cio, y as u32);
                    } else {
                        // Remote read without saving…
                        relax_min(&mut next, &mut prev, y, c + cc + cio + cd, y as u32);
                        // …or a saving-read that adds i to the scheme.
                        relax_min(
                            &mut next,
                            &mut prev,
                            y | ibit,
                            c + cc + 2.0 * cio + cd,
                            y as u32,
                        );
                    }
                }
            } else {
                // Write: step 1 — superset sweep. After this,
                // relax[w] = min over Y ⊇ w of cur[Y] + cc·|Y \ w|.
                relax.copy_from_slice(&cur);
                for (w, a) in relax_arg.iter_mut().enumerate() {
                    *a = if cur[w].is_finite() {
                        w as u32
                    } else {
                        u32::MAX
                    };
                }
                for j in 0..self.n {
                    let jbit = 1usize << j;
                    for w in 0..size {
                        if w & jbit == 0 {
                            let via = relax[w | jbit] + cc;
                            if via < relax[w] {
                                relax[w] = via;
                                relax_arg[w] = relax_arg[w | jbit];
                            }
                        }
                    }
                }
                // Step 2 — subset-minimum sweep. After this,
                // relax[v] = min over W ⊆ v of (step-1 value), i.e.
                // min over Y of cur[Y] + cc·|Y \ v|.
                for j in 0..self.n {
                    let jbit = 1usize << j;
                    for v in 0..size {
                        if v & jbit != 0 && relax[v ^ jbit] < relax[v] {
                            relax[v] = relax[v ^ jbit];
                            relax_arg[v] = relax_arg[v ^ jbit];
                        }
                    }
                }
                // Step 3 — score every candidate new scheme X, |X| ≥ t.
                for x in 0..size {
                    let xn = (x as u64).count_ones() as usize;
                    if xn < self.t {
                        continue;
                    }
                    // Invalidations never target the writer itself: the set
                    // whose survivors avoid the cc charge is X ∪ {i}.
                    let v = x | ibit;
                    let base = if x & ibit != 0 {
                        cd * (xn as f64 - 1.0) + cio * xn as f64
                    } else {
                        cd * xn as f64 + cio * xn as f64
                    };
                    let cand = relax[v] + base;
                    if cand < next[x] {
                        next[x] = cand;
                        prev[x] = relax_arg[v];
                    }
                }
            }

            rows.push(DpRow {
                cost: next.clone(),
                prev,
            });
            cur = next;
        }

        Ok(DpTable { rows })
    }

    /// Reconstructs the optimal allocation schedule from the DP table.
    fn backtrack(&self, schedule: &Schedule, table: &DpTable) -> AllocationSchedule {
        let mut alloc = AllocationSchedule::new(self.initial);
        if schedule.is_empty() {
            return alloc;
        }
        let Some(last) = table.rows.last() else {
            return alloc;
        };
        // At least one final state is reachable (the forward pass
        // succeeded); an empty filter would only mean an internal DP bug,
        // in which case the validating caller rejects the empty schedule.
        let Some((mut state, _)) = last
            .cost
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_finite())
            .min_by(|a, b| a.1.total_cmp(b.1))
        else {
            return alloc;
        };

        // Walk backwards collecting (request, decision) pairs.
        let mut decisions: Vec<Decision> = Vec::with_capacity(schedule.len());
        for (k, &request) in schedule.requests().iter().enumerate().rev() {
            let row = &table.rows[k];
            let y = row.prev[state] as usize;
            debug_assert_ne!(row.prev[state], u32::MAX, "backpointer must exist");
            let i = request.issuer;
            let ibit = 1usize << i.index();
            let decision = if request.is_read() {
                if state == y {
                    if y & ibit != 0 {
                        Decision::exec(ProcSet::singleton(i))
                    } else {
                        // Reachable DP states are t-available, so non-empty.
                        let server = ProcSet::from_bits(y as u64).any_member().unwrap_or(i);
                        Decision::exec(ProcSet::singleton(server))
                    }
                } else {
                    // Saving-read: state == y | ibit.
                    debug_assert_eq!(state, y | ibit);
                    let server = ProcSet::from_bits(y as u64).any_member().unwrap_or(i);
                    Decision::saving(ProcSet::singleton(server))
                }
            } else {
                // Write: the new state *is* the execution set.
                Decision::exec(ProcSet::from_bits(state as u64))
            };
            decisions.push(decision);
            state = y;
        }
        debug_assert_eq!(state, self.initial.bits() as usize);
        decisions.reverse();
        for (request, decision) in schedule.iter().zip(decisions) {
            alloc.push(request, decision);
        }
        alloc
    }
}

#[inline]
fn relax_min(next: &mut [f64], prev: &mut [u32], state: usize, cand: f64, from: u32) {
    if cand < next[state] {
        next[state] = cand;
        prev[state] = from;
    }
}

struct DpRow {
    cost: Vec<f64>,
    prev: Vec<u32>,
}

struct DpTable {
    rows: Vec<DpRow>,
}

impl DomAlgorithm for OfflineOptimal {
    fn name(&self) -> &str {
        "OPT"
    }

    fn t(&self) -> usize {
        self.t
    }

    fn initial_scheme(&self) -> ProcSet {
        self.initial
    }
}

impl OfflineDom for OfflineOptimal {
    fn allocate(&self, schedule: &Schedule) -> Result<AllocationSchedule> {
        let table = self.forward(schedule)?;
        Ok(self.backtrack(schedule, &table))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doma_core::{cost_of_schedule, run_offline, ProcessorId};

    fn ps(v: &[usize]) -> ProcSet {
        v.iter().copied().collect()
    }

    fn sc(cc: f64, cd: f64) -> CostModel {
        CostModel::stationary(cc, cd).unwrap()
    }

    #[test]
    fn constructor_validation() {
        let m = sc(0.1, 0.2);
        assert!(OfflineOptimal::new(0, 1, ProcSet::EMPTY, m).is_err());
        assert!(OfflineOptimal::new(30, 2, ps(&[0, 1]), m).is_err());
        assert!(OfflineOptimal::new(4, 0, ps(&[0, 1]), m).is_err());
        assert!(OfflineOptimal::new(4, 5, ps(&[0, 1]), m).is_err());
        assert!(OfflineOptimal::new(4, 3, ps(&[0, 1]), m).is_err()); // |I| < t
        assert!(OfflineOptimal::new(3, 2, ps(&[0, 5]), m).is_err()); // outside universe
        assert!(OfflineOptimal::new(4, 2, ps(&[0, 1]), m).is_ok());
    }

    #[test]
    fn rejects_schedule_outside_universe() {
        let opt = OfflineOptimal::new(3, 2, ps(&[0, 1]), sc(0.1, 0.2)).unwrap();
        let schedule: Schedule = "r5".parse().unwrap();
        assert!(opt.allocate(&schedule).is_err());
    }

    #[test]
    fn empty_schedule_costs_zero() {
        let opt = OfflineOptimal::new(3, 2, ps(&[0, 1]), sc(0.1, 0.2)).unwrap();
        let schedule = Schedule::new();
        assert_eq!(opt.optimal_cost(&schedule).unwrap(), 0.0);
        let out = run_offline(&opt, &schedule).unwrap();
        assert!(out.alloc.is_empty());
    }

    #[test]
    fn all_local_reads_cost_io_each() {
        let opt = OfflineOptimal::new(3, 2, ps(&[0, 1]), sc(0.5, 0.5)).unwrap();
        let schedule: Schedule = "r0 r1 r0".parse().unwrap();
        assert!((opt.optimal_cost(&schedule).unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn saving_read_amortizes_repeated_remote_reads() {
        let model = sc(0.25, 0.5);
        let opt = OfflineOptimal::new(4, 2, ps(&[0, 1]), model).unwrap();
        let schedule: Schedule = "r2 r2 r2 r2".parse().unwrap();
        let out = run_offline(&opt, &schedule).unwrap();
        // Save on the first read: (cc + 2 + cd) then 3 local reads.
        let expect = (0.25 + 2.0 + 0.5) + 3.0;
        assert!((out.costed.total_cost(&model) - expect).abs() < 1e-9);
        assert!(out.alloc.steps[0].saving);
        assert!(out.alloc.steps[1..].iter().all(|s| !s.saving));
    }

    #[test]
    fn single_remote_read_is_not_saved_when_saving_is_dearer() {
        let model = sc(0.25, 0.5);
        let opt = OfflineOptimal::new(4, 2, ps(&[0, 1]), model).unwrap();
        let schedule: Schedule = "r2".parse().unwrap();
        let out = run_offline(&opt, &schedule).unwrap();
        assert!(!out.alloc.steps[0].saving);
        assert!((out.costed.total_cost(&model) - (0.25 + 1.0 + 0.5)).abs() < 1e-9);
    }

    #[test]
    fn write_chooses_minimal_scheme_of_size_t() {
        let model = sc(0.1, 0.4);
        let opt = OfflineOptimal::new(4, 2, ps(&[0, 1]), model).unwrap();
        let schedule: Schedule = "w2".parse().unwrap();
        let out = run_offline(&opt, &schedule).unwrap();
        let exec = out.alloc.steps[0].exec;
        assert_eq!(exec.len(), 2, "no reason to store more than t copies");
        assert!(
            exec.contains(ProcessorId::new(2)),
            "cheapest X contains the writer"
        );
        // Writer in X: cost = |Y\X|·cc + 1·cd + 2·cio; Y\X is {0,1} minus
        // whichever member X retains. Best: keep one of {0,1}: 1 invalidation.
        assert!((out.costed.total_cost(&model) - (0.1 + 0.4 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn opt_is_lower_bound_for_sa_and_da() {
        use crate::{DynamicAllocation, StaticAllocation};
        use doma_core::run_online;
        let model = sc(0.3, 0.9);
        let n = 5;
        let init = ps(&[0, 1]);
        let opt = OfflineOptimal::new(n, 2, init, model).unwrap();
        let schedules = [
            "r2 w3 r4 r4 w0 r1 r2 r2 w2 r3",
            "w0 w1 w2 w3 w4",
            "r4 r4 r4 r4 w4 r0 r1",
        ];
        for s in schedules {
            let schedule: Schedule = s.parse().unwrap();
            let opt_cost = opt.optimal_cost(&schedule).unwrap();

            let mut sa = StaticAllocation::new(init).unwrap();
            let sa_cost = run_online(&mut sa, &schedule)
                .unwrap()
                .costed
                .total_cost(&model);
            let mut da = DynamicAllocation::new(ps(&[0]), ProcessorId::new(1)).unwrap();
            let da_cost = run_online(&mut da, &schedule)
                .unwrap()
                .costed
                .total_cost(&model);
            assert!(opt_cost <= sa_cost + 1e-9, "OPT > SA on {s}");
            assert!(opt_cost <= da_cost + 1e-9, "OPT > DA on {s}");
        }
    }

    #[test]
    fn backtracked_schedule_is_valid_and_matches_dp_cost() {
        let model = sc(0.2, 0.7);
        let opt = OfflineOptimal::new(5, 2, ps(&[0, 1]), model).unwrap();
        let schedule: Schedule = "r3 w4 r3 r2 w1 r4 r4 w3 r0".parse().unwrap();
        let dp_cost = opt.optimal_cost(&schedule).unwrap();
        let alloc = opt.allocate(&schedule).unwrap();
        let costed = cost_of_schedule(&alloc, 2).expect("OPT output must validate");
        assert!(
            (costed.total.eval(&model) - dp_cost).abs() < 1e-9,
            "reconstructed cost {} != DP cost {}",
            costed.total.eval(&model),
            dp_cost
        );
        assert_eq!(alloc.corresponding_schedule(), schedule);
    }

    #[test]
    fn mobile_model_free_local_reads() {
        let model = CostModel::mobile(0.2, 1.0).unwrap();
        let opt = OfflineOptimal::new(4, 2, ps(&[0, 1]), model).unwrap();
        // In MC, saving a read costs nothing extra, so OPT saves the first
        // remote read and all subsequent r2s are free.
        let schedule: Schedule = "r2 r2 r2 r2 r2".parse().unwrap();
        let c = opt.optimal_cost(&schedule).unwrap();
        assert!((c - (0.2 + 1.0)).abs() < 1e-9);
    }
}

//! Worst-case-schedule search: empirical lower bounds on the competitive
//! ratio of an online algorithm.
//!
//! [`exhaustive_worst_case`] enumerates *every* schedule of a given length
//! over a given universe — `(2n)^len` schedules — and reports the one
//! maximizing `algorithm cost / OPT cost`. This is how we exhibit
//! Proposition 2's 1.5 lower bound for DA without the omitted proof.
//! [`random_worst_case`] samples schedules instead, for lengths where
//! exhaustion is infeasible.

use crate::OfflineOptimal;
use doma_core::{
    run_online, CostModel, DomaError, OnlineDom, ProcessorId, Request, Result, Schedule,
};
use doma_testkit::rng::{Rng, TestRng};

/// Configuration of a worst-case search.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Number of processors in the universe (requests range over all).
    pub n: usize,
    /// Availability threshold for OPT (should equal the algorithm's own).
    pub t: usize,
    /// Schedule length to search at.
    pub len: usize,
    /// Cost model.
    pub model: CostModel,
}

/// The outcome of a worst-case search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The largest ratio found (`f64::INFINITY` if some schedule had
    /// positive algorithm cost but zero OPT cost).
    pub ratio: f64,
    /// A witness schedule achieving it.
    pub witness: Schedule,
    /// Algorithm cost on the witness.
    pub algo_cost: f64,
    /// OPT cost on the witness.
    pub opt_cost: f64,
    /// How many schedules were evaluated.
    pub evaluated: u64,
}

fn decode_schedule(mut code: u64, len: usize, n: usize) -> Schedule {
    let base = (2 * n) as u64;
    let mut s = Schedule::new();
    for _ in 0..len {
        let digit = (code % base) as usize;
        code /= base;
        let proc = ProcessorId::new(digit / 2);
        s.push(if digit.is_multiple_of(2) {
            Request::read(proc)
        } else {
            Request::write(proc)
        });
    }
    s
}

fn evaluate<A: OnlineDom + ?Sized>(
    algo: &mut A,
    opt: &OfflineOptimal,
    model: &CostModel,
    schedule: &Schedule,
    best: &mut Option<SearchResult>,
) -> Result<()> {
    let algo_cost = run_online(algo, schedule)?.costed.total_cost(model);
    let opt_cost = opt.optimal_cost(schedule)?;
    let ratio = if opt_cost > 0.0 {
        algo_cost / opt_cost
    } else if algo_cost > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };
    let better = match best {
        None => true,
        Some(b) => ratio > b.ratio,
    };
    if better {
        let evaluated = best.as_ref().map_or(0, |b| b.evaluated);
        *best = Some(SearchResult {
            ratio,
            witness: schedule.clone(),
            algo_cost,
            opt_cost,
            evaluated,
        });
    }
    if let Some(b) = best {
        b.evaluated += 1;
    }
    Ok(())
}

/// Exhaustively searches all `(2n)^len` schedules for the one maximizing
/// the algorithm's cost ratio against OPT.
///
/// The search space is capped at 2²⁴ ≈ 16.7M schedules; larger requests
/// return an error rather than running for hours.
pub fn exhaustive_worst_case<A: OnlineDom + ?Sized>(
    algo: &mut A,
    cfg: &SearchConfig,
) -> Result<SearchResult> {
    let base = 2u64 * cfg.n as u64;
    let total = base
        .checked_pow(cfg.len as u32)
        .ok_or_else(|| DomaError::InvalidConfig("search space overflows u64".into()))?;
    if total > (1 << 24) {
        return Err(DomaError::InvalidConfig(format!(
            "search space {total} exceeds 2^24; reduce n or len"
        )));
    }
    let opt = OfflineOptimal::new(cfg.n, cfg.t, algo.initial_scheme(), cfg.model)?;
    let mut best: Option<SearchResult> = None;
    for code in 0..total {
        let schedule = decode_schedule(code, cfg.len, cfg.n);
        evaluate(algo, &opt, &cfg.model, &schedule, &mut best)?;
    }
    best.ok_or_else(|| DomaError::InvalidConfig("empty search space".into()))
}

/// The outcome of the greedy adaptive adversary: the best *prefix* ratio
/// seen (which can be inflated by the additive constant β of the
/// competitiveness definition — a single wasted saving-read is expensive
/// relative to a near-zero OPT) and the ratio of the *full-horizon*
/// schedule, which is the honest asymptotic exhibit.
#[derive(Debug, Clone)]
pub struct GreedyResult {
    /// Best ratio over all prefixes, with its witness.
    pub best_prefix: SearchResult,
    /// The complete greedy schedule of length `cfg.len`.
    pub full_schedule: Schedule,
    /// Ratio of the complete schedule — amortizes β away as the horizon
    /// grows, so this is the number to compare against asymptotic lower
    /// bounds like Proposition 2's 1.5.
    pub full_ratio: f64,
}

/// A greedy *adaptive* adversary: builds a schedule one request at a time,
/// at each step appending whichever of the `2n` possible requests
/// maximizes `algorithm cost / OPT cost` of the prefix (ties broken by the
/// enumeration order read-before-write, lower processor first).
///
/// Greedy extension explores far longer horizons than exhaustive search
/// (length 40+ instead of 6), at O(len²·n·2ⁿ) cost.
pub fn greedy_adversary<A: OnlineDom + ?Sized>(
    algo: &mut A,
    cfg: &SearchConfig,
) -> Result<GreedyResult> {
    let opt = OfflineOptimal::new(cfg.n, cfg.t, algo.initial_scheme(), cfg.model)?;
    let mut schedule = Schedule::new();
    let mut best = SearchResult {
        ratio: 1.0,
        witness: Schedule::new(),
        algo_cost: 0.0,
        opt_cost: 0.0,
        evaluated: 0,
    };
    let mut last_ratio = 1.0;
    for _ in 0..cfg.len {
        let mut step_best: Option<(Request, SearchResult)> = None;
        for proc in 0..cfg.n {
            for request in [
                Request::read(ProcessorId::new(proc)),
                Request::write(ProcessorId::new(proc)),
            ] {
                let mut candidate = schedule.clone();
                candidate.push(request);
                let algo_cost = run_online(algo, &candidate)?.costed.total_cost(&cfg.model);
                let opt_cost = opt.optimal_cost(&candidate)?;
                let ratio = if opt_cost > 0.0 {
                    algo_cost / opt_cost
                } else if algo_cost > 0.0 {
                    f64::INFINITY
                } else {
                    1.0
                };
                best.evaluated += 1;
                let better = match &step_best {
                    None => true,
                    Some((_, r)) => ratio > r.ratio,
                };
                if better {
                    step_best = Some((
                        request,
                        SearchResult {
                            ratio,
                            witness: candidate,
                            algo_cost,
                            opt_cost,
                            evaluated: best.evaluated,
                        },
                    ));
                }
            }
        }
        let Some((request, result)) = step_best else {
            return Err(DomaError::InvalidConfig(
                "greedy step found no candidate request (n must be >= 1)".to_string(),
            ));
        };
        schedule.push(request);
        last_ratio = result.ratio;
        if result.ratio > best.ratio {
            let evaluated = best.evaluated;
            best = result;
            best.evaluated = evaluated;
        }
    }
    Ok(GreedyResult {
        best_prefix: best,
        full_schedule: schedule,
        full_ratio: last_ratio,
    })
}

/// Amplifies a candidate worst-case *pattern* by repetition: returns the
/// cost ratio of `pattern` repeated `repeats` times. As the repetition
/// count grows the additive constant of the competitiveness definition
/// washes out, so a converged amplified ratio is a genuine asymptotic
/// lower-bound exhibit.
pub fn amplified_ratio<A: OnlineDom + ?Sized>(
    algo: &mut A,
    cfg: &SearchConfig,
    pattern: &Schedule,
    repeats: usize,
) -> Result<f64> {
    let opt = OfflineOptimal::new(cfg.n, cfg.t, algo.initial_scheme(), cfg.model)?;
    let long = pattern.repeated(repeats);
    let algo_cost = run_online(algo, &long)?.costed.total_cost(&cfg.model);
    let opt_cost = opt.optimal_cost(&long)?;
    Ok(if opt_cost > 0.0 {
        algo_cost / opt_cost
    } else if algo_cost > 0.0 {
        f64::INFINITY
    } else {
        1.0
    })
}

/// Exhaustively searches all `(2n)^pattern_len` *patterns* for the one
/// whose `repeats`-fold repetition maximizes the cost ratio — i.e. it
/// optimizes the **asymptotic** ratio directly instead of a short-prefix
/// ratio that the additive constant β can inflate.
///
/// The search space cap is `2^18` patterns (pattern lengths ≤ 6 at
/// `n = 4`).
pub fn best_amplified_pattern<A: OnlineDom + ?Sized>(
    algo: &mut A,
    cfg: &SearchConfig,
    pattern_len: usize,
    repeats: usize,
) -> Result<SearchResult> {
    let base = 2u64 * cfg.n as u64;
    let total = base
        .checked_pow(pattern_len as u32)
        .ok_or_else(|| DomaError::InvalidConfig("pattern space overflows u64".into()))?;
    if total > (1 << 18) {
        return Err(DomaError::InvalidConfig(format!(
            "pattern space {total} exceeds 2^18; reduce n or pattern_len"
        )));
    }
    let opt = OfflineOptimal::new(cfg.n, cfg.t, algo.initial_scheme(), cfg.model)?;
    let mut best: Option<SearchResult> = None;
    for code in 0..total {
        let pattern = decode_schedule(code, pattern_len, cfg.n);
        let long = pattern.repeated(repeats);
        let algo_cost = run_online(algo, &long)?.costed.total_cost(&cfg.model);
        let opt_cost = opt.optimal_cost(&long)?;
        let ratio = if opt_cost > 0.0 {
            algo_cost / opt_cost
        } else if algo_cost > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };
        let better = match &best {
            None => true,
            Some(b) => ratio > b.ratio,
        };
        if better {
            let evaluated = best.as_ref().map_or(0, |b| b.evaluated);
            best = Some(SearchResult {
                ratio,
                witness: pattern,
                algo_cost,
                opt_cost,
                evaluated,
            });
        }
        if let Some(b) = &mut best {
            b.evaluated += 1;
        }
    }
    best.ok_or_else(|| DomaError::InvalidConfig("empty pattern space".into()))
}

/// Samples `samples` uniformly random schedules of length `cfg.len` and
/// reports the worst ratio seen. Deterministic for a given `seed`.
pub fn random_worst_case<A: OnlineDom + ?Sized>(
    algo: &mut A,
    cfg: &SearchConfig,
    samples: u64,
    seed: u64,
) -> Result<SearchResult> {
    let opt = OfflineOptimal::new(cfg.n, cfg.t, algo.initial_scheme(), cfg.model)?;
    let mut rng = TestRng::seed_from_u64(seed);
    let mut best: Option<SearchResult> = None;
    for _ in 0..samples {
        let schedule: Schedule = (0..cfg.len)
            .map(|_| {
                let proc = ProcessorId::new(rng.gen_range(0..cfg.n));
                if rng.gen_bool(0.5) {
                    Request::read(proc)
                } else {
                    Request::write(proc)
                }
            })
            .collect();
        evaluate(algo, &opt, &cfg.model, &schedule, &mut best)?;
    }
    best.ok_or_else(|| DomaError::InvalidConfig("samples must be > 0".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DynamicAllocation, StaticAllocation};
    use doma_core::ProcSet;

    fn ps(v: &[usize]) -> ProcSet {
        v.iter().copied().collect()
    }

    #[test]
    fn decode_covers_all_requests() {
        let s = decode_schedule(0, 3, 2);
        assert_eq!(s.to_string(), "r0 r0 r0");
        let s = decode_schedule(1, 1, 2);
        assert_eq!(s.to_string(), "w0");
        let s = decode_schedule(2, 1, 2);
        assert_eq!(s.to_string(), "r1");
        let s = decode_schedule(3, 1, 2);
        assert_eq!(s.to_string(), "w1");
    }

    #[test]
    fn search_space_cap_enforced() {
        let cfg = SearchConfig {
            n: 4,
            t: 2,
            len: 12,
            model: CostModel::stationary(0.1, 0.2).unwrap(),
        };
        let mut sa = StaticAllocation::new(ps(&[0, 1])).unwrap();
        assert!(exhaustive_worst_case(&mut sa, &cfg).is_err());
    }

    /// Proposition 2 (measured): with near-zero communication costs, DA's
    /// worst short schedule already exceeds ratio 1.3 and never exceeds the
    /// Theorem 2 upper bound.
    #[test]
    fn da_worst_case_exceeds_sa_bound_neighborhood() {
        let model = CostModel::stationary(0.01, 0.01).unwrap();
        let cfg = SearchConfig {
            n: 3,
            t: 2,
            len: 5,
            model,
        };
        let mut da = DynamicAllocation::new(ps(&[0]), doma_core::ProcessorId::new(1)).unwrap();
        let result = exhaustive_worst_case(&mut da, &cfg).unwrap();
        let upper = model.da_bound().unwrap();
        assert!(
            result.ratio > 1.2,
            "expected a nontrivial lower bound, got {}",
            result.ratio
        );
        assert!(
            result.ratio <= upper + 1e-9,
            "Theorem 2 violated: {} > {upper} on {}",
            result.ratio,
            result.witness
        );
        assert_eq!(result.evaluated, 6u64.pow(5));
    }

    #[test]
    fn greedy_adversary_matches_or_beats_exhaustive() {
        let model = CostModel::stationary(0.01, 0.01).unwrap();
        let cfg_small = SearchConfig {
            n: 3,
            t: 2,
            len: 5,
            model,
        };
        let mut da = DynamicAllocation::new(ps(&[0]), doma_core::ProcessorId::new(1)).unwrap();
        let exhaustive = exhaustive_worst_case(&mut da, &cfg_small).unwrap();
        let cfg_long = SearchConfig {
            n: 3,
            t: 2,
            len: 24,
            model,
        };
        let greedy = greedy_adversary(&mut da, &cfg_long).unwrap();
        assert!(
            greedy.best_prefix.ratio >= exhaustive.ratio - 1e-9,
            "greedy {} < exhaustive {}",
            greedy.best_prefix.ratio,
            exhaustive.ratio
        );
        // Neither the prefix nor the full-horizon ratio may violate
        // Theorem 2's upper bound.
        assert!(greedy.best_prefix.ratio <= model.da_bound().unwrap() + 1e-9);
        assert!(greedy.full_ratio <= model.da_bound().unwrap() + 1e-9);
        assert_eq!(greedy.full_schedule.len(), 24);
    }

    /// Amplifying the exhaustive witness by repetition yields a genuine
    /// asymptotic lower-bound exhibit: DA stays measurably above 1 on
    /// arbitrarily long schedules with near-zero communication costs.
    #[test]
    fn amplified_witness_sustains_excess_ratio() {
        let model = CostModel::stationary(0.01, 0.01).unwrap();
        let cfg = SearchConfig {
            n: 3,
            t: 2,
            len: 5,
            model,
        };
        let mut da = DynamicAllocation::new(ps(&[0]), doma_core::ProcessorId::new(1)).unwrap();
        let witness = exhaustive_worst_case(&mut da, &cfg).unwrap().witness;
        let r20 = amplified_ratio(&mut da, &cfg, &witness, 20).unwrap();
        let r100 = amplified_ratio(&mut da, &cfg, &witness, 100).unwrap();
        assert!(r20 > 1.2, "amplified ratio collapsed to {r20}");
        // Converged (β amortized): doubling repetitions barely moves it.
        assert!((r100 - r20).abs() < 0.05, "not converged: {r20} vs {r100}");
        assert!(r100 <= model.da_bound().unwrap() + 1e-9);
    }

    #[test]
    fn greedy_adversary_on_sa_approaches_theorem_1() {
        let model = CostModel::stationary(0.5, 1.5).unwrap();
        let cfg = SearchConfig {
            n: 3,
            t: 2,
            len: 40,
            model,
        };
        let mut sa = StaticAllocation::new(ps(&[0, 1])).unwrap();
        let r = greedy_adversary(&mut sa, &cfg).unwrap();
        let bound = model.sa_bound().unwrap();
        assert!(r.full_ratio <= bound + 1e-9);
        assert!(
            r.full_ratio > 0.9 * bound,
            "greedy reached only {}",
            r.full_ratio
        );
    }

    #[test]
    fn best_amplified_pattern_beats_naive_amplification() {
        let model = CostModel::stationary(0.01, 0.01).unwrap();
        let cfg = SearchConfig {
            n: 3,
            t: 2,
            len: 4,
            model,
        };
        let mut da = DynamicAllocation::new(ps(&[0]), doma_core::ProcessorId::new(1)).unwrap();
        let r = best_amplified_pattern(&mut da, &cfg, 4, 40).unwrap();
        assert!(
            r.ratio > 1.3,
            "direct asymptotic search should find a sustained ratio > 1.3, got {}",
            r.ratio
        );
        assert!(r.ratio <= model.da_bound().unwrap() + 1e-9);
        assert_eq!(r.witness.len(), 4);
    }

    #[test]
    fn random_search_is_deterministic_and_bounded() {
        let model = CostModel::stationary(0.2, 0.6).unwrap();
        let cfg = SearchConfig {
            n: 4,
            t: 2,
            len: 8,
            model,
        };
        let mut sa = StaticAllocation::new(ps(&[0, 1])).unwrap();
        let a = random_worst_case(&mut sa, &cfg, 200, 42).unwrap();
        let b = random_worst_case(&mut sa, &cfg, 200, 42).unwrap();
        assert_eq!(a.witness, b.witness);
        assert_eq!(a.ratio, b.ratio);
        let bound = model.sa_bound().unwrap();
        assert!(a.ratio <= bound + 1e-9, "Theorem 1 violated: {}", a.ratio);
    }
}

//! Adversarial schedule constructions behind the paper's lower bounds.
//!
//! The paper omits the proofs of Propositions 1–3 "due to space
//! limitations"; these generators realize the standard constructions the
//! claims rest on, and the analysis crate *measures* the resulting ratios
//! against the exact offline optimum:
//!
//! * **Proposition 1** (SA is not `α`-competitive for `α < 1 + cc + cd`):
//!   a long run of reads from a processor outside `Q`. SA pays
//!   `cc + 1 + cd` per read forever; OPT pays one saving-read and then `1`
//!   per read, so the ratio approaches `1 + cc + cd` as the run grows.
//! * **Proposition 3** (SA is not competitive in MC): the same schedule
//!   under `cio = 0`. SA pays `cc + cd` per read; OPT pays `cc + cd` once
//!   and `0` thereafter — the ratio grows *linearly* with the run length.
//! * **Proposition 2** (DA is not `α`-competitive for `α < 1.5`):
//!   no closed-form witness is given in the paper, but our exhaustive
//!   asymptotic pattern search rediscovered one — [`da_prop2_cycle`], the
//!   cycle `w3 r2 r1` repeated, which sustains exactly ratio 3/2 as
//!   `cc, cd → 0`.

use doma_core::{ProcessorId, Request, Schedule};

/// `len` consecutive reads issued by `reader` — the Proposition 1 / 3
/// adversary (run it with `reader ∉ Q` for SA).
pub fn remote_reader(reader: ProcessorId, len: usize) -> Schedule {
    (0..len).map(|_| Request::read(reader)).collect()
}

/// Alternating `r(reader) w(writer)` pairs, `pairs` times. The write
/// invalidates the reader's saved copy each round, making DA's saving-reads
/// pure overhead.
pub fn read_write_ping_pong(reader: ProcessorId, writer: ProcessorId, pairs: usize) -> Schedule {
    let mut s = Schedule::new();
    for _ in 0..pairs {
        s.push(Request::read(reader));
        s.push(Request::write(writer));
    }
    s
}

/// Each round: one read from each of `readers`, then one write from
/// `writer`. Stresses invalidation fan-out (every reader joined the scheme
/// and must be invalidated).
pub fn rotating_reader(readers: &[ProcessorId], writer: ProcessorId, rounds: usize) -> Schedule {
    let mut s = Schedule::new();
    for _ in 0..rounds {
        for &r in readers {
            s.push(Request::read(r));
        }
        s.push(Request::write(writer));
    }
    s
}

/// A burst of `reads` reads from `reader` followed by one write from
/// `writer`, repeated `rounds` times. With long bursts dynamic allocation
/// wins; with `reads = 1` static allocation wins — the knob that traces
/// the §1.3 trade-off.
pub fn bursty_reader(
    reader: ProcessorId,
    writer: ProcessorId,
    reads: usize,
    rounds: usize,
) -> Schedule {
    let mut s = Schedule::new();
    for _ in 0..rounds {
        for _ in 0..reads {
            s.push(Request::read(reader));
        }
        s.push(Request::write(writer));
    }
    s
}

/// The §1.3 worked example: `r1 r1 r2 w2 r2 r2 r2`.
pub fn section_1_3_example() -> Schedule {
    let mut s = Schedule::new();
    s.push(Request::read(1usize));
    s.push(Request::read(1usize));
    s.push(Request::read(2usize));
    s.push(Request::write(2usize));
    s.push(Request::read(2usize));
    s.push(Request::read(2usize));
    s.push(Request::read(2usize));
    s
}

/// The Proposition 2 adversary, *rediscovered by exhaustive asymptotic
/// pattern search* (`search::best_amplified_pattern`, n = 4): the cycle
/// `w3 r2 r1` repeated, against DA with `F = {0}`, `p = 1`, as
/// `cc, cd → 0`.
///
/// Per cycle (costs in I/Os, messages vanishing): DA pays ≈ 6 — the
/// outsider write lands on `{0, 3}` (2 outputs) and invalidates both the
/// floater and the previous reader, so `r2` and `r1` are re-joining
/// saving-reads (2 I/Os each). OPT keeps the scheme at `{1, 2}`: the
/// write executes remotely (2 outputs) and both reads are local (1 input
/// each) — 4 per cycle. Ratio → 6/4 = **1.5**, exactly the paper's lower
/// bound.
pub fn da_prop2_cycle(rounds: usize) -> Schedule {
    let mut cycle = Schedule::new();
    cycle.push(Request::write(3usize));
    cycle.push(Request::read(2usize));
    cycle.push(Request::read(1usize));
    cycle.repeated(rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DynamicAllocation, OfflineOptimal, StaticAllocation};
    use doma_core::{run_online, CostModel, ProcSet};

    fn ps(v: &[usize]) -> ProcSet {
        v.iter().copied().collect()
    }

    #[test]
    fn generators_shapes() {
        assert_eq!(
            remote_reader(ProcessorId::new(3), 4).to_string(),
            "r3 r3 r3 r3"
        );
        assert_eq!(
            read_write_ping_pong(ProcessorId::new(2), ProcessorId::new(0), 2).to_string(),
            "r2 w0 r2 w0"
        );
        let rr = rotating_reader(
            &[ProcessorId::new(2), ProcessorId::new(3)],
            ProcessorId::new(0),
            2,
        );
        assert_eq!(rr.to_string(), "r2 r3 w0 r2 r3 w0");
        assert_eq!(
            bursty_reader(ProcessorId::new(2), ProcessorId::new(0), 3, 1).to_string(),
            "r2 r2 r2 w0"
        );
        assert_eq!(section_1_3_example().len(), 7);
    }

    /// Proposition 1, measured: SA's ratio on the remote-reader schedule
    /// approaches 1 + cc + cd from below as the schedule grows.
    #[test]
    fn sa_ratio_approaches_tight_bound_in_sc() {
        let model = CostModel::stationary(0.5, 1.5).unwrap();
        let bound = 1.0 + 0.5 + 1.5;
        let q = ps(&[0, 1]);
        let opt = OfflineOptimal::new(3, 2, q, model).unwrap();
        let mut prev_ratio = 0.0;
        for len in [4, 16, 64] {
            let schedule = remote_reader(ProcessorId::new(2), len);
            let mut sa = StaticAllocation::new(q).unwrap();
            let sa_cost = run_online(&mut sa, &schedule)
                .unwrap()
                .costed
                .total_cost(&model);
            let opt_cost = opt.optimal_cost(&schedule).unwrap();
            let ratio = sa_cost / opt_cost;
            assert!(ratio > prev_ratio, "ratio must increase with length");
            assert!(ratio <= bound + 1e-9, "Theorem 1 upper bound violated");
            prev_ratio = ratio;
        }
        assert!(
            prev_ratio > 0.95 * bound,
            "ratio {prev_ratio} should be within 5% of the bound {bound}"
        );
    }

    /// Proposition 3, measured: in MC the same schedule makes SA's ratio
    /// grow without bound (linearly in the length).
    #[test]
    fn sa_ratio_diverges_in_mc() {
        let model = CostModel::mobile(0.5, 1.5).unwrap();
        let q = ps(&[0, 1]);
        let opt = OfflineOptimal::new(3, 2, q, model).unwrap();
        let ratio_at = |len: usize| {
            let schedule = remote_reader(ProcessorId::new(2), len);
            let mut sa = StaticAllocation::new(q).unwrap();
            let sa_cost = run_online(&mut sa, &schedule)
                .unwrap()
                .costed
                .total_cost(&model);
            sa_cost / opt.optimal_cost(&schedule).unwrap()
        };
        let (r8, r32, r128) = (ratio_at(8), ratio_at(32), ratio_at(128));
        assert!(r32 > 3.0 * r8 && r32 < 5.0 * r8, "expected ~linear growth");
        assert!(r128 > 3.0 * r32 && r128 < 5.0 * r32);
    }

    /// The rediscovered Proposition 2 cycle sustains ratio ≈ 1.5 with
    /// vanishing communication costs.
    #[test]
    fn prop2_cycle_sustains_three_halves() {
        let model = CostModel::stationary(0.001, 0.001).unwrap();
        let init = ps(&[0, 1]);
        let opt = OfflineOptimal::new(4, 2, init, model).unwrap();
        let schedule = da_prop2_cycle(80);
        let mut da = DynamicAllocation::new(ps(&[0]), ProcessorId::new(1)).unwrap();
        let da_cost = run_online(&mut da, &schedule)
            .unwrap()
            .costed
            .total_cost(&model);
        let ratio = da_cost / opt.optimal_cost(&schedule).unwrap();
        assert!(
            (ratio - 1.5).abs() < 0.02,
            "expected sustained ratio ~1.5, got {ratio}"
        );
        assert!(ratio <= model.da_bound().unwrap() + 1e-9);
    }

    /// DA stays within its Theorem 2 bound even on its unfriendliest
    /// patterns.
    #[test]
    fn da_respects_upper_bound_on_adversaries() {
        let model = CostModel::stationary(0.25, 0.75).unwrap();
        let bound = model.da_bound().unwrap(); // 2 + 2cc
        let init = ps(&[0, 1]);
        let opt = OfflineOptimal::new(4, 2, init, model).unwrap();
        let schedules = [
            read_write_ping_pong(ProcessorId::new(2), ProcessorId::new(0), 16),
            rotating_reader(
                &[ProcessorId::new(2), ProcessorId::new(3)],
                ProcessorId::new(0),
                8,
            ),
            bursty_reader(ProcessorId::new(3), ProcessorId::new(2), 4, 6),
        ];
        for schedule in schedules {
            let mut da = DynamicAllocation::new(ps(&[0]), ProcessorId::new(1)).unwrap();
            let da_cost = run_online(&mut da, &schedule)
                .unwrap()
                .costed
                .total_cost(&model);
            let opt_cost = opt.optimal_cost(&schedule).unwrap();
            assert!(
                da_cost <= bound * opt_cost + 1e-6,
                "DA ratio {} exceeds bound {bound} on {schedule}",
                da_cost / opt_cost
            );
        }
    }
}

//! Dynamic Allocation (DA) — §4.2.2.
//!
//! DA fixes a core set `F` of `t-1` processors that *always* hold the
//! latest version, plus one floating member (initially a designated
//! processor `p ∉ F`):
//!
//! * a read by a data processor is local;
//! * a read by a non-data processor `q` is served by a member `u` of `F`
//!   and converted to a **saving-read** — `q` stores the object and joins
//!   the allocation scheme, and `u` records `q` in its *join-list*;
//! * a write by `j ∈ F ∪ {p}` has execution set `F ∪ {p}`;
//! * a write by `j ∉ F ∪ {p}` has execution set `F ∪ {j}` (the floater is
//!   superseded by the writer);
//! * every write invalidates all copies outside the new scheme, realized by
//!   the members of `F` sending invalidations to their join-lists.

use doma_core::{
    Decision, DomAlgorithm, DomaError, OnlineDom, ProcSet, ProcessorId, Request, Result,
};

/// The dynamic allocation algorithm with core `F` and initial floater `p`.
///
/// ```
/// use doma_algorithms::DynamicAllocation;
/// use doma_core::{run_online, ProcSet, ProcessorId, Schedule};
///
/// // Mobile configuration of §2: t = 2, F = {base station 0}, floater 1.
/// let mut da = DynamicAllocation::new(
///     ProcSet::from_iter([0]),
///     ProcessorId::new(1),
/// ).unwrap();
/// let schedule: Schedule = "r2 r2 w3 r2".parse().unwrap();
/// let out = run_online(&mut da, &schedule).unwrap();
/// // After w3, the scheme is {0, 3}; r2 re-joins by saving-read.
/// assert_eq!(out.costed.final_scheme, ProcSet::from_iter([0, 2, 3]));
/// ```
#[derive(Debug, Clone)]
pub struct DynamicAllocation {
    f: ProcSet,
    p: ProcessorId,
    /// Current allocation scheme (data processors).
    scheme: ProcSet,
    /// Join-list of each member of `F`: the non-core data processors it is
    /// responsible for invalidating. Indexed by the member's processor id.
    join_lists: Vec<(ProcessorId, ProcSet)>,
    /// Round-robin cursor over `F` for serving non-member reads, so
    /// join-list bookkeeping spreads over the core (cost-neutral in the
    /// homogeneous model).
    serve_cursor: usize,
}

impl DynamicAllocation {
    /// Creates DA with core `f` (`|f| = t - 1 ≥ 1`) and initial floating
    /// member `p ∉ f`. The initial allocation scheme is `f ∪ {p}`.
    pub fn new(f: ProcSet, p: ProcessorId) -> Result<Self> {
        if f.is_empty() {
            return Err(DomaError::InvalidConfig(
                "DA requires |F| >= 1 (t >= 2)".to_string(),
            ));
        }
        if f.contains(p) {
            return Err(DomaError::InvalidConfig(format!(
                "DA requires p not in F, got p={p} in F={f}"
            )));
        }
        let join_lists = f.iter().map(|m| (m, ProcSet::EMPTY)).collect();
        Ok(DynamicAllocation {
            f,
            p,
            scheme: f.with(p),
            join_lists,
            serve_cursor: 0,
        })
    }

    /// The fixed core set `F`.
    pub fn f(&self) -> ProcSet {
        self.f
    }

    /// The initial floating member `p`.
    pub fn p(&self) -> ProcessorId {
        self.p
    }

    /// The current allocation scheme (the data processors).
    pub fn current_scheme(&self) -> ProcSet {
        self.scheme
    }

    /// The join-list of each core member: who it would send invalidations
    /// to on the next write. Exposed for the protocol crate and tests.
    pub fn join_lists(&self) -> &[(ProcessorId, ProcSet)] {
        &self.join_lists
    }

    /// Union of all join-lists.
    pub fn joined_processors(&self) -> ProcSet {
        self.join_lists
            .iter()
            .fold(ProcSet::EMPTY, |acc, (_, l)| acc.union(*l))
    }

    fn clear_join_lists(&mut self) {
        for (_, list) in &mut self.join_lists {
            *list = ProcSet::EMPTY;
        }
    }
}

impl DomAlgorithm for DynamicAllocation {
    fn name(&self) -> &str {
        "DA"
    }

    fn t(&self) -> usize {
        self.f.len() + 1
    }

    fn initial_scheme(&self) -> ProcSet {
        self.f.with(self.p)
    }
}

impl OnlineDom for DynamicAllocation {
    fn decide(&mut self, request: Request) -> Decision {
        let i = request.issuer;
        if request.is_read() {
            if self.scheme.contains(i) {
                // Data processor: local read.
                Decision::exec(ProcSet::singleton(i))
            } else {
                // Non-data processor: saving-read served by a core member,
                // which records the reader in its join-list.
                let members: Vec<ProcessorId> = self.f.iter().collect();
                let u = members[self.serve_cursor % members.len()];
                self.serve_cursor = self.serve_cursor.wrapping_add(1);
                if let Some((_, list)) = self.join_lists.iter_mut().find(|(m, _)| *m == u) {
                    list.insert(i);
                }
                self.scheme.insert(i);
                Decision::saving(ProcSet::singleton(u))
            }
        } else {
            // Write: the new scheme is F ∪ {p} for core/floater writers,
            // F ∪ {j} otherwise. Everything else is invalidated (accounted
            // by the cost model; realized by join-list invalidations in the
            // protocol crate).
            let core_or_floater = self.f.with(self.p);
            let exec = if core_or_floater.contains(i) {
                core_or_floater
            } else {
                self.f.with(i)
            };
            self.scheme = exec;
            // Join-lists: everyone outside the new scheme was invalidated.
            // An outsider writer becomes the new floating data processor
            // and must itself be tracked for the *next* invalidation round.
            self.clear_join_lists();
            if !core_or_floater.contains(i) {
                if let Some((_, list)) = self.join_lists.first_mut() {
                    list.insert(i);
                }
            }
            Decision::exec(exec)
        }
    }

    fn reset(&mut self) {
        self.scheme = self.f.with(self.p);
        self.serve_cursor = 0;
        for (_, list) in &mut self.join_lists {
            *list = ProcSet::EMPTY;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doma_core::{run_online, CostVector, Schedule};

    fn ps(v: &[usize]) -> ProcSet {
        v.iter().copied().collect()
    }

    fn da(f: &[usize], p: usize) -> DynamicAllocation {
        DynamicAllocation::new(f.iter().copied().collect(), ProcessorId::new(p)).unwrap()
    }

    #[test]
    fn constructor_validation() {
        assert!(DynamicAllocation::new(ProcSet::EMPTY, ProcessorId::new(1)).is_err());
        assert!(DynamicAllocation::new(ps(&[1, 2]), ProcessorId::new(1)).is_err());
        let d = da(&[1, 2], 3);
        assert_eq!(d.t(), 3);
        assert_eq!(d.initial_scheme(), ps(&[1, 2, 3]));
    }

    #[test]
    fn member_read_is_local_nonmember_read_saves() {
        let mut d = da(&[0], 1);
        let schedule: Schedule = "r1 r2 r2".parse().unwrap();
        let out = run_online(&mut d, &schedule).unwrap();
        let steps = &out.alloc.steps;
        assert!(!steps[0].saving); // r1: member, local
        assert_eq!(steps[0].exec, ps(&[1]));
        assert!(steps[1].saving); // r2: joins
        assert_eq!(steps[1].exec, ps(&[0])); // served by F
        assert!(!steps[2].saving); // r2 again: now a data processor
        assert_eq!(steps[2].exec, ps(&[2]));
        assert_eq!(out.costed.final_scheme, ps(&[0, 1, 2]));
    }

    #[test]
    fn write_by_core_or_floater_targets_core_plus_floater() {
        let mut d = da(&[0], 1);
        let schedule: Schedule = "r2 w0 r2".parse().unwrap();
        let out = run_online(&mut d, &schedule).unwrap();
        // After r2 the scheme is {0,1,2}; w0 executes at {0,1} and
        // invalidates 2; the next r2 must re-join.
        assert_eq!(out.alloc.steps[1].exec, ps(&[0, 1]));
        assert_eq!(out.alloc.scheme_at(2), ps(&[0, 1]));
        assert!(out.alloc.steps[2].saving);
    }

    #[test]
    fn write_by_outsider_supersedes_floater() {
        let mut d = da(&[0], 1);
        let schedule: Schedule = "w5 r1".parse().unwrap();
        let out = run_online(&mut d, &schedule).unwrap();
        assert_eq!(out.alloc.steps[0].exec, ps(&[0, 5]));
        // The floater 1 was invalidated: its read must re-join.
        assert!(out.alloc.steps[1].saving);
        assert_eq!(out.costed.final_scheme, ps(&[0, 1, 5]));
    }

    #[test]
    fn join_lists_track_saving_reads_and_writes() {
        let mut d = da(&[0, 1], 2);
        d.decide(Request::read(5usize));
        d.decide(Request::read(6usize));
        assert_eq!(d.joined_processors(), ps(&[5, 6]));
        // Round-robin spread over F.
        assert!(d.join_lists().iter().all(|(_, l)| l.len() == 1));
        // A write from core clears all join-lists.
        d.decide(Request::write(0usize));
        assert!(d.joined_processors().is_empty());
        // A write from an outsider keeps (only) the writer joined.
        d.decide(Request::read(5usize));
        d.decide(Request::write(7usize));
        assert_eq!(d.joined_processors(), ps(&[7]));
    }

    #[test]
    fn costs_match_paper_da_description() {
        // t=2, F={0}, p=1. Schedule: r2 (join), w2 (writer in scheme but
        // outside F∪{p} → exec {0,2}), w0 (core write → exec {0,1}).
        let mut d = da(&[0], 1);
        let schedule: Schedule = "r2 w2 w0".parse().unwrap();
        let out = run_online(&mut d, &schedule).unwrap();
        let c = &out.costed.per_request;
        // r2 saving: cc + io + cd + io.
        assert_eq!(c[0].cost, CostVector::new(1, 1, 2));
        // w2 with Y={0,1,2}, X={0,2}, i∈X: invalidate {1}: 1cc, 1cd, 2io.
        assert_eq!(c[1].cost, CostVector::new(1, 1, 2));
        // w0 with Y={0,2}, X={0,1}, i∈X: invalidate {2}: 1cc, 1cd, 2io.
        assert_eq!(c[2].cost, CostVector::new(1, 1, 2));
        assert_eq!(out.costed.final_scheme, ps(&[0, 1]));
    }

    #[test]
    fn core_always_holds_latest_version() {
        // Invariant: F ⊆ scheme at every point, for any schedule.
        let mut d = da(&[2, 4], 0);
        let schedule: Schedule = "r1 w3 r5 w4 r3 w1 r2 w5 r4".parse().unwrap();
        let out = run_online(&mut d, &schedule).unwrap();
        for k in 0..=schedule.len() {
            assert!(
                ps(&[2, 4]).is_subset(out.alloc.scheme_at(k)),
                "F must be in the scheme at step {k}"
            );
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut d = da(&[0], 1);
        d.decide(Request::read(5usize));
        d.decide(Request::write(6usize));
        d.reset();
        assert_eq!(d.current_scheme(), ps(&[0, 1]));
        assert!(d.joined_processors().is_empty());
    }

    #[test]
    fn section_13_example_dynamic_beats_static() {
        // §1.3: schedule r1 r1 r2 w2 r2 r2 r2; dynamic allocation that
        // migrates to processor 2 beats keeping the scheme fixed at {1}.
        // The paper's single-copy story needs t=1; our t≥2 variants show
        // the same effect: DA(F={1},p=0) vs SA(Q={0,1}).
        let schedule: Schedule = "r1 r1 r2 w2 r2 r2 r2".parse().unwrap();
        let model = doma_core::CostModel::stationary(0.5, 1.0).unwrap();

        let mut sa = crate::StaticAllocation::new(ps(&[0, 1])).unwrap();
        let sa_cost = run_online(&mut sa, &schedule)
            .unwrap()
            .costed
            .total_cost(&model);

        let mut da = da(&[1], 0);
        let da_cost = run_online(&mut da, &schedule)
            .unwrap()
            .costed
            .total_cost(&model);

        assert!(
            da_cost < sa_cost,
            "dynamic ({da_cost}) must beat static ({sa_cost}) on the §1.3 workload"
        );
    }
}

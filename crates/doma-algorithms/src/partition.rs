//! The shared placement partitioner: one member-selection kernel serving
//! both the *analytic* path ([`crate::multi::MultiObjectDa`] placing DA
//! cores on processors) and the *executable* path (the sharded protocol
//! executor placing catalog objects on worker shards).
//!
//! Both problems have the same shape — "the k-th distinct object picks
//! `take` members from a pool of `pool` slots, optionally steered by a
//! running load tally" — so the three [`Placement`] policies are
//! implemented exactly once, in [`select_members`]. The analytic
//! allocator feeds it exact per-processor I/O attribution; the shard
//! partitioner feeds it per-shard request counts; the core planner feeds
//! it a deterministic write/read residence proxy.

use crate::multi::Placement;
use doma_core::{DomaError, MultiSchedule, ObjectId, ProcSet, ProcessorId, Result};
use std::collections::BTreeMap;

/// Selects `take` members out of `pool` slots for the `created`-th
/// distinct object under a placement policy. `load` is the caller's
/// running load attribution per slot (only consulted by
/// [`Placement::LoadAware`]; missing entries count as zero).
///
/// This is the member-selection kernel lifted out of the analytic
/// multi-object allocator; its `RoundRobin` stride is `take - 1` (an
/// object's core size) so consecutive cores tile the pool, degrading to
/// stride 1 when `take == 1` (the shard-assignment case).
pub fn select_members(
    placement: Placement,
    created: usize,
    pool: usize,
    take: usize,
    load: &[u64],
) -> Vec<usize> {
    match placement {
        Placement::SameCore => (0..take).collect(),
        Placement::RoundRobin => {
            let stride = take.saturating_sub(1).max(1);
            let start = (created * stride) % pool;
            (0..take).map(|i| (start + i) % pool).collect()
        }
        Placement::LoadAware => {
            let mut order: Vec<usize> = (0..pool).collect();
            order.sort_by_key(|&i| (load.get(i).copied().unwrap_or(0), i));
            order.truncate(take);
            order
        }
    }
}

/// Assigns each distinct object of a multi-object workload to one of `k`
/// shards in first-touch order, through the same [`select_members`]
/// kernel the core placement uses (`take = 1`): `SameCore` sends every
/// object to shard 0 (the degenerate serial partition), `RoundRobin`
/// tiles objects over shards, `LoadAware` sends each new object to the
/// currently lightest shard (load = requests routed so far).
#[derive(Debug, Clone)]
pub struct ShardPartitioner {
    placement: Placement,
    shards: usize,
    load: Vec<u64>,
    created: usize,
    assignment: BTreeMap<ObjectId, usize>,
}

impl ShardPartitioner {
    /// A partitioner over `shards` shards (at least one).
    pub fn new(shards: usize, placement: Placement) -> Result<Self> {
        if shards == 0 {
            return Err(DomaError::InvalidConfig("need at least one shard".into()));
        }
        Ok(ShardPartitioner {
            placement,
            shards,
            load: vec![0; shards],
            created: 0,
            assignment: BTreeMap::new(),
        })
    }

    /// The number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard of `object`, assigning one on first touch.
    pub fn assign(&mut self, object: ObjectId) -> usize {
        if let Some(&shard) = self.assignment.get(&object) {
            return shard;
        }
        let members = select_members(self.placement, self.created, self.shards, 1, &self.load);
        let shard = members.first().copied().unwrap_or(0);
        self.assignment.insert(object, shard);
        self.created += 1;
        shard
    }

    /// Attributes `weight` units of load to `shard` (drives `LoadAware`).
    pub fn attribute(&mut self, shard: usize, weight: u64) {
        if let Some(slot) = self.load.get_mut(shard) {
            *slot += weight;
        }
    }

    /// The object → shard map built so far.
    pub fn assignment(&self) -> &BTreeMap<ObjectId, usize> {
        &self.assignment
    }
}

/// A schedule split into per-shard projections: `shards[s]` holds
/// exactly the requests of the objects assigned to shard `s`, in their
/// original relative order.
#[derive(Debug)]
pub struct SchedulePartition {
    /// Which shard each distinct object landed on.
    pub assignment: BTreeMap<ObjectId, usize>,
    /// The per-shard sub-schedules (length = shard count).
    pub shards: Vec<MultiSchedule>,
}

/// Partitions a multi-object schedule over `k` shards under a placement
/// policy. Each request counts one unit of shard load, so `LoadAware`
/// balances by traffic, not object count. The projection preserves each
/// object's request order (the property the sharded executor's
/// determinism rests on — objects are independent, so only per-object
/// order matters).
pub fn partition_schedule(
    schedule: &MultiSchedule,
    k: usize,
    placement: Placement,
) -> Result<SchedulePartition> {
    let mut partitioner = ShardPartitioner::new(k, placement)?;
    let mut shards: Vec<MultiSchedule> = (0..k).map(|_| MultiSchedule::default()).collect();
    for mr in schedule.requests() {
        let shard = partitioner.assign(mr.object);
        partitioner.attribute(shard, 1);
        if let Some(sub) = shards.get_mut(shard) {
            sub.push(mr.object, mr.request);
        }
    }
    Ok(SchedulePartition {
        assignment: partitioner.assignment,
        shards,
    })
}

/// Plans a DA core `(F, p)` per distinct object in first-touch order —
/// the executable path's mirror of the analytic allocator's placement,
/// built on the same [`select_members`] kernel.
///
/// The load it feeds `LoadAware` is a deterministic residence proxy
/// computed without running the protocol: each write charges one unit to
/// every core member (the `t` stored copies), each read one unit to its
/// issuer (a DA saving-read leaves a replica there).
#[derive(Debug, Clone)]
pub struct CorePlanner {
    n: usize,
    t: usize,
    placement: Placement,
    load: Vec<u64>,
    created: usize,
    cores: BTreeMap<ObjectId, (ProcSet, ProcessorId)>,
}

impl CorePlanner {
    /// A planner for an `n`-processor system with threshold `t`.
    pub fn new(n: usize, t: usize, placement: Placement) -> Result<Self> {
        if t < 2 || t >= n {
            return Err(DomaError::InvalidConfig(format!(
                "need 2 <= t < n (t={t}, n={n})"
            )));
        }
        Ok(CorePlanner {
            n,
            t,
            placement,
            load: vec![0; n],
            created: 0,
            cores: BTreeMap::new(),
        })
    }

    /// The core of `object`, choosing one on first touch.
    pub fn core_for(&mut self, object: ObjectId) -> (ProcSet, ProcessorId) {
        if let Some(&core) = self.cores.get(&object) {
            return core;
        }
        let members = select_members(self.placement, self.created, self.n, self.t, &self.load);
        let f: ProcSet = members[..self.t - 1].iter().copied().collect();
        let p = ProcessorId::new(members[self.t - 1]);
        self.cores.insert(object, (f, p));
        self.created += 1;
        (f, p)
    }

    /// Attributes `weight` units of load to a processor.
    pub fn attribute(&mut self, processor: ProcessorId, weight: u64) {
        if let Some(slot) = self.load.get_mut(processor.index()) {
            *slot += weight;
        }
    }

    /// The cores planned so far.
    pub fn cores(&self) -> &BTreeMap<ObjectId, (ProcSet, ProcessorId)> {
        &self.cores
    }
}

/// Plans every object's DA core for a whole schedule, feeding the
/// planner the write/read residence proxy described on [`CorePlanner`].
pub fn plan_cores(
    n: usize,
    t: usize,
    placement: Placement,
    schedule: &MultiSchedule,
) -> Result<BTreeMap<ObjectId, (ProcSet, ProcessorId)>> {
    let mut planner = CorePlanner::new(n, t, placement)?;
    for mr in schedule.requests() {
        let (f, p) = planner.core_for(mr.object);
        if mr.request.is_read() {
            planner.attribute(mr.request.issuer, 1);
        } else {
            for member in f.with(p).iter() {
                planner.attribute(member, 1);
            }
        }
    }
    Ok(planner.cores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use doma_core::Request;

    fn sched(pairs: &[(u64, bool, usize)]) -> MultiSchedule {
        let mut s = MultiSchedule::default();
        for &(obj, read, issuer) in pairs {
            let r = if read {
                Request::read(issuer)
            } else {
                Request::write(issuer)
            };
            s.push(ObjectId(obj), r);
        }
        s
    }

    #[test]
    fn kernel_matches_the_analytic_placement_rules() {
        // Core selection (pool = n, take = t) reproduces the documented
        // per-policy rules.
        assert_eq!(select_members(Placement::SameCore, 7, 8, 3, &[]), [0, 1, 2]);
        // RoundRobin: start = created * (t-1) mod n.
        assert_eq!(
            select_members(Placement::RoundRobin, 3, 8, 3, &[]),
            [6, 7, 0]
        );
        // LoadAware: least-loaded first, ties by index.
        let load = [5, 0, 3, 0];
        assert_eq!(select_members(Placement::LoadAware, 0, 4, 2, &load), [1, 3]);
    }

    #[test]
    fn kernel_degenerates_to_round_robin_shards_at_take_one() {
        for created in 0..6 {
            assert_eq!(
                select_members(Placement::RoundRobin, created, 4, 1, &[]),
                [created % 4]
            );
        }
    }

    #[test]
    fn shard_partitioner_policies() {
        let s = sched(&[
            (10, true, 0),
            (11, false, 1),
            (10, true, 2),
            (12, true, 0),
            (13, false, 3),
        ]);
        let same = partition_schedule(&s, 4, Placement::SameCore).unwrap();
        assert!(same.assignment.values().all(|&sh| sh == 0));
        assert_eq!(same.shards[0].len(), 5);

        let rr = partition_schedule(&s, 4, Placement::RoundRobin).unwrap();
        assert_eq!(rr.assignment[&ObjectId(10)], 0);
        assert_eq!(rr.assignment[&ObjectId(11)], 1);
        assert_eq!(rr.assignment[&ObjectId(12)], 2);
        assert_eq!(rr.assignment[&ObjectId(13)], 3);
    }

    #[test]
    fn load_aware_sharding_balances_by_traffic() {
        // Object 1 is hot (4 requests) before 2 and 3 appear: the
        // lightest shard takes each newcomer.
        let s = sched(&[
            (1, true, 0),
            (1, true, 1),
            (1, true, 2),
            (1, true, 3),
            (2, false, 0),
            (3, false, 1),
        ]);
        let p = partition_schedule(&s, 2, Placement::LoadAware).unwrap();
        assert_eq!(p.assignment[&ObjectId(1)], 0);
        assert_eq!(p.assignment[&ObjectId(2)], 1);
        assert_eq!(p.assignment[&ObjectId(3)], 1);
    }

    #[test]
    fn projection_preserves_per_object_order_and_every_request() {
        let s = sched(&[
            (1, true, 0),
            (2, false, 1),
            (1, false, 2),
            (2, true, 3),
            (1, true, 4),
        ]);
        let p = partition_schedule(&s, 2, Placement::RoundRobin).unwrap();
        let total: usize = p.shards.iter().map(|sub| sub.len()).sum();
        assert_eq!(total, s.len());
        for (shard, sub) in p.shards.iter().enumerate() {
            let mut cursor: BTreeMap<ObjectId, usize> = BTreeMap::new();
            for mr in sub.requests() {
                assert_eq!(p.assignment[&mr.object], shard);
                // Each object's requests appear in original order.
                let seen = cursor.entry(mr.object).or_insert(0);
                let originals: Vec<_> = s
                    .requests()
                    .iter()
                    .filter(|o| o.object == mr.object)
                    .collect();
                assert_eq!(originals[*seen].request, mr.request);
                *seen += 1;
            }
        }
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(ShardPartitioner::new(0, Placement::SameCore).is_err());
        assert!(partition_schedule(&MultiSchedule::default(), 0, Placement::SameCore).is_err());
    }

    #[test]
    fn core_planner_matches_policy_semantics() {
        assert!(CorePlanner::new(4, 1, Placement::SameCore).is_err());
        assert!(CorePlanner::new(4, 4, Placement::SameCore).is_err());
        let s = sched(&[(1, false, 2), (2, false, 2), (3, false, 2), (4, false, 2)]);
        let cores = plan_cores(8, 2, Placement::RoundRobin, &s).unwrap();
        // t = 2 → |F| = 1, advancing by 1 per object (the analytic rule).
        assert_eq!(cores[&ObjectId(1)].0, ProcSet::from_iter([0usize]));
        assert_eq!(cores[&ObjectId(2)].0, ProcSet::from_iter([1usize]));
        assert_eq!(cores[&ObjectId(3)].0, ProcSet::from_iter([2usize]));
        assert_eq!(cores[&ObjectId(4)].0, ProcSet::from_iter([3usize]));
        for (f, p) in cores.values() {
            assert!(!f.contains(*p));
        }
    }

    #[test]
    fn load_aware_core_planning_spreads_hot_writers() {
        // Two write-hot objects then a third: its core avoids the first
        // two cores' processors.
        let mut reqs = Vec::new();
        for _ in 0..5 {
            reqs.push((1u64, false, 0usize));
            reqs.push((2, false, 1));
        }
        reqs.push((3, false, 2));
        let cores = plan_cores(6, 2, Placement::LoadAware, &sched(&reqs)).unwrap();
        let used: ProcSet = cores[&ObjectId(1)]
            .0
            .with(cores[&ObjectId(1)].1)
            .iter()
            .chain(cores[&ObjectId(2)].0.with(cores[&ObjectId(2)].1).iter())
            .collect();
        let third = cores[&ObjectId(3)].0.with(cores[&ObjectId(3)].1);
        for member in third.iter() {
            assert!(!used.contains(member), "hot processors reused: {third:?}");
        }
    }
}

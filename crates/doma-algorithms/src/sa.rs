//! Static Allocation (SA) — §4.2.1.
//!
//! SA keeps a fixed allocation scheme `Q` of size `t` and performs
//! read-one-write-all: a write by any processor is propagated to every
//! member of `Q`; a read by a member of `Q` is served locally; a read by
//! any other processor is served by one member of `Q`.

use doma_core::{Decision, DomAlgorithm, DomaError, OnlineDom, ProcSet, Request, Result};

/// The read-one-write-all static allocation algorithm over a fixed scheme
/// `Q` (the paper's *SAOS* online step, §3.4/§4.2.1).
///
/// ```
/// use doma_algorithms::StaticAllocation;
/// use doma_core::{run_online, ProcSet, Schedule};
///
/// let mut sa = StaticAllocation::new(ProcSet::from_iter([0, 1])).unwrap();
/// let schedule: Schedule = "r2 w0 r1".parse().unwrap();
/// let out = run_online(&mut sa, &schedule).unwrap();
/// assert_eq!(out.costed.final_scheme, ProcSet::from_iter([0, 1]));
/// ```
#[derive(Debug, Clone)]
pub struct StaticAllocation {
    q: ProcSet,
}

impl StaticAllocation {
    /// Creates SA with fixed scheme `q`; `|q| ≥ 2` (the paper assumes
    /// `t ≥ 2`).
    pub fn new(q: ProcSet) -> Result<Self> {
        if q.len() < 2 {
            return Err(DomaError::InvalidConfig(format!(
                "SA requires |Q| >= 2, got Q={q}"
            )));
        }
        Ok(StaticAllocation { q })
    }

    /// The fixed allocation scheme `Q`.
    pub fn q(&self) -> ProcSet {
        self.q
    }
}

impl DomAlgorithm for StaticAllocation {
    fn name(&self) -> &str {
        "SA"
    }

    fn t(&self) -> usize {
        self.q.len()
    }

    fn initial_scheme(&self) -> ProcSet {
        self.q
    }
}

impl OnlineDom for StaticAllocation {
    fn decide(&mut self, request: Request) -> Decision {
        if request.is_write() {
            // Write-all: the execution set is Q.
            Decision::exec(self.q)
        } else if self.q.contains(request.issuer) {
            // Member read: local.
            Decision::exec(ProcSet::singleton(request.issuer))
        } else {
            // Non-member read: read-one from an arbitrary member of Q.
            // SA never converts reads into saving-reads — the scheme is
            // static by definition. Q has >= 2 members by construction,
            // so the issuer fallback is unreachable.
            Decision::exec(ProcSet::singleton(
                self.q.any_member().unwrap_or(request.issuer),
            ))
        }
    }

    fn reset(&mut self) {
        // SA is stateless between requests.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doma_core::{run_online, CostVector, Schedule};

    fn ps(v: &[usize]) -> ProcSet {
        v.iter().copied().collect()
    }

    #[test]
    fn rejects_tiny_scheme() {
        assert!(StaticAllocation::new(ps(&[1])).is_err());
        assert!(StaticAllocation::new(ProcSet::EMPTY).is_err());
        assert!(StaticAllocation::new(ps(&[1, 2])).is_ok());
    }

    #[test]
    fn scheme_never_changes() {
        let mut sa = StaticAllocation::new(ps(&[1, 3])).unwrap();
        let schedule: Schedule = "r0 w2 r1 w3 r4 w0".parse().unwrap();
        let out = run_online(&mut sa, &schedule).unwrap();
        for k in 0..=schedule.len() {
            assert_eq!(out.alloc.scheme_at(k), ps(&[1, 3]));
        }
    }

    #[test]
    fn costs_match_read_one_write_all() {
        let mut sa = StaticAllocation::new(ps(&[1, 2])).unwrap();
        // Member read: 1 io. Non-member read: cc + io + cd.
        // Write by member: (t-1) data + t io, 0 invalidations (Y == Q ⊆ X).
        // Write by non-member: t data + t io, 0 invalidations.
        let schedule: Schedule = "r1 r5 w1 w5".parse().unwrap();
        let out = run_online(&mut sa, &schedule).unwrap();
        let c = &out.costed.per_request;
        assert_eq!(c[0].cost, CostVector::new(0, 0, 1));
        assert_eq!(c[1].cost, CostVector::new(1, 1, 1));
        assert_eq!(c[2].cost, CostVector::new(0, 1, 2));
        assert_eq!(c[3].cost, CostVector::new(0, 2, 2));
        assert_eq!(out.costed.total, CostVector::new(1, 4, 6));
    }

    #[test]
    fn never_saves_reads() {
        let mut sa = StaticAllocation::new(ps(&[0, 1])).unwrap();
        let schedule: Schedule = "r5 r5 r5".parse().unwrap();
        let out = run_online(&mut sa, &schedule).unwrap();
        assert!(out.alloc.steps.iter().all(|s| !s.saving));
    }

    #[test]
    fn larger_q_write_all() {
        let mut sa = StaticAllocation::new(ps(&[0, 1, 2, 3])).unwrap();
        assert_eq!(sa.t(), 4);
        let schedule: Schedule = "w7".parse().unwrap();
        let out = run_online(&mut sa, &schedule).unwrap();
        // Non-member write: 4 data messages, 4 I/Os.
        assert_eq!(out.costed.total, CostVector::new(0, 4, 4));
    }
}

//! Extension/baseline algorithms for the ablation experiments (E14).
//!
//! None of these are contributions of the paper; they realize the design
//! alternatives its §5 discusses, so the benches can quantify what each of
//! DA's ingredients buys:
//!
//! * [`SlidingWindowConvergent`] — a *convergent* (frequency-driven)
//!   allocator in the spirit of Wolfson–Jajodia [27, 28]: it tracks recent
//!   per-processor read activity in a sliding window and steers the scheme
//!   toward the currently hottest readers. Good on regular patterns,
//!   unboundedly bad on chaotic ones (§5.1).
//! * [`WriteInvalidateCache`] — CDVM-style caching (§5.2): DA's
//!   saving-read + write-invalidation mechanics *without* the availability
//!   core `F` (t = 1). Quantifies the price of the t-availability
//!   constraint.
//! * [`DaNoSave`] — DA with saving-reads disabled: non-member reads stay
//!   remote forever. Quantifies what saving-reads buy.

use doma_core::{
    Decision, DomAlgorithm, DomaError, OnlineDom, ProcSet, ProcessorId, Request, Result,
};
use std::collections::VecDeque;

/// A convergent allocator: every `period` requests, re-targets the
/// allocation scheme at the `t` processors with the most reads in the last
/// `window` requests (ties broken by lower processor index). The scheme
/// only actually changes at writes (the only moments an online algorithm
/// may shrink it), via execution set `target ∪ {writer}`; reads by
/// processors in the target set are converted to saving-reads.
#[derive(Debug, Clone)]
pub struct SlidingWindowConvergent {
    n: usize,
    t: usize,
    initial: ProcSet,
    window: usize,
    period: usize,
    // --- mutable state ---
    scheme: ProcSet,
    target: ProcSet,
    history: VecDeque<Request>,
    since_retarget: usize,
}

impl SlidingWindowConvergent {
    /// Creates the allocator. `initial` must have at least `t ≥ 2` members;
    /// `window` and `period` must be positive.
    pub fn new(n: usize, t: usize, initial: ProcSet, window: usize, period: usize) -> Result<Self> {
        if t < 2 || initial.len() < t {
            return Err(DomaError::InvalidConfig(format!(
                "need t >= 2 and |initial| >= t (t={t}, initial={initial})"
            )));
        }
        if window == 0 || period == 0 {
            return Err(DomaError::InvalidConfig(
                "window and period must be positive".to_string(),
            ));
        }
        if !initial.is_subset(ProcSet::universe(n)) {
            return Err(DomaError::InvalidConfig(format!(
                "initial {initial} outside universe of {n}"
            )));
        }
        Ok(SlidingWindowConvergent {
            n,
            t,
            initial,
            window,
            period,
            scheme: initial,
            target: initial,
            history: VecDeque::new(),
            since_retarget: 0,
        })
    }

    /// The scheme the algorithm is currently steering toward.
    pub fn target(&self) -> ProcSet {
        self.target
    }

    fn observe(&mut self, request: Request) {
        self.history.push_back(request);
        while self.history.len() > self.window {
            self.history.pop_front();
        }
        self.since_retarget += 1;
        if self.since_retarget >= self.period {
            self.since_retarget = 0;
            self.retarget();
        }
    }

    fn retarget(&mut self) {
        let mut reads = vec![0u32; self.n];
        for r in &self.history {
            if r.is_read() {
                reads[r.issuer.index()] += 1;
            }
        }
        // Top-t processors by read count, lower index first on ties.
        let mut order: Vec<usize> = (0..self.n).collect();
        order.sort_by_key(|&p| (std::cmp::Reverse(reads[p]), p));
        self.target = order.iter().take(self.t).copied().collect();
    }
}

impl DomAlgorithm for SlidingWindowConvergent {
    fn name(&self) -> &str {
        "Convergent"
    }
    fn t(&self) -> usize {
        self.t
    }
    fn initial_scheme(&self) -> ProcSet {
        self.initial
    }
}

impl OnlineDom for SlidingWindowConvergent {
    fn decide(&mut self, request: Request) -> Decision {
        self.observe(request);
        let i = request.issuer;
        if request.is_read() {
            if self.scheme.contains(i) {
                Decision::exec(ProcSet::singleton(i))
            } else {
                // Non-empty by construction: writes keep |scheme| >= t.
                let server = self.scheme.any_member().unwrap_or(i);
                if self.target.contains(i) {
                    // A hot reader: pull the object in.
                    self.scheme.insert(i);
                    Decision::saving(ProcSet::singleton(server))
                } else {
                    Decision::exec(ProcSet::singleton(server))
                }
            }
        } else {
            // Write: land the new version on the target scheme (plus the
            // writer, so its own copy is fresh). |target| = t keeps the
            // availability constraint.
            let exec = self.target.with(i);
            self.scheme = exec;
            Decision::exec(exec)
        }
    }

    fn reset(&mut self) {
        self.scheme = self.initial;
        self.target = self.initial;
        self.history.clear();
        self.since_retarget = 0;
    }
}

/// CDVM-style write-invalidate caching: every reader caches (saving-read),
/// every write shrinks the scheme to the writer alone. No availability
/// core — `t() = 1` — so it is *not* admissible under the paper's `t ≥ 2`
/// constraint; it exists to price that constraint in the ablation bench.
#[derive(Debug, Clone)]
pub struct WriteInvalidateCache {
    initial: ProcSet,
    scheme: ProcSet,
}

impl WriteInvalidateCache {
    /// Creates the cache protocol with a non-empty initial scheme.
    pub fn new(initial: ProcSet) -> Result<Self> {
        if initial.is_empty() {
            return Err(DomaError::InvalidConfig(
                "initial scheme must be non-empty".to_string(),
            ));
        }
        Ok(WriteInvalidateCache {
            initial,
            scheme: initial,
        })
    }
}

impl DomAlgorithm for WriteInvalidateCache {
    fn name(&self) -> &str {
        "WriteInvalidate"
    }
    fn t(&self) -> usize {
        1
    }
    fn initial_scheme(&self) -> ProcSet {
        self.initial
    }
}

impl OnlineDom for WriteInvalidateCache {
    fn decide(&mut self, request: Request) -> Decision {
        let i = request.issuer;
        if request.is_read() {
            if self.scheme.contains(i) {
                Decision::exec(ProcSet::singleton(i))
            } else {
                // Non-empty by construction: writes leave the writer behind.
                let server = self.scheme.any_member().unwrap_or(i);
                self.scheme.insert(i);
                Decision::saving(ProcSet::singleton(server))
            }
        } else {
            let exec = ProcSet::singleton(i);
            self.scheme = exec;
            Decision::exec(exec)
        }
    }

    fn reset(&mut self) {
        self.scheme = self.initial;
    }
}

/// DA with saving-reads disabled: non-member reads are served remotely and
/// the reader never joins the scheme. Writes behave exactly as in DA.
#[derive(Debug, Clone)]
pub struct DaNoSave {
    f: ProcSet,
    p: ProcessorId,
    scheme: ProcSet,
}

impl DaNoSave {
    /// Creates the ablated DA; same preconditions as
    /// [`crate::DynamicAllocation::new`].
    pub fn new(f: ProcSet, p: ProcessorId) -> Result<Self> {
        if f.is_empty() || f.contains(p) {
            return Err(DomaError::InvalidConfig(
                "need non-empty F with p outside F".to_string(),
            ));
        }
        Ok(DaNoSave {
            f,
            p,
            scheme: f.with(p),
        })
    }
}

impl DomAlgorithm for DaNoSave {
    fn name(&self) -> &str {
        "DA-nosave"
    }
    fn t(&self) -> usize {
        self.f.len() + 1
    }
    fn initial_scheme(&self) -> ProcSet {
        self.f.with(self.p)
    }
}

impl OnlineDom for DaNoSave {
    fn decide(&mut self, request: Request) -> Decision {
        let i = request.issuer;
        if request.is_read() {
            if self.scheme.contains(i) {
                Decision::exec(ProcSet::singleton(i))
            } else {
                // F is non-empty by construction.
                Decision::exec(ProcSet::singleton(self.f.any_member().unwrap_or(i)))
            }
        } else {
            let core_or_floater = self.f.with(self.p);
            let exec = if core_or_floater.contains(i) {
                core_or_floater
            } else {
                self.f.with(i)
            };
            self.scheme = exec;
            Decision::exec(exec)
        }
    }

    fn reset(&mut self) {
        self.scheme = self.f.with(self.p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doma_core::{run_online, CostModel, Schedule};

    fn ps(v: &[usize]) -> ProcSet {
        v.iter().copied().collect()
    }

    #[test]
    fn convergent_validation() {
        assert!(SlidingWindowConvergent::new(4, 1, ps(&[0, 1]), 8, 4).is_err());
        assert!(SlidingWindowConvergent::new(4, 2, ps(&[0]), 8, 4).is_err());
        assert!(SlidingWindowConvergent::new(4, 2, ps(&[0, 1]), 0, 4).is_err());
        assert!(SlidingWindowConvergent::new(2, 2, ps(&[0, 5]), 8, 4).is_err());
        assert!(SlidingWindowConvergent::new(4, 2, ps(&[0, 1]), 8, 4).is_ok());
    }

    #[test]
    fn convergent_tracks_hot_readers() {
        let mut algo = SlidingWindowConvergent::new(4, 2, ps(&[0, 1]), 8, 4).unwrap();
        // Processors 2 and 3 read heavily; after a retarget + a write the
        // scheme should contain them.
        let schedule: Schedule = "r2 r3 r2 r3 r2 r3 w0 r2 r3".parse().unwrap();
        let out = run_online(&mut algo, &schedule).unwrap();
        let final_scheme = out.costed.final_scheme;
        assert!(final_scheme.contains(ProcessorId::new(2)), "{final_scheme}");
        assert!(final_scheme.contains(ProcessorId::new(3)), "{final_scheme}");
    }

    #[test]
    fn convergent_always_valid() {
        let mut algo = SlidingWindowConvergent::new(5, 2, ps(&[0, 1]), 6, 3).unwrap();
        let schedule: Schedule = "r4 w2 r3 r3 w4 r0 w1 r2 r2 r2 w3".parse().unwrap();
        // run_online validates legality + t-availability internally.
        run_online(&mut algo, &schedule).expect("must stay legal and 2-available");
    }

    #[test]
    fn convergent_beats_da_on_regular_pattern() {
        // A regular pattern whose hot set shifts slowly: the convergent
        // algorithm should land the scheme on the readers and beat DA's
        // fixed core. (§5.1: convergent is better on regular patterns.)
        let model = CostModel::stationary(0.2, 0.4).unwrap();
        let phase1: Schedule = "r2 r3 r2 r3 r2 r3 w2".parse().unwrap();
        let schedule = phase1.repeated(12);
        let mut conv = SlidingWindowConvergent::new(5, 2, ps(&[0, 1]), 14, 7).unwrap();
        let conv_cost = run_online(&mut conv, &schedule)
            .unwrap()
            .costed
            .total_cost(&model);
        let mut da = crate::DynamicAllocation::new(ps(&[0]), ProcessorId::new(1)).unwrap();
        let da_cost = run_online(&mut da, &schedule)
            .unwrap()
            .costed
            .total_cost(&model);
        assert!(
            conv_cost < da_cost,
            "convergent ({conv_cost}) should beat DA ({da_cost}) on a regular pattern"
        );
    }

    #[test]
    fn cache_shrinks_to_writer() {
        let mut c = WriteInvalidateCache::new(ps(&[0])).unwrap();
        let schedule: Schedule = "r1 r2 w3 r3".parse().unwrap();
        let out = run_online(&mut c, &schedule).unwrap();
        assert_eq!(out.alloc.scheme_at(3), ps(&[3]));
        assert!(out.alloc.steps[0].saving && out.alloc.steps[1].saving);
        assert!(!out.alloc.steps[3].saving); // local after own write
    }

    #[test]
    fn cache_rejects_empty_initial() {
        assert!(WriteInvalidateCache::new(ProcSet::EMPTY).is_err());
    }

    #[test]
    fn nosave_never_saves_and_matches_da_on_writes() {
        let mut ns = DaNoSave::new(ps(&[0]), ProcessorId::new(1)).unwrap();
        let schedule: Schedule = "r2 r2 w5 r5 w0".parse().unwrap();
        let out = run_online(&mut ns, &schedule).unwrap();
        assert!(out.alloc.steps.iter().all(|s| !s.saving));
        assert_eq!(out.alloc.steps[2].exec, ps(&[0, 5])); // write by outsider
        assert_eq!(out.alloc.steps[4].exec, ps(&[0, 1])); // write by core
    }

    #[test]
    fn nosave_is_dearer_than_da_on_read_heavy_remote_workload() {
        let model = CostModel::stationary(0.2, 0.8).unwrap();
        let schedule: Schedule = "r2 r2 r2 r2 r2 r2 r2 r2".parse().unwrap();
        let mut ns = DaNoSave::new(ps(&[0]), ProcessorId::new(1)).unwrap();
        let ns_cost = run_online(&mut ns, &schedule)
            .unwrap()
            .costed
            .total_cost(&model);
        let mut da = crate::DynamicAllocation::new(ps(&[0]), ProcessorId::new(1)).unwrap();
        let da_cost = run_online(&mut da, &schedule)
            .unwrap()
            .costed
            .total_cost(&model);
        assert!(da_cost < ns_cost);
    }
}

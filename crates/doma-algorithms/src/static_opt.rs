//! The offline *best static* allocation — the file-allocation-problem
//! baseline of §5.1 ([26] Wolfson–Milo, [9] Dowdy–Foster).
//!
//! Those works assume the read-write pattern is known a priori and find
//! the optimal **fixed** allocation scheme; the paper observes they "do
//! not quantify the cost penalty if the read-write pattern is not known".
//! [`BestStaticAllocation`] computes that yardstick exactly — the cheapest
//! read-one-write-all scheme of size `t` for a given schedule — so the E19
//! experiment can quantify both gaps:
//!
//! * *value of knowing the pattern*: SA (arbitrary fixed `Q`) vs best
//!   static;
//! * *value of dynamism*: best static vs the dynamic offline optimum OPT.

use crate::StaticAllocation;
use doma_core::{
    run_online, AllocationSchedule, CostModel, DomAlgorithm, DomaError, OfflineDom, ProcSet,
    Result, Schedule,
};

/// Exhaustive search over all `C(n, t)` static schemes, costing each by
/// read-one-write-all execution (what SA would do with that `Q`).
#[derive(Debug, Clone)]
pub struct BestStaticAllocation {
    n: usize,
    t: usize,
    model: CostModel,
}

impl BestStaticAllocation {
    /// Creates the searcher. `2 ≤ t ≤ n ≤ MAX_PROCESSORS`; the number of
    /// candidate schemes is `C(n, t)`, fine for the n ≤ 20 this library
    /// targets.
    pub fn new(n: usize, t: usize, model: CostModel) -> Result<Self> {
        if n == 0 || n > doma_core::MAX_PROCESSORS {
            return Err(DomaError::InvalidConfig(format!("bad universe {n}")));
        }
        if t < 2 || t > n {
            return Err(DomaError::InvalidConfig(format!(
                "need 2 <= t <= n, got t={t}, n={n}"
            )));
        }
        Ok(BestStaticAllocation { n, t, model })
    }

    /// Finds the cheapest static scheme for `schedule`, returning it with
    /// its cost.
    pub fn best_scheme(&self, schedule: &Schedule) -> Result<(ProcSet, f64)> {
        if schedule.min_processors() > self.n {
            return Err(DomaError::InvalidConfig(
                "schedule references processors outside the universe".to_string(),
            ));
        }
        let mut best: Option<(ProcSet, f64)> = None;
        for q in ProcSet::universe(self.n).subsets() {
            if q.len() != self.t {
                continue;
            }
            let mut sa = StaticAllocation::new(q)?;
            let cost = run_online(&mut sa, schedule)?
                .costed
                .total_cost(&self.model);
            let better = match &best {
                None => true,
                Some((_, c)) => cost < *c,
            };
            if better {
                best = Some((q, cost));
            }
        }
        best.ok_or_else(|| DomaError::InvalidConfig("no scheme of size t exists".to_string()))
    }
}

impl DomAlgorithm for BestStaticAllocation {
    fn name(&self) -> &str {
        "BestStatic"
    }

    fn t(&self) -> usize {
        self.t
    }

    fn initial_scheme(&self) -> ProcSet {
        // The initial scheme is part of the *answer* for this offline
        // algorithm; by convention report the low-numbered default (the
        // scheme actually used is in the allocation schedule it returns).
        (0..self.t).collect()
    }
}

impl OfflineDom for BestStaticAllocation {
    fn allocate(&self, schedule: &Schedule) -> Result<AllocationSchedule> {
        let (q, _) = self.best_scheme(schedule)?;
        let mut sa = StaticAllocation::new(q)?;
        Ok(run_online(&mut sa, schedule)?.alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OfflineOptimal;

    fn sc(cc: f64, cd: f64) -> CostModel {
        CostModel::stationary(cc, cd).unwrap()
    }

    #[test]
    fn validation() {
        assert!(BestStaticAllocation::new(0, 2, sc(0.1, 0.2)).is_err());
        assert!(BestStaticAllocation::new(4, 1, sc(0.1, 0.2)).is_err());
        assert!(BestStaticAllocation::new(4, 5, sc(0.1, 0.2)).is_err());
        assert!(BestStaticAllocation::new(4, 2, sc(0.1, 0.2)).is_ok());
    }

    #[test]
    fn finds_the_obvious_scheme() {
        // All traffic is at processors 2 and 3: the best fixed pair is
        // exactly {2, 3}.
        let bs = BestStaticAllocation::new(5, 2, sc(0.3, 0.9)).unwrap();
        let schedule: Schedule = "r2 r3 w2 r3 r2 w3 r2 r3".parse().unwrap();
        let (q, cost) = bs.best_scheme(&schedule).unwrap();
        assert_eq!(q, ProcSet::from_iter([2, 3]));
        // Sanity: the default scheme {0,1} is strictly worse.
        let mut sa = StaticAllocation::new(ProcSet::from_iter([0, 1])).unwrap();
        let default_cost = run_online(&mut sa, &schedule)
            .unwrap()
            .costed
            .total_cost(&sc(0.3, 0.9));
        assert!(cost < default_cost);
    }

    #[test]
    fn sandwich_between_sa_and_opt() {
        // best-static ≤ SA-with-default-Q, and OPT ≤ best-static (the
        // dynamic offline optimum beats every static scheme — the "value
        // of dynamism" of E19).
        let model = sc(0.25, 1.0);
        let bs = BestStaticAllocation::new(5, 2, model).unwrap();
        let schedule: Schedule = "r2 r2 r2 w0 r3 r3 w4 r2 r2 r1".parse().unwrap();
        let (_, best_static) = bs.best_scheme(&schedule).unwrap();
        let mut sa = StaticAllocation::new(ProcSet::from_iter([0, 1])).unwrap();
        let sa_cost = run_online(&mut sa, &schedule)
            .unwrap()
            .costed
            .total_cost(&model);
        assert!(best_static <= sa_cost + 1e-9);
        // OPT with the best-static's own initial scheme can only be
        // cheaper or equal (it could simply replay the static behaviour).
        let bs_alloc = bs.allocate(&schedule).unwrap();
        let opt = OfflineOptimal::new(5, 2, bs_alloc.initial, model).unwrap();
        let opt_cost = opt.optimal_cost(&schedule).unwrap();
        assert!(opt_cost <= best_static + 1e-9);
    }

    #[test]
    fn allocate_returns_static_run_with_winning_scheme() {
        let model = sc(0.2, 0.5);
        let bs = BestStaticAllocation::new(4, 2, model).unwrap();
        let schedule: Schedule = "r3 r3 w3 r3".parse().unwrap();
        let alloc = bs.allocate(&schedule).unwrap();
        // The scheme never changes in a static allocation.
        assert_eq!(alloc.initial, alloc.final_scheme());
        assert!(alloc.initial.contains(doma_core::ProcessorId::new(3)));
    }

    #[test]
    fn rejects_out_of_universe_schedules() {
        let bs = BestStaticAllocation::new(3, 2, sc(0.1, 0.3)).unwrap();
        let schedule: Schedule = "r7".parse().unwrap();
        assert!(bs.best_scheme(&schedule).is_err());
    }
}

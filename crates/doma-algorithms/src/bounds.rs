//! Analytic lower bounds on the offline-optimal cost.
//!
//! Used as sanity oracles in property tests (OPT must never beat them) and
//! as cheap denominators when the exact DP is too large to run.

use doma_core::{CostModel, Op, Schedule};

/// A per-request lower bound on the cost of *any* legal, t-available
/// allocation schedule for `schedule`:
///
/// * every read inputs the object from at least one local database
///   (`≥ cio`);
/// * every write must ship the object to and store it at at least `t`
///   processors (`≥ (t-1)·cd + t·cio` — the writer's own copy needs no
///   data message when the writer stores locally, hence `t-1`).
///
/// In the mobile model (`cio = 0`) the read term vanishes, matching the
/// fact that a read local to the scheme is free there.
pub fn per_request_lower_bound(schedule: &Schedule, model: &CostModel, t: usize) -> f64 {
    let read_lb = model.cio();
    let write_lb = (t as f64 - 1.0) * model.cd() + t as f64 * model.cio();
    schedule
        .iter()
        .map(|r| match r.op {
            Op::Read => read_lb,
            Op::Write => write_lb,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OfflineOptimal;
    use doma_core::ProcSet;

    fn ps(v: &[usize]) -> ProcSet {
        v.iter().copied().collect()
    }

    #[test]
    fn bound_is_exact_for_all_local_stationary_reads() {
        let m = CostModel::stationary(0.1, 0.5).unwrap();
        let s: Schedule = "r0 r1 r0".parse().unwrap();
        assert!((per_request_lower_bound(&s, &m, 2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bound_never_exceeds_opt() {
        let m = CostModel::stationary(0.4, 0.9).unwrap();
        let opt = OfflineOptimal::new(4, 2, ps(&[0, 1]), m).unwrap();
        for s in ["r2 w3 r1 w0 r3 r3", "w0 w1 w2 w3", "r3 r3 r3 w3 r0"] {
            let schedule: Schedule = s.parse().unwrap();
            let lb = per_request_lower_bound(&schedule, &m, 2);
            let oc = opt.optimal_cost(&schedule).unwrap();
            assert!(lb <= oc + 1e-9, "lb {lb} > OPT {oc} on {s}");
        }
    }

    #[test]
    fn mobile_reads_contribute_zero() {
        let m = CostModel::mobile(0.2, 0.8).unwrap();
        let s: Schedule = "r0 r1 r2 w0".parse().unwrap();
        // Only the write contributes: (t-1)·cd = 0.8.
        assert!((per_request_lower_bound(&s, &m, 2) - 0.8).abs() < 1e-12);
    }
}

//! Independent, slower implementations of the offline optimum, used to
//! cross-validate [`crate::OfflineOptimal`]'s optimized dynamic program.
//!
//! * [`NaiveDpOptimal`] — the same scheme-state DP but with the textbook
//!   O(4ⁿ) write transition (every old-scheme × new-scheme pair).
//! * [`BruteForceOptimal`] — exhaustive recursion over *every* legal
//!   allocation schedule, including dominated choices (multi-member read
//!   execution sets, gratuitous saving-reads, oversized write sets).
//!   Exponential in everything; only usable for tiny inputs, which is
//!   exactly its job.

use doma_core::{
    cost_of_schedule, AllocationSchedule, CostModel, Decision, DomAlgorithm, DomaError, OfflineDom,
    ProcSet, Request, Result, Schedule,
};

/// O(4ⁿ)-per-write reference DP. Produces the same costs as
/// [`crate::OfflineOptimal`]; kept as an oracle for tests and the
/// `opt_scaling` bench.
#[derive(Debug, Clone)]
pub struct NaiveDpOptimal {
    n: usize,
    t: usize,
    initial: ProcSet,
    model: CostModel,
}

impl NaiveDpOptimal {
    /// Creates the naive reference OPT (`n ≤ 14` — it is O(4ⁿ) per write).
    pub fn new(n: usize, t: usize, initial: ProcSet, model: CostModel) -> Result<Self> {
        if n == 0 || n > 14 {
            return Err(DomaError::InvalidConfig(format!(
                "NaiveDpOptimal supports 1..=14 processors, got {n}"
            )));
        }
        if t == 0 || t > n || initial.len() < t || !initial.is_subset(ProcSet::universe(n)) {
            return Err(DomaError::InvalidConfig(
                "invalid t / initial scheme".to_string(),
            ));
        }
        Ok(NaiveDpOptimal {
            n,
            t,
            initial,
            model,
        })
    }

    /// The minimum cost of serving `schedule`.
    pub fn optimal_cost(&self, schedule: &Schedule) -> Result<f64> {
        if schedule.min_processors() > self.n {
            return Err(DomaError::InvalidConfig(
                "schedule references processors outside the universe".to_string(),
            ));
        }
        let size = 1usize << self.n;
        let cc = self.model.cc();
        let cd = self.model.cd();
        let cio = self.model.cio();
        let mut cur = vec![f64::INFINITY; size];
        cur[self.initial.bits() as usize] = 0.0;
        for request in schedule.iter() {
            let ibit = 1usize << request.issuer.index();
            let mut next = vec![f64::INFINITY; size];
            for (y, &c) in cur.iter().enumerate() {
                if !c.is_finite() {
                    continue;
                }
                if request.is_read() {
                    if y & ibit != 0 {
                        next[y] = next[y].min(c + cio);
                    } else {
                        next[y] = next[y].min(c + cc + cio + cd);
                        next[y | ibit] = next[y | ibit].min(c + cc + 2.0 * cio + cd);
                    }
                } else {
                    #[allow(clippy::needless_range_loop)] // x is both mask and index
                    for x in 0..size {
                        let xn = (x as u64).count_ones() as usize;
                        if xn < self.t {
                            continue;
                        }
                        let cost = if x & ibit != 0 {
                            let inval = (y & !x).count_ones() as f64;
                            c + inval * cc + (xn as f64 - 1.0) * cd + xn as f64 * cio
                        } else {
                            let inval = (y & !x & !ibit).count_ones() as f64;
                            c + inval * cc + xn as f64 * (cd + cio)
                        };
                        next[x] = next[x].min(cost);
                    }
                }
            }
            cur = next;
        }
        Ok(cur.into_iter().fold(f64::INFINITY, f64::min))
    }
}

/// Exhaustive enumeration of every legal allocation schedule. Ground truth
/// for tiny inputs (`n ≤ 4`, a handful of requests).
#[derive(Debug, Clone)]
pub struct BruteForceOptimal {
    n: usize,
    t: usize,
    initial: ProcSet,
    model: CostModel,
}

impl BruteForceOptimal {
    /// Creates the brute-force OPT (`n ≤ 5` enforced; the search tree is
    /// exponential in both `n` and the schedule length).
    pub fn new(n: usize, t: usize, initial: ProcSet, model: CostModel) -> Result<Self> {
        if n == 0 || n > 5 {
            return Err(DomaError::InvalidConfig(format!(
                "BruteForceOptimal supports 1..=5 processors, got {n}"
            )));
        }
        if t == 0 || t > n || initial.len() < t || !initial.is_subset(ProcSet::universe(n)) {
            return Err(DomaError::InvalidConfig(
                "invalid t / initial scheme".to_string(),
            ));
        }
        Ok(BruteForceOptimal {
            n,
            t,
            initial,
            model,
        })
    }

    fn recurse(
        &self,
        requests: &[Request],
        scheme: ProcSet,
        decisions: &mut Vec<Decision>,
        best: &mut (f64, Vec<Decision>),
        cost_so_far: f64,
    ) {
        if cost_so_far >= best.0 {
            return; // branch-and-bound: costs are non-negative
        }
        let Some(&request) = requests.first() else {
            *best = (cost_so_far, decisions.clone());
            return;
        };
        let rest = &requests[1..];
        let universe = ProcSet::universe(self.n);
        if request.is_read() {
            for exec in universe.subsets() {
                if exec.is_empty() || !exec.intersects(scheme) {
                    continue;
                }
                for saving in [false, true] {
                    let decision = if saving {
                        Decision::saving(exec)
                    } else {
                        Decision::exec(exec)
                    };
                    let step = doma_core::AllocatedRequest::new(request, decision);
                    let c = doma_core::request_cost(&step, scheme).eval(&self.model);
                    let next = doma_core::scheme_after(scheme, &step);
                    decisions.push(decision);
                    self.recurse(rest, next, decisions, best, cost_so_far + c);
                    decisions.pop();
                }
            }
        } else {
            for exec in universe.subsets() {
                if exec.len() < self.t {
                    continue;
                }
                let decision = Decision::exec(exec);
                let step = doma_core::AllocatedRequest::new(request, decision);
                let c = doma_core::request_cost(&step, scheme).eval(&self.model);
                decisions.push(decision);
                self.recurse(rest, exec, decisions, best, cost_so_far + c);
                decisions.pop();
            }
        }
    }
}

impl DomAlgorithm for BruteForceOptimal {
    fn name(&self) -> &str {
        "BruteOPT"
    }
    fn t(&self) -> usize {
        self.t
    }
    fn initial_scheme(&self) -> ProcSet {
        self.initial
    }
}

impl OfflineDom for BruteForceOptimal {
    fn allocate(&self, schedule: &Schedule) -> Result<AllocationSchedule> {
        if schedule.min_processors() > self.n {
            return Err(DomaError::InvalidConfig(
                "schedule references processors outside the universe".to_string(),
            ));
        }
        let mut best = (f64::INFINITY, Vec::new());
        let mut decisions = Vec::new();
        self.recurse(
            schedule.requests(),
            self.initial,
            &mut decisions,
            &mut best,
            0.0,
        );
        if schedule.is_empty() {
            return Ok(AllocationSchedule::new(self.initial));
        }
        if best.0.is_infinite() {
            return Err(DomaError::InvalidConfig(
                "no legal allocation schedule exists".to_string(),
            ));
        }
        let mut alloc = AllocationSchedule::new(self.initial);
        for (request, decision) in schedule.iter().zip(best.1) {
            alloc.push(request, decision);
        }
        // Sanity: the enumeration only produced legal, t-available schedules.
        debug_assert!(cost_of_schedule(&alloc, self.t).is_ok());
        Ok(alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OfflineOptimal;
    use doma_core::run_offline;

    fn ps(v: &[usize]) -> ProcSet {
        v.iter().copied().collect()
    }

    #[test]
    fn naive_rejects_bad_configs() {
        let m = CostModel::stationary(0.1, 0.2).unwrap();
        assert!(NaiveDpOptimal::new(20, 2, ps(&[0, 1]), m).is_err());
        assert!(NaiveDpOptimal::new(4, 9, ps(&[0, 1]), m).is_err());
        assert!(NaiveDpOptimal::new(4, 2, ps(&[0]), m).is_err());
    }

    #[test]
    fn brute_rejects_bad_configs() {
        let m = CostModel::stationary(0.1, 0.2).unwrap();
        assert!(BruteForceOptimal::new(6, 2, ps(&[0, 1]), m).is_err());
        assert!(BruteForceOptimal::new(3, 0, ps(&[0, 1]), m).is_err());
    }

    /// The three OPT implementations must agree exactly on small inputs.
    #[test]
    fn three_way_agreement_on_small_schedules() {
        let models = [
            CostModel::stationary(0.0, 0.0).unwrap(),
            CostModel::stationary(0.3, 0.7).unwrap(),
            CostModel::stationary(1.0, 2.0).unwrap(),
            CostModel::mobile(0.4, 1.1).unwrap(),
        ];
        let schedules = [
            "r2 w1 r2",
            "w0 r1 r2 w2",
            "r2 r2 r2",
            "w2 w0 w1",
            "r0 w2 r1 w0",
        ];
        for model in models {
            let fast = OfflineOptimal::new(3, 2, ps(&[0, 1]), model).unwrap();
            let naive = NaiveDpOptimal::new(3, 2, ps(&[0, 1]), model).unwrap();
            let brute = BruteForceOptimal::new(3, 2, ps(&[0, 1]), model).unwrap();
            for s in schedules {
                let schedule: Schedule = s.parse().unwrap();
                let a = fast.optimal_cost(&schedule).unwrap();
                let b = naive.optimal_cost(&schedule).unwrap();
                let out = run_offline(&brute, &schedule).unwrap();
                let c = out.costed.total_cost(&model);
                assert!(
                    (a - b).abs() < 1e-9,
                    "fast {a} != naive {b} on {s} ({model:?})"
                );
                assert!(
                    (a - c).abs() < 1e-9,
                    "fast {a} != brute {c} on {s} ({model:?})"
                );
            }
        }
    }

    #[test]
    fn naive_empty_schedule() {
        let m = CostModel::stationary(0.1, 0.2).unwrap();
        let naive = NaiveDpOptimal::new(3, 2, ps(&[0, 1]), m).unwrap();
        assert_eq!(naive.optimal_cost(&Schedule::new()).unwrap(), 0.0);
    }

    #[test]
    fn brute_force_finds_saving_read_plan() {
        let model = CostModel::stationary(0.25, 0.5).unwrap();
        let brute = BruteForceOptimal::new(3, 2, ps(&[0, 1]), model).unwrap();
        let schedule: Schedule = "r2 r2 r2".parse().unwrap();
        let out = run_offline(&brute, &schedule).unwrap();
        assert!(out.alloc.steps[0].saving);
        let expect = (0.25 + 2.0 + 0.5) + 2.0;
        assert!((out.costed.total_cost(&model) - expect).abs() < 1e-9);
    }
}

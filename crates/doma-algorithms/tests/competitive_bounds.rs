//! The paper's competitive guarantees, checked end-to-end on the
//! adversarial schedule constructions of `adversary.rs` across a grid of
//! cost models (deterministic lattice + seeded random draws):
//!
//! * **Theorem 1** — SA is `(1 + cc + cd)`-competitive in SC.
//! * **Theorems 2 & 3** — DA is `(2 + 2cc)`-competitive in SC
//!   (`2 + cc` once `cd > 1`).
//! * **Theorem 4** — DA is `(2 + 3·cc/cd)`-competitive in MC.
//! * **Proposition 2** — the `w3 r2 r1` cycle drives DA's ratio toward
//!   the 1.5 lower bound, so the bounds above are not vacuous.

use doma_algorithms::adversary::{
    bursty_reader, da_prop2_cycle, read_write_ping_pong, remote_reader, rotating_reader,
    section_1_3_example,
};
use doma_algorithms::{DynamicAllocation, OfflineOptimal, StaticAllocation};
use doma_core::{run_online, CostModel, ProcSet, ProcessorId, Schedule};
use doma_testkit::rng::{Rng, TestRng};

const N: usize = 4;
const T: usize = 2;
const EPS: f64 = 1e-6;

fn p(i: usize) -> ProcessorId {
    ProcessorId::new(i)
}

/// The adversarial battery: every construction in `adversary.rs`, with a
/// couple of knob settings each. All stay within `N = 4` processors.
fn adversary_schedules() -> Vec<(&'static str, Schedule)> {
    vec![
        ("remote_reader", remote_reader(p(2), 12)),
        ("ping_pong", read_write_ping_pong(p(2), p(3), 8)),
        ("rotating", rotating_reader(&[p(1), p(2), p(3)], p(0), 4)),
        ("bursty_long", bursty_reader(p(2), p(3), 6, 3)),
        ("bursty_short", bursty_reader(p(2), p(3), 1, 8)),
        ("section_1_3", section_1_3_example()),
        ("prop2_cycle", da_prop2_cycle(6)),
    ]
}

/// Deterministic lattice of `(cc, cd)` pairs with `cc <= cd`, plus seeded
/// random draws — the grid every bound is checked on.
fn cost_pairs() -> Vec<(f64, f64)> {
    let lattice = [0.0, 0.25, 0.5, 1.0, 1.5];
    let mut pairs = Vec::new();
    for &cc in &lattice {
        for &cd in &lattice {
            if cc <= cd {
                pairs.push((cc, cd));
            }
        }
    }
    let mut rng = TestRng::seed_from_u64(0xC0575);
    for _ in 0..12 {
        let a = rng.gen_range(0.0..2.0);
        let b = rng.gen_range(0.0..2.0);
        pairs.push(if a <= b { (a, b) } else { (b, a) });
    }
    pairs
}

fn opt_cost(schedule: &Schedule, model: CostModel) -> f64 {
    let init = ProcSet::from_iter([0, 1]);
    OfflineOptimal::new(N, T, init, model)
        .unwrap()
        .optimal_cost(schedule)
        .unwrap()
}

fn sa_cost(schedule: &Schedule, model: &CostModel) -> f64 {
    let mut sa = StaticAllocation::new(ProcSet::from_iter([0, 1])).unwrap();
    run_online(&mut sa, schedule)
        .unwrap()
        .costed
        .total_cost(model)
}

fn da_cost(schedule: &Schedule, model: &CostModel) -> f64 {
    let mut da = DynamicAllocation::new(ProcSet::from_iter([0]), p(1)).unwrap();
    run_online(&mut da, schedule)
        .unwrap()
        .costed
        .total_cost(model)
}

/// The bound helpers match the theorem statements verbatim, so the
/// assertions below really are the paper's inequalities.
#[test]
fn bound_formulas_match_the_theorems() {
    for (cc, cd) in cost_pairs() {
        let sc = CostModel::stationary(cc, cd).unwrap();
        assert_eq!(sc.sa_bound(), Some(1.0 + cc + cd), "Theorem 1 factor");
        let expected_da = if cd > 1.0 { 2.0 + cc } else { 2.0 + 2.0 * cc };
        assert_eq!(sc.da_bound(), Some(expected_da), "Theorem 2/3 factor");

        let mc = CostModel::mobile(cc, cd).unwrap();
        assert_eq!(
            mc.sa_bound(),
            None,
            "Proposition 3: SA not competitive in MC"
        );
        if cd > 0.0 {
            assert_eq!(mc.da_bound(), Some(2.0 + 3.0 * cc / cd), "Theorem 4 factor");
        }
    }
}

/// Theorem 1: `cost_SA(s) <= (1 + cc + cd) · cost_OPT(s)` in SC, on every
/// adversarial schedule and every grid model.
#[test]
fn theorem_1_sa_bound_on_adversaries() {
    for (name, schedule) in adversary_schedules() {
        for (cc, cd) in cost_pairs() {
            let model = CostModel::stationary(cc, cd).unwrap();
            let opt = opt_cost(&schedule, model);
            let sa = sa_cost(&schedule, &model);
            let bound = 1.0 + cc + cd;
            assert!(
                sa <= bound * opt + EPS,
                "{name}, cc={cc}, cd={cd}: SA {sa} > {bound} * OPT {opt}"
            );
        }
    }
}

/// Theorems 2 & 3: `cost_DA(s) <= (2 + 2cc) · cost_OPT(s)` in SC
/// (`2 + cc` once `cd > 1`).
#[test]
fn theorems_2_3_da_bound_on_adversaries() {
    for (name, schedule) in adversary_schedules() {
        for (cc, cd) in cost_pairs() {
            let model = CostModel::stationary(cc, cd).unwrap();
            let opt = opt_cost(&schedule, model);
            let da = da_cost(&schedule, &model);
            let bound = if cd > 1.0 { 2.0 + cc } else { 2.0 + 2.0 * cc };
            assert!(
                da <= bound * opt + EPS,
                "{name}, cc={cc}, cd={cd}: DA {da} > {bound} * OPT {opt}"
            );
        }
    }
}

/// Theorem 4: `cost_DA(s) <= (2 + 3·cc/cd) · cost_OPT(s)` in MC.
#[test]
fn theorem_4_da_bound_on_adversaries_mobile() {
    for (name, schedule) in adversary_schedules() {
        for (cc, cd) in cost_pairs() {
            if cd == 0.0 {
                continue; // degenerate all-zero model: vacuous
            }
            let model = CostModel::mobile(cc, cd).unwrap();
            let opt = opt_cost(&schedule, model);
            let da = da_cost(&schedule, &model);
            let bound = 2.0 + 3.0 * cc / cd;
            assert!(
                da <= bound * opt + EPS,
                "{name}, cc={cc}, cd={cd}: DA {da} > {bound} * OPT {opt} (MC)"
            );
        }
    }
}

/// Proposition 2 tightness: on the `w3 r2 r1` cycle with vanishing
/// message costs, DA's measured ratio approaches the 1.5 lower bound —
/// so the Theorem 2 ceiling (2 + 2cc ≈ 2) leaves less than a factor of
/// 1.4 of slack and the bound tests above are biting.
#[test]
fn prop2_cycle_drives_da_toward_lower_bound() {
    let schedule = da_prop2_cycle(40);
    let model = CostModel::stationary(0.01, 0.01).unwrap();
    let opt = opt_cost(&schedule, model);
    let da = da_cost(&schedule, &model);
    let ratio = da / opt;
    assert!(
        ratio > 1.4,
        "prop2 cycle should push DA's ratio near 1.5, got {ratio}"
    );
    assert!(
        ratio <= model.da_bound().unwrap() + EPS,
        "ratio {ratio} exceeded the Theorem 2 bound"
    );
}

/// The seeded random grid itself is deterministic: the same seed always
/// yields the same models, so failures here replay exactly.
#[test]
fn cost_grid_is_deterministic() {
    assert_eq!(cost_pairs(), cost_pairs());
}

/// Named regression pins: the *exact* measured SA/DA ratio on one
/// adversary schedule per theorem, at fixed grid corners. The inequality
/// tests above catch bound violations; these catch silent drift in either
/// the algorithms or the cost engine (a changed decision changes the
/// fourth decimal long before it breaks a bound).
#[test]
fn pinned_adversary_ratios_across_the_grid() {
    fn measured(algo: &str, schedule: &Schedule, model: CostModel) -> f64 {
        let opt = opt_cost(schedule, model);
        let cost = match algo {
            "sa" => sa_cost(schedule, &model),
            _ => da_cost(schedule, &model),
        };
        cost / opt
    }
    let sc = |cc, cd| CostModel::stationary(cc, cd).unwrap();
    let mc = |cc, cd| CostModel::mobile(cc, cd).unwrap();
    let cases: Vec<(&str, &str, Schedule, CostModel, f64)> = vec![
        // Theorem 1 (SA in SC), three grid corners.
        (
            "thm1/remote_reader/cc=0.25,cd=1",
            "sa",
            remote_reader(p(2), 12),
            sc(0.25, 1.0),
            1.8947368421,
        ),
        (
            "thm1/section_1_3/cc=1,cd=1",
            "sa",
            section_1_3_example(),
            sc(1.0, 1.0),
            1.5000000000,
        ),
        (
            "thm1/rotating/cc=0.25,cd=4",
            "sa",
            rotating_reader(&[p(1), p(2), p(3)], p(0), 4),
            sc(0.25, 4.0),
            1.0071942446,
        ),
        // Theorem 2 (DA in SC, cd <= 1).
        (
            "thm2/ping_pong/cc=0.5,cd=1",
            "da",
            read_write_ping_pong(p(2), p(3), 8),
            sc(0.5, 1.0),
            1.6376811594,
        ),
        (
            "thm2/remote_reader/cc=1,cd=1",
            "da",
            remote_reader(p(2), 12),
            sc(1.0, 1.0),
            1.0000000000,
        ),
        // Theorem 3 (DA in SC, cd > 1 tightens the factor to 2 + cc).
        (
            "thm3/ping_pong/cc=0.5,cd=1.5",
            "da",
            read_write_ping_pong(p(2), p(3), 8),
            sc(0.5, 1.5),
            1.6538461538,
        ),
        (
            "thm3/bursty_short/cc=1,cd=4",
            "da",
            bursty_reader(p(2), p(3), 1, 8),
            sc(1.0, 4.0),
            1.7936507937,
        ),
        // Theorem 4 (DA in MC).
        (
            "thm4/rotating/cc=0.25,cd=1",
            "da",
            rotating_reader(&[p(1), p(2), p(3)], p(0), 4),
            mc(0.25, 1.0),
            1.2307692308,
        ),
        (
            "thm4/bursty_long/cc=1,cd=4",
            "da",
            bursty_reader(p(2), p(3), 6, 3),
            mc(1.0, 4.0),
            1.6315789474,
        ),
        // Proposition 2 tightness witness.
        (
            "prop2/cycle/cc=0.01,cd=0.01",
            "da",
            da_prop2_cycle(40),
            sc(0.01, 0.01),
            1.5097941670,
        ),
    ];
    for (name, algo, schedule, model, expected) in cases {
        let got = measured(algo, &schedule, model);
        assert!(
            (got - expected).abs() < 1e-9,
            "{name}: pinned ratio drifted — expected {expected}, got {got:.10}"
        );
        // Every pin must also sit inside its theorem's bound where one
        // exists, tying the regression back to the paper.
        if let Some(bound) = match algo {
            "sa" => model.sa_bound(),
            _ => model.da_bound(),
        } {
            assert!(
                got <= bound + EPS,
                "{name}: pin {got} exceeds bound {bound}"
            );
        }
    }
}

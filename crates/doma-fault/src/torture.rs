//! The randomized torture driver: seeded fault plans crossed with the
//! workload generators, run against the full tournament roster (SA, DA
//! and the five adaptive allocators) and the failover path with
//! [`InvariantChecker`] auditing every step.
//!
//! Every random decision of an episode — cluster size, scheme membership,
//! workload shape, crash victims, partition sides, drop/delay/duplicate
//! rules — is derived from one `u64` seed via the testkit's xoshiro
//! generator, so an episode is fully reproduced by re-running with the
//! same seed. On an invariant violation, [`TortureFailure`] carries the
//! one-line `DOMA_FAULT_SEED=…` replay recipe **plus the observability
//! evidence**: the metric delta since the last passing audit and the
//! tail of the shared event log (message trace, engine lifecycle and
//! protocol spans interleaved), so the report shows *what the cluster
//! was doing* when the invariant broke, not just that it broke.
//!
//! Three fault classes, deliberately disjoint so every episode's checks
//! stay sound (the comments in [`run_episode`] spell out why each phase
//! is safe to assert over):
//!
//! * [`FaultClass::Crash`] — crash/recover churn under normal service,
//!   bounded by the paper's `< t` simultaneous-failure assumption (and by
//!   a cluster minority, so quorum fallback stays live).
//! * [`FaultClass::Partition`] — the cluster is degraded to quorum mode
//!   first (normal SA/DA is not loss-tolerant by design), then a minority
//!   side is cut off for a window, then the partition heals.
//! * [`FaultClass::Drop`] — probabilistic drop/delay/duplicate/jitter
//!   rules over random links and message kinds, again under quorum mode.

use crate::invariants::{InvariantChecker, Regime, Violation};
use doma_core::{ProcessorId, Request};
use doma_protocol::failover::FailoverDriver;
use doma_protocol::{BugSwitches, ProtocolSim};
use doma_sim::{FaultAction, FaultPlan, FaultRule, FaultStats, LinkFilter, MsgKind, NodeId};
use doma_storage::Version;
use doma_testkit::replay::{replay_line, FaultSeeds};
use doma_testkit::rng::{Rng, TestRng};
use doma_workload::{HotspotWorkload, ScheduleGen, UniformWorkload, ZipfWorkload};
use std::fmt;

/// Event-log bound for an episode: large enough that the failure tail
/// shows the choreography leading up to a violation, small enough that a
/// sweep of episodes stays cheap. Overflow is counted, never silent.
const EPISODE_EVENT_CAPACITY: usize = 512;

/// How many trailing event records a failure report carries.
const EVENT_TAIL_LEN: usize = 12;

/// Which protocol an episode exercises — the full tournament roster: the
/// paper's SA/DA plus the five adaptive allocators run as plan oracles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Static allocation (read-one-write-all over a fixed `Q`).
    Sa,
    /// Dynamic allocation (core `F`, floating member).
    Da,
    /// Sliding-window convergent baseline (promoted).
    Convergent,
    /// Write-invalidate cache baseline (promoted).
    WriteInvalidate,
    /// Cost-oblivious reallocation contender.
    CostOblivious,
    /// Multiple-mobile-resource mirror contender.
    MobileMirror,
    /// Clustering-based fragment allocation contender.
    Clustered,
}

impl Algo {
    /// Every torture-matrix algorithm, in display order.
    pub const ALL: [Algo; 7] = [
        Algo::Sa,
        Algo::Da,
        Algo::Convergent,
        Algo::WriteInvalidate,
        Algo::CostOblivious,
        Algo::MobileMirror,
        Algo::Clustered,
    ];
}

impl fmt::Display for Algo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Algo::Sa => "sa",
            Algo::Da => "da",
            Algo::Convergent => "convergent",
            Algo::WriteInvalidate => "write-invalidate",
            Algo::CostOblivious => "cost-oblivious",
            Algo::MobileMirror => "mobile-mirror",
            Algo::Clustered => "clustered",
        })
    }
}

/// The family of faults an episode injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Crash/recover churn under normal-mode service.
    Crash,
    /// A minority network partition under quorum mode.
    Partition,
    /// Probabilistic message drop/delay/duplicate/jitter under quorum
    /// mode.
    Drop,
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultClass::Crash => "crash",
            FaultClass::Partition => "partition",
            FaultClass::Drop => "drop",
        })
    }
}

/// Summary of one surviving episode.
#[derive(Debug, Clone)]
pub struct EpisodeOutcome {
    /// Cluster size.
    pub n: usize,
    /// Requests actually issued (crashed issuers are skipped).
    pub requests_issued: usize,
    /// Reads that completed across the cluster.
    pub reads_completed: u64,
    /// Faults the network injected (zero for [`FaultClass::Crash`]).
    pub faults: FaultStats,
    /// Crash events performed by the driver.
    pub crashes: usize,
}

/// An invariant violation, with everything needed to reproduce it *and*
/// the observability evidence of what the cluster was doing.
#[derive(Debug, Clone)]
pub struct TortureFailure {
    /// The episode seed.
    pub seed: u64,
    /// The matrix cell and sampled shape, e.g. `da/partition/n6`.
    pub scenario: String,
    /// The violated invariant.
    pub violation: Violation,
    /// The rendered metric delta since the last *passing* audit — the
    /// cost and lifecycle activity of exactly the step that broke.
    pub metrics_delta: String,
    /// The rendered tail of the shared event log: message deliveries,
    /// crash/recover/drop records and protocol spans, interleaved.
    pub event_tail: String,
    /// The one-line replay recipe to print.
    pub replay: String,
}

impl fmt::Display for TortureFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "torture episode {} (seed {:#x}) violated an invariant:",
            self.scenario, self.seed
        )?;
        writeln!(f, "  {}", self.violation)?;
        if !self.metrics_delta.is_empty() {
            writeln!(f, "  metric delta since the last passing audit:")?;
            for line in self.metrics_delta.lines() {
                writeln!(f, "  {line}")?;
            }
        }
        if !self.event_tail.is_empty() {
            writeln!(f, "  event-log tail:")?;
            for line in self.event_tail.lines() {
                writeln!(f, "    {line}")?;
            }
        }
        write!(f, "  {}", self.replay)
    }
}

fn trace(driver: &FailoverDriver, n: usize, what: &str) {
    if std::env::var("DOMA_FAULT_TRACE").is_err() {
        return;
    }
    let state: Vec<String> = (0..n)
        .map(|i| {
            let a = driver.sim().engine_ref().actor(NodeId(i));
            format!(
                "p{i}{}{}={:?}",
                if driver.is_crashed(ProcessorId::new(i)) {
                    "X"
                } else {
                    ""
                },
                if a.holds_valid() { "+" } else { "-" },
                a.replica_version().map(|v| v.0)
            )
        })
        .collect();
    doma_obs::console::debug_line(&format!(
        "TRACE [{what}] latest={} {}",
        driver.sim().latest_version().0,
        state.join(" ")
    ));
}

fn regime_of(driver: &FailoverDriver, n: usize) -> Regime {
    let degraded = (0..n).any(|i| {
        !driver.is_crashed(ProcessorId::new(i))
            && driver.sim().engine_ref().actor(NodeId(i)).in_quorum_mode()
    });
    if degraded {
        Regime::Degraded
    } else {
        Regime::Normal
    }
}

/// The version a just-executed write committed under normal-mode
/// guarantees: only a write that actually reached `t` valid replicas
/// raises the one-copy floor. (With crashed execution-set members a
/// normal-mode write can land on fewer replicas — the paper's guarantees
/// assume fewer than `t` failures, and the checker must not assert more
/// than the protocol promises.)
fn committed_write(driver: &FailoverDriver, req: Request, t: usize) -> Option<Version> {
    if req.is_read() {
        return None;
    }
    let v = driver.sim().latest_version();
    (driver.sim().holders_of(v).len() >= t).then_some(v)
}

/// Shared audit state: the episode identity the failure report carries,
/// plus the observability checkpoint that turns a violation into a
/// metric *delta* (the activity of exactly the failing step, not
/// since-construction totals).
struct AuditCtx {
    obs: doma_obs::Obs,
    /// Registry snapshot at the last passing audit — the delta baseline.
    last: doma_obs::MetricsSnapshot,
    n: usize,
    seed: u64,
    scenario: String,
}

impl AuditCtx {
    fn failure(&self, violation: Violation) -> TortureFailure {
        let delta = self.obs.metrics().snapshot().delta(&self.last);
        let tail: Vec<String> = self
            .obs
            .events()
            .tail(EVENT_TAIL_LEN)
            .iter()
            .map(|e| e.to_string())
            .collect();
        TortureFailure {
            seed: self.seed,
            scenario: self.scenario.clone(),
            violation,
            metrics_delta: delta.to_string(),
            event_tail: tail.join("\n"),
            replay: replay_line(self.seed, &self.scenario, "fault_torture"),
        }
    }
}

fn audit(
    checker: &mut InvariantChecker,
    driver: &mut FailoverDriver,
    ctx: &mut AuditCtx,
    wrote: Option<Version>,
    context: &str,
) -> Result<(), Box<TortureFailure>> {
    let regime = regime_of(driver, ctx.n);
    // Attribute any I/O performed outside message dispatch before
    // snapshotting, so the delta is exact.
    driver.sim_mut().obs_flush();
    match checker.check(driver, regime, wrote, context) {
        Ok(()) => {
            ctx.last = ctx.obs.metrics().snapshot();
            Ok(())
        }
        Err(violation) => Err(Box::new(ctx.failure(violation))),
    }
}

/// Runs one fully seeded episode: samples a cluster, a workload and a
/// fault schedule from `seed`, executes them under the invariant checker,
/// and returns either the episode summary or the first violation.
pub fn run_episode(
    seed: u64,
    algo: Algo,
    class: FaultClass,
) -> Result<EpisodeOutcome, Box<TortureFailure>> {
    run_episode_observed(seed, algo, class, BugSwitches::default()).0
}

/// [`run_episode`] with reverted-fix switches installed (regression
/// tests only — see [`doma_protocol::BugSwitches`]): forces the
/// violations the hardening fixes prevent, exercising the failure
/// report's metric delta and event-log tail.
#[doc(hidden)]
pub fn run_episode_with_bugs(
    seed: u64,
    algo: Algo,
    class: FaultClass,
    bugs: BugSwitches,
) -> Result<EpisodeOutcome, Box<TortureFailure>> {
    run_episode_observed(seed, algo, class, bugs).0
}

/// Runs one episode (violation or not) and returns the final
/// observability snapshot as stable JSON — same seed ⇒ byte-identical
/// output, the determinism contract `doma-obs` guarantees and the
/// root-level property test asserts.
pub fn episode_obs_json(seed: u64, algo: Algo, class: FaultClass) -> String {
    let (_, obs) = run_episode_observed(seed, algo, class, BugSwitches::default());
    obs.snapshot_json()
}

fn run_episode_observed(
    seed: u64,
    algo: Algo,
    class: FaultClass,
    bugs: BugSwitches,
) -> (Result<EpisodeOutcome, Box<TortureFailure>>, doma_obs::Obs) {
    let mut rng = TestRng::seed_from_u64(seed);
    let n = rng.gen_range(4usize..9);
    let mut members: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut members);
    let sim = match algo {
        Algo::Sa => {
            let k = rng.gen_range(2usize..4);
            ProtocolSim::new_sa(n, members[..k].iter().copied().collect())
        }
        Algo::Da => {
            let k = rng.gen_range(1usize..3);
            ProtocolSim::new_da(
                n,
                members[..k].iter().copied().collect(),
                ProcessorId::new(members[k]),
            )
        }
        adaptive => {
            let k = rng.gen_range(2usize..4);
            let initial: doma_core::ProcSet = members[..k].iter().copied().collect();
            let oracle: Box<dyn doma_protocol::PlanOracle> = match adaptive {
                Algo::Convergent => {
                    let window = rng.gen_range(4usize..12);
                    let period = rng.gen_range(2usize..8);
                    Box::new(
                        doma_algorithms::SlidingWindowConvergent::new(
                            n, 2, initial, window, period,
                        )
                        .expect("sampled configuration is valid"),
                    )
                }
                Algo::WriteInvalidate => Box::new(
                    doma_algorithms::WriteInvalidateCache::new(initial)
                        .expect("sampled configuration is valid"),
                ),
                Algo::CostOblivious => {
                    let threshold = rng.gen_range(1u32..4);
                    Box::new(
                        doma_algorithms::CostOblivious::new(n, 2, initial, threshold)
                            .expect("sampled configuration is valid"),
                    )
                }
                Algo::MobileMirror => Box::new(
                    doma_algorithms::MobileMirror::new(n, 2, initial)
                        .expect("sampled configuration is valid"),
                ),
                _ => Box::new(
                    doma_algorithms::ClusteredAllocation::new(n, 2, initial)
                        .expect("sampled configuration is valid"),
                ),
            };
            ProtocolSim::new_adaptive(n, oracle)
        }
    }
    .expect("sampled configuration is valid");
    let t = sim.config().t();
    let scenario = format!("{algo}/{class}/n{n}");
    let mut driver = FailoverDriver::new(sim, n);
    if bugs != BugSwitches::default() {
        driver.sim_mut().set_bug_switches(bugs);
    }
    let obs = driver.sim_mut().attach_obs(EPISODE_EVENT_CAPACITY);
    // The message trace shares the bundle's event log, so the failure
    // tail interleaves deliveries with lifecycle events and spans.
    let _trace_handle = driver.sim_mut().attach_tracer_on(obs.events().clone());
    let mut checker = InvariantChecker::new(driver.sim(), n);
    let mut ctx = AuditCtx {
        obs: obs.clone(),
        last: obs.metrics().snapshot(),
        n,
        seed,
        scenario,
    };

    let len = rng.gen_range(20usize..41);
    let wseed = rng.next_u64();
    let read_fraction = rng.gen_range(0.4f64..0.9);
    let schedule = match rng.gen_range(0u32..3) {
        0 => UniformWorkload::new(n, read_fraction)
            .expect("valid workload")
            .generate(len, wseed),
        1 => ZipfWorkload::new(n, 0.8, read_fraction)
            .expect("valid workload")
            .generate(len, wseed),
        _ => HotspotWorkload::new(n, 8, 0.85)
            .expect("valid workload")
            .generate(len, wseed),
    };
    let requests: Vec<Request> = schedule.requests().to_vec();

    let result = drive_episode(
        &mut rng,
        &mut driver,
        &mut checker,
        &mut ctx,
        &requests,
        t,
        class,
    );
    // Attribute any trailing out-of-dispatch I/O before the caller
    // snapshots the bundle.
    driver.sim_mut().obs_flush();
    (result, obs)
}

fn drive_episode(
    rng: &mut TestRng,
    driver: &mut FailoverDriver,
    checker: &mut InvariantChecker,
    ctx: &mut AuditCtx,
    requests: &[Request],
    t: usize,
    class: FaultClass,
) -> Result<EpisodeOutcome, Box<TortureFailure>> {
    let n = ctx.n;
    let mut issued = 0usize;
    let mut crashes = 0usize;
    let mut faults = FaultStats::default();

    match class {
        FaultClass::Crash => {
            // The paper assumes fewer than t simultaneous failures;
            // quorum fallback additionally needs a live majority. For
            // t = 1 (write-invalidate) that assumption admits no crashes
            // at all — the sole replica is the availability guarantee —
            // so the crash phase degenerates to plain execution.
            let max_down = (t - 1).min((n - 1) / 2);
            for (i, req) in requests.iter().enumerate() {
                let down: Vec<usize> = (0..n)
                    .filter(|&j| driver.is_crashed(ProcessorId::new(j)))
                    .collect();
                if down.len() < max_down && rng.gen_bool(0.25) {
                    let up: Vec<usize> = (0..n)
                        .filter(|&j| !driver.is_crashed(ProcessorId::new(j)))
                        .collect();
                    let victim = *rng.choose(&up).expect("a node is up");
                    driver.crash(ProcessorId::new(victim));
                    crashes += 1;
                    audit(
                        checker,
                        driver,
                        ctx,
                        None,
                        &format!("crash p{victim} before req {i}"),
                    )?;
                    trace(driver, n, &format!("crash p{victim} before req {i}"));
                } else if !down.is_empty() && rng.gen_bool(0.3) {
                    let back = *rng.choose(&down).expect("a node is down");
                    driver.recover(ProcessorId::new(back));
                    audit(
                        checker,
                        driver,
                        ctx,
                        None,
                        &format!("recover p{back} before req {i}"),
                    )?;
                    trace(driver, n, &format!("recover p{back} before req {i}"));
                }
                if driver.is_crashed(req.issuer) {
                    continue;
                }
                driver.execute_request(*req).expect("request executes");
                issued += 1;
                let wrote = committed_write(driver, *req, t);
                audit(checker, driver, ctx, wrote, &format!("req {i}: {req}"))?;
                trace(driver, n, &format!("req {i}: {req} wrote={wrote:?}"));
            }
            for j in 0..n {
                if driver.is_crashed(ProcessorId::new(j)) {
                    driver.recover(ProcessorId::new(j));
                    audit(checker, driver, ctx, None, &format!("final recover p{j}"))?;
                }
            }
        }
        FaultClass::Partition | FaultClass::Drop => {
            // Healthy prefix: some allocation churn before the faults.
            let prefix = requests.len() / 4;
            for (i, req) in requests[..prefix].iter().enumerate() {
                driver.execute_request(*req).expect("request executes");
                issued += 1;
                let wrote = committed_write(driver, *req, t);
                audit(checker, driver, ctx, wrote, &format!("req {i}: {req}"))?;
            }
            // Normal SA/DA is not loss-tolerant by design: degrade to
            // quorum mode BEFORE the network turns hostile, so the
            // mode-change broadcast and its missing-writes push are not
            // themselves eaten by the fault plan.
            driver.set_quorum_mode(true);
            audit(checker, driver, ctx, None, "enter quorum mode")?;
            let plan = match class {
                FaultClass::Partition => {
                    // Cut off a strict minority so the majority side can
                    // still assemble read and write quorums.
                    let m = rng.gen_range(1usize..(n - 1) / 2 + 1);
                    let mut pool: Vec<usize> = (0..n).collect();
                    rng.shuffle(&mut pool);
                    FaultPlan::new(rng.next_u64()).partition(0, u64::MAX, pool[..m].to_vec())
                }
                _ => {
                    let mut plan = FaultPlan::new(rng.next_u64());
                    for _ in 0..rng.gen_range(1usize..4) {
                        let filter = match rng.gen_range(0u32..3) {
                            0 => LinkFilter::any(),
                            1 => LinkFilter::link(
                                NodeId(rng.gen_range(0usize..n)),
                                NodeId(rng.gen_range(0usize..n)),
                            ),
                            _ => LinkFilter::any().of_kind(if rng.gen_bool(0.5) {
                                MsgKind::Control
                            } else {
                                MsgKind::Data
                            }),
                        };
                        let action = match rng.gen_range(0u32..4) {
                            0 => FaultAction::Drop,
                            1 => FaultAction::Delay(rng.gen_range(1u64..6)),
                            2 => FaultAction::Duplicate(rng.gen_range(1u64..4)),
                            _ => FaultAction::Jitter {
                                max: rng.gen_range(1u64..5),
                            },
                        };
                        plan = plan.rule(
                            FaultRule::always(filter, action)
                                .with_probability(rng.gen_range(0.05f64..0.5)),
                        );
                    }
                    plan
                }
            };
            driver.sim_mut().engine_mut().install_faults(plan);
            let hostile_end = prefix + (requests.len() - prefix) * 2 / 3;
            for (i, req) in requests[prefix..hostile_end].iter().enumerate() {
                driver.execute_request(*req).expect("request executes");
                issued += 1;
                // Quorum mode: the floor moves on quorum evidence only.
                audit(
                    checker,
                    driver,
                    ctx,
                    None,
                    &format!("hostile req {i}: {req}"),
                )?;
            }
            faults = driver.sim_mut().engine_mut().clear_faults();
            driver.heal();
            audit(checker, driver, ctx, None, "heal")?;
            for (i, req) in requests[hostile_end..].iter().enumerate() {
                driver.execute_request(*req).expect("request executes");
                issued += 1;
                let wrote = committed_write(driver, *req, t);
                audit(
                    checker,
                    driver,
                    ctx,
                    wrote,
                    &format!("post-heal req {i}: {req}"),
                )?;
            }
        }
    }

    Ok(EpisodeOutcome {
        n,
        requests_issued: issued,
        reads_completed: driver.sim().report().reads_completed,
        faults,
        crashes,
    })
}

/// Runs the seed sweep (or single replay) configured in the environment —
/// see [`FaultSeeds::from_env`] — for one matrix cell. Stops at the first
/// violation.
pub fn run_sweep(
    algo: Algo,
    class: FaultClass,
) -> Result<Vec<EpisodeOutcome>, Box<TortureFailure>> {
    FaultSeeds::from_env()
        .seeds()
        .into_iter()
        .map(|seed| run_episode(seed, algo, class))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episodes_are_deterministic() {
        let a = run_episode(0x5EED, Algo::Da, FaultClass::Drop).expect("episode holds");
        let b = run_episode(0x5EED, Algo::Da, FaultClass::Drop).expect("episode holds");
        assert_eq!(a.n, b.n);
        assert_eq!(a.requests_issued, b.requests_issued);
        assert_eq!(a.reads_completed, b.reads_completed);
        assert_eq!(a.faults, b.faults);
    }

    #[test]
    fn a_few_episodes_of_every_class_hold() {
        let mut seed = 0u64;
        for algo in Algo::ALL {
            for class in [FaultClass::Crash, FaultClass::Partition, FaultClass::Drop] {
                seed += 1;
                let out = run_episode(seed, algo, class).unwrap_or_else(|f| panic!("{f}"));
                assert!(out.requests_issued > 0, "{algo}/{class} issued nothing");
            }
        }
    }

    #[test]
    fn failure_display_carries_the_replay_line() {
        let failure = TortureFailure {
            seed: 0xBEEF,
            scenario: "da/drop/n5".into(),
            violation: Violation::AvailabilityBelowT {
                holders: 1,
                t: 2,
                context: "req 3".into(),
            },
            metrics_delta: String::new(),
            event_tail: String::new(),
            replay: replay_line(0xBEEF, "da/drop/n5", "fault_torture"),
        };
        let text = failure.to_string();
        assert!(text.contains("DOMA_FAULT_SEED=0xbeef"), "{text}");
        assert!(text.contains("t-availability"), "{text}");
        // Empty observability sections render no headers.
        assert!(!text.contains("metric delta"), "{text}");
        assert!(!text.contains("event-log tail"), "{text}");
    }

    #[test]
    fn episode_obs_json_is_deterministic_and_shaped() {
        let a = episode_obs_json(0x0B5, Algo::Da, FaultClass::Crash);
        let b = episode_obs_json(0x0B5, Algo::Da, FaultClass::Crash);
        assert_eq!(a, b, "same seed must produce byte-identical obs JSON");
        assert!(a.contains("\"dropped_events\""), "{a}");
        assert!(a.contains("\"protocol\""), "{a}");
        assert!(a.contains("\"sim.trace\""), "{a}");
    }
}

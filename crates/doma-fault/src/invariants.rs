//! The invariant checker: after every step of a fault schedule, asserts
//! the paper's safety properties on the live cluster state.
//!
//! Three families of invariants (ISSUE/DESIGN mapping):
//!
//! * **t-availability** (§3.1): in normal mode the valid-replica set of
//!   the object never silently drops below `t` — stable storage of
//!   crashed processors counts, because their replicas survive the crash
//!   and are replayed from the redo log on recovery.
//! * **One-copy semantics** (§2, through quorum mode): every *completed*
//!   read returns a version at least as new as the committed floor at the
//!   time the read was issued. The floor rises with normal-mode writes
//!   (committed by the protocol's own replication) and, in degraded mode,
//!   with quorum evidence — the highest version validly held by a
//!   majority of stores. Blocked reads (server crashed, quorum
//!   unreachable) never complete and are therefore never audited: safety,
//!   not liveness, is checked.
//! * **Cost conservation**: `SimReport.cost` tallies are component-wise
//!   non-decreasing, and the pre-failure snapshot taken by
//!   [`FailoverDriver`] never exceeds the running totals (failure
//!   overhead is attributed separately, per that type's contract).
//!
//! Two low-level guards back these up: per-node store versions are
//! monotone (a delayed or duplicated message must never regress a
//! replica), and no node records a protocol error.

use doma_core::{CostVector, DomaError};
use doma_protocol::failover::FailoverDriver;
use doma_protocol::ProtocolSim;
use doma_sim::NodeId;
use doma_storage::Version;
use std::fmt;

/// Which service regime the cluster is believed to be in — decides which
/// invariants are meaningful (normal-mode DA/SA is not tolerant of
/// message loss by design, so t-availability is only asserted when the
/// only faults are crashes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Normal SA/DA service; faults are limited to crash/recover.
    Normal,
    /// Quorum (failure) mode, possibly with a lossy network: only
    /// quorum-established guarantees are asserted.
    Degraded,
}

/// One detected invariant violation. `context` is the step description
/// the driver passed to [`InvariantChecker::check`].
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A cost tally decreased.
    CostRegression {
        /// Tallies at the previous check.
        before: CostVector,
        /// Tallies now.
        after: CostVector,
        /// Step description.
        context: String,
    },
    /// The pre-failure cost snapshot exceeds the running totals.
    AttributionInverted {
        /// The snapshot [`FailoverDriver::normal_mode_cost`] reported.
        normal: CostVector,
        /// Tallies now.
        total: CostVector,
        /// Step description.
        context: String,
    },
    /// Normal mode, yet fewer than `t` valid replicas exist.
    AvailabilityBelowT {
        /// Valid holders observed (crashed nodes' stable stores count).
        holders: usize,
        /// The configured threshold.
        t: usize,
        /// Step description.
        context: String,
    },
    /// A completed read returned a version older than the committed floor.
    StaleRead {
        /// The reading node.
        node: usize,
        /// The version the read returned (`None` = no data assembled).
        version: Option<Version>,
        /// The committed floor the read should have observed.
        floor: Version,
        /// Step description.
        context: String,
    },
    /// A node's local replica went backwards in version.
    VersionRegression {
        /// The node.
        node: usize,
        /// Version at the previous check.
        before: Version,
        /// Version now.
        after: Version,
        /// Step description.
        context: String,
    },
    /// A node recorded a protocol error (e.g. a misrouted object).
    ProtocolError {
        /// The node.
        node: usize,
        /// The recorded error.
        error: DomaError,
        /// Step description.
        context: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::CostRegression {
                before,
                after,
                context,
            } => write!(
                f,
                "[{context}] cost tallies regressed: {before:?} -> {after:?}"
            ),
            Violation::AttributionInverted {
                normal,
                total,
                context,
            } => write!(
                f,
                "[{context}] normal-mode snapshot {normal:?} exceeds running total {total:?}"
            ),
            Violation::AvailabilityBelowT {
                holders,
                t,
                context,
            } => write!(
                f,
                "[{context}] t-availability violated: {holders} valid replica(s), need t={t}"
            ),
            Violation::StaleRead {
                node,
                version,
                floor,
                context,
            } => write!(
                f,
                "[{context}] one-copy violated: node {node} read {version:?}, \
                 committed floor is {floor:?}"
            ),
            Violation::VersionRegression {
                node,
                before,
                after,
                context,
            } => write!(
                f,
                "[{context}] node {node} replica regressed {before:?} -> {after:?}"
            ),
            Violation::ProtocolError {
                node,
                error,
                context,
            } => write!(
                f,
                "[{context}] node {node} recorded protocol error: {error}"
            ),
        }
    }
}

/// Stateful auditor over a [`FailoverDriver`]-wrapped cluster: call
/// [`InvariantChecker::check`] after every step (request executed, fault
/// injected, crash, heal) and it compares the cluster against what the
/// previous steps committed. Single-object clusters (object 0) only — the
/// shape every torture scenario uses.
///
/// `Clone` so a model checker can carry an independent copy of the
/// auditor down each branch of its state-space search (the checker state
/// — floor, cursors, last versions — is part of the explored state).
#[derive(Debug, Clone)]
pub struct InvariantChecker {
    n: usize,
    t: usize,
    quorum: usize,
    last_cost: CostVector,
    /// Committed floor: every read completing from now on must return at
    /// least this version.
    floor: Version,
    /// Last observed replica version per node (valid or stale).
    node_versions: Vec<Option<Version>>,
    /// Completed reads already audited, per node.
    read_cursor: Vec<usize>,
    /// Floors captured when a read was *issued* (per node, FIFO). A model
    /// checker stepping individual deliveries registers each read via
    /// [`InvariantChecker::note_read_started`]; the audit then holds the
    /// read to the floor it observed at start rather than the current one,
    /// which is the strongest sound bound when reads overlap in-flight
    /// quorum writes (a read issued before a write quorum assembled may
    /// legally return the old version). Empty when driven at quiescence
    /// (the torture-harness path), where both floors coincide.
    read_start_floors: Vec<Vec<Version>>,
}

impl InvariantChecker {
    /// Captures the initial state of a freshly built cluster.
    pub fn new(sim: &ProtocolSim, n: usize) -> Self {
        let t = sim.config().t();
        let node_versions = (0..n)
            .map(|i| sim.engine_ref().actor(NodeId(i)).replica_version())
            .collect();
        InvariantChecker {
            n,
            t,
            quorum: n / 2 + 1,
            last_cost: sim.report().cost,
            floor: Version::INITIAL,
            node_versions,
            read_cursor: vec![0; n],
            read_start_floors: vec![Vec::new(); n],
        }
    }

    /// Records that `node` just issued a read: the read, once it
    /// completes, must return at least the *current* committed floor.
    /// Mid-flight model checking only — callers driving the cluster to
    /// quiescence between requests never need this.
    pub fn note_read_started(&mut self, node: usize) {
        if node < self.n {
            self.read_start_floors[node].push(self.floor);
        }
    }

    /// The current committed floor (what the next completed read must at
    /// least return).
    pub fn committed_floor(&self) -> Version {
        self.floor
    }

    /// A hash of the auditor's own state (floor, audited-read cursors,
    /// last seen versions and tallies). A model checker must fold this
    /// into its state fingerprints: two identical cluster states under
    /// *different* audit states can still diverge on a future check.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.floor.hash(&mut h);
        self.node_versions.hash(&mut h);
        self.read_cursor.hash(&mut h);
        self.read_start_floors.hash(&mut h);
        self.last_cost.control.hash(&mut h);
        self.last_cost.data.hash(&mut h);
        self.last_cost.io.hash(&mut h);
        h.finish()
    }

    /// Audits the cluster after one step.
    ///
    /// `wrote` is the version a write committed during this step under
    /// *normal-mode* guarantees (ignored in [`Regime::Degraded`], where
    /// only quorum evidence raises the floor). Returns the first
    /// violation found, if any.
    pub fn check(
        &mut self,
        driver: &FailoverDriver,
        regime: Regime,
        wrote: Option<Version>,
        context: &str,
    ) -> Result<(), Violation> {
        self.check_sim(
            driver.sim(),
            driver.normal_mode_cost(),
            regime,
            wrote,
            context,
        )
    }

    /// Audits a bare [`ProtocolSim`] after one step — the
    /// [`InvariantChecker::check`] body without the [`FailoverDriver`]
    /// wrapper, so a model checker stepping the engine delivery-by-
    /// delivery can reuse the same oracle. `normal_cost` is the
    /// pre-failure snapshot when one exists (drives the attribution
    /// invariant); pass `None` for failure-free exploration.
    pub fn check_sim(
        &mut self,
        sim: &ProtocolSim,
        normal_cost: Option<CostVector>,
        regime: Regime,
        wrote: Option<Version>,
        context: &str,
    ) -> Result<(), Violation> {
        // A tripped event budget means the cluster never quiesced: the
        // state below would be a lie, and the run is a protocol error.
        if sim.engine_ref().budget_exhausted() {
            return Err(Violation::ProtocolError {
                node: 0,
                error: DomaError::EventBudgetExceeded {
                    dispatched: sim.engine_ref().dispatched(),
                },
                context: context.into(),
            });
        }
        let cost = sim.report().cost;

        // Cost conservation: tallies only grow.
        if cost.control < self.last_cost.control
            || cost.data < self.last_cost.data
            || cost.io < self.last_cost.io
        {
            return Err(Violation::CostRegression {
                before: self.last_cost,
                after: cost,
                context: context.into(),
            });
        }
        self.last_cost = cost;

        // Failure-overhead attribution: the pre-failure snapshot is a
        // lower bound of the running totals.
        if let Some(normal) = normal_cost {
            if normal.control > cost.control || normal.data > cost.data || normal.io > cost.io {
                return Err(Violation::AttributionInverted {
                    normal,
                    total: cost,
                    context: context.into(),
                });
            }
        }

        // Per-node guards: no protocol errors, no version regression.
        for i in 0..self.n {
            let node = sim.engine_ref().actor(NodeId(i));
            if let Some(error) = node.protocol_errors().first() {
                return Err(Violation::ProtocolError {
                    node: i,
                    error: error.clone(),
                    context: context.into(),
                });
            }
            let version = node.replica_version();
            if let (Some(before), Some(after)) = (self.node_versions[i], version) {
                if after < before {
                    return Err(Violation::VersionRegression {
                        node: i,
                        before,
                        after,
                        context: context.into(),
                    });
                }
            }
            if version.is_some() {
                self.node_versions[i] = version;
            }
        }

        // t-availability (normal mode only): valid replicas — including
        // crashed nodes' stable stores — never drop below t.
        if regime == Regime::Normal {
            let holders = (0..self.n)
                .filter(|&i| sim.engine_ref().actor(NodeId(i)).holds_valid())
                .count();
            if holders < self.t {
                return Err(Violation::AvailabilityBelowT {
                    holders,
                    t: self.t,
                    context: context.into(),
                });
            }
        }

        // One-copy semantics: audit reads completed since the last check.
        // Each read is held to the floor captured when it was issued
        // (model-checker path, [`InvariantChecker::note_read_started`]) or,
        // absent that, the floor as it stood *before* this step.
        for i in 0..self.n {
            let reads = sim.engine_ref().actor(NodeId(i)).completed_reads();
            for read in &reads[self.read_cursor[i]..] {
                let expected = if self.read_start_floors[i].is_empty() {
                    self.floor
                } else {
                    // Reads complete FIFO per node, matching issue order.
                    self.read_start_floors[i].remove(0)
                };
                let got = read.version.unwrap_or(Version::INITIAL);
                if got < expected {
                    return Err(Violation::StaleRead {
                        node: i,
                        version: read.version,
                        floor: expected,
                        context: context.into(),
                    });
                }
            }
            self.read_cursor[i] = reads.len();
        }

        // Raise the committed floor.
        match regime {
            Regime::Normal => {
                if let Some(v) = wrote {
                    if v > self.floor {
                        self.floor = v;
                    }
                }
            }
            Regime::Degraded => {
                // Quorum evidence: the highest version validly held by a
                // majority of stores (crashed stores count — any read
                // majority still intersects the holder set, see module
                // docs). Thanks to the missing-writes push on mode entry
                // and the store monotonicity guard, this never shrinks.
                let mut versions: Vec<Version> = (0..self.n)
                    .filter_map(|i| {
                        let node = sim.engine_ref().actor(NodeId(i));
                        if node.holds_valid() {
                            node.replica_version()
                        } else {
                            None
                        }
                    })
                    .collect();
                versions.sort_unstable_by(|a, b| b.cmp(a));
                if versions.len() >= self.quorum {
                    let candidate = versions[self.quorum - 1];
                    if candidate > self.floor {
                        self.floor = candidate;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doma_core::{ProcSet, ProcessorId, Request};

    fn da_driver(n: usize) -> FailoverDriver {
        let sim =
            ProtocolSim::new_da(n, ProcSet::from_iter([0usize]), ProcessorId::new(1)).unwrap();
        FailoverDriver::new(sim, n)
    }

    #[test]
    fn healthy_run_passes_every_check() {
        let mut d = da_driver(5);
        let mut checker = InvariantChecker::new(d.sim(), 5);
        for (i, req) in [
            Request::read(3usize),
            Request::write(2usize),
            Request::read(4usize),
            Request::write(0usize),
            Request::read(2usize),
        ]
        .into_iter()
        .enumerate()
        {
            d.execute_request(req).unwrap();
            let wrote = (!req.is_read()).then(|| d.sim().latest_version());
            checker
                .check(&d, Regime::Normal, wrote, &format!("req {i}"))
                .unwrap();
        }
        assert_eq!(checker.committed_floor(), Version(2));
    }

    #[test]
    fn floor_rises_with_quorum_evidence_in_degraded_mode() {
        let mut d = da_driver(5);
        let mut checker = InvariantChecker::new(d.sim(), 5);
        d.crash(ProcessorId::new(0)); // core down -> quorum mode
        checker.check(&d, Regime::Degraded, None, "crash").unwrap();
        d.execute_request(Request::write(2usize)).unwrap();
        checker.check(&d, Regime::Degraded, None, "w2").unwrap();
        assert_eq!(
            checker.committed_floor(),
            d.sim().latest_version(),
            "quorum write must commit"
        );
        d.execute_request(Request::read(4usize)).unwrap();
        checker.check(&d, Regime::Degraded, None, "r4").unwrap();
    }

    #[test]
    fn failover_and_heal_keep_invariants() {
        let mut d = da_driver(5);
        let mut checker = InvariantChecker::new(d.sim(), 5);
        d.execute_request(Request::write(3usize)).unwrap();
        let v = d.sim().latest_version();
        checker.check(&d, Regime::Normal, Some(v), "w3").unwrap();
        d.crash(ProcessorId::new(0));
        checker
            .check(&d, Regime::Degraded, None, "crash 0")
            .unwrap();
        // The missing-writes push on mode entry keeps v quorum-visible.
        d.execute_request(Request::read(4usize)).unwrap();
        checker.check(&d, Regime::Degraded, None, "r4").unwrap();
        d.heal();
        checker.check(&d, Regime::Normal, None, "heal").unwrap();
        d.execute_request(Request::read(2usize)).unwrap();
        checker.check(&d, Regime::Normal, None, "r2").unwrap();
        assert!(checker.committed_floor() >= v);
    }

    #[test]
    fn stale_read_is_flagged() {
        // Manufacture a violation without touching the cluster: floor at
        // 5, then a read completing at version 1.
        let mut d = da_driver(4);
        let mut checker = InvariantChecker::new(d.sim(), 4);
        checker.floor = Version(5);
        d.execute_request(Request::read(3usize)).unwrap();
        let err = checker
            .check(&d, Regime::Normal, None, "stale")
            .unwrap_err();
        match &err {
            Violation::StaleRead { floor, .. } => assert_eq!(*floor, Version(5)),
            other => panic!("expected StaleRead, got {other}"),
        }
        assert!(err.to_string().contains("one-copy"), "{err}");
    }
}

//! Deterministic fault-injection harness for the SA/DA protocols.
//!
//! Ties together the workspace's fault machinery into a torture-testing
//! subsystem:
//!
//! * `doma-sim`'s [`doma_sim::FaultPlan`] DSL injects drops, delays,
//!   duplicates, jitter, partitions and crash schedules into the
//!   deterministic engine;
//! * [`invariants::InvariantChecker`] audits the cluster after every step
//!   for the paper's safety properties — t-availability (§3.1), one-copy
//!   read semantics, and cost-tally conservation with failure overhead
//!   attributed per the [`doma_protocol::failover::FailoverDriver`]
//!   contract;
//! * [`torture::run_episode`] generates fully seeded random episodes
//!   (cluster shape × workload × fault schedule) and replays them from a
//!   single `u64`; `DOMA_FAULT_SEED=…` reproduces any failure exactly
//!   (see [`doma_testkit::replay`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod invariants;
pub mod torture;

pub use invariants::{InvariantChecker, Regime, Violation};
pub use torture::{
    episode_obs_json, run_episode, run_episode_with_bugs, run_sweep, Algo, EpisodeOutcome,
    FaultClass, TortureFailure,
};

//! Shard worker plumbing: scoped-thread fan-out for object-sharded runs.
//!
//! Each simulator [`Engine`](crate::Engine) stays single-threaded — that
//! is what makes runs deterministic — but *independent* engines can run
//! side by side. The sharded executor in `doma-protocol` partitions a
//! multi-object catalog into K shards, builds one engine per shard, and
//! hands the per-shard inputs to [`run_shards`], which runs each worker
//! on its own scoped thread and returns the outputs in shard order.
//!
//! Determinism is preserved by construction:
//!
//! * each worker owns its inputs and shares nothing mutable — the only
//!   cross-thread traffic is moving the input in and the output out;
//! * outputs come back positionally (slot `i` belongs to shard `i`), so
//!   the merge sees the same order regardless of thread scheduling;
//! * `DOMA_SHARDS=1` (or a single input) forces the serial path, giving
//!   CI a scheduling-free fallback that must produce identical results.

use std::env;

/// The shard-count override from the `DOMA_SHARDS` environment variable,
/// if set and parseable as a positive integer. `DOMA_SHARDS=1` is the
/// CI fallback: it forces [`run_shards`] onto the serial in-thread path.
pub fn shard_override() -> Option<usize> {
    env::var("DOMA_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&k| k >= 1)
}

/// Runs `worker(shard_index, input)` over every input and returns the
/// outputs in input order.
///
/// With more than one input (and no `DOMA_SHARDS=1` override) each
/// worker runs on its own scoped thread; otherwise the workers run
/// serially on the calling thread. Both paths return positionally
/// identical results — the parallel path writes each output into its
/// own pre-allocated slot, so thread completion order cannot reorder
/// them.
pub fn run_shards<T, R, F>(inputs: Vec<T>, worker: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    if inputs.len() <= 1 || shard_override() == Some(1) {
        return inputs
            .into_iter()
            .enumerate()
            .map(|(i, input)| worker(i, input))
            .collect();
    }
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(inputs.len(), || None);
    std::thread::scope(|scope| {
        for (i, (input, slot)) in inputs.into_iter().zip(slots.iter_mut()).enumerate() {
            let worker = &worker;
            scope.spawn(move || {
                *slot = Some(worker(i, input));
            });
        }
    });
    // Every spawned thread filled its slot (scope joins them all); a
    // panicking worker propagates out of `scope` before we get here.
    slots.into_iter().flatten().collect()
}

/// Compile-time helper: `assert_send::<MyActor>()` fails to compile if
/// the type cannot move into a shard worker.
pub const fn assert_send<T: Send>() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_come_back_in_input_order() {
        let inputs: Vec<u64> = (0..8).collect();
        let out = run_shards(inputs, |i, v| {
            // Stagger completion so scheduling would reorder naive collection.
            std::thread::sleep(std::time::Duration::from_millis(8 - v));
            (i, v * 10)
        });
        assert_eq!(
            out,
            (0..8).map(|v| (v as usize, v * 10)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn single_input_runs_serially() {
        let out = run_shards(vec![41u64], |i, v| v + 1 + i as u64);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn empty_inputs_yield_empty_outputs() {
        let out: Vec<u32> = run_shards(Vec::<u32>::new(), |_, v| v);
        assert!(out.is_empty());
    }

    #[test]
    fn override_parses_positive_integers_only() {
        // Can't set the process env safely under a parallel test harness;
        // exercise the parse contract through the same code shape instead.
        let parse = |v: &str| v.trim().parse::<usize>().ok().filter(|&k| k >= 1);
        assert_eq!(parse("4"), Some(4));
        assert_eq!(parse(" 1 "), Some(1));
        assert_eq!(parse("0"), None);
        assert_eq!(parse("lots"), None);
    }
}

//! Deterministic fault injection: a declarative plan of message faults
//! (drop / delay / duplicate / jitter-reorder), network partitions and
//! crash events, executed by the [`crate::Engine`] at delivery-scheduling
//! time.
//!
//! Everything is reproducible by construction: probabilistic rules carry
//! their own SplitMix64 stream (seeded from the plan seed and the rule
//! index), so the same [`FaultPlan`] applied to the same simulation always
//! injects the same faults at the same virtual instants. That is what
//! makes the `DOMA_FAULT_SEED=…` torture-test replay recipes exact.
//!
//! Semantics (all checked against the paper's model):
//!
//! * Faults act on *network* messages only. Local client injections
//!   ([`crate::Engine::inject`]) are co-located with their node and cannot
//!   be lost.
//! * The sender has already paid for a transmission when a fault eats it,
//!   so send tallies ([`crate::NetStats`]) are unaffected; injected drops
//!   are counted separately in [`FaultStats`].
//! * Partitions drop messages *crossing* the cut, in both directions;
//!   intra-component traffic is untouched.

use crate::{MsgKind, NodeId};
use doma_testkit::rng::splitmix64;
use std::fmt;

/// What a matching [`FaultRule`] does to a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The message vanishes in transit.
    Drop,
    /// Delivery is postponed by this many extra ticks.
    Delay(u64),
    /// The message is delivered twice: once on time, once after this many
    /// extra ticks (models retransmission bugs / at-least-once links).
    Duplicate(u64),
    /// Delivery is postponed by a *random* number of extra ticks in
    /// `0..=max`, drawn from the rule's deterministic stream — the
    /// reordering fault: two messages on the same link may now arrive in
    /// the opposite order from how they were sent.
    Jitter {
        /// Upper bound (inclusive) on the extra delay.
        max: u64,
    },
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::Drop => write!(f, "drop"),
            FaultAction::Delay(d) => write!(f, "delay(+{d})"),
            FaultAction::Duplicate(d) => write!(f, "dup(+{d})"),
            FaultAction::Jitter { max } => write!(f, "jitter(0..={max})"),
        }
    }
}

/// Selects the messages a rule applies to. `None` components match
/// anything, so `LinkFilter::default()` matches every message.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkFilter {
    /// Only messages sent by this node.
    pub from: Option<NodeId>,
    /// Only messages destined for this node.
    pub to: Option<NodeId>,
    /// Only messages of this kind (control vs data).
    pub kind: Option<MsgKind>,
}

impl LinkFilter {
    /// Matches every message.
    pub fn any() -> Self {
        LinkFilter::default()
    }

    /// Matches one directed link.
    pub fn link(from: NodeId, to: NodeId) -> Self {
        LinkFilter {
            from: Some(from),
            to: Some(to),
            kind: None,
        }
    }

    /// Restricts the filter to one message kind.
    pub fn of_kind(mut self, kind: MsgKind) -> Self {
        self.kind = Some(kind);
        self
    }

    fn matches(&self, from: NodeId, to: NodeId, kind: MsgKind) -> bool {
        self.from.is_none_or(|f| f == from)
            && self.to.is_none_or(|t| t == to)
            && self.kind.is_none_or(|k| k == kind)
    }
}

/// One fault rule: *while the clock is inside `window`, messages matching
/// `filter` suffer `action` with probability `probability`, at most
/// `budget` times*.
///
/// Rules are consulted in plan order; the first rule that fires wins (so
/// a plan reads top-to-bottom like a schedule of adversities).
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Half-open tick window `[start, end)` during which the rule is armed.
    pub window: (u64, u64),
    /// Which messages the rule applies to.
    pub filter: LinkFilter,
    /// What happens to a matched message.
    pub action: FaultAction,
    /// Probability the rule fires on a matching message (1.0 = always).
    pub probability: f64,
    /// Maximum number of times the rule may fire (`None` = unlimited).
    pub budget: Option<u64>,
}

impl FaultRule {
    /// A rule armed forever, firing on every match.
    pub fn always(filter: LinkFilter, action: FaultAction) -> Self {
        FaultRule {
            window: (0, u64::MAX),
            filter,
            action,
            probability: 1.0,
            budget: None,
        }
    }

    /// Restricts the rule to a tick window.
    pub fn during(mut self, start: u64, end: u64) -> Self {
        self.window = (start, end);
        self
    }

    /// Makes the rule probabilistic.
    pub fn with_probability(mut self, p: f64) -> Self {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    /// Caps how many times the rule may fire.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }
}

/// A network partition: during `window`, messages crossing the cut between
/// `side` and its complement are dropped (both directions).
#[derive(Debug, Clone)]
pub struct Partition {
    /// Half-open tick window `[start, end)`.
    pub window: (u64, u64),
    /// One side of the cut (node indices); the other side is everyone else.
    pub side: Vec<usize>,
}

impl Partition {
    fn cuts(&self, now: u64, from: NodeId, to: NodeId) -> bool {
        if now < self.window.0 || now >= self.window.1 {
            return false;
        }
        let a = self.side.contains(&from.0);
        let b = self.side.contains(&to.0);
        a != b
    }
}

/// A scheduled node failure event carried by the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// The node affected.
    pub node: NodeId,
    /// Absolute tick at which the event fires.
    pub at: u64,
    /// `false` = crash, `true` = recover.
    pub recover: bool,
}

/// A declarative schedule of adversities, installed into an engine with
/// [`crate::Engine::install_faults`].
///
/// ```
/// use doma_sim::{FaultAction, FaultPlan, FaultRule, LinkFilter, NodeId};
///
/// let plan = FaultPlan::new(42)
///     .rule(FaultRule::always(LinkFilter::link(NodeId(0), NodeId(2)), FaultAction::Drop)
///         .during(0, 100)
///         .with_budget(1))
///     .partition(50, 80, vec![0, 1])
///     .crash_at(NodeId(3), 10)
///     .recover_at(NodeId(3), 60);
/// assert_eq!(plan.crashes().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    partitions: Vec<Partition>,
    crashes: Vec<CrashEvent>,
}

impl FaultPlan {
    /// An empty plan. `seed` drives the probabilistic rules' streams.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Appends a rule (consulted in insertion order, first match wins).
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Adds a partition separating `side` from the rest during
    /// `[start, end)` ticks.
    pub fn partition(mut self, start: u64, end: u64, side: Vec<usize>) -> Self {
        self.partitions.push(Partition {
            window: (start, end),
            side,
        });
        self
    }

    /// Schedules a crash of `node` at absolute tick `at`.
    pub fn crash_at(mut self, node: NodeId, at: u64) -> Self {
        self.crashes.push(CrashEvent {
            node,
            at,
            recover: false,
        });
        self
    }

    /// Schedules a recovery of `node` at absolute tick `at`.
    pub fn recover_at(mut self, node: NodeId, at: u64) -> Self {
        self.crashes.push(CrashEvent {
            node,
            at,
            recover: true,
        });
        self
    }

    /// The crash/recover events carried by the plan.
    pub fn crashes(&self) -> &[CrashEvent] {
        &self.crashes
    }

    /// The plan's message-fault rules, in evaluation order.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// The plan's scheduled partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.partitions.is_empty() && self.crashes.is_empty()
    }
}

/// Exact tallies of the faults injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages eaten by [`FaultAction::Drop`] rules.
    pub dropped: u64,
    /// Messages eaten by an active [`Partition`].
    pub partition_dropped: u64,
    /// Messages postponed by [`FaultAction::Delay`].
    pub delayed: u64,
    /// Extra copies created by [`FaultAction::Duplicate`].
    pub duplicated: u64,
    /// Messages given a random extra delay by [`FaultAction::Jitter`].
    pub jittered: u64,
}

impl FaultStats {
    /// Total number of messages lost to injected faults.
    pub fn total_lost(&self) -> u64 {
        self.dropped + self.partition_dropped
    }
}

/// What the engine should do with one outgoing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Judgement {
    /// Deliver normally.
    Deliver,
    /// The message is lost; `partition` tells the caller which counter
    /// (and trace label) to use.
    Lost {
        /// Lost to a partition rather than a drop rule.
        partition: bool,
    },
    /// Deliver once per listed extra delay (a single entry with a non-zero
    /// delay is a delayed message; two entries are a duplication).
    Deliveries {
        /// Extra ticks to add to the natural delivery time, one per copy.
        extra: Vec<u64>,
        /// Which action produced this (for tracing).
        action: FaultAction,
    },
}

/// Live state of an installed plan: per-rule hit counters and RNG streams.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    hits: Vec<u64>,
    streams: Vec<u64>,
    stats: FaultStats,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        // Give every rule an independent, seed-derived SplitMix64 stream:
        // rule evaluation order then never perturbs another rule's draws.
        let streams = (0..plan.rules.len())
            .map(|i| {
                let mut s = plan.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                splitmix64(&mut s);
                s
            })
            .collect();
        let hits = vec![0; plan.rules.len()];
        FaultState {
            plan,
            hits,
            streams,
            stats: FaultStats::default(),
        }
    }

    pub(crate) fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Judges one outgoing message at send time `now`.
    pub(crate) fn judge(&mut self, now: u64, from: NodeId, to: NodeId, kind: MsgKind) -> Judgement {
        // Partitions first: a cut link loses everything, regardless of
        // rules.
        if self.plan.partitions.iter().any(|p| p.cuts(now, from, to)) {
            self.stats.partition_dropped += 1;
            return Judgement::Lost { partition: true };
        }
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if now < rule.window.0 || now >= rule.window.1 {
                continue;
            }
            if !rule.filter.matches(from, to, kind) {
                continue;
            }
            if rule.budget.is_some_and(|b| self.hits[i] >= b) {
                continue;
            }
            if rule.probability < 1.0 {
                let draw =
                    (splitmix64(&mut self.streams[i]) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                if draw >= rule.probability {
                    continue;
                }
            }
            self.hits[i] += 1;
            return match rule.action {
                FaultAction::Drop => {
                    self.stats.dropped += 1;
                    Judgement::Lost { partition: false }
                }
                FaultAction::Delay(d) => {
                    self.stats.delayed += 1;
                    Judgement::Deliveries {
                        extra: vec![d],
                        action: rule.action,
                    }
                }
                FaultAction::Duplicate(d) => {
                    self.stats.duplicated += 1;
                    Judgement::Deliveries {
                        extra: vec![0, d],
                        action: rule.action,
                    }
                }
                FaultAction::Jitter { max } => {
                    let extra = if max == 0 {
                        0
                    } else {
                        splitmix64(&mut self.streams[i]) % (max + 1)
                    };
                    self.stats.jittered += 1;
                    Judgement::Deliveries {
                        extra: vec![extra],
                        action: rule.action,
                    }
                }
            };
        }
        Judgement::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn judge_seq(state: &mut FaultState, n: usize) -> Vec<bool> {
        // `true` = delivered.
        (0..n)
            .map(|_| {
                !matches!(
                    state.judge(10, NodeId(0), NodeId(1), MsgKind::Control),
                    Judgement::Lost { .. }
                )
            })
            .collect()
    }

    #[test]
    fn filters_match_links_and_kinds() {
        let f = LinkFilter::link(NodeId(0), NodeId(2)).of_kind(MsgKind::Data);
        assert!(f.matches(NodeId(0), NodeId(2), MsgKind::Data));
        assert!(!f.matches(NodeId(0), NodeId(2), MsgKind::Control));
        assert!(!f.matches(NodeId(1), NodeId(2), MsgKind::Data));
        assert!(LinkFilter::any().matches(NodeId(7), NodeId(3), MsgKind::Control));
    }

    #[test]
    fn first_matching_rule_wins_and_budget_caps() {
        let plan = FaultPlan::new(1)
            .rule(FaultRule::always(LinkFilter::any(), FaultAction::Drop).with_budget(2))
            .rule(FaultRule::always(LinkFilter::any(), FaultAction::Delay(5)));
        let mut state = FaultState::new(plan);
        // First two messages eaten by the drop rule; the third falls
        // through to the delay rule.
        assert_eq!(
            state.judge(0, NodeId(0), NodeId(1), MsgKind::Data),
            Judgement::Lost { partition: false }
        );
        assert_eq!(
            state.judge(0, NodeId(0), NodeId(1), MsgKind::Data),
            Judgement::Lost { partition: false }
        );
        assert_eq!(
            state.judge(0, NodeId(0), NodeId(1), MsgKind::Data),
            Judgement::Deliveries {
                extra: vec![5],
                action: FaultAction::Delay(5)
            }
        );
        assert_eq!(state.stats().dropped, 2);
        assert_eq!(state.stats().delayed, 1);
    }

    #[test]
    fn windows_disarm_rules_outside_their_ticks() {
        let plan = FaultPlan::new(1)
            .rule(FaultRule::always(LinkFilter::any(), FaultAction::Drop).during(10, 20));
        let mut state = FaultState::new(plan);
        assert_eq!(
            state.judge(9, NodeId(0), NodeId(1), MsgKind::Control),
            Judgement::Deliver
        );
        assert_eq!(
            state.judge(10, NodeId(0), NodeId(1), MsgKind::Control),
            Judgement::Lost { partition: false }
        );
        assert_eq!(
            state.judge(20, NodeId(0), NodeId(1), MsgKind::Control),
            Judgement::Deliver
        );
    }

    #[test]
    fn probabilistic_rules_are_deterministic_per_seed() {
        let plan = |seed| {
            FaultPlan::new(seed)
                .rule(FaultRule::always(LinkFilter::any(), FaultAction::Drop).with_probability(0.5))
        };
        let a = judge_seq(&mut FaultState::new(plan(7)), 64);
        let b = judge_seq(&mut FaultState::new(plan(7)), 64);
        assert_eq!(a, b, "same seed, same fault pattern");
        let c = judge_seq(&mut FaultState::new(plan(8)), 64);
        assert_ne!(a, c, "different seed, different pattern");
        let delivered = a.iter().filter(|&&d| d).count();
        assert!(
            (16..=48).contains(&delivered),
            "p=0.5 should drop roughly half, delivered {delivered}/64"
        );
    }

    #[test]
    fn partitions_cut_both_directions_only_within_window() {
        let plan = FaultPlan::new(0).partition(10, 20, vec![0, 1]);
        let mut state = FaultState::new(plan);
        // Crossing the cut, inside the window: both directions lost.
        assert_eq!(
            state.judge(15, NodeId(0), NodeId(2), MsgKind::Data),
            Judgement::Lost { partition: true }
        );
        assert_eq!(
            state.judge(15, NodeId(2), NodeId(1), MsgKind::Data),
            Judgement::Lost { partition: true }
        );
        // Same side: delivered.
        assert_eq!(
            state.judge(15, NodeId(0), NodeId(1), MsgKind::Data),
            Judgement::Deliver
        );
        assert_eq!(
            state.judge(15, NodeId(2), NodeId(3), MsgKind::Data),
            Judgement::Deliver
        );
        // Outside the window: delivered.
        assert_eq!(
            state.judge(25, NodeId(0), NodeId(2), MsgKind::Data),
            Judgement::Deliver
        );
        assert_eq!(state.stats().partition_dropped, 2);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let plan = FaultPlan::new(3).rule(FaultRule::always(
            LinkFilter::any(),
            FaultAction::Jitter { max: 4 },
        ));
        let mut a = FaultState::new(plan.clone());
        let mut b = FaultState::new(plan);
        for _ in 0..32 {
            let ja = a.judge(0, NodeId(0), NodeId(1), MsgKind::Data);
            let jb = b.judge(0, NodeId(0), NodeId(1), MsgKind::Data);
            assert_eq!(ja, jb);
            match ja {
                Judgement::Deliveries { extra, .. } => {
                    assert_eq!(extra.len(), 1);
                    assert!(extra[0] <= 4);
                }
                other => panic!("jitter must deliver, got {other:?}"),
            }
        }
        assert_eq!(a.stats().jittered, 32);
    }

    #[test]
    fn duplicate_produces_two_copies() {
        let plan = FaultPlan::new(0).rule(FaultRule::always(
            LinkFilter::any(),
            FaultAction::Duplicate(7),
        ));
        let mut state = FaultState::new(plan);
        assert_eq!(
            state.judge(0, NodeId(0), NodeId(1), MsgKind::Data),
            Judgement::Deliveries {
                extra: vec![0, 7],
                action: FaultAction::Duplicate(7)
            }
        );
        assert_eq!(state.stats().duplicated, 1);
    }

    #[test]
    fn plan_builder_collects_crashes() {
        let plan = FaultPlan::new(0)
            .crash_at(NodeId(2), 5)
            .recover_at(NodeId(2), 15);
        assert_eq!(plan.crashes().len(), 2);
        assert!(!plan.crashes()[0].recover);
        assert!(plan.crashes()[1].recover);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new(9).is_empty());
    }

    #[test]
    fn action_display_is_compact() {
        assert_eq!(FaultAction::Drop.to_string(), "drop");
        assert_eq!(FaultAction::Delay(3).to_string(), "delay(+3)");
        assert_eq!(FaultAction::Duplicate(2).to_string(), "dup(+2)");
        assert_eq!(FaultAction::Jitter { max: 9 }.to_string(), "jitter(0..=9)");
    }
}

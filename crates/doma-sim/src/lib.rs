//! # doma-sim
//!
//! A deterministic discrete-event simulator for message-passing protocols:
//! the substrate `doma-protocol` runs SA and DA on.
//!
//! * [`SimTime`] — a virtual clock in abstract ticks.
//! * [`Network`] — point-to-point links with distinct control/data message
//!   latencies and exact per-kind message tallies ([`NetStats`]), shared
//!   through a cloneable [`StatsHandle`]. Messages count when *sent*
//!   (matching the paper's cost model, which prices transmissions).
//! * [`Engine`] — the event loop: actors implement [`Actor`]; events are
//!   delivered in `(time, sequence)` order, so runs are fully
//!   deterministic. Crash/recover events model processor failures:
//!   messages to a crashed node are dropped (and counted as such).
//! * [`FaultPlan`] — deterministic fault injection: declarative
//!   drop/delay/duplicate/jitter rules, partitions and crash schedules,
//!   installed via [`Engine::install_faults`] and reproducible from a
//!   single seed.
//!
//! Each engine is intentionally single-threaded: determinism is worth
//! more than parallelism inside one event loop. Parallelism happens
//! *across* engines instead — the [`shard`] module runs independent
//! engines on scoped threads (one per object shard) and returns their
//! outputs in a deterministic order, and the analysis crate parallelizes
//! at the experiment level the same way.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod engine;
mod fault;
mod network;
pub mod shard;
mod time;
mod trace;

pub use engine::{Actor, Context, Engine, EngineConfig, NodeId, PendingClass, PendingEvent};
pub use fault::{CrashEvent, FaultAction, FaultPlan, FaultRule, FaultStats, LinkFilter, Partition};
pub use network::{Medium, MsgKind, NetStats, Network, NetworkConfig, StatsHandle};
pub use time::SimTime;
pub use trace::{TraceHandle, TraceRecord};

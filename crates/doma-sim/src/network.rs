//! Point-to-point network model with per-kind message accounting.

use std::sync::{Arc, Mutex};

/// The two message classes of the cost model (§1.2): short control
/// messages (requests, invalidations) priced at `cc`, and data messages
/// (carrying the object) priced at `cd`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// Request / invalidate — priced at `cc`.
    Control,
    /// Object transfer — priced at `cd`.
    Data,
}

/// Exact message tallies, mirroring [`doma_core::CostVector`]'s
/// communication components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Control messages sent.
    pub control_sent: u64,
    /// Data messages sent.
    pub data_sent: u64,
    /// Messages dropped because the destination was crashed.
    pub dropped: u64,
}

/// A cloneable handle onto the engine's live network statistics; tests and
/// drivers hold one while the engine mutates the shared tallies.
#[derive(Debug, Clone, Default)]
pub struct StatsHandle(Arc<Mutex<NetStats>>);

impl StatsHandle {
    /// Creates a zeroed handle.
    pub fn new() -> Self {
        StatsHandle::default()
    }

    /// A snapshot of the current tallies.
    pub fn snapshot(&self) -> NetStats {
        // A poisoned lock only means another thread panicked mid-update;
        // the u64 tallies are always structurally valid, so keep going.
        *self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Zeroes the tallies (e.g. between experiment phases).
    pub fn reset(&self) {
        *self.0.lock().unwrap_or_else(|e| e.into_inner()) = NetStats::default();
    }

    /// An independent handle starting from the same tallies (used by
    /// [`crate::Engine::fork`]; updates no longer flow between the two).
    pub fn fork(&self) -> Self {
        StatsHandle(Arc::new(Mutex::new(self.snapshot())))
    }

    pub(crate) fn record_send(&self, kind: MsgKind) {
        let mut s = self.0.lock().unwrap_or_else(|e| e.into_inner());
        match kind {
            MsgKind::Control => s.control_sent += 1,
            MsgKind::Data => s.data_sent += 1,
        }
    }

    pub(crate) fn record_drop(&self) {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).dropped += 1;
    }
}

/// The transmission medium.
///
/// The paper's cost model assumes point-to-point links (§5.2 fourth
/// difference), but its introduction also motivates cost minimization by
/// Ethernet contention: "a higher communication cost implies a higher load
/// on the network, which implies a higher probability of contention on the
/// communication bus, and a higher response time". [`Medium::SharedBus`]
/// models that: one transmission at a time, FIFO, so concurrent messages
/// queue and response time grows with fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Medium {
    /// Independent links; every message is in flight immediately.
    PointToPoint,
    /// A single shared bus; transmissions serialize.
    SharedBus,
}

/// Static network parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetworkConfig {
    /// Transmission/delivery time of a control message, in ticks.
    pub control_latency: u64,
    /// Transmission/delivery time of a data message, in ticks (≥ control
    /// latency in any physical network — data frames are longer).
    pub data_latency: u64,
    /// The medium (point-to-point by default, matching the paper's model).
    pub medium: Medium,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            control_latency: 1,
            data_latency: 3,
            medium: Medium::PointToPoint,
        }
    }
}

impl NetworkConfig {
    /// A shared-bus network with the given transmission times.
    pub fn shared_bus(control_latency: u64, data_latency: u64) -> Self {
        NetworkConfig {
            control_latency,
            data_latency,
            medium: Medium::SharedBus,
        }
    }
}

/// The network: latency/medium model plus tallies. Homogeneous, reliable
/// except for crashed destinations — exactly the model of §3.2 (with the
/// optional bus medium of the introduction's Ethernet discussion).
#[derive(Debug, Clone)]
pub struct Network {
    config: NetworkConfig,
    stats: StatsHandle,
    /// SharedBus only: the tick until which the bus is occupied.
    bus_busy_until: u64,
    /// SharedBus only: cumulative ticks messages spent waiting for the bus.
    total_queue_wait: u64,
}

impl Network {
    /// Creates a network with the given config and a fresh stats handle.
    pub fn new(config: NetworkConfig) -> Self {
        Network {
            config,
            stats: StatsHandle::new(),
            bus_busy_until: 0,
            total_queue_wait: 0,
        }
    }

    /// The transmission time for a message kind.
    pub fn tx_time(&self, kind: MsgKind) -> u64 {
        match kind {
            MsgKind::Control => self.config.control_latency,
            MsgKind::Data => self.config.data_latency,
        }
    }

    /// Computes the delivery tick of a message sent at `now`, updating the
    /// bus occupancy when the medium is shared.
    pub fn schedule_delivery(&mut self, now: u64, kind: MsgKind) -> u64 {
        let tx = self.tx_time(kind);
        match self.config.medium {
            Medium::PointToPoint => now + tx,
            Medium::SharedBus => {
                let start = now.max(self.bus_busy_until);
                self.total_queue_wait += start - now;
                self.bus_busy_until = start + tx;
                start + tx
            }
        }
    }

    /// Cumulative ticks spent queueing for the bus (0 for point-to-point).
    pub fn total_queue_wait(&self) -> u64 {
        self.total_queue_wait
    }

    /// The configured medium.
    pub fn medium(&self) -> Medium {
        self.config.medium
    }

    /// The shared statistics handle.
    pub fn stats(&self) -> StatsHandle {
        self.stats.clone()
    }

    /// Deep copy: same config, bus state, and tallies, but an independent
    /// stats cell — a plain `clone()` would share the `Arc`'d tallies and
    /// let a forked engine's traffic leak into the original's accounting.
    pub fn fork(&self) -> Self {
        Network {
            config: self.config,
            stats: self.stats.fork(),
            bus_busy_until: self.bus_busy_until,
            total_queue_wait: self.total_queue_wait,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_handle_shares_state() {
        let net = Network::new(NetworkConfig::default());
        let h1 = net.stats();
        let h2 = net.stats();
        h1.record_send(MsgKind::Control);
        h1.record_send(MsgKind::Data);
        h1.record_drop();
        let s = h2.snapshot();
        assert_eq!(s.control_sent, 1);
        assert_eq!(s.data_sent, 1);
        assert_eq!(s.dropped, 1);
        h2.reset();
        assert_eq!(h1.snapshot(), NetStats::default());
    }

    #[test]
    fn latencies_follow_kind() {
        let mut net = Network::new(NetworkConfig {
            control_latency: 2,
            data_latency: 7,
            medium: Medium::PointToPoint,
        });
        assert_eq!(net.tx_time(MsgKind::Control), 2);
        assert_eq!(net.tx_time(MsgKind::Data), 7);
        // Point-to-point: concurrent sends do not interfere.
        assert_eq!(net.schedule_delivery(10, MsgKind::Data), 17);
        assert_eq!(net.schedule_delivery(10, MsgKind::Data), 17);
        assert_eq!(net.total_queue_wait(), 0);
    }

    #[test]
    fn shared_bus_serializes_transmissions() {
        let mut net = Network::new(NetworkConfig::shared_bus(1, 4));
        assert_eq!(net.medium(), Medium::SharedBus);
        // Three data messages sent at t=0 queue behind each other.
        assert_eq!(net.schedule_delivery(0, MsgKind::Data), 4);
        assert_eq!(net.schedule_delivery(0, MsgKind::Data), 8);
        assert_eq!(net.schedule_delivery(0, MsgKind::Data), 12);
        assert_eq!(net.total_queue_wait(), 4 + 8);
        // After the bus drains, a later message goes straight through.
        assert_eq!(net.schedule_delivery(20, MsgKind::Control), 21);
        assert_eq!(net.total_queue_wait(), 12);
    }
}

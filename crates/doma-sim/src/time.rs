//! Virtual time.

use std::fmt;
use std::ops::Add;

/// A point in virtual time, in abstract ticks. The absolute scale is
/// immaterial to the cost model (which prices messages and I/Os, not
/// latency); latencies exist to give the event loop a well-defined order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// The tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_ordering() {
        let t = SimTime::ZERO + 5;
        assert_eq!(t.ticks(), 5);
        assert!(t > SimTime::ZERO);
        assert_eq!((t + 3).ticks(), 8);
        assert_eq!(t.to_string(), "t=5");
    }
}

//! Message tracing: a bounded ring buffer of delivery records for
//! debugging protocols and asserting on message-level behaviour in tests.

use crate::{MsgKind, NodeId, SimTime};
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

/// One delivered (or dropped) message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Delivery (or drop) time.
    pub time: SimTime,
    /// Sender.
    pub from: NodeId,
    /// Destination.
    pub to: NodeId,
    /// Control or data.
    pub kind: MsgKind,
    /// `false` if the destination was crashed and the message was dropped.
    pub delivered: bool,
    /// A short label describing the payload (protocols provide it via
    /// [`crate::Engine::set_tracer`]'s labelling callback).
    pub label: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}→{} {:?} {}{}",
            self.time,
            self.from,
            self.to,
            self.kind,
            self.label,
            if self.delivered { "" } else { " [dropped]" }
        )
    }
}

/// A cloneable handle on a bounded message trace. When the buffer is full
/// the oldest records are discarded.
#[derive(Debug, Clone)]
pub struct TraceHandle {
    inner: Arc<Mutex<TraceInner>>,
}

#[derive(Debug)]
struct TraceInner {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    discarded: u64,
}

impl TraceHandle {
    /// Creates a trace retaining at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        TraceHandle {
            inner: Arc::new(Mutex::new(TraceInner {
                records: VecDeque::new(),
                capacity: capacity.max(1),
                discarded: 0,
            })),
        }
    }

    /// Appends a record.
    pub fn record(&self, record: TraceRecord) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.records.len() == inner.capacity {
            inner.records.pop_front();
            inner.discarded += 1;
        }
        inner.records.push_back(record);
    }

    /// A snapshot of the retained records, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .records
            .iter()
            .cloned()
            .collect()
    }

    /// Number of records discarded due to the capacity bound.
    pub fn discarded(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .discarded
    }

    /// Drops all retained records.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.records.clear();
        inner.discarded = 0;
    }

    /// Renders the retained records one per line.
    pub fn render(&self) -> String {
        self.snapshot()
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, label: &str) -> TraceRecord {
        TraceRecord {
            time: SimTime(t),
            from: NodeId(0),
            to: NodeId(1),
            kind: MsgKind::Control,
            delivered: true,
            label: label.to_string(),
        }
    }

    #[test]
    fn records_in_order() {
        let trace = TraceHandle::new(10);
        trace.record(rec(1, "a"));
        trace.record(rec(2, "b"));
        let snap = trace.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].label, "a");
        assert_eq!(snap[1].label, "b");
        assert_eq!(trace.discarded(), 0);
    }

    #[test]
    fn ring_discards_oldest() {
        let trace = TraceHandle::new(2);
        trace.record(rec(1, "a"));
        trace.record(rec(2, "b"));
        trace.record(rec(3, "c"));
        let snap = trace.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].label, "b");
        assert_eq!(trace.discarded(), 1);
        trace.clear();
        assert!(trace.snapshot().is_empty());
        assert_eq!(trace.discarded(), 0);
    }

    #[test]
    fn display_format() {
        let mut r = rec(5, "ReadReq");
        assert_eq!(r.to_string(), "t=5 N0→N1 Control ReadReq");
        r.delivered = false;
        assert!(r.to_string().ends_with("[dropped]"));
    }

    #[test]
    fn handles_share_state() {
        let a = TraceHandle::new(4);
        let b = a.clone();
        a.record(rec(1, "x"));
        assert_eq!(b.snapshot().len(), 1);
    }
}

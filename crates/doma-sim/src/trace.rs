//! Message tracing: delivery records for debugging protocols and
//! asserting on message-level behaviour in tests.
//!
//! Since the observability PR the tracer is a thin view over a
//! [`doma_obs::EventLog`]: each [`TraceRecord`] is stored as a
//! structured `sim.trace` event, so a message trace can share one log
//! with the engine's lifecycle events (crash/recover/drop) and the
//! protocol's spans, interleaved in delivery order. The API (and the
//! rendered format) is unchanged from the original ring-buffer tracer;
//! [`TraceHandle::discarded`] now surfaces the log's
//! [`dropped_events`](doma_obs::EventLog::dropped_events) counter.

use crate::{MsgKind, NodeId, SimTime};
use doma_obs::{EventLog, EventRecord};
use std::fmt;

/// One delivered (or dropped) message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Delivery (or drop) time.
    pub time: SimTime,
    /// Sender.
    pub from: NodeId,
    /// Destination.
    pub to: NodeId,
    /// Control or data.
    pub kind: MsgKind,
    /// `false` if the destination was crashed and the message was dropped.
    pub delivered: bool,
    /// A short label describing the payload (protocols provide it via
    /// [`crate::Engine::set_tracer`]'s labelling callback).
    pub label: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}→{} {:?} {}{}",
            self.time,
            self.from,
            self.to,
            self.kind,
            self.label,
            if self.delivered { "" } else { " [dropped]" }
        )
    }
}

/// The event name trace records are stored under in the backing log.
pub const TRACE_EVENT: &str = "sim.trace";

fn encode(record: &TraceRecord) -> Vec<(String, String)> {
    vec![
        ("from".to_string(), record.from.0.to_string()),
        ("to".to_string(), record.to.0.to_string()),
        ("kind".to_string(), format!("{:?}", record.kind)),
        ("delivered".to_string(), record.delivered.to_string()),
        ("label".to_string(), record.label.clone()),
    ]
}

fn decode(event: &EventRecord) -> Option<TraceRecord> {
    if event.name != TRACE_EVENT {
        return None;
    }
    let field = |key: &str| {
        event
            .fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    };
    Some(TraceRecord {
        time: SimTime(event.time),
        from: NodeId(field("from")?.parse().ok()?),
        to: NodeId(field("to")?.parse().ok()?),
        kind: match field("kind")? {
            "Data" => MsgKind::Data,
            _ => MsgKind::Control,
        },
        delivered: field("delivered")? == "true",
        label: field("label")?.to_string(),
    })
}

/// A cloneable handle on a bounded message trace. When the buffer is
/// full the oldest records are discarded (and counted — see
/// [`TraceHandle::discarded`]).
#[derive(Debug, Clone)]
pub struct TraceHandle {
    log: EventLog,
}

impl TraceHandle {
    /// Creates a trace retaining at most `capacity` records, on a
    /// private event log.
    pub fn new(capacity: usize) -> Self {
        TraceHandle {
            log: EventLog::new(capacity),
        }
    }

    /// Creates a trace that appends to an existing event log, so
    /// message records interleave with the log's other events (the
    /// engine's crash/drop records, protocol spans…). The shared log's
    /// capacity and [`dropped_events`](doma_obs::EventLog::dropped_events)
    /// counter then cover *all* record kinds, not just the trace.
    pub fn on(log: EventLog) -> Self {
        TraceHandle { log }
    }

    /// The backing event log (for seeking, tails, or JSON export).
    pub fn event_log(&self) -> &EventLog {
        &self.log
    }

    /// Appends a record.
    pub fn record(&self, record: TraceRecord) {
        self.log
            .record(record.time.ticks(), TRACE_EVENT, encode(&record));
    }

    /// A snapshot of the retained records, oldest first. Non-trace
    /// events sharing the backing log are skipped.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.log.snapshot().iter().filter_map(decode).collect()
    }

    /// Number of records discarded due to the capacity bound (every
    /// event kind, when the backing log is shared).
    pub fn discarded(&self) -> u64 {
        self.log.dropped_events()
    }

    /// Drops all retained records.
    pub fn clear(&self) {
        self.log.clear();
    }

    /// Renders the retained records one per line.
    pub fn render(&self) -> String {
        self.snapshot()
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, label: &str) -> TraceRecord {
        TraceRecord {
            time: SimTime(t),
            from: NodeId(0),
            to: NodeId(1),
            kind: MsgKind::Control,
            delivered: true,
            label: label.to_string(),
        }
    }

    #[test]
    fn records_in_order() {
        let trace = TraceHandle::new(10);
        trace.record(rec(1, "a"));
        trace.record(rec(2, "b"));
        let snap = trace.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].label, "a");
        assert_eq!(snap[1].label, "b");
        assert_eq!(trace.discarded(), 0);
    }

    #[test]
    fn ring_discards_oldest() {
        let trace = TraceHandle::new(2);
        trace.record(rec(1, "a"));
        trace.record(rec(2, "b"));
        trace.record(rec(3, "c"));
        let snap = trace.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].label, "b");
        assert_eq!(trace.discarded(), 1);
        trace.clear();
        assert!(trace.snapshot().is_empty());
        assert_eq!(trace.discarded(), 0);
    }

    #[test]
    fn display_format() {
        let mut r = rec(5, "ReadReq");
        assert_eq!(r.to_string(), "t=5 N0→N1 Control ReadReq");
        r.delivered = false;
        assert!(r.to_string().ends_with("[dropped]"));
    }

    #[test]
    fn handles_share_state() {
        let a = TraceHandle::new(4);
        let b = a.clone();
        a.record(rec(1, "x"));
        assert_eq!(b.snapshot().len(), 1);
    }

    #[test]
    fn roundtrips_through_the_event_log() {
        let trace = TraceHandle::new(8);
        let original = TraceRecord {
            time: SimTime(9),
            from: NodeId(3),
            to: NodeId(0),
            kind: MsgKind::Data,
            delivered: false,
            label: "ObjData(obj0,v2)".to_string(),
        };
        trace.record(original.clone());
        assert_eq!(trace.snapshot(), vec![original]);
    }

    #[test]
    fn shared_log_interleaves_with_other_events() {
        let log = doma_obs::EventLog::new(8);
        let trace = TraceHandle::on(log.clone());
        trace.record(rec(1, "a"));
        log.record(2, "sim.crash", vec![("node".into(), "2".into())]);
        trace.record(rec(3, "b"));
        // The trace view filters to message records…
        assert_eq!(trace.snapshot().len(), 2);
        // …while the log keeps everything, in order.
        let names: Vec<String> = log.snapshot().iter().map(|e| e.name.clone()).collect();
        assert_eq!(names, vec!["sim.trace", "sim.crash", "sim.trace"]);
    }
}

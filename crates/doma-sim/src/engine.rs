//! The event loop: actors, contexts, and deterministic dispatch.

use crate::fault::{FaultPlan, FaultState, FaultStats, Judgement};
use crate::{MsgKind, Network, NetworkConfig, SimTime, StatsHandle, TraceHandle, TraceRecord};
use std::cmp::Reverse;
use std::collections::hash_map::DefaultHasher;
use std::collections::BinaryHeap;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Identifies a node (actor) in the simulation. For protocol crates these
/// coincide with [`doma_core::ProcessorId`] indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// A protocol participant. Actors receive messages, timers and failure
/// notifications, and emit messages/timers through the [`Context`].
pub trait Actor<M> {
    /// A message arrived.
    fn on_message(&mut self, ctx: &mut Context<M>, from: NodeId, kind: MsgKind, msg: M);

    /// A timer set via [`Context::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Context<M>, _token: u64) {}

    /// The node is about to crash (volatile state is lost by the actor's
    /// own logic; the engine only stops delivering to it).
    fn on_crash(&mut self) {}

    /// The node restarted.
    fn on_recover(&mut self, _ctx: &mut Context<M>) {}
}

/// The per-dispatch effect buffer an actor writes its outputs into.
pub struct Context<M> {
    now: SimTime,
    self_id: NodeId,
    sends: Vec<(NodeId, MsgKind, M)>,
    timers: Vec<(u64, u64)>,
}

impl<M> Context<M> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's node id.
    pub fn id(&self) -> NodeId {
        self.self_id
    }

    /// Sends a message; it is tallied (and priced) even if the destination
    /// turns out to be crashed — the sender has already paid for the
    /// transmission.
    pub fn send(&mut self, to: NodeId, kind: MsgKind, msg: M) {
        self.sends.push((to, kind, msg));
    }

    /// Schedules `on_timer(token)` after `delay` ticks.
    pub fn set_timer(&mut self, delay: u64, token: u64) {
        self.timers.push((delay, token));
    }

    /// The messages queued by this dispatch so far, in send order. The
    /// buffer is fresh per dispatch, so an actor's instrumentation can
    /// attribute exactly the sends its current handler produced.
    pub fn pending_sends(&self) -> &[(NodeId, MsgKind, M)] {
        &self.sends
    }
}

#[derive(Clone)]
enum EventKind<M> {
    Deliver {
        from: NodeId,
        to: NodeId,
        kind: MsgKind,
        msg: M,
    },
    /// Local injection (a client request arriving at its own node): not a
    /// network message, so not tallied.
    Local {
        to: NodeId,
        msg: M,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    Crash(NodeId),
    Recover(NodeId),
}

#[derive(Clone)]
struct Event<M> {
    time: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

/// The broad class of a queued event — what a model checker needs to know
/// about a choice point without seeing the message payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PendingClass {
    /// A network message in flight.
    Deliver,
    /// A locally injected client request.
    Local,
    /// A timer due to fire.
    Timer,
    /// A scheduled crash.
    Crash,
    /// A scheduled recovery.
    Recover,
}

/// A snapshot of one schedulable event in the queue: the unit of choice
/// for a model checker driving the engine one delivery at a time via
/// [`Engine::pending_events`] / [`Engine::dispatch_by_seq`].
#[derive(Debug, Clone)]
pub struct PendingEvent {
    seq: u64,
    time: SimTime,
    class: PendingClass,
    target: NodeId,
    source: Option<NodeId>,
    content_hash: u64,
    label: String,
}

impl PendingEvent {
    /// The engine-assigned sequence number identifying this event. Stable
    /// across [`Engine::fork`]: a fork dispatches the same seq to take the
    /// same transition.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// When the event would fire under the natural (latency-ordered)
    /// schedule.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// The event's class.
    pub fn class(&self) -> PendingClass {
        self.class
    }

    /// The node whose state dispatching this event mutates. Two pending
    /// events with different targets commute (with a point-to-point
    /// medium): dispatching them in either order yields the same state.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// The sending node, for [`PendingClass::Deliver`] events.
    pub fn source(&self) -> Option<NodeId> {
        self.source
    }

    /// A hash of the event's content (class, endpoints, payload) that
    /// deliberately excludes `seq` and `time`, so states reached along
    /// different schedules fingerprint equal when their queued futures
    /// are equal.
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// A human-readable description (for counterexample traces).
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Network latencies.
    pub network: NetworkConfig,
    /// Safety valve: abort after this many dispatched events (0 = no
    /// limit). A protocol bug that floods the network trips this instead
    /// of hanging the test suite.
    pub max_events: u64,
}

/// A message tracer: the sink plus the labelling function applied to each
/// message before recording.
type Tracer<M> = (TraceHandle, fn(&M) -> String);

/// The engine's slice of an attached [`doma_obs::Obs`] bundle: the
/// bundle itself plus counters resolved once at attach time, so the
/// per-send hot path pays one atomic add, not a registry lookup.
struct EngineObs {
    bundle: doma_obs::Obs,
    sent_control: doma_obs::Counter,
    sent_data: doma_obs::Counter,
    dropped_crashed: doma_obs::Counter,
    dropped_fault: doma_obs::Counter,
    dropped_partition: doma_obs::Counter,
    faulted: doma_obs::Counter,
}

/// The deterministic discrete-event engine.
pub struct Engine<M, A: Actor<M>> {
    actors: Vec<A>,
    alive: Vec<bool>,
    queue: BinaryHeap<Reverse<Event<M>>>,
    network: Network,
    now: SimTime,
    seq: u64,
    dispatched: u64,
    max_events: u64,
    overflowed: bool,
    tracer: Option<Tracer<M>>,
    obs: Option<EngineObs>,
    faults: Option<FaultState>,
}

impl<M: Clone, A: Actor<M>> Engine<M, A> {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            actors: Vec::new(),
            alive: Vec::new(),
            queue: BinaryHeap::new(),
            network: Network::new(config.network),
            now: SimTime::ZERO,
            seq: 0,
            dispatched: 0,
            max_events: config.max_events,
            overflowed: false,
            tracer: None,
            obs: None,
            faults: None,
        }
    }

    /// Attaches a message tracer: every delivery (and drop at a crashed
    /// node) is recorded into `trace`, labelled by `labeller`.
    pub fn set_tracer(&mut self, trace: TraceHandle, labeller: fn(&M) -> String) {
        self.tracer = Some((trace, labeller));
    }

    /// Attaches an observability bundle: message sends, drops (by
    /// cause) and fault actions are counted in the bundle's registry
    /// under component `sim`, and crash/recover/drop lifecycle events
    /// are appended to its event log. Like the tracer, the bundle is
    /// *not* carried over by [`Engine::fork`] — a model checker's forks
    /// would otherwise multiply-count into the shared registry.
    pub fn set_obs(&mut self, obs: doma_obs::Obs) {
        let m = obs.metrics();
        self.obs = Some(EngineObs {
            sent_control: m.counter("sim", "msgs_sent", &[("kind", "control")]),
            sent_data: m.counter("sim", "msgs_sent", &[("kind", "data")]),
            dropped_crashed: m.counter("sim", "msgs_dropped", &[("reason", "crashed")]),
            dropped_fault: m.counter("sim", "msgs_dropped", &[("reason", "fault")]),
            dropped_partition: m.counter("sim", "msgs_dropped", &[("reason", "partition")]),
            faulted: m.counter("sim", "msgs_faulted", &[]),
            bundle: obs,
        });
    }

    /// The attached observability bundle, if any.
    pub fn obs(&self) -> Option<&doma_obs::Obs> {
        self.obs.as_ref().map(|o| &o.bundle)
    }

    /// Registers an actor, returning its node id (ids are assigned
    /// densely from 0 in registration order).
    pub fn add_node(&mut self, actor: A) -> NodeId {
        self.actors.push(actor);
        self.alive.push(true);
        NodeId(self.actors.len() - 1)
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.actors.len()
    }

    /// Immutable access to an actor (assertions in tests/drivers).
    pub fn actor(&self, node: NodeId) -> &A {
        &self.actors[node.0]
    }

    /// Mutable access to an actor (drivers configuring nodes between
    /// requests).
    pub fn actor_mut(&mut self, node: NodeId) -> &mut A {
        &mut self.actors[node.0]
    }

    /// Whether a node is currently up.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.0]
    }

    /// The shared network statistics handle.
    pub fn net_stats(&self) -> StatsHandle {
        self.network.stats()
    }

    /// Cumulative ticks messages spent queueing for the shared bus
    /// (always 0 with a point-to-point medium).
    pub fn bus_queue_wait(&self) -> u64 {
        self.network.total_queue_wait()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn push(&mut self, time: SimTime, kind: EventKind<M>) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event { time, seq, kind }));
        seq
    }

    /// Injects a client request into `to` after `delay` ticks. Local —
    /// not a network message, not tallied. Returns the queued event's
    /// sequence number (usable with [`Engine::dispatch_by_seq`]).
    pub fn inject(&mut self, to: NodeId, delay: u64, msg: M) -> u64 {
        let time = self.now + delay;
        self.push(time, EventKind::Local { to, msg })
    }

    /// Schedules a crash of `node` after `delay` ticks. Returns the
    /// queued event's sequence number.
    pub fn schedule_crash(&mut self, node: NodeId, delay: u64) -> u64 {
        let time = self.now + delay;
        self.push(time, EventKind::Crash(node))
    }

    /// Schedules a recovery of `node` after `delay` ticks. Returns the
    /// queued event's sequence number.
    pub fn schedule_recover(&mut self, node: NodeId, delay: u64) -> u64 {
        let time = self.now + delay;
        self.push(time, EventKind::Recover(node))
    }

    /// Installs a [`FaultPlan`]: its message-fault rules and partitions
    /// take effect on every subsequent send, and its crash/recover events
    /// are scheduled immediately (`at` is an absolute tick; events in the
    /// past fire at the current instant). Replaces any previous plan and
    /// resets [`Engine::fault_stats`].
    pub fn install_faults(&mut self, plan: FaultPlan) {
        for ev in plan.crashes() {
            let delay = ev.at.saturating_sub(self.now.ticks());
            if ev.recover {
                self.schedule_recover(ev.node, delay);
            } else {
                self.schedule_crash(ev.node, delay);
            }
        }
        self.faults = Some(FaultState::new(plan));
    }

    /// Removes the installed fault plan (already-scheduled crash events
    /// still fire), returning the final injection tallies.
    pub fn clear_faults(&mut self) -> FaultStats {
        self.faults.take().map(|s| s.stats()).unwrap_or_default()
    }

    /// Tallies of the faults injected by the installed plan so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|s| s.stats()).unwrap_or_default()
    }

    fn dispatch_to(&mut self, node: NodeId, f: impl FnOnce(&mut A, &mut Context<M>)) {
        let mut ctx = Context {
            now: self.now,
            self_id: node,
            sends: Vec::new(),
            timers: Vec::new(),
        };
        f(&mut self.actors[node.0], &mut ctx);
        for (to, kind, msg) in ctx.sends {
            // The sender pays for the transmission before any fault can
            // eat it — send tallies match the paper's cost model even on
            // lossy runs.
            self.network.stats().record_send(kind);
            if let Some(o) = &self.obs {
                match kind {
                    MsgKind::Control => o.sent_control.inc(),
                    MsgKind::Data => o.sent_data.inc(),
                }
            }
            let natural = SimTime(self.network.schedule_delivery(self.now.ticks(), kind));
            let verdict = match &mut self.faults {
                Some(state) => state.judge(self.now.ticks(), node, to, kind),
                None => Judgement::Deliver,
            };
            match verdict {
                Judgement::Deliver => {
                    self.push(
                        natural,
                        EventKind::Deliver {
                            from: node,
                            to,
                            kind,
                            msg,
                        },
                    );
                }
                Judgement::Lost { partition } => {
                    self.network.stats().record_drop();
                    if let Some(o) = &self.obs {
                        if partition {
                            o.dropped_partition.inc();
                        } else {
                            o.dropped_fault.inc();
                        }
                        o.bundle.events().record(
                            self.now.ticks(),
                            "sim.drop",
                            vec![
                                ("from".to_string(), node.to_string()),
                                ("to".to_string(), to.to_string()),
                                ("kind".to_string(), format!("{kind:?}")),
                                (
                                    "cause".to_string(),
                                    if partition { "partition" } else { "fault" }.to_string(),
                                ),
                            ],
                        );
                    }
                    if let Some((trace, labeller)) = &self.tracer {
                        let cause = if partition {
                            "fault-partition"
                        } else {
                            "fault-drop"
                        };
                        trace.record(TraceRecord {
                            time: self.now,
                            from: node,
                            to,
                            kind,
                            delivered: false,
                            label: format!("{cause}:{}", labeller(&msg)),
                        });
                    }
                }
                Judgement::Deliveries { extra, action } => {
                    if let Some(o) = &self.obs {
                        o.faulted.inc();
                        o.bundle.events().record(
                            self.now.ticks(),
                            "sim.fault",
                            vec![
                                ("from".to_string(), node.to_string()),
                                ("to".to_string(), to.to_string()),
                                ("action".to_string(), action.to_string()),
                            ],
                        );
                    }
                    if let Some((trace, labeller)) = &self.tracer {
                        trace.record(TraceRecord {
                            time: self.now,
                            from: node,
                            to,
                            kind,
                            delivered: true,
                            label: format!("fault-{action}:{}", labeller(&msg)),
                        });
                    }
                    for offset in extra {
                        self.push(
                            natural + offset,
                            EventKind::Deliver {
                                from: node,
                                to,
                                kind,
                                msg: msg.clone(),
                            },
                        );
                    }
                }
            }
        }
        for (delay, token) in ctx.timers {
            let time = self.now + delay;
            self.push(time, EventKind::Timer { node, token });
        }
    }

    fn dispatch_event(&mut self, kind: EventKind<M>) {
        match kind {
            EventKind::Deliver {
                from,
                to,
                kind,
                msg,
            } => {
                let delivered = self.alive[to.0];
                if let Some((trace, labeller)) = &self.tracer {
                    trace.record(TraceRecord {
                        time: self.now,
                        from,
                        to,
                        kind,
                        delivered,
                        label: labeller(&msg),
                    });
                }
                if delivered {
                    self.dispatch_to(to, |a, ctx| a.on_message(ctx, from, kind, msg));
                } else {
                    self.network.stats().record_drop();
                    if let Some(o) = &self.obs {
                        o.dropped_crashed.inc();
                        o.bundle.events().record(
                            self.now.ticks(),
                            "sim.drop",
                            vec![
                                ("from".to_string(), from.to_string()),
                                ("to".to_string(), to.to_string()),
                                ("kind".to_string(), format!("{kind:?}")),
                                ("cause".to_string(), "crashed".to_string()),
                            ],
                        );
                    }
                }
            }
            EventKind::Local { to, msg } => {
                if self.alive[to.0] {
                    // Local requests arrive "from" the node itself.
                    self.dispatch_to(to, |a, ctx| a.on_message(ctx, to, MsgKind::Control, msg));
                }
            }
            EventKind::Timer { node, token } => {
                if self.alive[node.0] {
                    self.dispatch_to(node, |a, ctx| a.on_timer(ctx, token));
                }
            }
            EventKind::Crash(node) => {
                if self.alive[node.0] {
                    self.alive[node.0] = false;
                    self.actors[node.0].on_crash();
                    if let Some(o) = &self.obs {
                        let label = node.to_string();
                        o.bundle
                            .metrics()
                            .add("sim", "crashes", &[("node", &label)], 1);
                        o.bundle.events().record(
                            self.now.ticks(),
                            "sim.crash",
                            vec![("node".to_string(), label)],
                        );
                    }
                }
            }
            EventKind::Recover(node) => {
                if !self.alive[node.0] {
                    self.alive[node.0] = true;
                    if let Some(o) = &self.obs {
                        let label = node.to_string();
                        o.bundle
                            .metrics()
                            .add("sim", "recoveries", &[("node", &label)], 1);
                        o.bundle.events().record(
                            self.now.ticks(),
                            "sim.recover",
                            vec![("node".to_string(), label)],
                        );
                    }
                    self.dispatch_to(node, |a, ctx| a.on_recover(ctx));
                }
            }
        }
    }

    /// Runs until the event queue drains (or `max_events` trips, in which
    /// case [`Engine::budget_exhausted`] turns true and the remaining
    /// queue is left untouched — the driver decides how to report it).
    /// Returns the number of events dispatched by this call.
    pub fn run_until_idle(&mut self) -> u64 {
        let start = self.dispatched;
        while let Some(Reverse(event)) = self.queue.pop() {
            if self.max_events > 0 && self.dispatched >= self.max_events {
                // Put the event back: the state is inspectable, just not
                // runnable any further under this budget.
                self.queue.push(Reverse(event));
                self.overflowed = true;
                break;
            }
            self.now = event.time;
            self.dispatched += 1;
            self.dispatch_event(event.kind);
        }
        self.dispatched - start
    }

    /// Whether a `run_until_idle` call tripped the `max_events` safety
    /// valve (a runaway protocol, or an exploration budget set
    /// deliberately tight). Sticky until the engine is dropped.
    pub fn budget_exhausted(&self) -> bool {
        self.overflowed
    }

    /// Total events dispatched over the engine's lifetime.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }
}

impl<M: Clone + Hash, A: Actor<M>> Engine<M, A> {
    /// Snapshots every queued event as a [`PendingEvent`] choice point,
    /// ordered by the natural schedule (time, then send order). `labeller`
    /// renders message payloads for counterexample traces.
    pub fn pending_events(&self, labeller: impl Fn(&M) -> String) -> Vec<PendingEvent> {
        let mut events: Vec<&Event<M>> = self.queue.iter().map(|Reverse(e)| e).collect();
        events.sort_by_key(|e| (e.time, e.seq));
        events
            .into_iter()
            .map(|e| {
                let mut h = DefaultHasher::new();
                let (class, target, source, label) = match &e.kind {
                    EventKind::Deliver {
                        from,
                        to,
                        kind,
                        msg,
                    } => {
                        0u8.hash(&mut h);
                        from.hash(&mut h);
                        to.hash(&mut h);
                        kind.hash(&mut h);
                        msg.hash(&mut h);
                        (
                            PendingClass::Deliver,
                            *to,
                            Some(*from),
                            format!("{from}->{to} {}", labeller(msg)),
                        )
                    }
                    EventKind::Local { to, msg } => {
                        1u8.hash(&mut h);
                        to.hash(&mut h);
                        msg.hash(&mut h);
                        (
                            PendingClass::Local,
                            *to,
                            None,
                            format!("local@{to} {}", labeller(msg)),
                        )
                    }
                    EventKind::Timer { node, token } => {
                        2u8.hash(&mut h);
                        node.hash(&mut h);
                        token.hash(&mut h);
                        (
                            PendingClass::Timer,
                            *node,
                            None,
                            format!("timer@{node} t{token}"),
                        )
                    }
                    EventKind::Crash(node) => {
                        3u8.hash(&mut h);
                        node.hash(&mut h);
                        (PendingClass::Crash, *node, None, format!("crash@{node}"))
                    }
                    EventKind::Recover(node) => {
                        4u8.hash(&mut h);
                        node.hash(&mut h);
                        (
                            PendingClass::Recover,
                            *node,
                            None,
                            format!("recover@{node}"),
                        )
                    }
                };
                PendingEvent {
                    seq: e.seq,
                    time: e.time,
                    class,
                    target,
                    source,
                    content_hash: h.finish(),
                    label,
                }
            })
            .collect()
    }

    /// Removes the queued event with sequence number `seq` and dispatches
    /// it now, regardless of its scheduled time (virtual time stays
    /// monotone: it only advances, to the event's time if that is later).
    /// Returns `false` if no such event is queued, or the event budget is
    /// already exhausted (the event stays queued).
    pub fn dispatch_by_seq(&mut self, seq: u64) -> bool {
        if self.max_events > 0 && self.dispatched >= self.max_events {
            self.overflowed = true;
            return false;
        }
        let mut rest = Vec::with_capacity(self.queue.len());
        let mut chosen = None;
        for Reverse(e) in self.queue.drain() {
            if e.seq == seq && chosen.is_none() {
                chosen = Some(e);
            } else {
                rest.push(Reverse(e));
            }
        }
        self.queue = rest.into();
        match chosen {
            Some(event) => {
                self.now = self.now.max(event.time);
                self.dispatched += 1;
                self.dispatch_event(event.kind);
                true
            }
            None => false,
        }
    }

    /// Whether any event is queued.
    pub fn has_pending(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Number of queued events.
    pub fn pending_len(&self) -> usize {
        self.queue.len()
    }
}

impl<M: Clone, A: Actor<M> + Clone> Engine<M, A> {
    /// Deep-copies the engine: actors, liveness, the event queue, virtual
    /// clock, fault state, and an *independent* copy of the network
    /// statistics (mutating the fork never shows in the original). The
    /// tracer is not carried over. Sequence numbers continue from the
    /// same counter, so the same `inject`/`dispatch_by_seq` calls on two
    /// forks name the same events — the property a model checker's DFS
    /// relies on.
    pub fn fork(&self) -> Self {
        Engine {
            actors: self.actors.clone(),
            alive: self.alive.clone(),
            queue: self.queue.clone(),
            network: self.network.fork(),
            now: self.now,
            seq: self.seq,
            dispatched: self.dispatched,
            max_events: self.max_events,
            overflowed: self.overflowed,
            tracer: None,
            // Like the tracer, the obs bundle is not carried over: forks
            // incrementing the shared registry would multiply-count.
            obs: None,
            faults: self.faults.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ping-pong actor: replies to `n > 0` with `n - 1`, alternating
    /// message kinds; records everything it saw.
    #[derive(Clone)]
    struct PingPong {
        peer: Option<NodeId>,
        seen: Vec<u32>,
        recovered: u32,
        crashed: u32,
    }

    impl PingPong {
        fn new(peer: Option<NodeId>) -> Self {
            PingPong {
                peer,
                seen: Vec::new(),
                recovered: 0,
                crashed: 0,
            }
        }
    }

    impl Actor<u32> for PingPong {
        fn on_message(&mut self, ctx: &mut Context<u32>, from: NodeId, _kind: MsgKind, msg: u32) {
            self.seen.push(msg);
            if msg > 0 {
                let to = self.peer.unwrap_or(from);
                let kind = if msg.is_multiple_of(2) {
                    MsgKind::Control
                } else {
                    MsgKind::Data
                };
                ctx.send(to, kind, msg - 1);
            }
        }
        fn on_crash(&mut self) {
            self.crashed += 1;
        }
        fn on_recover(&mut self, _ctx: &mut Context<u32>) {
            self.recovered += 1;
        }
    }

    #[test]
    fn ping_pong_counts_messages_exactly() {
        let mut engine: Engine<u32, PingPong> = Engine::new(EngineConfig::default());
        let a = engine.add_node(PingPong::new(Some(NodeId(1))));
        let b = engine.add_node(PingPong::new(Some(NodeId(0))));
        assert_eq!(engine.node_count(), 2);
        engine.inject(a, 0, 4);
        engine.run_until_idle();
        // 4 messages sent on the wire: 3→b, 2→a, 1→b, 0→a... wait: a sees 4
        // (local), sends 3; b sends 2; a sends 1; b sends 0; a sees 0, stops.
        let stats = engine.net_stats().snapshot();
        assert_eq!(stats.control_sent + stats.data_sent, 4);
        // Kinds alternate with parity of the value sent: 3(data→wait msg=4
        // even→Control carrying 3), 2 is sent while msg=3 odd→Data, etc.
        assert_eq!(stats.control_sent, 2);
        assert_eq!(stats.data_sent, 2);
        assert_eq!(engine.actor(a).seen, vec![4, 2, 0]);
        assert_eq!(engine.actor(b).seen, vec![3, 1]);
    }

    #[test]
    fn virtual_time_advances_by_latency() {
        let mut engine: Engine<u32, PingPong> = Engine::new(EngineConfig {
            network: NetworkConfig {
                control_latency: 5,
                data_latency: 11,
                medium: crate::Medium::PointToPoint,
            },
            max_events: 0,
        });
        let a = engine.add_node(PingPong::new(Some(NodeId(1))));
        let _b = engine.add_node(PingPong::new(Some(NodeId(0))));
        engine.inject(a, 2, 2);
        engine.run_until_idle();
        // t=2 local; a sends Control(1) (+5) → t=7; b sends Data(0) (+11) → 18.
        assert_eq!(engine.now(), SimTime(18));
    }

    #[test]
    fn crashed_nodes_drop_messages_and_recover() {
        let mut engine: Engine<u32, PingPong> = Engine::new(EngineConfig::default());
        let a = engine.add_node(PingPong::new(Some(NodeId(1))));
        let b = engine.add_node(PingPong::new(Some(NodeId(0))));
        engine.schedule_crash(b, 0);
        engine.inject(a, 1, 3); // a replies 2 to b, which is down
        engine.run_until_idle();
        assert_eq!(engine.net_stats().snapshot().dropped, 1);
        assert!(engine.actor(b).seen.is_empty());
        assert!(!engine.is_alive(b));
        assert_eq!(engine.actor(b).crashed, 1);

        engine.schedule_recover(b, 0);
        engine.inject(a, 1, 1); // a sends 0 to b, which is back up
        engine.run_until_idle();
        assert!(engine.is_alive(b));
        assert_eq!(engine.actor(b).recovered, 1);
        assert_eq!(engine.actor(b).seen, vec![0]);
    }

    struct TimerActor {
        fired: Vec<u64>,
    }
    impl Actor<u32> for TimerActor {
        fn on_message(&mut self, ctx: &mut Context<u32>, _from: NodeId, _k: MsgKind, _msg: u32) {
            ctx.set_timer(10, 7);
            ctx.set_timer(5, 3);
        }
        fn on_timer(&mut self, _ctx: &mut Context<u32>, token: u64) {
            self.fired.push(token);
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let mut engine: Engine<u32, TimerActor> = Engine::new(EngineConfig::default());
        let a = engine.add_node(TimerActor { fired: Vec::new() });
        engine.inject(a, 0, 0);
        engine.run_until_idle();
        assert_eq!(engine.actor(a).fired, vec![3, 7]);
    }

    #[test]
    fn runaway_protocol_trips_the_valve() {
        /// Replies forever.
        struct Flood;
        impl Actor<u32> for Flood {
            fn on_message(&mut self, ctx: &mut Context<u32>, from: NodeId, _k: MsgKind, msg: u32) {
                ctx.send(from, MsgKind::Control, msg);
            }
        }
        let mut engine: Engine<u32, Flood> = Engine::new(EngineConfig {
            network: NetworkConfig::default(),
            max_events: 100,
        });
        let a = engine.add_node(Flood);
        let b = engine.add_node(Flood);
        let _ = b;
        engine.inject(a, 0, 1);
        let dispatched = engine.run_until_idle();
        assert!(engine.budget_exhausted(), "valve must trip");
        assert_eq!(dispatched, 100, "stops exactly at the budget");
        assert!(engine.has_pending(), "the undispatched event stays queued");
    }

    #[test]
    fn installed_drop_rule_loses_the_message_but_keeps_the_send_tally() {
        use crate::fault::{FaultAction, FaultPlan, FaultRule, LinkFilter};
        let mut engine: Engine<u32, PingPong> = Engine::new(EngineConfig::default());
        let a = engine.add_node(PingPong::new(Some(NodeId(1))));
        let b = engine.add_node(PingPong::new(Some(NodeId(0))));
        engine.install_faults(
            FaultPlan::new(0)
                .rule(FaultRule::always(LinkFilter::link(a, b), FaultAction::Drop).with_budget(1)),
        );
        engine.inject(a, 0, 4);
        engine.run_until_idle();
        // a's first reply (3→b) is eaten; the exchange dies there.
        assert_eq!(engine.actor(a).seen, vec![4]);
        assert!(engine.actor(b).seen.is_empty());
        let stats = engine.net_stats().snapshot();
        assert_eq!(stats.control_sent + stats.data_sent, 1, "sender still pays");
        assert_eq!(stats.dropped, 1);
        assert_eq!(engine.fault_stats().dropped, 1);
        assert_eq!(engine.clear_faults().dropped, 1);
        assert_eq!(engine.fault_stats(), crate::fault::FaultStats::default());
    }

    #[test]
    fn duplicate_rule_delivers_twice() {
        use crate::fault::{FaultAction, FaultPlan, FaultRule, LinkFilter};
        // One actor type covers both roles: forward if a peer is set,
        // always record.
        struct Both {
            peer: Option<NodeId>,
            got: Vec<u32>,
        }
        impl Actor<u32> for Both {
            fn on_message(&mut self, ctx: &mut Context<u32>, _f: NodeId, _k: MsgKind, msg: u32) {
                self.got.push(msg);
                if let Some(peer) = self.peer {
                    ctx.send(peer, MsgKind::Data, msg);
                }
            }
        }
        let mut engine: Engine<u32, Both> = Engine::new(EngineConfig::default());
        let a = engine.add_node(Both {
            peer: Some(NodeId(1)),
            got: vec![],
        });
        let b = engine.add_node(Both {
            peer: None,
            got: vec![],
        });
        engine.install_faults(FaultPlan::new(0).rule(FaultRule::always(
            LinkFilter::link(a, b),
            FaultAction::Duplicate(4),
        )));
        engine.inject(a, 0, 9);
        engine.run_until_idle();
        assert_eq!(engine.actor(b).got, vec![9, 9], "original plus one copy");
        assert_eq!(engine.fault_stats().duplicated, 1);
        // Exactly one send was tallied: the duplicate is injected, not paid.
        let stats = engine.net_stats().snapshot();
        assert_eq!(stats.data_sent, 1);
    }

    #[test]
    fn delay_rule_reorders_across_a_faster_message() {
        use crate::fault::{FaultAction, FaultPlan, FaultRule, LinkFilter};
        struct Rec {
            got: Vec<u32>,
        }
        impl Actor<u32> for Rec {
            fn on_message(&mut self, ctx: &mut Context<u32>, _f: NodeId, _k: MsgKind, msg: u32) {
                self.got.push(msg);
                // Node 0 fans out two messages to node 1 on injection.
                if ctx.id() == NodeId(0) {
                    ctx.send(NodeId(1), MsgKind::Control, 1);
                    ctx.send(NodeId(1), MsgKind::Control, 2);
                }
            }
        }
        let mut engine: Engine<u32, Rec> = Engine::new(EngineConfig::default());
        let a = engine.add_node(Rec { got: vec![] });
        let b = engine.add_node(Rec { got: vec![] });
        let _ = (a, b);
        // Delay only the *first* matching message; the second overtakes it.
        engine.install_faults(
            FaultPlan::new(0).rule(
                FaultRule::always(
                    LinkFilter::link(NodeId(0), NodeId(1)),
                    FaultAction::Delay(10),
                )
                .with_budget(1),
            ),
        );
        engine.inject(NodeId(0), 0, 0);
        engine.run_until_idle();
        assert_eq!(engine.actor(NodeId(1)).got, vec![2, 1], "reordered");
        assert_eq!(engine.fault_stats().delayed, 1);
    }

    #[test]
    fn plan_crash_events_fire_at_absolute_ticks() {
        use crate::fault::FaultPlan;
        let mut engine: Engine<u32, PingPong> = Engine::new(EngineConfig::default());
        let a = engine.add_node(PingPong::new(Some(NodeId(1))));
        let b = engine.add_node(PingPong::new(Some(NodeId(0))));
        engine.install_faults(FaultPlan::new(0).crash_at(b, 0).recover_at(b, 5));
        engine.inject(a, 1, 3); // a replies 2 → b at t=2 — b is down until t=5
        engine.run_until_idle();
        assert!(engine.is_alive(b));
        assert_eq!(engine.actor(b).crashed, 1);
        assert_eq!(engine.actor(b).recovered, 1);
        assert!(engine.actor(b).seen.is_empty());
        assert_eq!(engine.net_stats().snapshot().dropped, 1);
    }

    #[test]
    fn fault_trace_records_are_labelled() {
        use crate::fault::{FaultAction, FaultPlan, FaultRule, LinkFilter};
        let mut engine: Engine<u32, PingPong> = Engine::new(EngineConfig::default());
        let a = engine.add_node(PingPong::new(Some(NodeId(1))));
        let b = engine.add_node(PingPong::new(Some(NodeId(0))));
        let trace = TraceHandle::new(16);
        engine.set_tracer(trace.clone(), |m| format!("m{m}"));
        engine.install_faults(
            FaultPlan::new(0)
                .rule(FaultRule::always(LinkFilter::link(a, b), FaultAction::Drop).with_budget(1)),
        );
        engine.inject(a, 0, 4);
        engine.run_until_idle();
        let records = trace.snapshot();
        assert!(
            records
                .iter()
                .any(|r| r.label == "fault-drop:m3" && !r.delivered),
            "expected a fault-drop trace record, got {records:?}"
        );
    }

    #[test]
    fn deterministic_tiebreak_by_sequence() {
        // Two messages at the same instant are delivered in send order.
        struct Collect {
            got: Vec<u32>,
        }
        impl Actor<u32> for Collect {
            fn on_message(&mut self, _ctx: &mut Context<u32>, _f: NodeId, _k: MsgKind, msg: u32) {
                self.got.push(msg);
            }
        }
        let mut engine: Engine<u32, Collect> = Engine::new(EngineConfig::default());
        let a = engine.add_node(Collect { got: Vec::new() });
        engine.inject(a, 5, 1);
        engine.inject(a, 5, 2);
        engine.inject(a, 5, 3);
        engine.run_until_idle();
        assert_eq!(engine.actor(a).got, vec![1, 2, 3]);
    }

    #[derive(Clone)]
    struct Collect2 {
        got: Vec<u32>,
    }
    impl Actor<u32> for Collect2 {
        fn on_message(&mut self, _ctx: &mut Context<u32>, _f: NodeId, _k: MsgKind, msg: u32) {
            self.got.push(msg);
        }
    }

    #[test]
    fn pending_events_snapshot_and_selective_dispatch() {
        let mut engine: Engine<u32, Collect2> = Engine::new(EngineConfig::default());
        let a = engine.add_node(Collect2 { got: Vec::new() });
        let b = engine.add_node(Collect2 { got: Vec::new() });
        engine.inject(a, 3, 10);
        engine.inject(b, 1, 20);
        let pending = engine.pending_events(|m| format!("m{m}"));
        assert_eq!(pending.len(), 2);
        // Sorted by natural schedule: b's injection (t=1) first.
        assert_eq!(pending[0].target(), b);
        assert_eq!(pending[0].class(), PendingClass::Local);
        assert_eq!(pending[1].target(), a);
        assert!(pending[1].label().contains("m10"));
        // Dispatch out of natural order: a's event first.
        assert!(engine.dispatch_by_seq(pending[1].seq()));
        assert_eq!(engine.actor(a).got, vec![10]);
        assert_eq!(engine.now(), SimTime(3), "clock jumps to the event's time");
        assert!(engine.dispatch_by_seq(pending[0].seq()));
        assert_eq!(engine.now(), SimTime(3), "clock never regresses");
        assert!(!engine.has_pending());
        assert!(!engine.dispatch_by_seq(999), "unknown seq is a no-op");
    }

    #[test]
    fn content_hash_ignores_schedule_position() {
        let mut e1: Engine<u32, Collect2> = Engine::new(EngineConfig::default());
        let a1 = e1.add_node(Collect2 { got: Vec::new() });
        e1.inject(a1, 5, 42);
        let mut e2: Engine<u32, Collect2> = Engine::new(EngineConfig::default());
        let a2 = e2.add_node(Collect2 { got: Vec::new() });
        e2.inject(a2, 0, 7); // consumes seq 0 so the next event differs in seq/time
        e2.inject(a2, 9, 42);
        let p1 = e1.pending_events(|m| format!("{m}"));
        let p2 = e2.pending_events(|m| format!("{m}"));
        let h1 = p1[0].content_hash();
        let h2 = p2
            .iter()
            .find(|p| p.label().contains("42"))
            .unwrap()
            .content_hash();
        assert_eq!(h1, h2, "same payload+endpoints hash equal despite seq/time");
    }

    #[test]
    fn obs_counts_sends_drops_and_lifecycle() {
        let mut engine: Engine<u32, PingPong> = Engine::new(EngineConfig::default());
        let a = engine.add_node(PingPong::new(Some(NodeId(1))));
        let b = engine.add_node(PingPong::new(Some(NodeId(0))));
        let obs = doma_obs::Obs::new(32);
        engine.set_obs(obs.clone());
        engine.schedule_crash(b, 0);
        engine.inject(a, 1, 3); // a replies 2 to b, which is down
        engine.run_until_idle();
        engine.schedule_recover(b, 0);
        engine.run_until_idle();

        let snap = obs.metrics().snapshot();
        assert_eq!(snap.sum_counters("sim", "msgs_sent"), 1);
        assert_eq!(
            snap.counter("sim", "msgs_dropped", &[("reason", "crashed")]),
            1
        );
        assert_eq!(snap.counter("sim", "crashes", &[("node", "N1")]), 1);
        assert_eq!(snap.counter("sim", "recoveries", &[("node", "N1")]), 1);
        let names: Vec<String> = obs
            .events()
            .snapshot()
            .iter()
            .map(|e| e.name.clone())
            .collect();
        assert_eq!(names, vec!["sim.crash", "sim.drop", "sim.recover"]);
        assert!(engine.obs().is_some());

        // Forks do not inherit the bundle: their activity must not leak
        // into the parent's registry.
        let mut fork = engine.fork();
        assert!(fork.obs().is_none());
        fork.inject(a, 1, 3);
        fork.run_until_idle();
        assert_eq!(obs.metrics().snapshot().sum_counters("sim", "msgs_sent"), 1);
    }

    #[test]
    fn fork_is_independent() {
        let mut engine: Engine<u32, Collect2> = Engine::new(EngineConfig::default());
        let a = engine.add_node(Collect2 { got: Vec::new() });
        engine.inject(a, 0, 1);
        engine.inject(a, 0, 2);
        let mut fork = engine.fork();
        fork.run_until_idle();
        assert_eq!(fork.actor(a).got, vec![1, 2]);
        assert!(engine.actor(a).got.is_empty(), "original untouched");
        assert_eq!(engine.pending_len(), 2);
        // Network stats are deep-copied, not shared.
        fork.net_stats().record_drop();
        assert_eq!(engine.net_stats().snapshot().dropped, 0);
    }
}

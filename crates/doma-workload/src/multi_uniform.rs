//! Uniform multi-object workload: the sharding experiment's traffic.
//!
//! A contiguous catalog of `objects` ids (`0..objects`) receives i.i.d.
//! requests: object uniform, issuer uniform over `n` processors,
//! operation a read with probability `read_fraction`. Contiguous ids
//! matter: they hit the dense slot-table fast path in `doma-protocol`'s
//! nodes, and uniform traffic gives every shard placement policy real
//! work to balance.

use crate::MultiScheduleGen;
use doma_core::{DomaError, MultiSchedule, ObjectId, ProcessorId, Request, Result};
use doma_testkit::rng::{Rng, TestRng};

/// I.i.d. multi-object traffic over a contiguous catalog.
#[derive(Debug, Clone)]
pub struct MultiUniformWorkload {
    objects: u64,
    n: usize,
    read_fraction: f64,
}

impl MultiUniformWorkload {
    /// Creates the generator. `objects ≥ 1`, `n ≥ 1`,
    /// `read_fraction ∈ [0, 1]`.
    pub fn new(objects: u64, n: usize, read_fraction: f64) -> Result<Self> {
        if objects == 0 {
            return Err(DomaError::InvalidConfig("need at least one object".into()));
        }
        if n == 0 || n > doma_core::MAX_PROCESSORS {
            return Err(DomaError::InvalidConfig(format!("bad universe size {n}")));
        }
        if !(0.0..=1.0).contains(&read_fraction) {
            return Err(DomaError::InvalidConfig(format!(
                "read_fraction {read_fraction} outside [0, 1]"
            )));
        }
        Ok(MultiUniformWorkload {
            objects,
            n,
            read_fraction,
        })
    }

    /// Number of objects in the catalog (`ObjectId(0)..ObjectId(objects)`).
    pub fn objects(&self) -> u64 {
        self.objects
    }

    /// Number of processors requests are drawn from.
    pub fn universe(&self) -> usize {
        self.n
    }
}

impl MultiScheduleGen for MultiUniformWorkload {
    fn name(&self) -> &str {
        "multi-uniform"
    }

    fn generate_multi(&self, len: usize, seed: u64) -> MultiSchedule {
        let mut rng = TestRng::seed_from_u64(seed);
        let mut out = MultiSchedule::default();
        for _ in 0..len {
            let object = ObjectId(rng.gen_range(0..self.objects as usize) as u64);
            let issuer = ProcessorId::new(rng.gen_range(0..self.n));
            let request = if rng.gen_bool(self.read_fraction) {
                Request::read(issuer)
            } else {
                Request::write(issuer)
            };
            out.push(object, request);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(MultiUniformWorkload::new(0, 4, 0.5).is_err());
        assert!(MultiUniformWorkload::new(4, 0, 0.5).is_err());
        assert!(MultiUniformWorkload::new(4, 4, 1.5).is_err());
        assert!(MultiUniformWorkload::new(4, 4, 0.5).is_ok());
    }

    #[test]
    fn deterministic_contiguous_and_sized() {
        let g = MultiUniformWorkload::new(16, 8, 0.8).unwrap();
        let a = g.generate_multi(500, 11);
        assert_eq!(a, g.generate_multi(500, 11));
        assert_ne!(a, g.generate_multi(500, 12));
        assert_eq!(a.len(), 500);
        for r in a.requests() {
            assert!(r.object.0 < 16);
            assert!(r.request.issuer.index() < 8);
        }
        // Every object is touched: contiguous catalogs stay contiguous.
        assert_eq!(a.objects().len(), 16);
    }
}

//! Phased hotspot workload — *regular* access patterns (§5.1).

use crate::ScheduleGen;
use doma_core::{DomaError, ProcessorId, Request, Result, Schedule};
use doma_testkit::rng::{Rng, TestRng};

/// A workload with a relocating read hotspot: time is divided into phases
/// of `phase_len` requests; within a phase one processor (the *hotspot*,
/// advancing round-robin each phase) issues reads with probability
/// `hot_prob`, everything else (reads from other processors and occasional
/// writes from the hotspot) fills the rest.
///
/// This is the "generally regular" pattern of §5.1 — the regime where a
/// *convergent* algorithm should shine and where DA's migrate-on-read also
/// does well, while SA pays remote reads all phase long whenever the
/// hotspot is outside `Q`.
#[derive(Debug, Clone)]
pub struct HotspotWorkload {
    n: usize,
    phase_len: usize,
    hot_prob: f64,
}

impl HotspotWorkload {
    /// Creates the generator. `n ≥ 2`, `phase_len ≥ 1`,
    /// `hot_prob ∈ [0, 1]`.
    pub fn new(n: usize, phase_len: usize, hot_prob: f64) -> Result<Self> {
        if !(2..=doma_core::MAX_PROCESSORS).contains(&n) {
            return Err(DomaError::InvalidConfig(format!("bad universe size {n}")));
        }
        if phase_len == 0 {
            return Err(DomaError::InvalidConfig("phase_len must be > 0".into()));
        }
        if !(0.0..=1.0).contains(&hot_prob) {
            return Err(DomaError::InvalidConfig(format!(
                "hot_prob {hot_prob} outside [0, 1]"
            )));
        }
        Ok(HotspotWorkload {
            n,
            phase_len,
            hot_prob,
        })
    }

    /// The hotspot processor during phase `k`.
    pub fn hotspot_of_phase(&self, k: usize) -> ProcessorId {
        ProcessorId::new(k % self.n)
    }
}

impl ScheduleGen for HotspotWorkload {
    fn name(&self) -> &str {
        "hotspot"
    }

    fn generate(&self, len: usize, seed: u64) -> Schedule {
        let mut rng = TestRng::seed_from_u64(seed);
        let mut s = Schedule::new();
        for k in 0..len {
            let hot = self.hotspot_of_phase(k / self.phase_len);
            if rng.gen_bool(self.hot_prob) {
                s.push(Request::read(hot));
            } else if rng.gen_bool(0.5) {
                // Background read from a uniformly random processor.
                s.push(Request::read(ProcessorId::new(rng.gen_range(0..self.n))));
            } else {
                // Occasional write, issued by the hotspot (it owns the data
                // it is working on).
                s.push(Request::write(hot));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(HotspotWorkload::new(1, 5, 0.9).is_err());
        assert!(HotspotWorkload::new(4, 0, 0.9).is_err());
        assert!(HotspotWorkload::new(4, 5, 1.1).is_err());
        assert!(HotspotWorkload::new(4, 5, 0.9).is_ok());
    }

    #[test]
    fn hotspot_rotates_round_robin() {
        let g = HotspotWorkload::new(3, 10, 0.9).unwrap();
        assert_eq!(g.hotspot_of_phase(0).index(), 0);
        assert_eq!(g.hotspot_of_phase(1).index(), 1);
        assert_eq!(g.hotspot_of_phase(3).index(), 0);
    }

    #[test]
    fn phase_reads_concentrate_on_the_hotspot() {
        let g = HotspotWorkload::new(4, 100, 0.9).unwrap();
        let s = g.generate(100, 5); // exactly one phase, hotspot = 0
        let hot_reads = s
            .iter()
            .filter(|r| r.is_read() && r.issuer.index() == 0)
            .count();
        assert!(hot_reads >= 80, "got {hot_reads}");
    }

    #[test]
    fn contains_some_writes() {
        let g = HotspotWorkload::new(4, 10, 0.6).unwrap();
        let s = g.generate(400, 9);
        assert!(s.write_count() > 0);
        assert!(s.read_count() > s.write_count());
    }
}

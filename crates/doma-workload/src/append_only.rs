//! Append-only workload — the §6.2 satellite-image scenario.

use crate::ScheduleGen;
use doma_core::{DomaError, ProcessorId, Request, Result, Schedule};
use doma_testkit::rng::{Rng, TestRng};

/// A sequence of immutable objects (e.g. one satellite image per minute),
/// each *generated* at one of the first `generators` stations (a write of
/// "the latest object"), followed by a geometrically distributed number of
/// reads of the latest object from arbitrary stations
/// (mean `reads_per_write`).
///
/// §6.2 observes that the SA/DA analysis applies verbatim: SA is a fixed
/// set of `t` standing orders; DA is `t-1` permanent standing orders plus
/// temporary ones created by on-demand reads and cancelled at the next
/// object.
#[derive(Debug, Clone)]
pub struct AppendOnlyWorkload {
    stations: usize,
    generators: usize,
    reads_per_write: f64,
}

impl AppendOnlyWorkload {
    /// Creates the generator. `1 ≤ generators ≤ stations`,
    /// `reads_per_write ≥ 0` and finite.
    pub fn new(stations: usize, generators: usize, reads_per_write: f64) -> Result<Self> {
        if stations == 0 || stations > doma_core::MAX_PROCESSORS {
            return Err(DomaError::InvalidConfig(format!(
                "bad station count {stations}"
            )));
        }
        if generators == 0 || generators > stations {
            return Err(DomaError::InvalidConfig(format!(
                "need 1 <= generators <= stations, got {generators}/{stations}"
            )));
        }
        if !reads_per_write.is_finite() || reads_per_write < 0.0 {
            return Err(DomaError::InvalidConfig(format!(
                "reads_per_write must be finite and >= 0, got {reads_per_write}"
            )));
        }
        Ok(AppendOnlyWorkload {
            stations,
            generators,
            reads_per_write,
        })
    }
}

impl ScheduleGen for AppendOnlyWorkload {
    fn name(&self) -> &str {
        "append-only"
    }

    fn generate(&self, len: usize, seed: u64) -> Schedule {
        let mut rng = TestRng::seed_from_u64(seed);
        // Continue-reading probability giving mean reads_per_write reads.
        let p_more = self.reads_per_write / (1.0 + self.reads_per_write);
        let mut s = Schedule::new();
        'outer: loop {
            // A new object arrives at one of the generating stations.
            let gen_station = ProcessorId::new(rng.gen_range(0..self.generators));
            s.push(Request::write(gen_station));
            if s.len() >= len {
                break;
            }
            // Readers consume the latest object until the next one arrives.
            while rng.gen_bool(p_more) {
                let reader = ProcessorId::new(rng.gen_range(0..self.stations));
                s.push(Request::read(reader));
                if s.len() >= len {
                    break 'outer;
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(AppendOnlyWorkload::new(0, 1, 2.0).is_err());
        assert!(AppendOnlyWorkload::new(4, 0, 2.0).is_err());
        assert!(AppendOnlyWorkload::new(4, 5, 2.0).is_err());
        assert!(AppendOnlyWorkload::new(4, 2, -1.0).is_err());
        assert!(AppendOnlyWorkload::new(4, 2, f64::NAN).is_err());
        assert!(AppendOnlyWorkload::new(4, 2, 2.0).is_ok());
    }

    #[test]
    fn starts_with_a_write_and_writes_come_from_generators() {
        let g = AppendOnlyWorkload::new(6, 2, 3.0).unwrap();
        let s = g.generate(300, 5);
        assert!(s.requests()[0].is_write());
        for r in s.iter().filter(|r| r.is_write()) {
            assert!(r.issuer.index() < 2, "write from non-generator {r}");
        }
    }

    #[test]
    fn mean_reads_per_write_is_roughly_respected() {
        let g = AppendOnlyWorkload::new(6, 2, 4.0).unwrap();
        let s = g.generate(5000, 9);
        let ratio = s.read_count() as f64 / s.write_count() as f64;
        assert!((ratio - 4.0).abs() < 1.0, "observed {ratio}");
    }

    #[test]
    fn zero_reads_per_write_is_pure_write_stream() {
        let g = AppendOnlyWorkload::new(4, 2, 0.0).unwrap();
        let s = g.generate(50, 3);
        assert_eq!(s.read_count(), 0);
        assert_eq!(s.write_count(), 50);
    }
}

//! # doma-workload
//!
//! Deterministic schedule generators for the experiments:
//!
//! * [`UniformWorkload`] — i.i.d. requests, uniform over processors, with a
//!   configurable read fraction (the E9 read/write-mix sweep).
//! * [`ZipfWorkload`] — request issuers drawn from a Zipf distribution
//!   (skewed access, the common case in distributed databases).
//! * [`HotspotWorkload`] — a read hotspot that relocates every phase;
//!   *regular* access patterns in the sense of §5.1.
//! * [`ChaoticWorkload`] — issuer and operation re-drawn from freshly
//!   re-randomized weights every few requests; the *chaotic* patterns for
//!   which the paper argues competitive algorithms are the right choice.
//! * [`MobileWorkload`] — the §1.1/§2 mobile scenario: a user's location
//!   object is written as the user moves between cells and read by callers.
//! * [`AppendOnlyWorkload`] — the §6.2 append-only model: a stream of
//!   immutable versions (satellite images) generated at earth stations and
//!   read at arbitrary stations.
//!
//! All generators implement [`ScheduleGen`] and are fully deterministic
//! given a seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod append_only;
mod chaotic;
mod composite;
mod hotspot;
mod mobile;
mod multi_mobile;
mod multi_uniform;
pub mod trace;
mod uniform;
mod zipf;

pub use append_only::AppendOnlyWorkload;
pub use chaotic::ChaoticWorkload;
pub use composite::CompositeWorkload;
pub use hotspot::HotspotWorkload;
pub use mobile::MobileWorkload;
pub use multi_mobile::MultiMobileWorkload;
pub use multi_uniform::MultiUniformWorkload;
pub use uniform::UniformWorkload;
pub use zipf::{ZipfSampler, ZipfWorkload};

use doma_core::{MultiSchedule, Schedule};

/// A deterministic schedule generator: same seed, same schedule.
pub trait ScheduleGen {
    /// A short name for reports ("uniform", "zipf", …).
    fn name(&self) -> &str;

    /// Generates a schedule of `len` requests using `seed`.
    fn generate(&self, len: usize, seed: u64) -> Schedule;
}

/// A deterministic multi-object schedule generator: same seed, same
/// interleaved schedule. The multi-object analogue of [`ScheduleGen`];
/// these feed the shard partitioner and the sharded executor.
pub trait MultiScheduleGen {
    /// A short name for reports ("multi-uniform", "multi-mobile", …).
    fn name(&self) -> &str;

    /// Generates an interleaved schedule of `len` requests using `seed`.
    fn generate_multi(&self, len: usize, seed: u64) -> MultiSchedule;
}

impl MultiScheduleGen for MultiMobileWorkload {
    fn name(&self) -> &str {
        "multi-mobile"
    }

    fn generate_multi(&self, len: usize, seed: u64) -> MultiSchedule {
        MultiMobileWorkload::generate_multi(self, len, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every generator must be deterministic and produce the requested
    /// length over the requested universe.
    #[test]
    fn all_generators_are_deterministic() {
        let gens: Vec<Box<dyn ScheduleGen>> = vec![
            Box::new(UniformWorkload::new(5, 0.8).unwrap()),
            Box::new(ZipfWorkload::new(5, 1.1, 0.8).unwrap()),
            Box::new(HotspotWorkload::new(5, 10, 0.9).unwrap()),
            Box::new(ChaoticWorkload::new(5, 4).unwrap()),
            Box::new(MobileWorkload::new(4, 3, 0.3, 0.5).unwrap()),
            Box::new(AppendOnlyWorkload::new(5, 2, 3.0).unwrap()),
        ];
        for g in &gens {
            let a = g.generate(40, 7);
            let b = g.generate(40, 7);
            let c = g.generate(40, 8);
            assert_eq!(a, b, "{} must be deterministic", g.name());
            assert_ne!(a, c, "{} must vary with the seed", g.name());
            assert_eq!(a.len(), 40);
        }
    }
}

//! Chaotic workload — the access patterns with no exploitable regularity
//! (§5.1's argument for competitive over convergent algorithms).

use crate::ScheduleGen;
use doma_core::{DomaError, ProcessorId, Request, Result, Schedule};
use doma_testkit::rng::{Rng, TestRng};

/// Every `redraw_every` requests, a fresh random weight vector over
/// processors and a fresh read probability are drawn; requests within the
/// burst follow them. The past is deliberately useless for predicting the
/// future — history-based (convergent) allocators chase ghosts here.
#[derive(Debug, Clone)]
pub struct ChaoticWorkload {
    n: usize,
    redraw_every: usize,
}

impl ChaoticWorkload {
    /// Creates the generator. `n ≥ 2`, `redraw_every ≥ 1`.
    pub fn new(n: usize, redraw_every: usize) -> Result<Self> {
        if !(2..=doma_core::MAX_PROCESSORS).contains(&n) {
            return Err(DomaError::InvalidConfig(format!("bad universe size {n}")));
        }
        if redraw_every == 0 {
            return Err(DomaError::InvalidConfig(
                "redraw_every must be > 0".to_string(),
            ));
        }
        Ok(ChaoticWorkload { n, redraw_every })
    }
}

impl ScheduleGen for ChaoticWorkload {
    fn name(&self) -> &str {
        "chaotic"
    }

    fn generate(&self, len: usize, seed: u64) -> Schedule {
        let mut rng = TestRng::seed_from_u64(seed);
        let mut s = Schedule::new();
        let mut weights: Vec<f64> = vec![1.0; self.n];
        let mut read_prob = 0.5;
        for k in 0..len {
            if k % self.redraw_every == 0 {
                for w in &mut weights {
                    *w = rng.gen_range(0.05..1.0);
                }
                read_prob = rng.gen_range(0.1..0.9);
            }
            let total: f64 = weights.iter().sum();
            let mut u = rng.gen_range(0.0..total);
            let mut issuer = self.n - 1;
            for (i, w) in weights.iter().enumerate() {
                if u < *w {
                    issuer = i;
                    break;
                }
                u -= w;
            }
            let p = ProcessorId::new(issuer);
            s.push(if rng.gen_bool(read_prob) {
                Request::read(p)
            } else {
                Request::write(p)
            });
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(ChaoticWorkload::new(1, 4).is_err());
        assert!(ChaoticWorkload::new(4, 0).is_err());
        assert!(ChaoticWorkload::new(4, 4).is_ok());
    }

    #[test]
    fn produces_mixed_traffic_across_universe() {
        let g = ChaoticWorkload::new(6, 5).unwrap();
        let s = g.generate(600, 3);
        assert!(s.read_count() > 0 && s.write_count() > 0);
        assert_eq!(s.min_processors(), 6);
    }

    #[test]
    fn bursts_shift_the_distribution() {
        // With short bursts the per-burst dominant issuer should change —
        // measure the number of distinct "modal" issuers over bursts.
        let g = ChaoticWorkload::new(5, 20).unwrap();
        let s = g.generate(400, 1);
        let mut modal = Vec::new();
        for chunk in s.requests().chunks(20) {
            let mut counts = [0u32; 5];
            for r in chunk {
                counts[r.issuer.index()] += 1;
            }
            modal.push(
                counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, c)| **c)
                    .unwrap()
                    .0,
            );
        }
        modal.sort_unstable();
        modal.dedup();
        assert!(modal.len() >= 3, "expected shifting modes, got {modal:?}");
    }
}

//! Composite workloads: phase sequences of heterogeneous generators.

use crate::ScheduleGen;
use doma_core::{DomaError, Result, Schedule};

/// Chains generators into phases: the schedule is the concatenation of
/// each phase's output, cycling through the phases until `len` requests
/// are produced. Each phase gets a distinct derived seed, so phases are
/// independent but the whole composite stays deterministic.
///
/// This models the paper's §5.1 "first two hours … next four hours"
/// discussion: piecewise-regular workloads whose regime changes.
pub struct CompositeWorkload {
    name: String,
    phases: Vec<(Box<dyn ScheduleGen + Send + Sync>, usize)>,
}

impl CompositeWorkload {
    /// Creates a composite from `(generator, phase_length)` pairs. Every
    /// phase length must be positive.
    pub fn new(phases: Vec<(Box<dyn ScheduleGen + Send + Sync>, usize)>) -> Result<Self> {
        if phases.is_empty() {
            return Err(DomaError::InvalidConfig(
                "composite needs at least one phase".to_string(),
            ));
        }
        if phases.iter().any(|(_, len)| *len == 0) {
            return Err(DomaError::InvalidConfig(
                "phase lengths must be positive".to_string(),
            ));
        }
        let name = format!(
            "composite[{}]",
            phases
                .iter()
                .map(|(g, len)| format!("{}x{len}", g.name()))
                .collect::<Vec<_>>()
                .join("+")
        );
        Ok(CompositeWorkload { name, phases })
    }

    /// Number of phases per cycle.
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }
}

impl ScheduleGen for CompositeWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn generate(&self, len: usize, seed: u64) -> Schedule {
        let mut out = Schedule::new();
        let mut cycle = 0u64;
        'outer: loop {
            for (k, (gen, phase_len)) in self.phases.iter().enumerate() {
                // Derive a distinct seed per (cycle, phase).
                let phase_seed = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(cycle * 1009 + k as u64);
                let chunk = gen.generate((*phase_len).min(len - out.len()), phase_seed);
                out.extend_from(&chunk);
                if out.len() >= len {
                    break 'outer;
                }
            }
            cycle += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HotspotWorkload, UniformWorkload};

    fn composite() -> CompositeWorkload {
        CompositeWorkload::new(vec![
            (Box::new(UniformWorkload::new(5, 0.9).unwrap()), 30),
            (Box::new(HotspotWorkload::new(5, 10, 0.8).unwrap()), 20),
        ])
        .unwrap()
    }

    #[test]
    fn validation() {
        assert!(CompositeWorkload::new(vec![]).is_err());
        assert!(
            CompositeWorkload::new(vec![(Box::new(UniformWorkload::new(4, 0.5).unwrap()), 0)])
                .is_err()
        );
    }

    #[test]
    fn name_describes_phases() {
        let c = composite();
        assert_eq!(c.name(), "composite[uniformx30+hotspotx20]");
        assert_eq!(c.phase_count(), 2);
    }

    #[test]
    fn exact_length_and_determinism() {
        let c = composite();
        let a = c.generate(123, 9);
        let b = c.generate(123, 9);
        assert_eq!(a.len(), 123);
        assert_eq!(a, b);
        assert_ne!(a, c.generate(123, 10));
    }

    #[test]
    fn cycles_repeat_phases() {
        // 2 phases of 30+20 = 50 per cycle; 160 requests = 3.2 cycles.
        let c = composite();
        let s = c.generate(160, 1);
        assert_eq!(s.len(), 160);
        // Phase 1 is read-heavy (90%); check the first 30 requests lean
        // heavily toward reads.
        let head_reads = s.requests()[..30].iter().filter(|r| r.is_read()).count();
        assert!(head_reads >= 20, "got {head_reads}");
    }
}

//! Multi-user mobile workload: many location objects at once.
//!
//! §1.1: "an identification will be associated with a user … the location
//! of the user will be updated as a result of the user's mobility, and it
//! will be read on behalf of the callers." With many users there are many
//! location *objects*, one per user — the multi-object setting the
//! placement policies of `doma_algorithms::multi` are built for.

use doma_core::{DomaError, MultiSchedule, ObjectId, ProcessorId, Request, Result};
use doma_testkit::rng::{Rng, TestRng};

/// Generates interleaved location-tracking traffic for `users` mobile
/// users over `cells` cell processors and `callers` caller processors.
///
/// Per request: a user is drawn (Zipf over users — some people get called
/// a lot), then with probability `read_fraction` a random caller reads the
/// user's location object; otherwise the user moves with probability
/// `move_prob` and its current cell writes a location update.
#[derive(Debug, Clone)]
pub struct MultiMobileWorkload {
    users: usize,
    cells: usize,
    callers: usize,
    move_prob: f64,
    read_fraction: f64,
    user_sampler: crate::ZipfSampler,
}

impl MultiMobileWorkload {
    /// Creates the generator. Needs at least one user, one cell and one
    /// caller; universe = `1 + cells + callers` processors (processor 0 is
    /// the base station, as in the single-user [`crate::MobileWorkload`]).
    pub fn new(
        users: usize,
        cells: usize,
        callers: usize,
        move_prob: f64,
        read_fraction: f64,
    ) -> Result<Self> {
        if users == 0 || cells == 0 || callers == 0 {
            return Err(DomaError::InvalidConfig(
                "need at least one user, cell and caller".to_string(),
            ));
        }
        if 1 + cells + callers > doma_core::MAX_PROCESSORS {
            return Err(DomaError::InvalidConfig("universe too large".to_string()));
        }
        for (name, v) in [("move_prob", move_prob), ("read_fraction", read_fraction)] {
            if !(0.0..=1.0).contains(&v) {
                return Err(DomaError::InvalidConfig(format!(
                    "{name} {v} outside [0, 1]"
                )));
            }
        }
        Ok(MultiMobileWorkload {
            users,
            cells,
            callers,
            move_prob,
            read_fraction,
            user_sampler: crate::ZipfSampler::new(users, 0.8)?,
        })
    }

    /// Total number of processors: base station + cells + callers.
    pub fn universe(&self) -> usize {
        1 + self.cells + self.callers
    }

    /// Number of mobile users (= number of location objects).
    pub fn users(&self) -> usize {
        self.users
    }

    /// Generates `len` interleaved requests. Deterministic per seed.
    pub fn generate_multi(&self, len: usize, seed: u64) -> MultiSchedule {
        let mut rng = TestRng::seed_from_u64(seed);
        // Each user starts in a random cell.
        let mut location: Vec<usize> = (0..self.users)
            .map(|_| 1 + rng.gen_range(0..self.cells))
            .collect();
        let mut out = MultiSchedule::default();
        for _ in 0..len {
            let user = self.user_sampler.sample(&mut rng);
            let object = ObjectId(user as u64);
            if rng.gen_bool(self.read_fraction) {
                let caller = 1 + self.cells + rng.gen_range(0..self.callers);
                out.push(object, Request::read(ProcessorId::new(caller)));
            } else {
                if self.cells > 1 && rng.gen_bool(self.move_prob) {
                    let mut next = 1 + rng.gen_range(0..self.cells);
                    while next == location[user] {
                        next = 1 + rng.gen_range(0..self.cells);
                    }
                    location[user] = next;
                }
                out.push(object, Request::write(ProcessorId::new(location[user])));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(MultiMobileWorkload::new(0, 3, 2, 0.2, 0.5).is_err());
        assert!(MultiMobileWorkload::new(5, 0, 2, 0.2, 0.5).is_err());
        assert!(MultiMobileWorkload::new(5, 3, 0, 0.2, 0.5).is_err());
        assert!(MultiMobileWorkload::new(5, 40, 40, 0.2, 0.5).is_err());
        assert!(MultiMobileWorkload::new(5, 3, 2, 1.5, 0.5).is_err());
        assert!(MultiMobileWorkload::new(5, 3, 2, 0.2, 0.5).is_ok());
    }

    #[test]
    fn deterministic_and_sized() {
        let g = MultiMobileWorkload::new(8, 4, 3, 0.3, 0.6).unwrap();
        assert_eq!(g.universe(), 8);
        assert_eq!(g.users(), 8);
        let a = g.generate_multi(200, 5);
        let b = g.generate_multi(200, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        assert_ne!(a, g.generate_multi(200, 6));
    }

    #[test]
    fn roles_and_objects() {
        let g = MultiMobileWorkload::new(6, 3, 2, 0.4, 0.5).unwrap();
        let s = g.generate_multi(400, 9);
        for r in s.requests() {
            assert!(r.object.0 < 6, "object ids are user indices");
            let i = r.request.issuer.index();
            if r.request.is_write() {
                assert!((1..=3).contains(&i), "writes come from cells");
            } else {
                assert!((4..=5).contains(&i), "reads come from callers");
            }
        }
        // Zipf skew: user 0 is hottest.
        let per = s.per_object();
        let hot = per.get(&ObjectId(0)).map(|s| s.len()).unwrap_or(0);
        let cold = per.get(&ObjectId(5)).map(|s| s.len()).unwrap_or(0);
        assert!(hot > cold, "Zipf skew expected: {hot} vs {cold}");
    }
}

//! Zipf-skewed workload.

use crate::ScheduleGen;
use doma_core::{DomaError, ProcessorId, Request, Result, Schedule};
use doma_testkit::rng::{Rng, TestRng};

/// An inverse-CDF sampler for the Zipf distribution over `{0, …, n-1}`:
/// `P(k) ∝ 1 / (k+1)^theta`.
///
/// `theta = 0` degenerates to uniform; `theta ≈ 1` is the classic Zipf
/// skew seen in real access traces.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler. `n ≥ 1`, `theta ≥ 0` and finite.
    pub fn new(n: usize, theta: f64) -> Result<Self> {
        if n == 0 {
            return Err(DomaError::InvalidConfig("Zipf needs n >= 1".to_string()));
        }
        if !theta.is_finite() || theta < 0.0 {
            return Err(DomaError::InvalidConfig(format!(
                "Zipf exponent must be finite and >= 0, got {theta}"
            )));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(ZipfSampler { cdf })
    }

    /// Samples a rank in `0..n` (rank 0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u = rng.gen_f64();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// Requests whose issuers follow a Zipf distribution over the processors;
/// operation is a read with probability `read_fraction`.
#[derive(Debug, Clone)]
pub struct ZipfWorkload {
    n: usize,
    sampler: ZipfSampler,
    read_fraction: f64,
}

impl ZipfWorkload {
    /// Creates the generator; see [`ZipfSampler::new`] for `theta`.
    pub fn new(n: usize, theta: f64, read_fraction: f64) -> Result<Self> {
        if n == 0 || n > doma_core::MAX_PROCESSORS {
            return Err(DomaError::InvalidConfig(format!("bad universe size {n}")));
        }
        if !(0.0..=1.0).contains(&read_fraction) {
            return Err(DomaError::InvalidConfig(format!(
                "read_fraction {read_fraction} outside [0, 1]"
            )));
        }
        Ok(ZipfWorkload {
            n,
            sampler: ZipfSampler::new(n, theta)?,
            read_fraction,
        })
    }

    /// The universe size `n`.
    pub fn universe(&self) -> usize {
        self.n
    }
}

impl ScheduleGen for ZipfWorkload {
    fn name(&self) -> &str {
        "zipf"
    }

    fn generate(&self, len: usize, seed: u64) -> Schedule {
        let mut rng = TestRng::seed_from_u64(seed);
        (0..len)
            .map(|_| {
                let p = ProcessorId::new(self.sampler.sample(&mut rng));
                if rng.gen_bool(self.read_fraction) {
                    Request::read(p)
                } else {
                    Request::write(p)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_validation() {
        assert!(ZipfSampler::new(0, 1.0).is_err());
        assert!(ZipfSampler::new(4, -1.0).is_err());
        assert!(ZipfSampler::new(4, f64::NAN).is_err());
        assert!(ZipfSampler::new(4, 0.0).is_ok());
    }

    #[test]
    fn pmf_sums_to_one_and_is_monotone() {
        let s = ZipfSampler::new(8, 1.2).unwrap();
        let total: f64 = (0..8).map(|k| s.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for k in 1..8 {
            assert!(s.pmf(k) <= s.pmf(k - 1), "pmf must be non-increasing");
        }
    }

    #[test]
    fn theta_zero_is_uniform() {
        let s = ZipfSampler::new(5, 0.0).unwrap();
        for k in 0..5 {
            assert!((s.pmf(k) - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_shows_in_samples() {
        let s = ZipfSampler::new(10, 1.5).unwrap();
        let mut rng = TestRng::seed_from_u64(0);
        let mut counts = [0u32; 10];
        for _ in 0..20_000 {
            counts[s.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > 4 * counts[4], "{counts:?}");
        // Every rank remains reachable.
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn workload_generates_within_universe() {
        let g = ZipfWorkload::new(6, 0.9, 0.7).unwrap();
        let s = g.generate(300, 11);
        assert!(s.min_processors() <= 6);
        assert!(s.read_count() > s.write_count());
    }
}

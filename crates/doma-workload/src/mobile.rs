//! Mobile-computing workload — the §1.1/§2 location-tracking scenario.

use crate::ScheduleGen;
use doma_core::{DomaError, ProcessorId, Request, Result, Schedule};
use doma_testkit::rng::{Rng, TestRng};

/// A mobile user's *location object*:
///
/// * processor `0` is the **base station** (the natural `F` of DA's `t=2`
///   configuration, §2);
/// * processors `1..=cells` are cell processors; the user is attached to
///   one of them and moves to a uniformly random other cell with
///   probability `move_prob` before each request;
/// * processors `cells+1..cells+callers` are caller processors.
///
/// A read (probability `read_fraction`) is a caller looking the user up;
/// a write is a location update issued by the user's current cell.
#[derive(Debug, Clone)]
pub struct MobileWorkload {
    cells: usize,
    callers: usize,
    move_prob: f64,
    read_fraction: f64,
}

impl MobileWorkload {
    /// Creates the generator. `cells ≥ 1`, `callers ≥ 1`, probabilities in
    /// `[0, 1]`, total universe within [`doma_core::MAX_PROCESSORS`].
    pub fn new(cells: usize, callers: usize, move_prob: f64, read_fraction: f64) -> Result<Self> {
        if cells == 0 || callers == 0 {
            return Err(DomaError::InvalidConfig(
                "need at least one cell and one caller".to_string(),
            ));
        }
        if 1 + cells + callers > doma_core::MAX_PROCESSORS {
            return Err(DomaError::InvalidConfig("universe too large".to_string()));
        }
        for (name, v) in [("move_prob", move_prob), ("read_fraction", read_fraction)] {
            if !(0.0..=1.0).contains(&v) {
                return Err(DomaError::InvalidConfig(format!(
                    "{name} {v} outside [0, 1]"
                )));
            }
        }
        Ok(MobileWorkload {
            cells,
            callers,
            move_prob,
            read_fraction,
        })
    }

    /// Total number of processors: base station + cells + callers.
    pub fn universe(&self) -> usize {
        1 + self.cells + self.callers
    }

    /// The base-station processor (always id 0).
    pub fn base_station(&self) -> ProcessorId {
        ProcessorId::new(0)
    }
}

impl ScheduleGen for MobileWorkload {
    fn name(&self) -> &str {
        "mobile"
    }

    fn generate(&self, len: usize, seed: u64) -> Schedule {
        let mut rng = TestRng::seed_from_u64(seed);
        let mut current_cell = 1 + rng.gen_range(0..self.cells);
        let mut s = Schedule::new();
        for _ in 0..len {
            if self.cells > 1 && rng.gen_bool(self.move_prob) {
                // Hand off to a different cell.
                let mut next = 1 + rng.gen_range(0..self.cells);
                while next == current_cell {
                    next = 1 + rng.gen_range(0..self.cells);
                }
                current_cell = next;
            }
            if rng.gen_bool(self.read_fraction) {
                let caller = 1 + self.cells + rng.gen_range(0..self.callers);
                s.push(Request::read(ProcessorId::new(caller)));
            } else {
                s.push(Request::write(ProcessorId::new(current_cell)));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(MobileWorkload::new(0, 3, 0.2, 0.5).is_err());
        assert!(MobileWorkload::new(3, 0, 0.2, 0.5).is_err());
        assert!(MobileWorkload::new(3, 3, 1.2, 0.5).is_err());
        assert!(MobileWorkload::new(40, 40, 0.2, 0.5).is_err());
        assert!(MobileWorkload::new(3, 3, 0.2, 0.5).is_ok());
    }

    #[test]
    fn roles_are_separated() {
        let g = MobileWorkload::new(3, 2, 0.3, 0.6).unwrap();
        assert_eq!(g.universe(), 6);
        let s = g.generate(500, 4);
        for r in s.iter() {
            let i = r.issuer.index();
            if r.is_write() {
                assert!((1..=3).contains(&i), "writes come from cells, got P{i}");
            } else {
                assert!((4..=5).contains(&i), "reads come from callers, got P{i}");
            }
        }
    }

    #[test]
    fn user_moves_between_cells() {
        let g = MobileWorkload::new(4, 1, 0.5, 0.0).unwrap(); // writes only
        let s = g.generate(200, 6);
        let mut writers: Vec<usize> = s.iter().map(|r| r.issuer.index()).collect();
        writers.sort_unstable();
        writers.dedup();
        assert!(
            writers.len() >= 3,
            "user should visit several cells: {writers:?}"
        );
    }

    #[test]
    fn zero_move_prob_pins_the_user() {
        let g = MobileWorkload::new(4, 1, 0.0, 0.0).unwrap();
        let s = g.generate(50, 6);
        let first = s.requests()[0].issuer;
        assert!(s.iter().all(|r| r.issuer == first));
    }
}

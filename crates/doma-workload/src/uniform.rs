//! Uniform i.i.d. workload.

use crate::ScheduleGen;
use doma_core::{DomaError, ProcessorId, Request, Result, Schedule};
use doma_testkit::rng::{Rng, TestRng};

/// Requests drawn i.i.d.: issuer uniform over `n` processors, operation a
/// read with probability `read_fraction`.
///
/// This is the workload for the E9 read/write-mix sweep: as
/// `read_fraction → 1` dynamic allocation wins (saving-reads pay off), as
/// it drops the invalidation churn favours static allocation.
#[derive(Debug, Clone)]
pub struct UniformWorkload {
    n: usize,
    read_fraction: f64,
}

impl UniformWorkload {
    /// Creates the generator. `n ≥ 1`, `read_fraction ∈ [0, 1]`.
    pub fn new(n: usize, read_fraction: f64) -> Result<Self> {
        if n == 0 || n > doma_core::MAX_PROCESSORS {
            return Err(DomaError::InvalidConfig(format!("bad universe size {n}")));
        }
        if !(0.0..=1.0).contains(&read_fraction) {
            return Err(DomaError::InvalidConfig(format!(
                "read_fraction {read_fraction} outside [0, 1]"
            )));
        }
        Ok(UniformWorkload { n, read_fraction })
    }

    /// The read fraction.
    pub fn read_fraction(&self) -> f64 {
        self.read_fraction
    }
}

impl ScheduleGen for UniformWorkload {
    fn name(&self) -> &str {
        "uniform"
    }

    fn generate(&self, len: usize, seed: u64) -> Schedule {
        let mut rng = TestRng::seed_from_u64(seed);
        (0..len)
            .map(|_| {
                let p = ProcessorId::new(rng.gen_range(0..self.n));
                if rng.gen_bool(self.read_fraction) {
                    Request::read(p)
                } else {
                    Request::write(p)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(UniformWorkload::new(0, 0.5).is_err());
        assert!(UniformWorkload::new(4, 1.5).is_err());
        assert!(UniformWorkload::new(4, -0.1).is_err());
        assert!(UniformWorkload::new(200, 0.5).is_err());
        assert!(UniformWorkload::new(4, 0.5).is_ok());
    }

    #[test]
    fn read_fraction_is_respected_statistically() {
        let g = UniformWorkload::new(6, 0.75).unwrap();
        let s = g.generate(4000, 1);
        let frac = s.read_count() as f64 / s.len() as f64;
        assert!((frac - 0.75).abs() < 0.05, "observed {frac}");
    }

    #[test]
    fn extremes() {
        let g = UniformWorkload::new(3, 1.0).unwrap();
        assert_eq!(g.generate(50, 2).write_count(), 0);
        let g = UniformWorkload::new(3, 0.0).unwrap();
        assert_eq!(g.generate(50, 2).read_count(), 0);
    }

    #[test]
    fn issuers_span_the_universe() {
        let g = UniformWorkload::new(5, 0.5).unwrap();
        let s = g.generate(500, 3);
        assert_eq!(s.min_processors(), 5);
    }
}

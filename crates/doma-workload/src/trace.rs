//! Schedule trace files: load and store schedules in the paper's textual
//! notation, one or more requests per line, with `#` comments.
//!
//! ```text
//! # remote-reader adversary, processor 2
//! r2 r2 r2 r2
//! w0
//! r2 r2
//! ```

use doma_core::{DomaError, Result, Schedule};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Parses a trace from any reader: whitespace/newline separated `r<i>` /
/// `w<i>` tokens; `#` starts a comment running to end of line.
pub fn read_trace<R: Read>(reader: R) -> Result<Schedule> {
    let mut tokens = String::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| DomaError::InvalidConfig(format!("I/O error: {e}")))?;
        let body = line.split('#').next().unwrap_or("");
        if !body.trim().is_empty() {
            tokens.push_str(body);
            tokens.push(' ');
        }
        let _ = lineno;
    }
    if tokens.trim().is_empty() {
        return Err(DomaError::InvalidConfig(
            "trace contains no requests".into(),
        ));
    }
    tokens
        .parse::<Schedule>()
        .map_err(|e| DomaError::InvalidConfig(format!("bad trace: {e}")))
}

/// Loads a trace file from disk.
pub fn load_trace(path: impl AsRef<Path>) -> Result<Schedule> {
    let file = std::fs::File::open(path.as_ref()).map_err(|e| {
        DomaError::InvalidConfig(format!("cannot open {}: {e}", path.as_ref().display()))
    })?;
    read_trace(file)
}

/// Writes a schedule as a trace, wrapping at `per_line` requests per line
/// (0 = everything on one line), with an optional leading comment.
pub fn write_trace<W: Write>(
    mut writer: W,
    schedule: &Schedule,
    comment: Option<&str>,
    per_line: usize,
) -> Result<()> {
    let io_err = |e: std::io::Error| DomaError::InvalidConfig(format!("I/O error: {e}"));
    if let Some(comment) = comment {
        for line in comment.lines() {
            writeln!(writer, "# {line}").map_err(io_err)?;
        }
    }
    if per_line == 0 {
        writeln!(writer, "{schedule}").map_err(io_err)?;
        return Ok(());
    }
    for chunk in schedule.requests().chunks(per_line) {
        let line: Vec<String> = chunk.iter().map(|r| r.to_string()).collect();
        writeln!(writer, "{}", line.join(" ")).map_err(io_err)?;
    }
    Ok(())
}

/// Stores a trace file on disk (see [`write_trace`]).
pub fn store_trace(
    path: impl AsRef<Path>,
    schedule: &Schedule,
    comment: Option<&str>,
    per_line: usize,
) -> Result<()> {
    let file = std::fs::File::create(path.as_ref()).map_err(|e| {
        DomaError::InvalidConfig(format!("cannot create {}: {e}", path.as_ref().display()))
    })?;
    write_trace(std::io::BufWriter::new(file), schedule, comment, per_line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_memory() {
        let schedule: Schedule = "r1 w2 r3 r3 w0 r1 r2".parse().unwrap();
        let mut buf = Vec::new();
        write_trace(&mut buf, &schedule, Some("a test trace\nsecond line"), 3).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("# a test trace\n# second line\n"));
        assert_eq!(text.lines().filter(|l| !l.starts_with('#')).count(), 3);
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, schedule);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "# header\n\nr1 r2 # trailing comment\n   \nw0\n";
        let s = read_trace(text.as_bytes()).unwrap();
        assert_eq!(s.to_string(), "r1 r2 w0");
    }

    #[test]
    fn bad_tokens_are_reported() {
        let err = read_trace("r1 xyz".as_bytes()).unwrap_err().to_string();
        assert!(err.contains("bad trace"), "{err}");
        let err = read_trace("q7".as_bytes()).unwrap_err().to_string();
        assert!(err.contains("bad trace"), "{err}");
    }

    #[test]
    fn out_of_range_processor_is_reported() {
        let err = read_trace("r99".as_bytes()).unwrap_err().to_string();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn empty_trace_is_an_error() {
        let err = read_trace("".as_bytes()).unwrap_err().to_string();
        assert!(err.contains("no requests"), "{err}");
    }

    #[test]
    fn comment_only_trace_is_an_error() {
        let text = "# only commentary\n\n   # and blanks\n";
        let err = read_trace(text.as_bytes()).unwrap_err().to_string();
        assert!(err.contains("no requests"), "{err}");
    }

    #[test]
    fn single_line_mode() {
        let schedule: Schedule = "r1 w2".parse().unwrap();
        let mut buf = Vec::new();
        write_trace(&mut buf, &schedule, None, 0).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "r1 w2\n");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("doma-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.txt");
        let schedule: Schedule = "r4 w1 r4 r4".parse().unwrap();
        store_trace(&path, &schedule, Some("file roundtrip"), 2).unwrap();
        let back = load_trace(&path).unwrap();
        assert_eq!(back, schedule);
        assert!(load_trace(dir.join("missing.txt")).is_err());
        std::fs::remove_file(&path).ok();
    }
}

//! Property tests of the core model: set algebra, cost-function structure
//! and schedule round-trips.

use doma_core::{
    request_cost, scheme_after, AllocatedRequest, CostModel, CostVector, Decision, Op, ProcSet,
    ProcessorId, Request, Schedule,
};
use proptest::prelude::*;

fn arb_procset() -> impl Strategy<Value = ProcSet> {
    // Restrict to a 16-processor universe so intersections are common.
    (0u64..(1 << 16)).prop_map(ProcSet::from_bits)
}

fn arb_processor() -> impl Strategy<Value = ProcessorId> {
    (0usize..16).prop_map(ProcessorId::new)
}

fn arb_request() -> impl Strategy<Value = Request> {
    (arb_processor(), any::<bool>()).prop_map(|(p, r)| Request {
        op: if r { Op::Read } else { Op::Write },
        issuer: p,
    })
}

proptest! {
    // ----- ProcSet is a boolean algebra -------------------------------

    #[test]
    fn procset_union_is_commutative_and_idempotent(a in arb_procset(), b in arb_procset()) {
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert_eq!(a.union(a), a);
        prop_assert!(a.is_subset(a.union(b)));
    }

    #[test]
    fn procset_de_morgan_via_difference(a in arb_procset(), b in arb_procset(), c in arb_procset()) {
        // a \ (b ∪ c) == (a \ b) \ c
        prop_assert_eq!(a.difference(b.union(c)), a.difference(b).difference(c));
        // |a ∪ b| = |a| + |b| - |a ∩ b|
        prop_assert_eq!(
            a.union(b).len(),
            a.len() + b.len() - a.intersection(b).len()
        );
    }

    #[test]
    fn procset_iteration_roundtrips(a in arb_procset()) {
        let rebuilt: ProcSet = a.iter().collect();
        prop_assert_eq!(rebuilt, a);
        prop_assert_eq!(a.iter().count(), a.len());
    }

    #[test]
    fn procset_subsets_count_is_power_of_two(a in (0u64..(1 << 10)).prop_map(ProcSet::from_bits)) {
        prop_assert_eq!(a.subsets().count(), 1usize << a.len());
    }

    // ----- Cost-function structure ------------------------------------

    /// The cost of a read grows monotonically with the execution set —
    /// which is why OPT only ever uses singletons for reads.
    #[test]
    fn read_cost_monotone_in_execution_set(
        scheme in arb_procset(),
        exec in arb_procset(),
        extra in arb_processor(),
        issuer in arb_processor(),
    ) {
        prop_assume!(!exec.is_empty());
        prop_assume!(!exec.contains(extra) && extra != issuer);
        let small = AllocatedRequest::new(Request::read(issuer), Decision::exec(exec));
        let big = AllocatedRequest::new(Request::read(issuer), Decision::exec(exec.with(extra)));
        let model = CostModel::stationary(0.5, 1.0).unwrap();
        prop_assert!(
            request_cost(&small, scheme).eval(&model)
                <= request_cost(&big, scheme).eval(&model)
        );
    }

    /// A saving-read costs exactly one more I/O than the plain read, in
    /// every configuration (§3.2), and nothing more in communication.
    #[test]
    fn saving_read_costs_exactly_one_extra_io(
        scheme in arb_procset(),
        exec in arb_procset(),
        issuer in arb_processor(),
    ) {
        prop_assume!(!exec.is_empty());
        let plain = AllocatedRequest::new(Request::read(issuer), Decision::exec(exec));
        let saving = AllocatedRequest::new(Request::read(issuer), Decision::saving(exec));
        let a = request_cost(&plain, scheme);
        let b = request_cost(&saving, scheme);
        prop_assert_eq!(b.saturating_sub(&a), CostVector::new(0, 0, 1));
    }

    /// Write invalidations never exceed the old scheme size, and the I/O
    /// count always equals the execution-set size.
    #[test]
    fn write_cost_structure(
        scheme in arb_procset(),
        exec in arb_procset(),
        issuer in arb_processor(),
    ) {
        prop_assume!(!exec.is_empty());
        let w = AllocatedRequest::new(Request::write(issuer), Decision::exec(exec));
        let c = request_cost(&w, scheme);
        prop_assert!(c.control as usize <= scheme.len());
        prop_assert_eq!(c.io as usize, exec.len());
        // Data messages: |X| - 1 if the writer participates, |X| otherwise.
        let expected_data = if exec.contains(issuer) {
            exec.len() - 1
        } else {
            exec.len()
        };
        prop_assert_eq!(c.data as usize, expected_data);
    }

    /// Scheme evolution: writes replace, saving-reads extend, reads keep.
    #[test]
    fn scheme_evolution_laws(
        scheme in arb_procset(),
        exec in arb_procset(),
        req in arb_request(),
        saving in any::<bool>(),
    ) {
        prop_assume!(!exec.is_empty());
        let step = AllocatedRequest::new(
            req,
            if saving { Decision::saving(exec) } else { Decision::exec(exec) },
        );
        let next = scheme_after(scheme, &step);
        match (req.op, step.saving) {
            (Op::Write, _) => prop_assert_eq!(next, exec),
            (Op::Read, true) => {
                prop_assert_eq!(next, scheme.with(req.issuer));
                prop_assert!(scheme.is_subset(next));
            }
            (Op::Read, false) => prop_assert_eq!(next, scheme),
        }
    }

    /// Mobile pricing is stationary pricing minus the I/O component.
    #[test]
    fn mobile_cost_is_stationary_minus_io(
        scheme in arb_procset(),
        exec in arb_procset(),
        req in arb_request(),
        cc in 0.0f64..1.0,
        extra in 0.0f64..1.0,
    ) {
        prop_assume!(!exec.is_empty());
        let cd = cc + extra;
        let sc = CostModel::stationary(cc, cd).unwrap();
        let mc = CostModel::mobile(cc, cd).unwrap();
        let step = AllocatedRequest::new(req, Decision::exec(exec));
        let v = request_cost(&step, scheme);
        prop_assert!((v.eval(&mc) - (v.eval(&sc) - v.io as f64)).abs() < 1e-9);
    }

    // ----- Schedule round-trips ----------------------------------------

    #[test]
    fn schedule_display_parse_roundtrip(reqs in proptest::collection::vec(arb_request(), 0..50)) {
        let s = Schedule::from_requests(reqs);
        let parsed: Schedule = s.to_string().parse().unwrap();
        prop_assert_eq!(parsed, s);
    }

    #[test]
    fn repeated_schedule_has_multiplied_counts(
        reqs in proptest::collection::vec(arb_request(), 1..10),
        times in 0usize..5,
    ) {
        let s = Schedule::from_requests(reqs);
        let r = s.repeated(times);
        prop_assert_eq!(r.len(), s.len() * times);
        prop_assert_eq!(r.read_count(), s.read_count() * times);
        prop_assert_eq!(r.write_count(), s.write_count() * times);
    }
}

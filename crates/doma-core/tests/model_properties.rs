//! Property tests of the core model: set algebra, cost-function structure
//! and schedule round-trips. Runs on the in-tree `doma-testkit` harness;
//! failures print a minimal shrunk input and a `DOMA_PROP_SEED` replay
//! line.

use doma_core::{
    request_cost, scheme_after, AllocatedRequest, CostModel, CostVector, Decision, Op, ProcSet,
    ProcessorId, Request, Schedule,
};
use doma_testkit::prop_assume;
use doma_testkit::property::{self as prop, Gen};

/// Sets over a 16-processor universe (so intersections are common),
/// shrinking through the raw bitmask toward the empty set.
fn arb_procset() -> impl Gen<Value = ProcSet> {
    prop::iso(
        prop::range(0u64..(1 << 16)),
        ProcSet::from_bits,
        |ps: &ProcSet| ps.bits(),
    )
}

fn arb_processor() -> impl Gen<Value = ProcessorId> {
    prop::iso(
        prop::range(0usize..16),
        ProcessorId::new,
        |p: &ProcessorId| p.index(),
    )
}

/// Requests over 16 processors; shrinks writes to reads, issuers toward 0.
struct RequestGen;

impl Gen for RequestGen {
    type Value = Request;

    fn generate(&self, rng: &mut doma_testkit::TestRng) -> Request {
        let p = arb_processor().generate(rng);
        if prop::bools().generate(rng) {
            Request::read(p)
        } else {
            Request::write(p)
        }
    }

    fn shrink(&self, v: &Request) -> Vec<Request> {
        let mut out = Vec::new();
        if v.op == Op::Write {
            out.push(Request::read(v.issuer));
        }
        for issuer in arb_processor().shrink(&v.issuer) {
            out.push(Request { op: v.op, issuer });
        }
        out
    }
}

fn arb_request() -> RequestGen {
    RequestGen
}

doma_testkit::property! {
    // ----- ProcSet is a boolean algebra -------------------------------

    fn procset_union_is_commutative_and_idempotent(a in arb_procset(), b in arb_procset()) {
        assert_eq!(a.union(b), b.union(a));
        assert_eq!(a.union(a), a);
        assert!(a.is_subset(a.union(b)));
    }

    fn procset_de_morgan_via_difference(a in arb_procset(), b in arb_procset(), c in arb_procset()) {
        // a \ (b ∪ c) == (a \ b) \ c
        assert_eq!(a.difference(b.union(c)), a.difference(b).difference(c));
        // |a ∪ b| = |a| + |b| - |a ∩ b|
        assert_eq!(
            a.union(b).len(),
            a.len() + b.len() - a.intersection(b).len()
        );
    }

    fn procset_iteration_roundtrips(a in arb_procset()) {
        let rebuilt: ProcSet = a.iter().collect();
        assert_eq!(rebuilt, a);
        assert_eq!(a.iter().count(), a.len());
    }

    fn procset_subsets_count_is_power_of_two(
        a in prop::iso(prop::range(0u64..(1 << 10)), ProcSet::from_bits, |ps: &ProcSet| ps.bits())
    ) {
        assert_eq!(a.subsets().count(), 1usize << a.len());
    }

    // ----- Cost-function structure ------------------------------------

    /// The cost of a read grows monotonically with the execution set —
    /// which is why OPT only ever uses singletons for reads.
    fn read_cost_monotone_in_execution_set(
        scheme in arb_procset(),
        exec in arb_procset(),
        extra in arb_processor(),
        issuer in arb_processor(),
    ) {
        prop_assume!(!exec.is_empty());
        prop_assume!(!exec.contains(extra) && extra != issuer);
        let small = AllocatedRequest::new(Request::read(issuer), Decision::exec(exec));
        let big = AllocatedRequest::new(Request::read(issuer), Decision::exec(exec.with(extra)));
        let model = CostModel::stationary(0.5, 1.0).unwrap();
        assert!(
            request_cost(&small, scheme).eval(&model)
                <= request_cost(&big, scheme).eval(&model)
        );
    }

    /// A saving-read costs exactly one more I/O than the plain read, in
    /// every configuration (§3.2), and nothing more in communication.
    fn saving_read_costs_exactly_one_extra_io(
        scheme in arb_procset(),
        exec in arb_procset(),
        issuer in arb_processor(),
    ) {
        prop_assume!(!exec.is_empty());
        let plain = AllocatedRequest::new(Request::read(issuer), Decision::exec(exec));
        let saving = AllocatedRequest::new(Request::read(issuer), Decision::saving(exec));
        let a = request_cost(&plain, scheme);
        let b = request_cost(&saving, scheme);
        assert_eq!(b.saturating_sub(&a), CostVector::new(0, 0, 1));
    }

    /// Write invalidations never exceed the old scheme size, and the I/O
    /// count always equals the execution-set size.
    fn write_cost_structure(
        scheme in arb_procset(),
        exec in arb_procset(),
        issuer in arb_processor(),
    ) {
        prop_assume!(!exec.is_empty());
        let w = AllocatedRequest::new(Request::write(issuer), Decision::exec(exec));
        let c = request_cost(&w, scheme);
        assert!(c.control as usize <= scheme.len());
        assert_eq!(c.io as usize, exec.len());
        // Data messages: |X| - 1 if the writer participates, |X| otherwise.
        let expected_data = if exec.contains(issuer) {
            exec.len() - 1
        } else {
            exec.len()
        };
        assert_eq!(c.data as usize, expected_data);
    }

    /// Scheme evolution: writes replace, saving-reads extend, reads keep.
    fn scheme_evolution_laws(
        scheme in arb_procset(),
        exec in arb_procset(),
        req in arb_request(),
        saving in prop::bools(),
    ) {
        prop_assume!(!exec.is_empty());
        let step = AllocatedRequest::new(
            req,
            if saving { Decision::saving(exec) } else { Decision::exec(exec) },
        );
        let next = scheme_after(scheme, &step);
        match (req.op, step.saving) {
            (Op::Write, _) => assert_eq!(next, exec),
            (Op::Read, true) => {
                assert_eq!(next, scheme.with(req.issuer));
                assert!(scheme.is_subset(next));
            }
            (Op::Read, false) => assert_eq!(next, scheme),
        }
    }

    /// Mobile pricing is stationary pricing minus the I/O component.
    fn mobile_cost_is_stationary_minus_io(
        scheme in arb_procset(),
        exec in arb_procset(),
        req in arb_request(),
        cc in prop::range(0.0f64..1.0),
        extra in prop::range(0.0f64..1.0),
    ) {
        prop_assume!(!exec.is_empty());
        let cd = cc + extra;
        let sc = CostModel::stationary(cc, cd).unwrap();
        let mc = CostModel::mobile(cc, cd).unwrap();
        let step = AllocatedRequest::new(req, Decision::exec(exec));
        let v = request_cost(&step, scheme);
        assert!((v.eval(&mc) - (v.eval(&sc) - v.io as f64)).abs() < 1e-9);
    }

    // ----- Schedule round-trips ----------------------------------------

    fn schedule_display_parse_roundtrip(reqs in prop::vec_in(arb_request(), 0..50)) {
        let s = Schedule::from_requests(reqs);
        let parsed: Schedule = s.to_string().parse().unwrap();
        assert_eq!(parsed, s);
    }

    fn repeated_schedule_has_multiplied_counts(
        reqs in prop::vec_in(arb_request(), 1..10),
        times in prop::range(0usize..5),
    ) {
        let s = Schedule::from_requests(reqs);
        let r = s.repeated(times);
        assert_eq!(r.len(), s.len() * times);
        assert_eq!(r.read_count(), s.read_count() * times);
        assert_eq!(r.write_count(), s.write_count() * times);
    }
}

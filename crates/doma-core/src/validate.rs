//! Standalone validation of allocation schedules (legality and
//! t-availability, §3.1), reporting *all* violations rather than stopping
//! at the first as [`crate::cost_of_schedule`] does.

use crate::{scheme_after, AllocationSchedule, ProcSet};

/// A legality violation: a read whose execution set misses the scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LegalityViolation {
    /// 0-based request position.
    pub position: usize,
    /// The offending execution set.
    pub exec: ProcSet,
    /// The scheme at the request.
    pub scheme: ProcSet,
}

/// An availability violation: the scheme dropped below `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvailabilityViolation {
    /// 0-based request position (`len` = after the final request).
    pub position: usize,
    /// Observed scheme size.
    pub scheme_size: usize,
}

/// The outcome of validating an allocation schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValidationReport {
    /// Reads violating legality.
    pub legality: Vec<LegalityViolation>,
    /// Positions violating the t-availability constraint.
    pub availability: Vec<AvailabilityViolation>,
    /// Positions of requests with empty execution sets.
    pub empty_exec: Vec<usize>,
}

impl ValidationReport {
    /// `true` when the schedule is legal and t-available throughout.
    pub fn is_valid(&self) -> bool {
        self.legality.is_empty() && self.availability.is_empty() && self.empty_exec.is_empty()
    }
}

/// Validates an allocation schedule against the legality and t-availability
/// constraints of §3.1, collecting every violation.
pub fn validate_allocation(alloc: &AllocationSchedule, t: usize) -> ValidationReport {
    let mut report = ValidationReport::default();
    let mut scheme = alloc.initial;
    for (k, step) in alloc.steps.iter().enumerate() {
        if scheme.len() < t {
            report.availability.push(AvailabilityViolation {
                position: k,
                scheme_size: scheme.len(),
            });
        }
        if step.exec.is_empty() {
            report.empty_exec.push(k);
        }
        if step.request.is_read() && !step.exec.intersects(scheme) {
            report.legality.push(LegalityViolation {
                position: k,
                exec: step.exec,
                scheme,
            });
        }
        scheme = scheme_after(scheme, step);
    }
    if scheme.len() < t {
        report.availability.push(AvailabilityViolation {
            position: alloc.steps.len(),
            scheme_size: scheme.len(),
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Decision, Request};

    fn ps(v: &[usize]) -> ProcSet {
        v.iter().copied().collect()
    }

    #[test]
    fn valid_schedule_passes() {
        let mut a = AllocationSchedule::new(ps(&[1, 2]));
        a.push(Request::read(3usize), Decision::saving(ps(&[1])));
        a.push(Request::write(2usize), Decision::exec(ps(&[1, 2])));
        let r = validate_allocation(&a, 2);
        assert!(r.is_valid(), "{r:?}");
    }

    #[test]
    fn collects_multiple_violations() {
        let mut a = AllocationSchedule::new(ps(&[1])); // below t=2 already
        a.push(Request::read(3usize), Decision::exec(ps(&[4]))); // illegal
        a.push(Request::write(2usize), Decision::exec(ps(&[2]))); // shrinks to 1
        a.push(Request::read(5usize), Decision::exec(ProcSet::EMPTY)); // empty + illegal
        let r = validate_allocation(&a, 2);
        assert!(!r.is_valid());
        assert_eq!(r.legality.len(), 2);
        assert_eq!(r.legality[0].position, 0);
        assert_eq!(r.legality[1].position, 2);
        assert_eq!(r.empty_exec, vec![2]);
        // positions 0,1,2 all have scheme size 1 (<2), plus final check.
        assert_eq!(r.availability.len(), 4);
    }

    #[test]
    fn final_scheme_below_t_is_flagged() {
        let mut a = AllocationSchedule::new(ps(&[1, 2]));
        a.push(Request::write(1usize), Decision::exec(ps(&[1])));
        let r = validate_allocation(&a, 2);
        assert_eq!(r.availability.len(), 1);
        assert_eq!(r.availability[0].position, 1);
        assert_eq!(r.availability[0].scheme_size, 1);
    }
}

//! Schedules: finite sequences of read/write requests (§3.1).

use crate::{Op, ProcessorId, Request};
use std::fmt;
use std::str::FromStr;

/// A finite sequence of read-write requests to the object, each issued by a
/// processor — the paper's ψ (§3.1). Any pair of writes, or a read and a
/// write, are totally ordered (assumed produced by the system's concurrency
/// control); reads between consecutive writes may be served in any order
/// without affecting the analysis.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule {
    requests: Vec<Request>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Creates a schedule from a request sequence.
    pub fn from_requests(requests: Vec<Request>) -> Self {
        Schedule { requests }
    }

    /// Appends a request.
    pub fn push(&mut self, r: Request) {
        self.requests.push(r);
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the schedule has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The request sequence.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Iterates over requests.
    pub fn iter(&self) -> impl Iterator<Item = Request> + '_ {
        self.requests.iter().copied()
    }

    /// Number of reads in the schedule.
    pub fn read_count(&self) -> usize {
        self.requests.iter().filter(|r| r.is_read()).count()
    }

    /// Number of writes in the schedule.
    pub fn write_count(&self) -> usize {
        self.requests.iter().filter(|r| r.is_write()).count()
    }

    /// The highest processor index referenced, plus one — the smallest
    /// system size this schedule fits in. Zero for the empty schedule.
    pub fn min_processors(&self) -> usize {
        self.requests
            .iter()
            .map(|r| r.issuer.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// Concatenates another schedule after this one.
    pub fn extend_from(&mut self, other: &Schedule) {
        self.requests.extend_from_slice(&other.requests);
    }

    /// Repeats this schedule `times` times (useful for the adversarial
    /// constructions, which are phase repetitions).
    #[must_use]
    pub fn repeated(&self, times: usize) -> Schedule {
        let mut reqs = Vec::with_capacity(self.requests.len() * times);
        for _ in 0..times {
            reqs.extend_from_slice(&self.requests);
        }
        Schedule::from_requests(reqs)
    }
}

impl FromIterator<Request> for Schedule {
    fn from_iter<I: IntoIterator<Item = Request>>(iter: I) -> Self {
        Schedule {
            requests: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.requests.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

/// Error parsing a schedule from the paper's compact notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleParseError {
    /// The offending whitespace-separated token.
    pub token: String,
    /// Position of the token in the input (0-based).
    pub position: usize,
    /// What was wrong with it.
    pub reason: &'static str,
}

impl fmt::Display for ScheduleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad schedule token {:?} at position {}: {}",
            self.token, self.position, self.reason
        )
    }
}

impl std::error::Error for ScheduleParseError {}

impl FromStr for Schedule {
    type Err = ScheduleParseError;

    /// Parses the paper's notation: whitespace-separated tokens `r<i>` and
    /// `w<i>`, e.g. `"w2 r4 w3 r1 r2"` (the ψ₀ example of §3.1).
    fn from_str(s: &str) -> Result<Self, ScheduleParseError> {
        let mut requests = Vec::new();
        for (position, token) in s.split_whitespace().enumerate() {
            let err = |reason| ScheduleParseError {
                token: token.to_string(),
                position,
                reason,
            };
            let mut chars = token.chars();
            let op = match chars.next() {
                Some('r') | Some('R') => Op::Read,
                Some('w') | Some('W') => Op::Write,
                _ => return Err(err("must start with 'r' or 'w'")),
            };
            let idx: usize = chars
                .as_str()
                .parse()
                .map_err(|_| err("expected a processor index after r/w"))?;
            if idx >= crate::MAX_PROCESSORS {
                return Err(err("processor index out of range (max 63)"));
            }
            requests.push(Request {
                op,
                issuer: ProcessorId::new(idx),
            });
        }
        Ok(Schedule { requests })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_example() {
        // ψ0 = w2 r4 w3 r1 r2 from §3.1.
        let s: Schedule = "w2 r4 w3 r1 r2".parse().unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.requests()[0], Request::write(2usize));
        assert_eq!(s.requests()[1], Request::read(4usize));
        assert_eq!(s.requests()[4], Request::read(2usize));
        assert_eq!(s.to_string(), "w2 r4 w3 r1 r2");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("x1".parse::<Schedule>().is_err());
        assert!("r".parse::<Schedule>().is_err());
        assert!("rfoo".parse::<Schedule>().is_err());
        assert!("r99".parse::<Schedule>().is_err());
        let e = "w2 q3".parse::<Schedule>().unwrap_err();
        assert_eq!(e.position, 1);
        assert_eq!(e.token, "q3");
    }

    #[test]
    fn parse_empty_and_case() {
        assert!("".parse::<Schedule>().unwrap().is_empty());
        let s: Schedule = "R1 W2".parse().unwrap();
        assert_eq!(s.read_count(), 1);
        assert_eq!(s.write_count(), 1);
    }

    #[test]
    fn counters_and_min_processors() {
        let s: Schedule = "r1 r1 r2 w2 r2 r2 r2".parse().unwrap();
        assert_eq!(s.read_count(), 6);
        assert_eq!(s.write_count(), 1);
        assert_eq!(s.min_processors(), 3);
        assert_eq!(Schedule::new().min_processors(), 0);
    }

    #[test]
    fn repetition_and_extension() {
        let s: Schedule = "r1 w2".parse().unwrap();
        let r = s.repeated(3);
        assert_eq!(r.to_string(), "r1 w2 r1 w2 r1 w2");
        let mut a: Schedule = "r0".parse().unwrap();
        a.extend_from(&s);
        assert_eq!(a.to_string(), "r0 r1 w2");
    }

    #[test]
    fn from_iterator() {
        let s: Schedule = vec![Request::read(0usize), Request::write(1usize)]
            .into_iter()
            .collect();
        assert_eq!(s.to_string(), "r0 w1");
    }
}

//! Error types shared across the workspace.

use crate::ProcSet;
use std::fmt;

/// Result alias using [`DomaError`].
pub type Result<T> = std::result::Result<T, DomaError>;

/// Everything that can go wrong when validating or costing allocation
/// schedules, or when configuring an algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum DomaError {
    /// A read's execution set does not intersect the allocation scheme at
    /// the read — the schedule is not *legal* (§3.1).
    IllegalRead {
        /// 0-based request position.
        position: usize,
        /// The read's execution set.
        exec: ProcSet,
        /// The allocation scheme at the read.
        scheme: ProcSet,
    },
    /// The allocation scheme at some request (or after the last request)
    /// has fewer than `t` members.
    AvailabilityViolation {
        /// 0-based request position (`len` means "after the last request").
        position: usize,
        /// Observed scheme size.
        scheme_size: usize,
        /// The availability threshold.
        t: usize,
    },
    /// A request was allocated an empty execution set.
    EmptyExecutionSet {
        /// 0-based request position.
        position: usize,
    },
    /// An algorithm or experiment was configured inconsistently (message
    /// explains what).
    InvalidConfig(String),
    /// A protocol node was asked to serve an object it has no config for
    /// (a routing bug, or a fault-injected message for a foreign object).
    UnknownObject {
        /// The node that received the request.
        node: usize,
        /// The unconfigured object (its raw id).
        object: u64,
    },
    /// A simulation run stopped at its event budget before the network
    /// drained — a runaway protocol, or an exploration bound set
    /// deliberately tight.
    EventBudgetExceeded {
        /// Events dispatched when the budget tripped.
        dispatched: u64,
    },
    /// Wire decoding ran out of bytes: the frame or a field inside it was
    /// cut short. Incremental decoders treat this as "wait for more
    /// bytes" at the frame boundary and as corruption inside a complete
    /// frame.
    WireTruncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// Wire decoding met structurally invalid bytes (bad tag, oversized
    /// length prefix, out-of-range id, trailing garbage).
    WireCorrupt {
        /// What the decoder was reading when it gave up.
        context: &'static str,
    },
    /// A socket-level failure in the real-runtime transport (message
    /// explains what; the OS error is flattened to text so the variant
    /// stays `Clone + PartialEq`).
    Net(String),
    /// A real-runtime cluster failed to reach quiescence within the
    /// driver's poll budget — a hung node, or a genuinely runaway
    /// protocol.
    ClusterStalled {
        /// Poll rounds issued before giving up.
        polls: usize,
    },
}

impl fmt::Display for DomaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomaError::IllegalRead {
                position,
                exec,
                scheme,
            } => write!(
                f,
                "illegal read at position {position}: execution set {exec} \
                 does not intersect allocation scheme {scheme}"
            ),
            DomaError::AvailabilityViolation {
                position,
                scheme_size,
                t,
            } => write!(
                f,
                "t-availability violated at position {position}: scheme has \
                 {scheme_size} member(s), threshold t={t}"
            ),
            DomaError::EmptyExecutionSet { position } => {
                write!(f, "empty execution set at position {position}")
            }
            DomaError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DomaError::UnknownObject { node, object } => {
                write!(f, "node {node} has no config for obj{object}")
            }
            DomaError::EventBudgetExceeded { dispatched } => {
                write!(
                    f,
                    "simulation stopped at its event budget after {dispatched} \
                     events — runaway protocol?"
                )
            }
            DomaError::WireTruncated { needed, have } => {
                write!(
                    f,
                    "wire data truncated: needed {needed} byte(s), have {have}"
                )
            }
            DomaError::WireCorrupt { context } => {
                write!(f, "corrupt wire data while reading {context}")
            }
            DomaError::Net(msg) => write!(f, "network transport failure: {msg}"),
            DomaError::ClusterStalled { polls } => {
                write!(
                    f,
                    "cluster failed to quiesce after {polls} poll round(s) — \
                     hung node or runaway protocol?"
                )
            }
        }
    }
}

impl std::error::Error for DomaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DomaError::IllegalRead {
            position: 3,
            exec: ProcSet::from_iter([4usize]),
            scheme: ProcSet::from_iter([1usize, 2]),
        };
        let s = e.to_string();
        assert!(s.contains("position 3"));
        assert!(s.contains("{4}"));
        assert!(s.contains("{1,2}"));

        let e = DomaError::AvailabilityViolation {
            position: 0,
            scheme_size: 1,
            t: 2,
        };
        assert!(e.to_string().contains("t=2"));

        let e = DomaError::InvalidConfig("F must not contain p".into());
        assert!(e.to_string().contains("F must not contain p"));
    }

    #[test]
    fn wire_and_net_messages_are_informative() {
        let e = DomaError::WireTruncated { needed: 8, have: 3 };
        assert!(e.to_string().contains("needed 8"));
        assert!(e.to_string().contains("have 3"));

        let e = DomaError::WireCorrupt {
            context: "DomMsg tag",
        };
        assert!(e.to_string().contains("DomMsg tag"));

        let e = DomaError::Net("connection refused".into());
        assert!(e.to_string().contains("connection refused"));

        let e = DomaError::ClusterStalled { polls: 42 };
        assert!(e.to_string().contains("42 poll"));
    }
}

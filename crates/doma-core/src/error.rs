//! Error types shared across the workspace.

use crate::ProcSet;
use std::fmt;

/// Result alias using [`DomaError`].
pub type Result<T> = std::result::Result<T, DomaError>;

/// Everything that can go wrong when validating or costing allocation
/// schedules, or when configuring an algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum DomaError {
    /// A read's execution set does not intersect the allocation scheme at
    /// the read — the schedule is not *legal* (§3.1).
    IllegalRead {
        /// 0-based request position.
        position: usize,
        /// The read's execution set.
        exec: ProcSet,
        /// The allocation scheme at the read.
        scheme: ProcSet,
    },
    /// The allocation scheme at some request (or after the last request)
    /// has fewer than `t` members.
    AvailabilityViolation {
        /// 0-based request position (`len` means "after the last request").
        position: usize,
        /// Observed scheme size.
        scheme_size: usize,
        /// The availability threshold.
        t: usize,
    },
    /// A request was allocated an empty execution set.
    EmptyExecutionSet {
        /// 0-based request position.
        position: usize,
    },
    /// An algorithm or experiment was configured inconsistently (message
    /// explains what).
    InvalidConfig(String),
    /// A protocol node was asked to serve an object it has no config for
    /// (a routing bug, or a fault-injected message for a foreign object).
    UnknownObject {
        /// The node that received the request.
        node: usize,
        /// The unconfigured object (its raw id).
        object: u64,
    },
    /// A simulation run stopped at its event budget before the network
    /// drained — a runaway protocol, or an exploration bound set
    /// deliberately tight.
    EventBudgetExceeded {
        /// Events dispatched when the budget tripped.
        dispatched: u64,
    },
}

impl fmt::Display for DomaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomaError::IllegalRead {
                position,
                exec,
                scheme,
            } => write!(
                f,
                "illegal read at position {position}: execution set {exec} \
                 does not intersect allocation scheme {scheme}"
            ),
            DomaError::AvailabilityViolation {
                position,
                scheme_size,
                t,
            } => write!(
                f,
                "t-availability violated at position {position}: scheme has \
                 {scheme_size} member(s), threshold t={t}"
            ),
            DomaError::EmptyExecutionSet { position } => {
                write!(f, "empty execution set at position {position}")
            }
            DomaError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DomaError::UnknownObject { node, object } => {
                write!(f, "node {node} has no config for obj{object}")
            }
            DomaError::EventBudgetExceeded { dispatched } => {
                write!(
                    f,
                    "simulation stopped at its event budget after {dispatched} \
                     events — runaway protocol?"
                )
            }
        }
    }
}

impl std::error::Error for DomaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DomaError::IllegalRead {
            position: 3,
            exec: ProcSet::from_iter([4usize]),
            scheme: ProcSet::from_iter([1usize, 2]),
        };
        let s = e.to_string();
        assert!(s.contains("position 3"));
        assert!(s.contains("{4}"));
        assert!(s.contains("{1,2}"));

        let e = DomaError::AvailabilityViolation {
            position: 0,
            scheme_size: 1,
            t: 2,
        };
        assert!(e.to_string().contains("t=2"));

        let e = DomaError::InvalidConfig("F must not contain p".into());
        assert!(e.to_string().contains("F must not contain p"));
    }
}

//! Identifier newtypes for processors and objects.

use std::fmt;

/// Identifies one processor (site) in the distributed system.
///
/// The paper's model is a homogeneous set of interconnected processors; we
/// number them `0..n`. The bitset representation of allocation schemes
/// ([`crate::ProcSet`]) bounds ids to `0..64`
/// ([`crate::MAX_PROCESSORS`]), which is far beyond what the worst-case
/// analyses or the exact offline optimum can use anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessorId(u8);

impl ProcessorId {
    /// Creates a processor id.
    ///
    /// # Panics
    /// Panics if `id >= MAX_PROCESSORS` (64); schemes are 64-bit bitsets.
    pub fn new(id: usize) -> Self {
        assert!(
            id < crate::MAX_PROCESSORS,
            "processor id {id} out of range (max {})",
            crate::MAX_PROCESSORS
        );
        ProcessorId(id as u8)
    }

    /// The numeric index of this processor.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for ProcessorId {
    fn from(id: usize) -> Self {
        ProcessorId::new(id)
    }
}

impl From<ProcessorId> for usize {
    fn from(p: ProcessorId) -> usize {
        p.index()
    }
}

impl fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifies a logical object (the paper analyzes the allocation of a
/// single object; the storage and protocol crates support many).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_roundtrip() {
        let p = ProcessorId::new(7);
        assert_eq!(p.index(), 7);
        assert_eq!(usize::from(p), 7);
        assert_eq!(ProcessorId::from(7usize), p);
        assert_eq!(p.to_string(), "P7");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn processor_out_of_range() {
        let _ = ProcessorId::new(64);
    }

    #[test]
    fn processor_ordering_follows_index() {
        assert!(ProcessorId::new(1) < ProcessorId::new(2));
    }

    #[test]
    fn object_display() {
        assert_eq!(ObjectId(3).to_string(), "obj3");
    }
}

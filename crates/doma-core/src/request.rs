//! Read/write requests.

use crate::ProcessorId;
use std::fmt;

/// The operation kind of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// A read of the latest version of the object.
    Read,
    /// A write creating a new version of the object.
    Write,
}

impl Op {
    /// `true` for [`Op::Read`].
    #[inline]
    pub fn is_read(self) -> bool {
        matches!(self, Op::Read)
    }

    /// `true` for [`Op::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, Op::Write)
    }
}

/// One access request: an operation issued by a processor.
///
/// The paper's notation `r3` (read by processor 3) and `w2` (write by
/// processor 2) is mirrored by the `Display` impl and parsed by
/// [`crate::Schedule`]'s `FromStr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// Read or write.
    pub op: Op,
    /// The processor that issued the request.
    pub issuer: ProcessorId,
}

impl Request {
    /// A read issued by processor `p`.
    #[inline]
    pub fn read(p: impl Into<ProcessorId>) -> Self {
        Request {
            op: Op::Read,
            issuer: p.into(),
        }
    }

    /// A write issued by processor `p`.
    #[inline]
    pub fn write(p: impl Into<ProcessorId>) -> Self {
        Request {
            op: Op::Write,
            issuer: p.into(),
        }
    }

    /// `true` if this is a read.
    #[inline]
    pub fn is_read(self) -> bool {
        self.op.is_read()
    }

    /// `true` if this is a write.
    #[inline]
    pub fn is_write(self) -> bool {
        self.op.is_write()
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self.op {
            Op::Read => 'r',
            Op::Write => 'w',
        };
        write!(f, "{c}{}", self.issuer.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_predicates() {
        let r = Request::read(3usize);
        let w = Request::write(2usize);
        assert!(r.is_read() && !r.is_write());
        assert!(w.is_write() && !w.is_read());
        assert_eq!(r.issuer.index(), 3);
        assert_eq!(w.issuer.index(), 2);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Request::read(4usize).to_string(), "r4");
        assert_eq!(Request::write(0usize).to_string(), "w0");
    }
}

//! The cost engine: per-request cost tallies (§3.2/§3.3) and scheme
//! evolution, plus whole-schedule costing.
//!
//! The two cost tables of the paper (stationary §3.2 and mobile §3.3) are a
//! single formula parameterized by `cio`; we therefore account resources as
//! exact integer tallies and let [`crate::CostModel`] price them.
//!
//! With `Y` the allocation scheme at the request and `X` its execution set:
//!
//! | request | control msgs | data msgs | I/Os |
//! |---|---|---|---|
//! | read `rᵢ`, `i ∈ X` | `\|X\|-1` | `\|X\|-1` | `\|X\|` |
//! | read `rᵢ`, `i ∉ X` | `\|X\|`   | `\|X\|`   | `\|X\|` |
//! | saving-read | as the read | as the read | read + 1 (store at `i`) |
//! | write `wᵢ`, `i ∈ X` | `\|Y \ X\|` (invalidate) | `\|X\|-1` | `\|X\|` |
//! | write `wᵢ`, `i ∉ X` | `\|Y \ X \ {i}\|` | `\|X\|` | `\|X\|` |
//!
//! In the mobile model the I/O column is priced at zero, which reproduces
//! the §3.3 table exactly (including "the cost of a saving-read does not
//! differ from that of a non-saving read").

use crate::{
    AllocatedRequest, AllocationSchedule, CostModel, CostVector, DomaError, Op, ProcSet, Result,
};

/// The exact resource tally of a single allocated request executed against
/// allocation scheme `scheme` (the paper's `COST(q)`), per the table above.
///
/// This function is purely arithmetic: it does not check legality (use
/// [`crate::validate_allocation`] or [`cost_of_schedule`] for that).
pub fn request_cost(step: &AllocatedRequest, scheme: ProcSet) -> CostVector {
    let x = step.exec;
    let i = step.request.issuer;
    let xn = x.len() as u64;
    match step.request.op {
        Op::Read => {
            let mut v = if x.contains(i) {
                // (|X|-1)·cc + |X|·cio + (|X|-1)·cd
                CostVector::new(xn - 1, xn - 1, xn)
            } else {
                // |X|·(cc + cio + cd)
                CostVector::new(xn, xn, xn)
            };
            if step.saving {
                // Extra output of the object into i's local database.
                v.io += 1;
            }
            v
        }
        Op::Write => {
            if x.contains(i) {
                // |Y\X|·cc + (|X|-1)·cd + |X|·cio
                let invalidated = scheme.difference(x).len() as u64;
                CostVector::new(invalidated, xn - 1, xn)
            } else {
                // |Y\X\{i}|·cc + |X|·(cd + cio)
                let invalidated = scheme.difference(x).without(i).len() as u64;
                CostVector::new(invalidated, xn, xn)
            }
        }
    }
}

/// The allocation scheme after executing `step` against scheme `scheme`:
///
/// * a write's execution set becomes the new scheme (everything else was
///   invalidated);
/// * a saving-read adds the reader to the scheme;
/// * a plain read leaves the scheme unchanged.
#[inline]
pub fn scheme_after(scheme: ProcSet, step: &AllocatedRequest) -> ProcSet {
    match step.request.op {
        Op::Write => step.exec,
        Op::Read => {
            if step.saving {
                scheme.with(step.request.issuer)
            } else {
                scheme
            }
        }
    }
}

/// The cost of one request within a costed schedule, with the scheme it was
/// executed against (for reporting and debugging).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerRequestCost {
    /// The allocated request.
    pub step: AllocatedRequest,
    /// The allocation scheme at the request.
    pub scheme: ProcSet,
    /// Its exact resource tally.
    pub cost: CostVector,
}

/// A fully costed allocation schedule: the total tally, per-request tallies
/// and the final allocation scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct CostedSchedule {
    /// Sum of all per-request tallies — the paper's `COST(I, τ)` before
    /// pricing.
    pub total: CostVector,
    /// Tally and scheme for each request, in order.
    pub per_request: Vec<PerRequestCost>,
    /// The allocation scheme after the last request.
    pub final_scheme: ProcSet,
}

impl CostedSchedule {
    /// Prices the total tally under `model`.
    pub fn total_cost(&self, model: &CostModel) -> f64 {
        self.total.eval(model)
    }
}

/// Walks an allocation schedule once, checking legality and `t`-availability
/// while accumulating exact costs (the paper's `COST(I, τ) = Σ COST(oᵢ)`).
///
/// Checks performed (violations return [`DomaError`]):
/// * every execution set is non-empty;
/// * every read's execution set intersects the scheme at the read
///   (*legality*, §3.1);
/// * the scheme at every request has at least `t` members, as does the
///   final scheme (*t-availability*);
/// * the initial scheme is non-empty and has at least `t` members.
pub fn cost_of_schedule(alloc: &AllocationSchedule, t: usize) -> Result<CostedSchedule> {
    if alloc.initial.len() < t {
        return Err(DomaError::AvailabilityViolation {
            position: 0,
            scheme_size: alloc.initial.len(),
            t,
        });
    }
    let mut scheme = alloc.initial;
    let mut total = CostVector::ZERO;
    let mut per_request = Vec::with_capacity(alloc.steps.len());
    for (k, step) in alloc.steps.iter().enumerate() {
        if step.exec.is_empty() {
            return Err(DomaError::EmptyExecutionSet { position: k });
        }
        if scheme.len() < t {
            return Err(DomaError::AvailabilityViolation {
                position: k,
                scheme_size: scheme.len(),
                t,
            });
        }
        if step.request.is_read() && !step.exec.intersects(scheme) {
            return Err(DomaError::IllegalRead {
                position: k,
                exec: step.exec,
                scheme,
            });
        }
        let cost = request_cost(step, scheme);
        total += cost;
        per_request.push(PerRequestCost {
            step: *step,
            scheme,
            cost,
        });
        scheme = scheme_after(scheme, step);
    }
    if scheme.len() < t {
        return Err(DomaError::AvailabilityViolation {
            position: alloc.steps.len(),
            scheme_size: scheme.len(),
            t,
        });
    }
    Ok(CostedSchedule {
        total,
        per_request,
        final_scheme: scheme,
    })
}

/// Attributes the I/O operations of a costed schedule to the processors
/// that performed them: every member of a request's execution set performs
/// one I/O (input for reads, output for writes), plus one extra output at
/// the issuer of a saving-read.
///
/// The returned vector has `n` entries; a schedule referencing processors
/// outside `0..n` panics (callers size `n` from their system config).
pub fn per_processor_io(costed: &CostedSchedule, n: usize) -> Vec<u64> {
    let mut load = vec![0u64; n];
    for pr in &costed.per_request {
        for member in pr.step.exec.iter() {
            load[member.index()] += 1;
        }
        if pr.step.saving {
            load[pr.step.request.issuer.index()] += 1;
        }
    }
    load
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Decision, Request};

    fn ps(v: &[usize]) -> ProcSet {
        v.iter().copied().collect()
    }

    fn step(req: Request, exec: ProcSet, saving: bool) -> AllocatedRequest {
        AllocatedRequest::new(
            req,
            if saving {
                Decision::saving(exec)
            } else {
                Decision::exec(exec)
            },
        )
    }

    #[test]
    fn read_local_singleton_costs_one_io() {
        // §1.2: "If s is in the allocation scheme, the cost of servicing the
        // read request is cio."
        let s = step(Request::read(2usize), ps(&[2]), false);
        assert_eq!(request_cost(&s, ps(&[1, 2])), CostVector::new(0, 0, 1));
    }

    #[test]
    fn read_remote_singleton_costs_cc_io_cd() {
        // §1.2: "If s is not in the allocation scheme, the cost is
        // cc + cio + cd."
        let s = step(Request::read(5usize), ps(&[1]), false);
        assert_eq!(request_cost(&s, ps(&[1, 2])), CostVector::new(1, 1, 1));
    }

    #[test]
    fn saving_read_adds_one_io() {
        let plain = step(Request::read(5usize), ps(&[1]), false);
        let saving = step(Request::read(5usize), ps(&[1]), true);
        let y = ps(&[1, 2]);
        let d = request_cost(&saving, y).saturating_sub(&request_cost(&plain, y));
        assert_eq!(d, CostVector::new(0, 0, 1));
    }

    #[test]
    fn read_multi_member_execution_set() {
        // i ∈ X, |X| = 3: (|X|-1)cc + |X|cio + (|X|-1)cd — e.g. quorum reads.
        let s = step(Request::read(1usize), ps(&[1, 2, 3]), false);
        assert_eq!(request_cost(&s, ps(&[2, 3])), CostVector::new(2, 2, 3));
        // i ∉ X, |X| = 2: |X|(cc + cio + cd).
        let s = step(Request::read(9usize), ps(&[1, 2]), false);
        assert_eq!(request_cost(&s, ps(&[1, 2])), CostVector::new(2, 2, 2));
    }

    #[test]
    fn write_member_invalidates_scheme_minus_exec() {
        // Y = {1,2,3,4}, X = {2,3}, i = 2 ∈ X:
        // |Y\X| = 2 invalidations, |X|-1 = 1 data msg, |X| = 2 I/Os.
        let s = step(Request::write(2usize), ps(&[2, 3]), false);
        assert_eq!(
            request_cost(&s, ps(&[1, 2, 3, 4])),
            CostVector::new(2, 1, 2)
        );
    }

    #[test]
    fn write_nonmember_excludes_self_from_invalidation() {
        // Y = {1,2,5}, X = {2,3}, i = 5 ∉ X:
        // Y\X\{i} = {1} → 1 invalidation; |X| data msgs; |X| I/Os.
        let s = step(Request::write(5usize), ps(&[2, 3]), false);
        assert_eq!(request_cost(&s, ps(&[1, 2, 5])), CostVector::new(1, 2, 2));
    }

    #[test]
    fn write_nonmember_not_in_scheme_either() {
        // i ∉ X and i ∉ Y: the \{i} subtraction is a no-op.
        let s = step(Request::write(7usize), ps(&[2, 3]), false);
        assert_eq!(request_cost(&s, ps(&[1, 2])), CostVector::new(1, 2, 2));
    }

    #[test]
    fn scheme_evolution() {
        let y = ps(&[1, 2]);
        let w = step(Request::write(3usize), ps(&[3, 4]), false);
        assert_eq!(scheme_after(y, &w), ps(&[3, 4]));
        let r = step(Request::read(5usize), ps(&[1]), false);
        assert_eq!(scheme_after(y, &r), y);
        let sr = step(Request::read(5usize), ps(&[1]), true);
        assert_eq!(scheme_after(y, &sr), ps(&[1, 2, 5]));
    }

    /// Full costing of the §3.1 example τ̄0 with initial scheme {3,4}, t=2.
    #[test]
    fn tau0_total_cost() {
        let mut a = AllocationSchedule::new(ps(&[3, 4]));
        a.push(Request::write(2usize), Decision::exec(ps(&[2, 3])));
        a.push(Request::read(4usize), Decision::exec(ps(&[1, 2])));
        a.push(Request::write(3usize), Decision::exec(ps(&[2, 3])));
        a.push(Request::read(1usize), Decision::saving(ps(&[1, 2])));
        a.push(Request::read(2usize), Decision::exec(ps(&[2])));
        // NOTE: r4{1,2} is *illegal at position 1* only if {1,2} ∩ {2,3} = ∅,
        // which it is not (2 is shared) — the paper calls τ̄0 legal.
        let costed = cost_of_schedule(&a, 2).expect("τ̄0 is legal and 2-available");

        // Hand-computed tallies:
        // w2{2,3} against {3,4}: i∈X, |Y\X|={4}→1cc, 1cd, 2io
        // r4{1,2} against {2,3}: i∉X → 2cc, 2cd, 2io
        // w3{2,3} against {2,3}: i∈X, |Y\X|=0 → 0cc, 1cd, 2io
        // r̲1{1,2} against {2,3}: i∈X → 1cc, 1cd, 2io, +1io saving = 3io
        // r2{2}  against {1,2,3}: i∈X singleton → 1io
        assert_eq!(costed.per_request[0].cost, CostVector::new(1, 1, 2));
        assert_eq!(costed.per_request[1].cost, CostVector::new(2, 2, 2));
        assert_eq!(costed.per_request[2].cost, CostVector::new(0, 1, 2));
        assert_eq!(costed.per_request[3].cost, CostVector::new(1, 1, 3));
        assert_eq!(costed.per_request[4].cost, CostVector::new(0, 0, 1));
        assert_eq!(costed.total, CostVector::new(4, 5, 10));
        assert_eq!(costed.final_scheme, ps(&[1, 2, 3]));

        let m = CostModel::stationary(0.5, 1.0).unwrap();
        assert!((costed.total_cost(&m) - (4.0 * 0.5 + 5.0 + 10.0)).abs() < 1e-12);
    }

    #[test]
    fn illegal_read_detected() {
        // §3.1: τ̄0 becomes illegal if the last request's execution set is
        // changed from {2} to {4} (4 is not in the scheme {1,2,3}).
        let mut a = AllocationSchedule::new(ps(&[3, 4]));
        a.push(Request::write(2usize), Decision::exec(ps(&[2, 3])));
        a.push(Request::read(4usize), Decision::exec(ps(&[1, 2])));
        a.push(Request::write(3usize), Decision::exec(ps(&[2, 3])));
        a.push(Request::read(1usize), Decision::saving(ps(&[1, 2])));
        a.push(Request::read(2usize), Decision::exec(ps(&[4])));
        let err = cost_of_schedule(&a, 2).unwrap_err();
        assert!(matches!(err, DomaError::IllegalRead { position: 4, .. }));
    }

    #[test]
    fn availability_violations_detected() {
        // Initial scheme too small.
        let a = AllocationSchedule::new(ps(&[3]));
        assert!(matches!(
            cost_of_schedule(&a, 2),
            Err(DomaError::AvailabilityViolation { position: 0, .. })
        ));
        // A write that shrinks the scheme below t.
        let mut a = AllocationSchedule::new(ps(&[1, 2]));
        a.push(Request::write(1usize), Decision::exec(ps(&[1])));
        a.push(Request::read(1usize), Decision::exec(ps(&[1])));
        assert!(matches!(
            cost_of_schedule(&a, 2),
            Err(DomaError::AvailabilityViolation { position: 1, .. })
        ));
        // A final write below t is also rejected.
        let mut a = AllocationSchedule::new(ps(&[1, 2]));
        a.push(Request::write(1usize), Decision::exec(ps(&[1])));
        assert!(matches!(
            cost_of_schedule(&a, 2),
            Err(DomaError::AvailabilityViolation { .. })
        ));
    }

    #[test]
    fn empty_execution_set_rejected() {
        let mut a = AllocationSchedule::new(ps(&[1, 2]));
        a.push(Request::read(1usize), Decision::exec(ProcSet::EMPTY));
        assert!(matches!(
            cost_of_schedule(&a, 2),
            Err(DomaError::EmptyExecutionSet { position: 0 })
        ));
    }

    #[test]
    fn per_processor_io_attribution() {
        let mut a = AllocationSchedule::new(ps(&[0, 1]));
        a.push(Request::read(2usize), Decision::saving(ps(&[0]))); // io at 0, save at 2
        a.push(Request::write(1usize), Decision::exec(ps(&[0, 1]))); // io at 0 and 1
        a.push(Request::read(1usize), Decision::exec(ps(&[1]))); // io at 1
        let costed = cost_of_schedule(&a, 2).unwrap();
        let load = per_processor_io(&costed, 4);
        assert_eq!(load, vec![2, 2, 1, 0]);
        // Attribution totals match the engine's io tally.
        assert_eq!(load.iter().sum::<u64>(), costed.total.io);
    }

    #[test]
    fn empty_schedule_costs_zero() {
        let a = AllocationSchedule::new(ps(&[1, 2]));
        let c = cost_of_schedule(&a, 2).unwrap();
        assert!(c.total.is_zero());
        assert_eq!(c.final_scheme, ps(&[1, 2]));
    }
}

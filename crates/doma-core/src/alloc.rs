//! Execution schedules and allocation schedules (§3.1).

use crate::{ProcSet, Request, Schedule};
use std::fmt;

/// The per-request output of a DOM algorithm: which processors execute the
/// request, and — for reads — whether the read is converted into a
/// *saving-read* (the reader stores the object in its local database and
/// joins the allocation scheme).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decision {
    /// The execution set of the request.
    pub exec: ProcSet,
    /// For reads: store the object at the issuer after reading. Ignored for
    /// writes (a write's issuer relationship is captured by the execution
    /// set itself).
    pub saving: bool,
}

impl Decision {
    /// A non-saving decision with execution set `exec`.
    pub fn exec(exec: ProcSet) -> Self {
        Decision {
            exec,
            saving: false,
        }
    }

    /// A saving-read decision with execution set `exec`.
    pub fn saving(exec: ProcSet) -> Self {
        Decision { exec, saving: true }
    }
}

/// One request together with its allocation decision — an element of an
/// allocation schedule (the paper's `oᵢXᵢ`, possibly underlined).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocatedRequest {
    /// The request itself.
    pub request: Request,
    /// The execution set `X` of the request.
    pub exec: ProcSet,
    /// Whether a read was converted to a saving-read (underlined in the
    /// paper's notation). Always `false` for writes.
    pub saving: bool,
}

impl AllocatedRequest {
    /// Pairs a request with a decision, normalizing `saving` to `false`
    /// for writes.
    pub fn new(request: Request, decision: Decision) -> Self {
        AllocatedRequest {
            request,
            exec: decision.exec,
            saving: decision.saving && request.is_read(),
        }
    }
}

impl fmt::Display for AllocatedRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.saving {
            // Mark saving-reads with a trailing '!' (the paper underlines).
            write!(f, "{}!{}", self.request, self.exec)
        } else {
            write!(f, "{}{}", self.request, self.exec)
        }
    }
}

/// An allocation schedule: an initial allocation scheme plus a sequence of
/// requests with execution sets, where some reads are saving-reads.
///
/// This is the object whose cost `COST(I, τ)` the paper analyzes; see
/// [`crate::cost_of_schedule`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AllocationSchedule {
    /// The initial allocation scheme `I`.
    pub initial: ProcSet,
    /// The allocated requests, in order.
    pub steps: Vec<AllocatedRequest>,
}

impl AllocationSchedule {
    /// Creates an empty allocation schedule starting from scheme `initial`.
    pub fn new(initial: ProcSet) -> Self {
        AllocationSchedule {
            initial,
            steps: Vec::new(),
        }
    }

    /// Number of allocated requests.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether there are no requests.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Appends a request with its decision.
    pub fn push(&mut self, request: Request, decision: Decision) {
        self.steps.push(AllocatedRequest::new(request, decision));
    }

    /// The schedule this allocation schedule *corresponds to* (§3.1):
    /// execution sets erased and saving-reads demoted to plain reads.
    pub fn corresponding_schedule(&self) -> Schedule {
        self.steps.iter().map(|s| s.request).collect()
    }

    /// The allocation scheme right before step `k` (0-based), i.e. after
    /// steps `0..k` have executed. `scheme_at(0)` is the initial scheme.
    ///
    /// O(k); use [`crate::cost_of_schedule`] to walk the whole schedule once.
    pub fn scheme_at(&self, k: usize) -> ProcSet {
        let mut scheme = self.initial;
        for step in &self.steps[..k.min(self.steps.len())] {
            scheme = crate::scheme_after(scheme, step);
        }
        scheme
    }

    /// The allocation scheme after all steps.
    pub fn final_scheme(&self) -> ProcSet {
        self.scheme_at(self.steps.len())
    }
}

impl fmt::Display for AllocationSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I={}", self.initial)?;
        for s in &self.steps {
            write!(f, " {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Request;

    fn ps(v: &[usize]) -> ProcSet {
        v.iter().copied().collect()
    }

    /// The τ̄0 example of §3.1: w2{2,3} r4{1,2} w3{2,3} r̲1{1,2} r2{2}
    /// with initial scheme {3,4}.
    fn tau0() -> AllocationSchedule {
        let mut t = AllocationSchedule::new(ps(&[3, 4]));
        t.push(Request::write(2usize), Decision::exec(ps(&[2, 3])));
        t.push(Request::read(4usize), Decision::exec(ps(&[1, 2])));
        t.push(Request::write(3usize), Decision::exec(ps(&[2, 3])));
        t.push(Request::read(1usize), Decision::saving(ps(&[1, 2])));
        t.push(Request::read(2usize), Decision::exec(ps(&[2])));
        t
    }

    #[test]
    fn schemes_match_paper_walkthrough() {
        let t = tau0();
        // "the allocation scheme at the first request w2 is {3,4}; at the
        //  second, third, and fourth requests it is {2,3}; at the fifth
        //  request it is {1,2,3}".
        assert_eq!(t.scheme_at(0), ps(&[3, 4]));
        assert_eq!(t.scheme_at(1), ps(&[2, 3]));
        assert_eq!(t.scheme_at(2), ps(&[2, 3]));
        assert_eq!(t.scheme_at(3), ps(&[2, 3]));
        assert_eq!(t.scheme_at(4), ps(&[1, 2, 3]));
        assert_eq!(t.final_scheme(), ps(&[1, 2, 3]));
    }

    #[test]
    fn corresponding_schedule_erases_decisions() {
        let t = tau0();
        assert_eq!(t.corresponding_schedule().to_string(), "w2 r4 w3 r1 r2");
    }

    #[test]
    fn saving_is_normalized_for_writes() {
        let a = AllocatedRequest::new(Request::write(1usize), Decision::saving(ps(&[1, 2])));
        assert!(!a.saving);
        let b = AllocatedRequest::new(Request::read(1usize), Decision::saving(ps(&[2])));
        assert!(b.saving);
    }

    #[test]
    fn display_marks_saving_reads() {
        let t = tau0();
        let s = t.to_string();
        assert!(s.starts_with("I={3,4}"));
        assert!(s.contains("r1!{1,2}"), "saving-read must be marked: {s}");
        assert!(s.contains("r4{1,2}"));
    }

    #[test]
    fn scheme_at_clamps_past_end() {
        let t = tau0();
        assert_eq!(t.scheme_at(100), t.final_scheme());
    }
}

//! Sets of processors as 64-bit bitsets.
//!
//! Allocation schemes and execution sets are small subsets of a small
//! universe of processors, and the offline-optimal dynamic program iterates
//! over *all* subsets; a `u64` bitset makes those loops branch-free and
//! allocation-free.

use crate::ProcessorId;
use std::fmt;

/// Maximum number of processors supported by [`ProcSet`].
pub const MAX_PROCESSORS: usize = 64;

/// An immutable-by-value set of processors (allocation scheme or execution
/// set), represented as a 64-bit bitmask.
///
/// ```
/// use doma_core::ProcSet;
/// let a = ProcSet::from_iter([1, 2, 3]);
/// let b = ProcSet::from_iter([3, 4]);
/// assert_eq!(a.union(b).len(), 4);
/// assert_eq!(a.difference(b), ProcSet::from_iter([1, 2]));
/// assert!(a.intersects(b));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ProcSet(u64);

impl ProcSet {
    /// The empty set.
    pub const EMPTY: ProcSet = ProcSet(0);

    /// Builds a set from a raw bitmask (bit `i` ⇔ processor `i`).
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        ProcSet(bits)
    }

    /// The raw bitmask.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// The set `{0, 1, …, n-1}` of all processors in an `n`-processor system.
    ///
    /// # Panics
    /// Panics if `n > MAX_PROCESSORS`.
    #[inline]
    pub fn universe(n: usize) -> Self {
        assert!(
            n <= MAX_PROCESSORS,
            "universe of {n} exceeds {MAX_PROCESSORS}"
        );
        if n == MAX_PROCESSORS {
            ProcSet(u64::MAX)
        } else {
            ProcSet((1u64 << n) - 1)
        }
    }

    /// The singleton set `{p}`.
    #[inline]
    pub fn singleton(p: ProcessorId) -> Self {
        ProcSet(1u64 << p.index())
    }

    /// Number of processors in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, p: ProcessorId) -> bool {
        self.0 & (1u64 << p.index()) != 0
    }

    /// Returns the set with `p` added.
    #[inline]
    #[must_use]
    pub fn with(self, p: ProcessorId) -> Self {
        ProcSet(self.0 | (1u64 << p.index()))
    }

    /// Returns the set with `p` removed.
    #[inline]
    #[must_use]
    pub fn without(self, p: ProcessorId) -> Self {
        ProcSet(self.0 & !(1u64 << p.index()))
    }

    /// Inserts `p` in place.
    #[inline]
    pub fn insert(&mut self, p: ProcessorId) {
        self.0 |= 1u64 << p.index();
    }

    /// Removes `p` in place.
    #[inline]
    pub fn remove(&mut self, p: ProcessorId) {
        self.0 &= !(1u64 << p.index());
    }

    /// Set union.
    #[inline]
    #[must_use]
    pub fn union(self, other: Self) -> Self {
        ProcSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    #[must_use]
    pub fn intersection(self, other: Self) -> Self {
        ProcSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    #[must_use]
    pub fn difference(self, other: Self) -> Self {
        ProcSet(self.0 & !other.0)
    }

    /// Whether the two sets share at least one processor.
    #[inline]
    pub fn intersects(self, other: Self) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// An arbitrary-but-deterministic member (the lowest-indexed one), or
    /// `None` if empty. Used where the paper says "some processor `y ∈ Q`";
    /// in the homogeneous cost model the choice is cost-irrelevant.
    #[inline]
    pub fn any_member(self) -> Option<ProcessorId> {
        if self.0 == 0 {
            None
        } else {
            Some(ProcessorId::new(self.0.trailing_zeros() as usize))
        }
    }

    /// Iterates over members in increasing index order.
    #[inline]
    pub fn iter(self) -> ProcSetIter {
        ProcSetIter(self.0)
    }

    /// Enumerates every subset of `self` (including the empty set and
    /// `self` itself), in an arbitrary but deterministic order.
    ///
    /// This is the workhorse of the offline-optimal dynamic program, which
    /// must consider every possible execution set for a write.
    pub fn subsets(self) -> Subsets {
        Subsets {
            mask: self.0,
            current: 0,
            done: false,
        }
    }
}

impl FromIterator<usize> for ProcSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = ProcSet::EMPTY;
        for p in iter {
            s.insert(ProcessorId::new(p));
        }
        s
    }
}

impl FromIterator<ProcessorId> for ProcSet {
    fn from_iter<I: IntoIterator<Item = ProcessorId>>(iter: I) -> Self {
        let mut s = ProcSet::EMPTY;
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl IntoIterator for ProcSet {
    type Item = ProcessorId;
    type IntoIter = ProcSetIter;
    fn into_iter(self) -> ProcSetIter {
        self.iter()
    }
}

impl fmt::Debug for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProcSet{self}")
    }
}

impl fmt::Display for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", p.index())?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the members of a [`ProcSet`].
#[derive(Debug, Clone)]
pub struct ProcSetIter(u64);

impl Iterator for ProcSetIter {
    type Item = ProcessorId;

    #[inline]
    fn next(&mut self) -> Option<ProcessorId> {
        if self.0 == 0 {
            None
        } else {
            let idx = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(ProcessorId::new(idx))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for ProcSetIter {}

/// Iterator over all subsets of a set (see [`ProcSet::subsets`]).
#[derive(Debug, Clone)]
pub struct Subsets {
    mask: u64,
    current: u64,
    done: bool,
}

impl Iterator for Subsets {
    type Item = ProcSet;

    fn next(&mut self) -> Option<ProcSet> {
        if self.done {
            return None;
        }
        let result = ProcSet(self.current);
        if self.current == self.mask {
            self.done = true;
        } else {
            // Standard trick: enumerate sub-masks of `mask`.
            self.current = (self.current.wrapping_sub(self.mask)) & self.mask;
        }
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(v: &[usize]) -> ProcSet {
        v.iter().copied().collect()
    }

    #[test]
    fn basic_ops() {
        let a = ps(&[0, 2, 5]);
        assert_eq!(a.len(), 3);
        assert!(a.contains(ProcessorId::new(2)));
        assert!(!a.contains(ProcessorId::new(1)));
        assert_eq!(a.with(ProcessorId::new(1)), ps(&[0, 1, 2, 5]));
        assert_eq!(a.without(ProcessorId::new(0)), ps(&[2, 5]));
        assert!(!a.is_empty());
        assert!(ProcSet::EMPTY.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = ps(&[1, 2, 3]);
        let b = ps(&[3, 4]);
        assert_eq!(a.union(b), ps(&[1, 2, 3, 4]));
        assert_eq!(a.intersection(b), ps(&[3]));
        assert_eq!(a.difference(b), ps(&[1, 2]));
        assert!(a.intersects(b));
        assert!(!a.intersects(ps(&[0, 9])));
        assert!(ps(&[1, 2]).is_subset(a));
        assert!(!a.is_subset(b));
    }

    #[test]
    fn universe_and_singleton() {
        assert_eq!(ProcSet::universe(3), ps(&[0, 1, 2]));
        assert_eq!(ProcSet::universe(0), ProcSet::EMPTY);
        assert_eq!(ProcSet::universe(64).len(), 64);
        assert_eq!(ProcSet::singleton(ProcessorId::new(5)), ps(&[5]));
    }

    #[test]
    fn any_member_is_lowest() {
        assert_eq!(ps(&[4, 7]).any_member(), Some(ProcessorId::new(4)));
        assert_eq!(ProcSet::EMPTY.any_member(), None);
    }

    #[test]
    fn iteration_order_and_exact_size() {
        let a = ps(&[9, 1, 4]);
        let v: Vec<usize> = a.iter().map(|p| p.index()).collect();
        assert_eq!(v, vec![1, 4, 9]);
        assert_eq!(a.iter().len(), 3);
    }

    #[test]
    fn subset_enumeration_is_complete() {
        let a = ps(&[0, 3, 6]);
        let subs: Vec<ProcSet> = a.subsets().collect();
        assert_eq!(subs.len(), 8);
        for s in &subs {
            assert!(s.is_subset(a));
        }
        // All distinct.
        let mut bits: Vec<u64> = subs.iter().map(|s| s.bits()).collect();
        bits.sort_unstable();
        bits.dedup();
        assert_eq!(bits.len(), 8);
        assert!(subs.contains(&ProcSet::EMPTY));
        assert!(subs.contains(&a));
    }

    #[test]
    fn subsets_of_empty() {
        let subs: Vec<ProcSet> = ProcSet::EMPTY.subsets().collect();
        assert_eq!(subs, vec![ProcSet::EMPTY]);
    }

    #[test]
    fn display_format() {
        assert_eq!(ps(&[1, 3]).to_string(), "{1,3}");
        assert_eq!(ProcSet::EMPTY.to_string(), "{}");
    }
}

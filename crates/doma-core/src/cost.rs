//! The cost model of §3.2 (stationary computing) and §3.3 (mobile
//! computing).
//!
//! Servicing a request consumes three kinds of resources:
//!
//! * **control messages** (request / invalidate messages) — unit cost `cc`;
//! * **data messages** (the object in transit) — unit cost `cd`;
//! * **I/O operations** (reading/writing the object in a local database) —
//!   unit cost `cio`, normalized to `1` in stationary computing and `0` in
//!   mobile computing (wireless charges dominate, disk I/O is free).
//!
//! Costs are accounted *exactly* as integer tallies ([`CostVector`]) and
//! only converted to scalars by [`CostVector::eval`]. That lets the
//! message-level protocol simulator be cross-checked bit-for-bit against the
//! analytic cost engine, with no floating-point drift.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Which of the paper's two cost models is in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Environment {
    /// Stationary computing (§3.2): `cio = 1` (costs normalized to one I/O).
    Stationary,
    /// Mobile computing (§3.3): `cio = 0` (only messages are billed).
    Mobile,
}

impl fmt::Display for Environment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Environment::Stationary => write!(f, "SC"),
            Environment::Mobile => write!(f, "MC"),
        }
    }
}

/// The unit costs `(cc, cd, cio)` of the homogeneous system model.
///
/// Invariants enforced at construction:
/// * all costs are finite and non-negative;
/// * `cc ≤ cd` — a data message carries the control header *plus* the
///   object, so it cannot be cheaper (the "Cannot be true" region of
///   Figures 1 and 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    cc: f64,
    cd: f64,
    cio: f64,
    env: Environment,
}

impl CostModel {
    /// A stationary-computing model with `cio = 1`.
    ///
    /// Returns an error string if the parameters are invalid.
    pub fn stationary(cc: f64, cd: f64) -> Result<Self, CostModelError> {
        Self::with_io(cc, cd, 1.0, Environment::Stationary)
    }

    /// A mobile-computing model with `cio = 0`.
    pub fn mobile(cc: f64, cd: f64) -> Result<Self, CostModelError> {
        Self::with_io(cc, cd, 0.0, Environment::Mobile)
    }

    fn with_io(cc: f64, cd: f64, cio: f64, env: Environment) -> Result<Self, CostModelError> {
        if !cc.is_finite() || !cd.is_finite() || cc < 0.0 || cd < 0.0 {
            return Err(CostModelError::Negative { cc, cd });
        }
        if cc > cd {
            return Err(CostModelError::ControlExceedsData { cc, cd });
        }
        Ok(CostModel { cc, cd, cio, env })
    }

    /// Control-message unit cost.
    #[inline]
    pub fn cc(&self) -> f64 {
        self.cc
    }

    /// Data-message unit cost.
    #[inline]
    pub fn cd(&self) -> f64 {
        self.cd
    }

    /// I/O unit cost (1 in SC, 0 in MC).
    #[inline]
    pub fn cio(&self) -> f64 {
        self.cio
    }

    /// Which environment this model belongs to.
    #[inline]
    pub fn environment(&self) -> Environment {
        self.env
    }

    /// The paper's competitiveness factor of SA in this model (Theorem 1):
    /// `1 + cc + cd` in SC; `None` in MC, where SA is not competitive
    /// (Proposition 3).
    pub fn sa_bound(&self) -> Option<f64> {
        match self.env {
            Environment::Stationary => Some(1.0 + self.cc + self.cd),
            Environment::Mobile => None,
        }
    }

    /// The paper's competitiveness factor of DA in this model:
    /// * SC, `cd > 1`: `2 + cc` (Theorem 3);
    /// * SC, otherwise: `2 + 2·cc` (Theorem 2);
    /// * MC: `2 + 3·cc/cd` (Theorem 4), which is ≤ 5 since `cc ≤ cd`.
    ///
    /// Returns `None` only for the degenerate MC model with `cd = 0`
    /// (all costs zero — competitiveness is vacuous).
    pub fn da_bound(&self) -> Option<f64> {
        match self.env {
            Environment::Stationary => {
                if self.cd > 1.0 {
                    Some(2.0 + self.cc)
                } else {
                    Some(2.0 + 2.0 * self.cc)
                }
            }
            Environment::Mobile => {
                if self.cd == 0.0 {
                    None
                } else {
                    Some(2.0 + 3.0 * self.cc / self.cd)
                }
            }
        }
    }
}

/// Invalid [`CostModel`] parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostModelError {
    /// A cost was negative, NaN or infinite.
    Negative {
        /// offered control cost
        cc: f64,
        /// offered data cost
        cd: f64,
    },
    /// `cc > cd`: a data message cannot be cheaper than a control message.
    ControlExceedsData {
        /// offered control cost
        cc: f64,
        /// offered data cost
        cd: f64,
    },
}

impl fmt::Display for CostModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostModelError::Negative { cc, cd } => {
                write!(
                    f,
                    "costs must be finite and non-negative (cc={cc}, cd={cd})"
                )
            }
            CostModelError::ControlExceedsData { cc, cd } => write!(
                f,
                "cc={cc} > cd={cd}: a data message includes the control fields \
                 plus the object, so it cannot cost less (paper Fig. 1, \
                 'Cannot be true' region)"
            ),
        }
    }
}

impl std::error::Error for CostModelError {}

/// Exact resource tallies: how many control messages, data messages and
/// I/O operations an execution consumed.
///
/// Scalar cost is obtained by [`CostVector::eval`]:
/// `control·cc + data·cd + io·cio`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CostVector {
    /// Number of control messages (requests, invalidations).
    pub control: u64,
    /// Number of data messages (object transmissions).
    pub data: u64,
    /// Number of local-database I/O operations (inputs and outputs).
    pub io: u64,
}

impl CostVector {
    /// The zero vector.
    pub const ZERO: CostVector = CostVector {
        control: 0,
        data: 0,
        io: 0,
    };

    /// Constructs a tally.
    pub const fn new(control: u64, data: u64, io: u64) -> Self {
        CostVector { control, data, io }
    }

    /// Scalar cost under a model: `control·cc + data·cd + io·cio`.
    #[inline]
    pub fn eval(&self, model: &CostModel) -> f64 {
        self.control as f64 * model.cc + self.data as f64 * model.cd + self.io as f64 * model.cio
    }

    /// Component-wise saturating difference (used in tests to compare
    /// simulator tallies with analytic predictions).
    #[must_use]
    pub fn saturating_sub(&self, other: &CostVector) -> CostVector {
        CostVector {
            control: self.control.saturating_sub(other.control),
            data: self.data.saturating_sub(other.data),
            io: self.io.saturating_sub(other.io),
        }
    }

    /// Whether all tallies are zero.
    pub fn is_zero(&self) -> bool {
        *self == CostVector::ZERO
    }
}

impl Add for CostVector {
    type Output = CostVector;
    fn add(self, rhs: CostVector) -> CostVector {
        CostVector {
            control: self.control + rhs.control,
            data: self.data + rhs.data,
            io: self.io + rhs.io,
        }
    }
}

impl AddAssign for CostVector {
    fn add_assign(&mut self, rhs: CostVector) {
        self.control += rhs.control;
        self.data += rhs.data;
        self.io += rhs.io;
    }
}

impl Sum for CostVector {
    fn sum<I: Iterator<Item = CostVector>>(iter: I) -> CostVector {
        iter.fold(CostVector::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for CostVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cc + {}cd + {}io", self.control, self.data, self.io)
    }
}

/// A scalar cost broken out by resource kind, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// Communication cost attributable to control messages.
    pub control: f64,
    /// Communication cost attributable to data messages.
    pub data: f64,
    /// I/O cost.
    pub io: f64,
}

impl CostBreakdown {
    /// Builds a breakdown by pricing a tally under a model.
    pub fn from_vector(v: &CostVector, model: &CostModel) -> Self {
        CostBreakdown {
            control: v.control as f64 * model.cc(),
            data: v.data as f64 * model.cd(),
            io: v.io as f64 * model.cio(),
        }
    }

    /// Total scalar cost.
    pub fn total(&self) -> f64 {
        self.control + self.data + self.io
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_construction_and_validation() {
        let sc = CostModel::stationary(0.2, 0.8).unwrap();
        assert_eq!(sc.cio(), 1.0);
        assert_eq!(sc.environment(), Environment::Stationary);
        let mc = CostModel::mobile(0.2, 0.8).unwrap();
        assert_eq!(mc.cio(), 0.0);
        assert_eq!(mc.environment(), Environment::Mobile);

        assert!(matches!(
            CostModel::stationary(0.9, 0.5),
            Err(CostModelError::ControlExceedsData { .. })
        ));
        assert!(matches!(
            CostModel::stationary(-0.1, 0.5),
            Err(CostModelError::Negative { .. })
        ));
        assert!(CostModel::stationary(f64::NAN, 0.5).is_err());
        assert!(CostModel::stationary(0.1, f64::INFINITY).is_err());
        // Equal costs are allowed (the boundary of "Cannot be true").
        assert!(CostModel::stationary(0.5, 0.5).is_ok());
    }

    #[test]
    fn paper_bounds() {
        let sc = CostModel::stationary(0.3, 0.6).unwrap();
        assert!((sc.sa_bound().unwrap() - 1.9).abs() < 1e-12); // 1 + cc + cd
        assert!((sc.da_bound().unwrap() - 2.6).abs() < 1e-12); // 2 + 2cc (cd ≤ 1)

        let sc2 = CostModel::stationary(0.3, 1.5).unwrap();
        assert!((sc2.da_bound().unwrap() - 2.3).abs() < 1e-12); // 2 + cc (cd > 1)

        let mc = CostModel::mobile(0.5, 1.0).unwrap();
        assert_eq!(mc.sa_bound(), None); // Proposition 3
        assert!((mc.da_bound().unwrap() - 3.5).abs() < 1e-12); // 2 + 3cc/cd
                                                               // cc ≤ cd implies the MC bound is at most 5.
        let mc_eq = CostModel::mobile(1.0, 1.0).unwrap();
        assert!((mc_eq.da_bound().unwrap() - 5.0).abs() < 1e-12);

        let mc_zero = CostModel::mobile(0.0, 0.0).unwrap();
        assert_eq!(mc_zero.da_bound(), None);
    }

    #[test]
    fn vector_arithmetic_and_eval() {
        let a = CostVector::new(2, 1, 3);
        let b = CostVector::new(1, 0, 1);
        assert_eq!(a + b, CostVector::new(3, 1, 4));
        let mut c = a;
        c += b;
        assert_eq!(c, CostVector::new(3, 1, 4));
        let total: CostVector = vec![a, b].into_iter().sum();
        assert_eq!(total, c);

        let m = CostModel::stationary(0.5, 2.0).unwrap();
        assert!((a.eval(&m) - (2.0 * 0.5 + 1.0 * 2.0 + 3.0)).abs() < 1e-12);
        let mc = CostModel::mobile(0.5, 2.0).unwrap();
        assert!((a.eval(&mc) - (1.0 + 2.0)).abs() < 1e-12); // io free

        assert_eq!(a.saturating_sub(&b), CostVector::new(1, 1, 2));
        assert_eq!(b.saturating_sub(&a), CostVector::ZERO);
        assert!(CostVector::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn breakdown_totals() {
        let m = CostModel::stationary(0.25, 0.75).unwrap();
        let v = CostVector::new(4, 2, 5);
        let b = CostBreakdown::from_vector(&v, &m);
        assert!((b.control - 1.0).abs() < 1e-12);
        assert!((b.data - 1.5).abs() < 1e-12);
        assert!((b.io - 5.0).abs() < 1e-12);
        assert!((b.total() - v.eval(&m)).abs() < 1e-12);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Environment::Stationary.to_string(), "SC");
        assert_eq!(Environment::Mobile.to_string(), "MC");
        assert_eq!(CostVector::new(1, 2, 3).to_string(), "1cc + 2cd + 3io");
    }
}

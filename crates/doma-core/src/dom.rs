//! Distributed object management (DOM) algorithms (§3.4).
//!
//! A DOM algorithm maps a schedule and an initial allocation scheme to a
//! corresponding *legal* allocation schedule. An **online** algorithm does
//! so one request at a time with no knowledge of the future (§3.4's "online
//! step"); an **offline** algorithm sees the whole schedule (the optimal
//! offline algorithm OPT is the yardstick of competitive analysis, §4.1).

use crate::{
    cost_of_schedule, AllocationSchedule, CostedSchedule, Decision, ProcSet, Request, Result,
    Schedule,
};

/// Common metadata of any DOM algorithm.
pub trait DomAlgorithm {
    /// Human-readable algorithm name ("SA", "DA", "OPT", …).
    fn name(&self) -> &str;

    /// The availability threshold `t` the algorithm is constrained by.
    fn t(&self) -> usize;

    /// The initial allocation scheme the algorithm starts from.
    fn initial_scheme(&self) -> ProcSet;
}

/// An online DOM algorithm: consumes requests one at a time, producing each
/// request's execution set (and saving-read conversion) without seeing
/// future requests.
///
/// Implementations keep whatever internal state they need (e.g. DA tracks
/// the current allocation scheme and conceptually the join-lists);
/// [`reset`](OnlineDom::reset) returns them to their initial state so one
/// instance can be reused across schedules in sweeps.
pub trait OnlineDom: DomAlgorithm {
    /// The online step: decide the execution set (and saving flag) for the
    /// next request.
    fn decide(&mut self, request: Request) -> Decision;

    /// Returns the algorithm to its initial state (as freshly constructed).
    fn reset(&mut self);
}

/// An offline DOM algorithm: sees the whole schedule before allocating.
pub trait OfflineDom: DomAlgorithm {
    /// Produces a legal allocation schedule for `schedule`.
    fn allocate(&self, schedule: &Schedule) -> Result<AllocationSchedule>;
}

/// The outcome of running an algorithm on a schedule: the allocation
/// schedule it produced and its validated, exact cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The produced allocation schedule.
    pub alloc: AllocationSchedule,
    /// Its validated cost (legality and t-availability were checked).
    pub costed: CostedSchedule,
}

/// Feeds a schedule through an online algorithm (resetting it first) and
/// validates + costs the result.
///
/// Returns an error if the algorithm produced an illegal or
/// availability-violating allocation schedule — by Theorem obligations this
/// must never happen for correct implementations, and the property tests
/// rely on this function to enforce it.
pub fn run_online<A: OnlineDom + ?Sized>(algo: &mut A, schedule: &Schedule) -> Result<RunOutcome> {
    algo.reset();
    let mut alloc = AllocationSchedule::new(algo.initial_scheme());
    for request in schedule.iter() {
        let decision = algo.decide(request);
        alloc.push(request, decision);
    }
    let costed = cost_of_schedule(&alloc, algo.t())?;
    Ok(RunOutcome { alloc, costed })
}

/// Runs an offline algorithm on a schedule and validates + costs the result.
pub fn run_offline<A: OfflineDom + ?Sized>(algo: &A, schedule: &Schedule) -> Result<RunOutcome> {
    let alloc = algo.allocate(schedule)?;
    let costed = cost_of_schedule(&alloc, algo.t())?;
    Ok(RunOutcome { alloc, costed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostVector, ProcessorId};

    /// A toy online algorithm: keeps the initial scheme fixed and serves
    /// everything read-one-write-all style (a miniature SA used to test the
    /// driver without depending on doma-algorithms).
    #[derive(Debug, Clone)]
    struct ToySa {
        q: ProcSet,
        steps_seen: usize,
    }

    impl DomAlgorithm for ToySa {
        fn name(&self) -> &str {
            "ToySA"
        }
        fn t(&self) -> usize {
            self.q.len()
        }
        fn initial_scheme(&self) -> ProcSet {
            self.q
        }
    }

    impl OnlineDom for ToySa {
        fn decide(&mut self, request: Request) -> Decision {
            self.steps_seen += 1;
            if request.is_write() {
                Decision::exec(self.q)
            } else if self.q.contains(request.issuer) {
                Decision::exec(ProcSet::singleton(request.issuer))
            } else {
                Decision::exec(ProcSet::singleton(self.q.any_member().unwrap()))
            }
        }
        fn reset(&mut self) {
            self.steps_seen = 0;
        }
    }

    #[test]
    fn run_online_produces_costed_valid_schedule() {
        let mut algo = ToySa {
            q: ProcSet::from_iter([0usize, 1]),
            steps_seen: 0,
        };
        let schedule: Schedule = "r2 w0 r1".parse().unwrap();
        let out = run_online(&mut algo, &schedule).unwrap();
        assert_eq!(out.alloc.len(), 3);
        assert_eq!(out.alloc.corresponding_schedule(), schedule);
        // r2 remote: (1,1,1); w0 on {0,1}: (0,1,2); r1 local: (0,0,1).
        assert_eq!(out.costed.total, CostVector::new(1, 2, 4));
        assert_eq!(out.costed.final_scheme, ProcSet::from_iter([0usize, 1]));
    }

    #[test]
    fn run_online_resets_state() {
        let mut algo = ToySa {
            q: ProcSet::from_iter([0usize, 1]),
            steps_seen: 99,
        };
        let schedule: Schedule = "r0".parse().unwrap();
        run_online(&mut algo, &schedule).unwrap();
        assert_eq!(algo.steps_seen, 1, "reset must run before stepping");
    }

    /// An offline algorithm that returns a deliberately illegal schedule,
    /// to check the driver rejects it.
    struct Broken;
    impl DomAlgorithm for Broken {
        fn name(&self) -> &str {
            "Broken"
        }
        fn t(&self) -> usize {
            2
        }
        fn initial_scheme(&self) -> ProcSet {
            ProcSet::from_iter([0usize, 1])
        }
    }
    impl OfflineDom for Broken {
        fn allocate(&self, schedule: &Schedule) -> Result<AllocationSchedule> {
            let mut alloc = AllocationSchedule::new(self.initial_scheme());
            for request in schedule.iter() {
                // Execute everything at processor 9, which is never in the
                // scheme — reads become illegal.
                alloc.push(
                    request,
                    Decision::exec(ProcSet::singleton(ProcessorId::new(9))),
                );
            }
            Ok(alloc)
        }
    }

    #[test]
    fn run_offline_rejects_illegal_output() {
        let schedule: Schedule = "r0".parse().unwrap();
        assert!(run_offline(&Broken, &schedule).is_err());
    }
}

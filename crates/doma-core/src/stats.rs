//! Schedule statistics: the access-pattern summaries the allocation
//! algorithms implicitly compete over (per-processor read/write activity,
//! locality, and write-burst structure).

use crate::{ProcSet, Schedule};

/// Per-processor activity in a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProcessorActivity {
    /// Reads issued by the processor.
    pub reads: usize,
    /// Writes issued by the processor.
    pub writes: usize,
}

impl ProcessorActivity {
    /// Total requests issued.
    pub fn total(&self) -> usize {
        self.reads + self.writes
    }
}

/// Aggregate statistics of a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleStats {
    /// Activity per processor index (length = `min_processors`).
    pub per_processor: Vec<ProcessorActivity>,
    /// Overall read fraction (`NaN` for an empty schedule).
    pub read_fraction: f64,
    /// Lengths of the maximal write-free read runs (the windows in which
    /// a saving-read can amortize — the quantity DA's competitiveness
    /// hinges on).
    pub read_run_lengths: Vec<usize>,
    /// Number of *distinct* readers between consecutive writes, averaged —
    /// the invalidation fan-out a write will pay under DA.
    pub mean_readers_per_interval: f64,
}

impl ScheduleStats {
    /// The processors that issue at least one request.
    pub fn active_processors(&self) -> ProcSet {
        self.per_processor
            .iter()
            .enumerate()
            .filter(|(_, a)| a.total() > 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// The busiest `k` processors by total activity (ties by index).
    pub fn top_k(&self, k: usize) -> ProcSet {
        let mut order: Vec<usize> = (0..self.per_processor.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(self.per_processor[i].total()), i));
        order.into_iter().take(k).collect()
    }

    /// Mean read-run length (0 if there are no reads).
    pub fn mean_read_run(&self) -> f64 {
        if self.read_run_lengths.is_empty() {
            0.0
        } else {
            self.read_run_lengths.iter().sum::<usize>() as f64 / self.read_run_lengths.len() as f64
        }
    }
}

/// Computes [`ScheduleStats`] in a single pass.
pub fn schedule_stats(schedule: &Schedule) -> ScheduleStats {
    let n = schedule.min_processors();
    let mut per_processor = vec![ProcessorActivity::default(); n];
    let mut read_run_lengths = Vec::new();
    let mut current_run = 0usize;
    let mut interval_readers = ProcSet::EMPTY;
    let mut readers_per_interval = Vec::new();
    for r in schedule.iter() {
        let a = &mut per_processor[r.issuer.index()];
        if r.is_read() {
            a.reads += 1;
            current_run += 1;
            interval_readers.insert(r.issuer);
        } else {
            a.writes += 1;
            if current_run > 0 {
                read_run_lengths.push(current_run);
                current_run = 0;
            }
            readers_per_interval.push(interval_readers.len());
            interval_readers = ProcSet::EMPTY;
        }
    }
    if current_run > 0 {
        read_run_lengths.push(current_run);
    }
    if !interval_readers.is_empty() {
        readers_per_interval.push(interval_readers.len());
    }
    let reads: usize = per_processor.iter().map(|a| a.reads).sum();
    let total = schedule.len();
    ScheduleStats {
        per_processor,
        read_fraction: if total == 0 {
            f64::NAN
        } else {
            reads as f64 / total as f64
        },
        read_run_lengths,
        mean_readers_per_interval: if readers_per_interval.is_empty() {
            0.0
        } else {
            readers_per_interval.iter().sum::<usize>() as f64 / readers_per_interval.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_of(s: &str) -> ScheduleStats {
        schedule_stats(&s.parse().expect("valid schedule"))
    }

    #[test]
    fn per_processor_counts() {
        let s = stats_of("r1 r1 r2 w2 r2 r2 r2");
        assert_eq!(
            s.per_processor[1],
            ProcessorActivity {
                reads: 2,
                writes: 0
            }
        );
        assert_eq!(
            s.per_processor[2],
            ProcessorActivity {
                reads: 4,
                writes: 1
            }
        );
        assert_eq!(s.per_processor[0].total(), 0);
        assert!((s.read_fraction - 6.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn read_runs_split_at_writes() {
        let s = stats_of("r1 r1 w0 r2 w0 w0 r3 r3 r3");
        assert_eq!(s.read_run_lengths, vec![2, 1, 3]);
        assert!((s.mean_read_run() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn readers_per_interval_counts_distinct() {
        // Interval 1: readers {1, 2}; interval 2: none; trailing: {3}.
        let s = stats_of("r1 r2 r1 w0 w0 r3");
        assert_eq!(s.mean_readers_per_interval, (2 + 1) as f64 / 3.0);
    }

    #[test]
    fn active_and_top_k() {
        let s = stats_of("r3 r3 r3 w1 r2");
        assert_eq!(s.active_processors(), ProcSet::from_iter([1usize, 2, 3]));
        assert_eq!(s.top_k(1), ProcSet::from_iter([3usize]));
        assert_eq!(s.top_k(2), ProcSet::from_iter([1usize, 3])); // tie 1 vs 2 → lower index
    }

    #[test]
    fn empty_schedule() {
        let s = stats_of("");
        assert!(s.read_fraction.is_nan());
        assert!(s.read_run_lengths.is_empty());
        assert_eq!(s.mean_read_run(), 0.0);
        assert_eq!(s.mean_readers_per_interval, 0.0);
        assert!(s.active_processors().is_empty());
    }

    #[test]
    fn pure_write_schedule() {
        let s = stats_of("w0 w1 w0");
        assert_eq!(s.read_fraction, 0.0);
        assert!(s.read_run_lengths.is_empty());
        assert_eq!(s.mean_readers_per_interval, 0.0);
    }
}

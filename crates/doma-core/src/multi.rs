//! Multi-object schedules: interleaved request sequences over a catalog
//! of objects. The paper analyzes one object (§3.1 "we address the
//! allocation of a single object"); in its cost model objects are
//! independent, so a multi-object schedule's cost is the sum of its
//! per-object projections — which is exactly what
//! [`MultiSchedule::per_object`] produces.

use crate::{ObjectId, Request, Schedule};
use std::collections::BTreeMap;

/// One request against one object of the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiRequest {
    /// The object accessed.
    pub object: ObjectId,
    /// The read/write request.
    pub request: Request,
}

/// A finite interleaved sequence of multi-object requests.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MultiSchedule {
    requests: Vec<MultiRequest>,
}

impl MultiSchedule {
    /// Creates a schedule from a request sequence.
    pub fn from_requests(requests: Vec<MultiRequest>) -> Self {
        MultiSchedule { requests }
    }

    /// The request sequence.
    pub fn requests(&self) -> &[MultiRequest] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Appends a request.
    pub fn push(&mut self, object: ObjectId, request: Request) {
        self.requests.push(MultiRequest { object, request });
    }

    /// The distinct objects referenced, in first-touch order.
    pub fn objects(&self) -> Vec<ObjectId> {
        let mut seen = Vec::new();
        for r in &self.requests {
            if !seen.contains(&r.object) {
                seen.push(r.object);
            }
        }
        seen
    }

    /// Splits into per-object schedules (preserving per-object order),
    /// keyed by object — the paper's single-object analysis applies to
    /// each independently.
    pub fn per_object(&self) -> BTreeMap<ObjectId, Schedule> {
        let mut map: BTreeMap<ObjectId, Schedule> = BTreeMap::new();
        for r in &self.requests {
            map.entry(r.object).or_default().push(r.request);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_len_objects() {
        let mut s = MultiSchedule::default();
        assert!(s.is_empty());
        s.push(ObjectId(2), Request::read(1usize));
        s.push(ObjectId(1), Request::write(0usize));
        s.push(ObjectId(2), Request::write(3usize));
        assert_eq!(s.len(), 3);
        assert_eq!(s.objects(), vec![ObjectId(2), ObjectId(1)]);
        assert_eq!(s.requests()[1].object, ObjectId(1));
    }

    #[test]
    fn per_object_projection_preserves_order() {
        let mut s = MultiSchedule::default();
        s.push(ObjectId(7), Request::read(1usize));
        s.push(ObjectId(9), Request::write(2usize));
        s.push(ObjectId(7), Request::write(1usize));
        let per = s.per_object();
        assert_eq!(per[&ObjectId(7)].to_string(), "r1 w1");
        assert_eq!(per[&ObjectId(9)].to_string(), "w2");
    }

    #[test]
    fn from_requests_roundtrip() {
        let reqs = vec![MultiRequest {
            object: ObjectId(1),
            request: Request::read(0usize),
        }];
        let s = MultiSchedule::from_requests(reqs.clone());
        assert_eq!(s.requests(), reqs.as_slice());
    }
}

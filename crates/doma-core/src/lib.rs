//! # doma-core
//!
//! The model of Huang & Wolfson, *"Object Allocation in Distributed Databases
//! and Mobile Computers"*, ICDE 1994 (pp. 20–29).
//!
//! This crate defines the vocabulary of the paper — processors, read/write
//! requests, schedules, execution sets, allocation schedules with
//! saving-reads, allocation schemes — together with:
//!
//! * the **unified cost function** of §3.2 (stationary computing, `cio = 1`)
//!   and §3.3 (mobile computing, `cio = 0`), kept as *exact integer tallies*
//!   of control messages, data messages and I/O operations
//!   ([`CostVector`]) that are only turned into scalars when evaluated
//!   against a [`CostModel`];
//! * **legality** and **t-availability** validation of allocation schedules
//!   (§3.1);
//! * the **distributed object management (DOM) algorithm** abstraction of
//!   §3.4: [`OnlineDom`] (online steps fed one request at a time) and
//!   [`OfflineDom`] (sees the whole schedule), plus the [`run_online`]
//!   driver that produces a costed, validated allocation schedule.
//!
//! Higher-level crates implement the SA/DA/OPT algorithms
//! (`doma-algorithms`), run them as real message-passing protocols
//! (`doma-protocol`) and regenerate the paper's figures (`doma-analysis`).
//!
//! ## Quick example
//!
//! The worked example of §1.3: schedule `r1 r1 r2 w2 r2 r2 r2` with a single
//! initial copy at processor 1 is served more cheaply by a dynamic
//! allocation that migrates the object to processor 2 at the write.
//!
//! ```
//! use doma_core::{Schedule, ProcSet, CostModel};
//!
//! let schedule: Schedule = "r1 r1 r2 w2 r2 r2 r2".parse().unwrap();
//! assert_eq!(schedule.len(), 7);
//! let initial = ProcSet::from_iter([1]);
//! assert_eq!(initial.len(), 1);
//! let model = CostModel::stationary(0.1, 0.5).unwrap();
//! assert_eq!(model.cio(), 1.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod alloc;
mod cost;
mod dom;
mod engine;
mod error;
mod ids;
mod multi;
mod procset;
mod request;
mod schedule;
mod stats;
mod validate;

pub use alloc::{AllocatedRequest, AllocationSchedule, Decision};
pub use cost::{CostBreakdown, CostModel, CostVector, Environment};
pub use dom::{run_offline, run_online, DomAlgorithm, OfflineDom, OnlineDom, RunOutcome};
pub use engine::{
    cost_of_schedule, per_processor_io, request_cost, scheme_after, CostedSchedule, PerRequestCost,
};
pub use error::{DomaError, Result};
pub use ids::{ObjectId, ProcessorId};
pub use multi::{MultiRequest, MultiSchedule};
pub use procset::{ProcSet, ProcSetIter, MAX_PROCESSORS};
pub use request::{Op, Request};
pub use schedule::{Schedule, ScheduleParseError};
pub use stats::{schedule_stats, ProcessorActivity, ScheduleStats};
pub use validate::{
    validate_allocation, AvailabilityViolation, LegalityViolation, ValidationReport,
};

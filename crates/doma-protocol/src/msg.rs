//! The wire protocol.

use doma_core::{ObjectId, ProcSet, ProcessorId};
use doma_sim::NodeId;
use doma_storage::Version;

/// A driver-computed read placement for an adaptive-algorithm object
/// (see [`crate::ProtocolConfig::Adaptive`]): the online algorithm runs
/// as an oracle inside the driver, and the node executes its decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReadPlan {
    /// Remote server to fetch from (`None` = the issuer's own replica).
    pub server: Option<ProcessorId>,
    /// Whether the fetched copy is stored at the issuer (a saving-read,
    /// growing the allocation scheme).
    pub saving: bool,
    /// A scheme member to fall back to when a local read finds the
    /// replica unexpectedly invalid (possible only after fault episodes).
    pub fallback: Option<ProcessorId>,
}

/// A driver-computed write placement for an adaptive-algorithm object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WritePlan {
    /// The execution set `X`: every member stores the new version.
    pub exec: ProcSet,
    /// Scheme members outside `X` (and other than the issuer) whose
    /// replicas the issuer invalidates — the paper's `Y \ X \ {i}`.
    pub invalidate: ProcSet,
    /// The issuer was a scheme member but is not in `X`: it drops its own
    /// replica locally, without any message (the analytic model charges
    /// nothing for this).
    pub self_invalidate: bool,
}

/// Messages exchanged by [`crate::DomNode`]s (plus the locally injected
/// client requests, which are not network messages and are not tallied).
///
/// Every object-bearing message carries its [`ObjectId`]: the cluster
/// serves a whole catalog of objects, each under its own SA/DA
/// configuration (the paper analyzes one object; in its model objects are
/// cost-independent, and the integration tests verify the protocol's
/// tallies decompose accordingly).
///
/// Control messages (priced `cc`): [`DomMsg::ReadReq`],
/// [`DomMsg::Invalidate`], [`DomMsg::NoData`], [`DomMsg::ModeChange`].
/// Data messages (priced `cd`): [`DomMsg::ObjData`], [`DomMsg::WriteProp`]
/// — they carry the object payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DomMsg {
    /// Client request: read the object (injected locally by the driver).
    ClientRead {
        /// The object to read.
        object: ObjectId,
        /// Placement computed by the driver-side decision oracle
        /// (`None` for SA/DA objects, whose placement is node-local).
        plan: Option<ReadPlan>,
    },
    /// Client request: write a new version (injected locally by the
    /// driver, which owns the per-object version counter — the stand-in
    /// for the concurrency control that totally orders writes).
    ClientWrite {
        /// The object to write.
        object: ObjectId,
        /// The globally assigned version.
        version: Version,
        /// The new object payload.
        payload: Vec<u8>,
        /// Placement computed by the driver-side decision oracle
        /// (`None` for SA/DA objects).
        plan: Option<WritePlan>,
    },
    /// "Send me the latest object." `saving` tells the server the
    /// requester will store the reply (DA), so DA core members record the
    /// requester in their join-list.
    ReadReq {
        /// The object requested.
        object: ObjectId,
        /// Whether the reply will be saved at the requester.
        saving: bool,
        /// The requester's quorum-operation round, echoed back by replies
        /// (0 = a normal-mode forwarded read, outside any quorum op).
        /// Under fault injection a delayed or duplicated reply from an
        /// earlier quorum operation must never be counted toward a later
        /// one; the round tag is what makes them distinguishable on the
        /// wire.
        round: u64,
    },
    /// The object, in reply to [`DomMsg::ReadReq`] or a quorum read.
    ObjData {
        /// The object carried.
        object: ObjectId,
        /// The version carried.
        version: Version,
        /// The payload.
        payload: Vec<u8>,
        /// Whether the requester should output it to its local database.
        save: bool,
        /// The round of the [`DomMsg::ReadReq`] this answers (0 = not a
        /// quorum reply).
        round: u64,
    },
    /// Quorum-read reply from a node with no valid replica.
    NoData {
        /// The object that was requested.
        object: ObjectId,
        /// The round of the [`DomMsg::ReadReq`] this answers.
        round: u64,
    },
    /// A write propagated to a member of the execution set.
    WriteProp {
        /// The object written.
        object: ObjectId,
        /// The version being written.
        version: Version,
        /// The payload.
        payload: Vec<u8>,
        /// The writing processor (needed by DA core members to compute the
        /// execution set and exclude the writer from invalidation).
        writer: NodeId,
    },
    /// "Your replica is stale" — mark it invalid.
    Invalidate {
        /// The object invalidated.
        object: ObjectId,
        /// The version that superseded the local replica.
        version: Version,
    },
    /// Failure handling: switch between normal DA/SA mode and
    /// majority-quorum mode (sent by the failure detector, played by the
    /// driver). Applies to the whole node, not one object.
    ModeChange {
        /// `true` = quorum mode.
        quorum: bool,
    },
    /// Failure handling: instruct a recovered node to catch up via a
    /// quorum read of one object before resuming service (the
    /// missing-writes transition; the driver sends one per object).
    CatchUp {
        /// The object to catch up.
        object: ObjectId,
    },
}

impl DomMsg {
    /// Whether this message carries the object payload (and is therefore
    /// priced as a data message).
    pub fn is_data(&self) -> bool {
        matches!(self, DomMsg::ObjData { .. } | DomMsg::WriteProp { .. })
    }

    /// A short label for message traces.
    pub fn label(&self) -> String {
        match self {
            DomMsg::ClientRead { object, .. } => format!("ClientRead({object})"),
            DomMsg::ClientWrite {
                object, version, ..
            } => {
                format!("ClientWrite({object},{version})")
            }
            DomMsg::ReadReq { object, saving, .. } => {
                format!("ReadReq({object}{})", if *saving { ",saving" } else { "" })
            }
            DomMsg::ObjData {
                object, version, ..
            } => format!("ObjData({object},{version})"),
            DomMsg::NoData { object, .. } => format!("NoData({object})"),
            DomMsg::WriteProp {
                object, version, ..
            } => {
                format!("WriteProp({object},{version})")
            }
            DomMsg::Invalidate { object, version } => {
                format!("Invalidate({object},{version})")
            }
            DomMsg::ModeChange { quorum } => format!("ModeChange(quorum={quorum})"),
            DomMsg::CatchUp { object } => format!("CatchUp({object})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OBJ: ObjectId = ObjectId(0);

    #[test]
    fn data_classification() {
        assert!(DomMsg::ObjData {
            object: OBJ,
            version: Version(1),
            payload: vec![],
            save: false,
            round: 0
        }
        .is_data());
        assert!(DomMsg::WriteProp {
            object: OBJ,
            version: Version(1),
            payload: vec![],
            writer: NodeId(0)
        }
        .is_data());
        assert!(!DomMsg::ReadReq {
            object: OBJ,
            saving: true,
            round: 0
        }
        .is_data());
        assert!(!DomMsg::Invalidate {
            object: OBJ,
            version: Version(2)
        }
        .is_data());
        assert!(!DomMsg::NoData {
            object: OBJ,
            round: 0
        }
        .is_data());
        assert!(!DomMsg::ModeChange { quorum: true }.is_data());
        assert!(!DomMsg::CatchUp { object: OBJ }.is_data());
    }
}

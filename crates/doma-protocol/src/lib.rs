//! # doma-protocol
//!
//! SA and DA as *actual message-passing protocols* over the discrete-event
//! simulator (`doma-sim`) and the local-store substrate (`doma-storage`).
//!
//! The analytic cost model of `doma-core` prices three resources; this
//! crate exchanges the real messages and performs the real I/Os, and the
//! integration tests assert **exact tally equality** between the simulated
//! protocol and the analytic cost engine for the same schedule — control
//! message for control message, I/O for I/O.
//!
//! Contents:
//!
//! * [`DomMsg`] — the wire protocol: read requests, object transfers,
//!   write propagations, invalidations, and the failure-mode messages.
//! * [`DomNode`] — one processor: a [`doma_storage::LocalStore`] plus the
//!   SA or DA state machine (join-lists at core members, floating-member
//!   tracking at the primary).
//! * [`ProtocolSim`] — the driver: builds a cluster, executes a
//!   [`doma_core::Schedule`] request by request (the paper's totally
//!   ordered schedule), and reports exact [`doma_core::CostVector`]
//!   tallies, replica placement, and read latencies.
//! * [`ShardedSim`] — object-sharded parallel execution: partitions a
//!   multi-object schedule into K shards (objects are independent in the
//!   failure-free protocol), runs each shard on its own cluster and
//!   engine on scoped threads, and deterministically merges reports and
//!   observability so the result is identical to sequential execution.
//! * [`failover`] — the §2 failure handling sketch: when a core member
//!   fails, the cluster falls back to majority-quorum reads/writes and a
//!   recovering node catches up via a quorum read (the missing-writes
//!   transition) before normal DA operation resumes.
//! * [`ProtocolConfig::Adaptive`] — adaptive algorithms (the promoted
//!   tournament baselines and contenders) run as driver-side
//!   [`PlanOracle`]s: each injected request is decided by the live
//!   algorithm and the decision ships inside the client message as a
//!   [`ReadPlan`]/[`WritePlan`] the issuing node executes exactly. The
//!   same exact-tally-parity property holds for them, and the quorum
//!   failure fallback covers them unchanged (plans are ignored in quorum
//!   mode).
//!
//! Write acknowledgements are deliberately *not* modeled: the paper's cost
//! model does not price them (§1.2 counts request, data and invalidate
//! messages only), and the driver's run-to-quiescence execution makes them
//! unnecessary for correctness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod failover;
mod msg;
mod node;
mod obs;
mod planner;
mod sharded;
mod sim;
mod transport;

pub use msg::{DomMsg, ReadPlan, WritePlan};
pub use node::{AdaptiveAlgo, BugSwitches, CompletedRead, DomNode, ProtocolConfig};
pub use planner::{ClientPlanner, PlannedRequest};
pub use sharded::{ShardInput, ShardOutcome, ShardedRun, ShardedSim};
pub use sim::{BurstReport, OpenLoopReport, PlanOracle, ProtocolSim, SimReport};
pub use transport::Transport;

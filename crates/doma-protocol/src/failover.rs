//! Failure handling — the §2 sketch, made concrete.
//!
//! The paper proposes that DA "handles failures by resorting to quorum
//! consensus with static allocation when a processor of the set F fails",
//! transitioning via the missing-writes algorithm, with details omitted.
//! This module implements a faithful, testable version of that sketch:
//!
//! 1. a failure detector (played by the experiment driver) notices a core
//!    member crash and broadcasts `ModeChange { quorum: true }`;
//! 2. while in quorum mode, reads and writes go to majorities, so any read
//!    quorum intersects any write quorum and observes the latest version;
//! 3. when the member recovers, it first performs a `CatchUp` quorum read
//!    (resolving its missing writes) and the driver then broadcasts
//!    `ModeChange { quorum: false }`, resuming normal DA.
//!
//! The mode-switch and catch-up messages are *failure-handling overhead*
//! outside the paper's normal-mode cost analysis; [`FailoverDriver`]
//! reports them separately so the normal-mode tallies stay comparable.

use crate::{DomMsg, ProtocolSim};
use doma_core::{CostVector, ProcessorId, Request, Result};
use doma_sim::NodeId;
use doma_storage::Version;

/// Orchestrates crash/recovery around a [`ProtocolSim`], tracking which
/// tallies belong to normal operation vs failure handling.
pub struct FailoverDriver {
    sim: ProtocolSim,
    n: usize,
    crashed: Vec<bool>,
    /// Tallies recorded before the current failure episode started.
    normal_cost_before_failure: Option<CostVector>,
}

impl FailoverDriver {
    /// Wraps a cluster.
    pub fn new(sim: ProtocolSim, n: usize) -> Self {
        FailoverDriver {
            sim,
            n,
            crashed: vec![false; n],
            normal_cost_before_failure: None,
        }
    }

    /// The wrapped simulator.
    pub fn sim(&self) -> &ProtocolSim {
        &self.sim
    }

    /// Mutable access to the wrapped simulator.
    pub fn sim_mut(&mut self) -> &mut ProtocolSim {
        &mut self.sim
    }

    /// Crashes a processor. If it is a DA core member, the cluster is
    /// switched to quorum mode (the paper's fallback).
    pub fn crash(&mut self, p: ProcessorId) {
        let was_core = match self.sim.config() {
            crate::ProtocolConfig::Da { f, .. } => f.contains(p),
            crate::ProtocolConfig::Sa { .. } => false,
        };
        if self.normal_cost_before_failure.is_none() {
            self.normal_cost_before_failure = Some(self.sim.report().cost);
        }
        self.crashed[p.index()] = true;
        let node = NodeId(p.index());
        self.sim.engine_mut().schedule_crash(node, 0);
        self.sim.engine_mut().run_until_idle();
        if was_core {
            self.broadcast_mode(true);
        }
    }

    /// Recovers a processor: replays its log, performs the missing-writes
    /// catch-up, and — once no core member remains down — returns the
    /// cluster to normal mode.
    pub fn recover(&mut self, p: ProcessorId) {
        self.crashed[p.index()] = false;
        let node = NodeId(p.index());
        self.sim.engine_mut().schedule_recover(node, 0);
        self.sim.engine_mut().run_until_idle();
        // Missing-writes transition: quorum-read the latest version of
        // every object in the catalog.
        let objects: Vec<doma_core::ObjectId> =
            self.sim.catalog().keys().copied().collect();
        for object in objects {
            self.sim
                .engine_mut()
                .inject(node, 1, DomMsg::CatchUp { object });
            self.sim.engine_mut().run_until_idle();
        }
        let any_core_down = match self.sim.config() {
            crate::ProtocolConfig::Da { f, .. } => {
                f.iter().any(|m| self.crashed[m.index()])
            }
            crate::ProtocolConfig::Sa { .. } => false,
        };
        if !any_core_down {
            self.broadcast_mode(false);
        }
    }

    fn broadcast_mode(&mut self, quorum: bool) {
        for i in 0..self.n {
            if !self.crashed[i] {
                self.sim
                    .engine_mut()
                    .inject(NodeId(i), 0, DomMsg::ModeChange { quorum });
            }
        }
        self.sim.engine_mut().run_until_idle();
    }

    /// Executes a request in whatever mode the cluster is in.
    pub fn execute_request(&mut self, request: Request) -> Result<()> {
        self.sim.execute_request(request)
    }

    /// The normal-mode tallies recorded just before the first failure (so
    /// failure-handling overhead can be separated out in reports), if a
    /// failure has occurred.
    pub fn normal_mode_cost(&self) -> Option<CostVector> {
        self.normal_cost_before_failure
    }

    /// The number of live processors holding the given version validly.
    pub fn live_holders_of(&self, version: Version) -> usize {
        self.sim
            .holders_of(version)
            .iter()
            .filter(|p| !self.crashed[p.index()])
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doma_core::ProcSet;
    use doma_sim::NodeId;

    fn ps(v: &[usize]) -> ProcSet {
        v.iter().copied().collect()
    }

    fn da_cluster(n: usize) -> FailoverDriver {
        let sim = ProtocolSim::new_da(n, ps(&[0]), ProcessorId::new(1)).unwrap();
        FailoverDriver::new(sim, n)
    }

    #[test]
    fn core_crash_switches_to_quorum_mode() {
        let mut d = da_cluster(5);
        d.crash(ProcessorId::new(0));
        for i in 1..5 {
            assert!(
                d.sim().engine_ref_actor_in_quorum(i),
                "node {i} should be in quorum mode"
            );
        }
    }

    #[test]
    fn writes_survive_core_failure_and_reads_see_them() {
        let mut d = da_cluster(5);
        d.crash(ProcessorId::new(0));
        // A write in quorum mode reaches a majority of the 5 nodes.
        d.execute_request(Request::write(3usize)).unwrap();
        let v = d.sim().latest_version();
        assert!(
            d.live_holders_of(v) >= 3,
            "quorum write must reach a live majority"
        );
        // A quorum read from any node observes the latest version.
        d.execute_request(Request::read(4usize)).unwrap();
        let report = d.sim().report();
        assert_eq!(report.reads_completed, 1);
    }

    #[test]
    fn recovery_catches_up_missing_writes_and_resumes_normal_mode() {
        let mut d = da_cluster(5);
        d.crash(ProcessorId::new(0));
        // Two writes happen while the core member is down.
        d.execute_request(Request::write(2usize)).unwrap();
        d.execute_request(Request::write(3usize)).unwrap();
        let v = d.sim().latest_version();
        d.recover(ProcessorId::new(0));
        // The recovered core member holds the latest version again.
        assert!(
            d.sim().holders_of(v).contains(ProcessorId::new(0)),
            "missing-writes catch-up must bring the core member current"
        );
        // Cluster is back in normal mode everywhere.
        for i in 0..5 {
            assert!(!d.sim().engine_ref_actor_in_quorum(i));
        }
        // Normal DA service works again: a non-member saving-read.
        d.execute_request(Request::read(4usize)).unwrap();
        assert!(d.sim().holders_of(v).contains(ProcessorId::new(4)));
    }

    #[test]
    fn non_core_crash_does_not_trigger_quorum_mode() {
        let mut d = da_cluster(5);
        d.crash(ProcessorId::new(4));
        assert!(!d.sim().engine_ref_actor_in_quorum(2));
        // Normal operation continues for live nodes.
        d.execute_request(Request::read(3usize)).unwrap();
        assert_eq!(d.sim().report().reads_completed, 1);
    }

    #[test]
    fn availability_invariant_under_single_failure() {
        // t = 2: after any single crash and a subsequent write, at least
        // one *live* processor still serves the latest version in normal
        // mode, and a majority does in quorum mode.
        let mut d = da_cluster(5);
        d.execute_request(Request::write(2usize)).unwrap();
        d.crash(ProcessorId::new(0)); // core member down → quorum mode
        d.execute_request(Request::write(3usize)).unwrap();
        let v = d.sim().latest_version();
        assert!(d.live_holders_of(v) >= 2, "t=2 availability must survive");
    }

    impl ProtocolSim {
        /// Test-only peek: is node `i` in quorum mode?
        fn engine_ref_actor_in_quorum(&self, i: usize) -> bool {
            // SAFETY of design: Engine::actor is &self access.
            self.engine_ref().actor(NodeId(i)).in_quorum_mode()
        }
    }
}

//! Failure handling — the §2 sketch, made concrete.
//!
//! The paper proposes that DA "handles failures by resorting to quorum
//! consensus with static allocation when a processor of the set F fails",
//! transitioning via the missing-writes algorithm, with details omitted.
//! This module implements a faithful, testable version of that sketch:
//!
//! 1. a failure detector (played by the experiment driver) notices a core
//!    member crash and broadcasts `ModeChange { quorum: true }`;
//! 2. while in quorum mode, reads and writes go to majorities, so any read
//!    quorum intersects any write quorum and observes the latest version;
//! 3. when the member recovers, it first performs a `CatchUp` quorum read
//!    (resolving its missing writes) and the driver then broadcasts
//!    `ModeChange { quorum: false }`, resuming normal DA.
//!
//! The mode-switch and catch-up messages are *failure-handling overhead*
//! outside the paper's normal-mode cost analysis; [`FailoverDriver`]
//! reports them separately so the normal-mode tallies stay comparable.

use crate::{DomMsg, ProtocolSim};
use doma_core::{CostVector, ProcessorId, Request, Result};
use doma_sim::NodeId;
use doma_storage::Version;

/// Orchestrates crash/recovery around a [`ProtocolSim`], tracking which
/// tallies belong to normal operation vs failure handling.
pub struct FailoverDriver {
    sim: ProtocolSim,
    n: usize,
    crashed: Vec<bool>,
    /// Tallies recorded before the current failure episode started.
    normal_cost_before_failure: Option<CostVector>,
    /// A core-member crash was scheduled mid-schedule and the failure
    /// detector has not reacted yet (it reacts at the next quiescence).
    pending_detection: bool,
    /// Whether a quorum-mode broadcast is currently in force. Gating the
    /// `ModeChange { quorum: false }` broadcasts on this matters: the
    /// false-broadcast is *destructive* (it resets DA allocation to
    /// F ∪ {p}, invalidating the current floater), so sending one after
    /// an episode that never engaged quorum mode — e.g. a non-core crash
    /// — would itself break t-availability.
    quorum_engaged: bool,
    /// Test-only reverted fix: broadcast the destructive
    /// `ModeChange { quorum: false }` after every recovery, as the
    /// pre-hardening driver did, even when quorum mode never engaged.
    bug_destructive_mode_reset: bool,
}

impl FailoverDriver {
    /// Wraps a cluster.
    pub fn new(sim: ProtocolSim, n: usize) -> Self {
        FailoverDriver {
            sim,
            n,
            crashed: vec![false; n],
            normal_cost_before_failure: None,
            pending_detection: false,
            quorum_engaged: false,
            bug_destructive_mode_reset: false,
        }
    }

    /// Reverts the quorum-engaged gating of the destructive
    /// `ModeChange { quorum: false }` broadcast (regression tests only).
    #[doc(hidden)]
    pub fn set_destructive_mode_reset(&mut self, on: bool) {
        self.bug_destructive_mode_reset = on;
    }

    /// The wrapped simulator.
    pub fn sim(&self) -> &ProtocolSim {
        &self.sim
    }

    /// Mutable access to the wrapped simulator.
    pub fn sim_mut(&mut self) -> &mut ProtocolSim {
        &mut self.sim
    }

    /// Whether `p` is a member of the protocol's home allocation scheme —
    /// DA's `F ∪ {p}` or SA's `Q`. A crash of any such member endangers
    /// the next write: DA execution sets snap back to `F ∪ {p}` on
    /// core-or-floater writes and SA always writes all of `Q`, so a data
    /// message would target the crashed member and its copy would be
    /// silently lost. The failure detector therefore falls back to quorum
    /// mode for the whole scheme, not just the core.
    fn in_home_scheme(&self, p: ProcessorId) -> bool {
        match self.sim.config() {
            // An adaptive scheme moves with the workload, so any node can
            // be (or become) a scheme member: every crash endangers the
            // next write and triggers the quorum fallback.
            crate::ProtocolConfig::Adaptive { .. } => true,
            config => config.initial_scheme().contains(p),
        }
    }

    /// Crashes a processor. If it is a member of the home allocation
    /// scheme, the cluster is switched to quorum mode (the paper's
    /// fallback).
    pub fn crash(&mut self, p: ProcessorId) {
        let was_scheme = self.in_home_scheme(p);
        if self.normal_cost_before_failure.is_none() {
            self.normal_cost_before_failure = Some(self.sim.report().cost);
        }
        self.crashed[p.index()] = true;
        let node = NodeId(p.index());
        self.sim.engine_mut().schedule_crash(node, 0);
        self.sim.engine_mut().run_until_idle();
        if was_scheme {
            self.broadcast_mode(true);
        }
    }

    /// Schedules a crash of `p` after `delay` ticks *without* running the
    /// cluster to quiescence first — the crash lands in the middle of
    /// whatever the next [`FailoverDriver::execute_request`] sets in
    /// motion (a write's propagation, a read's round trip). The failure
    /// detector reacts at the next quiescence, exactly like a real
    /// timeout-based detector that only notices once traffic stalls.
    pub fn crash_in(&mut self, p: ProcessorId, delay: u64) {
        let was_scheme = self.in_home_scheme(p);
        if self.normal_cost_before_failure.is_none() {
            self.normal_cost_before_failure = Some(self.sim.report().cost);
        }
        self.crashed[p.index()] = true;
        self.sim
            .engine_mut()
            .schedule_crash(NodeId(p.index()), delay);
        self.pending_detection |= was_scheme;
    }

    /// Runs the cluster to quiescence and lets the failure detector react
    /// to any crash scheduled via [`FailoverDriver::crash_in`] (switching
    /// to quorum mode if a home-scheme member went down).
    pub fn detect_failures(&mut self) {
        self.sim.engine_mut().run_until_idle();
        if self.pending_detection {
            self.pending_detection = false;
            self.broadcast_mode(true);
        }
    }

    /// Recovers a processor: replays its log, performs the missing-writes
    /// catch-up, and — once no home-scheme member remains down — returns
    /// the cluster to normal mode.
    pub fn recover(&mut self, p: ProcessorId) {
        self.crashed[p.index()] = false;
        let node = NodeId(p.index());
        self.sim.engine_mut().schedule_recover(node, 0);
        self.sim.engine_mut().run_until_idle();
        if self.quorum_engaged {
            // Re-sync the recovered node's mode flag *before* its
            // catch-up (it may have crashed before the original
            // broadcast, and a catch-up in the wrong mode fetches from
            // the wrong place); the missing-writes push riding on the
            // broadcast also refreshes it.
            self.broadcast_mode(true);
        }
        // Missing-writes transition: quorum-read the latest version of
        // every object in the catalog (scheme-fetch in normal mode).
        let objects: Vec<doma_core::ObjectId> = self.sim.catalog().keys().copied().collect();
        for object in objects {
            self.sim
                .engine_mut()
                .inject(node, 1, DomMsg::CatchUp { object });
            self.sim.engine_mut().run_until_idle();
        }
        let any_scheme_down = match self.sim.config() {
            // Adaptive: every node is a potential scheme member (see
            // `in_home_scheme`), so normal mode resumes only with the
            // whole cluster live.
            crate::ProtocolConfig::Adaptive { .. } => self.crashed.iter().any(|&c| c),
            config => config
                .initial_scheme()
                .iter()
                .any(|m| self.crashed[m.index()]),
        };
        if !any_scheme_down && (self.quorum_engaged || self.bug_destructive_mode_reset) {
            // Normal mode resumes only once the whole home scheme is back
            // (the `ModeChange { quorum: false }` reset re-homes the
            // allocation to exactly that scheme, so all of it must be live
            // and refreshed).
            self.broadcast_mode(false);
        }
    }

    fn broadcast_mode(&mut self, quorum: bool) {
        self.quorum_engaged = quorum;
        if !quorum {
            // The `ModeChange { quorum: false }` transition snaps every
            // adaptive object's replica set back to its initial scheme;
            // the driver-side oracles must agree or their plans would
            // reference replicas that no longer exist.
            self.sim.reset_adaptive_oracles();
        }
        for i in 0..self.n {
            if !self.crashed[i] {
                self.sim
                    .engine_mut()
                    .inject(NodeId(i), 0, DomMsg::ModeChange { quorum });
            }
        }
        self.sim.engine_mut().run_until_idle();
    }

    /// Broadcasts a mode change to every live node — the failure
    /// detector's interface, exposed so fault-injection harnesses can
    /// degrade the cluster *before* making the network lossy (quorum mode
    /// is the only mode whose reads and writes tolerate message loss) and
    /// restore it afterwards.
    pub fn set_quorum_mode(&mut self, quorum: bool) {
        self.broadcast_mode(quorum);
    }

    /// Full repair after an arbitrary fault episode: recovers every
    /// crashed processor, runs a missing-writes [`DomMsg::CatchUp`] on
    /// every node for every object (partition/loss faults can leave *any*
    /// node behind, not just crashed ones), and returns the cluster to
    /// normal mode.
    pub fn heal(&mut self) {
        for i in 0..self.n {
            if self.crashed[i] {
                self.recover(ProcessorId::new(i));
            }
        }
        let objects: Vec<doma_core::ObjectId> = self.sim.catalog().keys().copied().collect();
        for i in 0..self.n {
            for object in &objects {
                self.sim
                    .engine_mut()
                    .inject(NodeId(i), 1, DomMsg::CatchUp { object: *object });
                self.sim.engine_mut().run_until_idle();
            }
        }
        if self.quorum_engaged || self.bug_destructive_mode_reset {
            self.broadcast_mode(false);
        }
    }

    /// Whether `p` is currently crashed (as far as the driver knows).
    pub fn is_crashed(&self, p: ProcessorId) -> bool {
        self.crashed[p.index()]
    }

    /// Executes a request in whatever mode the cluster is in. If a crash
    /// scheduled via [`FailoverDriver::crash_in`] landed during the
    /// request, the failure detector reacts once the cluster quiesces.
    pub fn execute_request(&mut self, request: Request) -> Result<()> {
        self.sim.execute_request(request)?;
        if self.pending_detection {
            self.pending_detection = false;
            self.broadcast_mode(true);
        }
        Ok(())
    }

    /// The normal-mode tallies recorded just before the first failure (so
    /// failure-handling overhead can be separated out in reports), if a
    /// failure has occurred.
    pub fn normal_mode_cost(&self) -> Option<CostVector> {
        self.normal_cost_before_failure
    }

    /// The number of live processors holding the given version validly.
    pub fn live_holders_of(&self, version: Version) -> usize {
        self.sim
            .holders_of(version)
            .iter()
            .filter(|p| !self.crashed[p.index()])
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doma_core::ProcSet;
    use doma_sim::NodeId;

    fn ps(v: &[usize]) -> ProcSet {
        v.iter().copied().collect()
    }

    fn da_cluster(n: usize) -> FailoverDriver {
        let sim = ProtocolSim::new_da(n, ps(&[0]), ProcessorId::new(1)).unwrap();
        FailoverDriver::new(sim, n)
    }

    #[test]
    fn core_crash_switches_to_quorum_mode() {
        let mut d = da_cluster(5);
        d.crash(ProcessorId::new(0));
        for i in 1..5 {
            assert!(
                d.sim().engine_ref_actor_in_quorum(i),
                "node {i} should be in quorum mode"
            );
        }
    }

    #[test]
    fn writes_survive_core_failure_and_reads_see_them() {
        let mut d = da_cluster(5);
        d.crash(ProcessorId::new(0));
        // A write in quorum mode reaches a majority of the 5 nodes.
        d.execute_request(Request::write(3usize)).unwrap();
        let v = d.sim().latest_version();
        assert!(
            d.live_holders_of(v) >= 3,
            "quorum write must reach a live majority"
        );
        // A quorum read from any node observes the latest version.
        d.execute_request(Request::read(4usize)).unwrap();
        let report = d.sim().report();
        assert_eq!(report.reads_completed, 1);
    }

    #[test]
    fn recovery_catches_up_missing_writes_and_resumes_normal_mode() {
        let mut d = da_cluster(5);
        d.crash(ProcessorId::new(0));
        // Two writes happen while the core member is down.
        d.execute_request(Request::write(2usize)).unwrap();
        d.execute_request(Request::write(3usize)).unwrap();
        let v = d.sim().latest_version();
        d.recover(ProcessorId::new(0));
        // The recovered core member holds the latest version again.
        assert!(
            d.sim().holders_of(v).contains(ProcessorId::new(0)),
            "missing-writes catch-up must bring the core member current"
        );
        // Cluster is back in normal mode everywhere.
        for i in 0..5 {
            assert!(!d.sim().engine_ref_actor_in_quorum(i));
        }
        // Normal DA service works again: a non-member saving-read.
        d.execute_request(Request::read(4usize)).unwrap();
        assert!(d.sim().holders_of(v).contains(ProcessorId::new(4)));
    }

    #[test]
    fn non_core_crash_does_not_trigger_quorum_mode() {
        let mut d = da_cluster(5);
        d.crash(ProcessorId::new(4));
        assert!(!d.sim().engine_ref_actor_in_quorum(2));
        // Normal operation continues for live nodes.
        d.execute_request(Request::read(3usize)).unwrap();
        assert_eq!(d.sim().report().reads_completed, 1);
    }

    #[test]
    fn availability_invariant_under_single_failure() {
        // t = 2: after any single crash and a subsequent write, at least
        // one *live* processor still serves the latest version in normal
        // mode, and a majority does in quorum mode.
        let mut d = da_cluster(5);
        d.execute_request(Request::write(2usize)).unwrap();
        d.crash(ProcessorId::new(0)); // core member down → quorum mode
        d.execute_request(Request::write(3usize)).unwrap();
        let v = d.sim().latest_version();
        assert!(d.live_holders_of(v) >= 2, "t=2 availability must survive");
    }

    impl ProtocolSim {
        /// Test-only peek: is node `i` in quorum mode?
        fn engine_ref_actor_in_quorum(&self, i: usize) -> bool {
            // SAFETY of design: Engine::actor is &self access.
            self.engine_ref().actor(NodeId(i)).in_quorum_mode()
        }
    }
}

//! Per-node observability: the paper's cost accounting (`cio`/`cc`/`cd`)
//! broken down by operation class, node and algorithm, plus structured
//! protocol events (quorum spans, join-list growth, mode changes).
//!
//! The registry keys are `protocol.cost.{control,data,io}` with labels
//! `{algo, node, op}`. Summed across all label sets they equal the
//! engine's exact network/I-O tallies (and therefore
//! [`doma_core::cost_of_schedule`]'s totals on failure-free runs) —
//! message for message, I/O for I/O. The accounting rides the engine's
//! fresh-`Context`-per-dispatch guarantee: every `ctx.send` a handler
//! buffers is still in [`doma_sim::Context::pending_sends`] when the
//! handler returns, so each message is counted exactly once, by the node
//! that sent it.

use crate::{DomMsg, ProtocolConfig};
use doma_core::ObjectId;
use doma_obs::{Counter, Obs, SpanId};
use std::collections::BTreeMap;

/// The operation class a message belongs to — the paper's cost rows:
/// reads, writes, save-reads (DA's scheme-growing reads), invalidations
/// and the failure-mode transitions.
pub(crate) fn op_of(msg: &DomMsg) -> &'static str {
    match msg {
        DomMsg::ClientRead { .. } => "read",
        DomMsg::ReadReq { saving: true, .. } => "save-read",
        DomMsg::ReadReq { .. } => "read",
        DomMsg::ObjData { save: true, .. } => "save-read",
        DomMsg::ObjData { .. } => "read",
        DomMsg::NoData { .. } => "read",
        DomMsg::ClientWrite { .. } => "write",
        DomMsg::WriteProp { .. } => "write",
        DomMsg::Invalidate { .. } => "invalidate",
        DomMsg::ModeChange { .. } => "mode-change",
        DomMsg::CatchUp { .. } => "recovery",
    }
}

/// The object a message concerns (`None` for whole-node messages like
/// [`DomMsg::ModeChange`]).
pub(crate) fn object_of(msg: &DomMsg) -> Option<ObjectId> {
    match msg {
        DomMsg::ClientRead { object, .. }
        | DomMsg::ClientWrite { object, .. }
        | DomMsg::ReadReq { object, .. }
        | DomMsg::ObjData { object, .. }
        | DomMsg::NoData { object, .. }
        | DomMsg::WriteProp { object, .. }
        | DomMsg::Invalidate { object, .. }
        | DomMsg::CatchUp { object } => Some(*object),
        DomMsg::ModeChange { .. } => None,
    }
}

/// The algorithm governing an object, as a metric label (`cluster` for
/// whole-node traffic outside any one object's configuration).
pub(crate) fn algo_label(config: Option<&ProtocolConfig>) -> &'static str {
    match config {
        Some(ProtocolConfig::Sa { .. }) => "sa",
        Some(ProtocolConfig::Da { .. }) => "da",
        Some(ProtocolConfig::Adaptive { algo, .. }) => algo.as_str(),
        None => "cluster",
    }
}

/// One node's attachment to the shared [`Obs`] bundle: cached cost
/// counters, the I/O cursor that attributes store I/O to the operation
/// being handled, and the node's open quorum spans.
///
/// Cloning shares the counter handles — which is exactly why
/// [`crate::ProtocolSim::fork`] strips the attachment from forked
/// actors: speculative (model-checker) work must not tally into the
/// live registry.
#[derive(Debug, Clone)]
pub(crate) struct NodeObs {
    bundle: Obs,
    /// The node's label in metric keys and event fields (`N3`).
    label: String,
    /// Store I/O already attributed; the next delta over this cursor
    /// belongs to the operation currently being handled.
    pub(crate) io_seen: u64,
    /// Resolved cost counters keyed `(dimension, algo, op)` — the
    /// registry lock is taken once per distinct key per node.
    counters: BTreeMap<(&'static str, &'static str, &'static str), Counter>,
    /// Open quorum spans keyed `(object, round)`; exited when the
    /// operation assembles its majority, cleared on crash.
    pub(crate) open_quorum: BTreeMap<(ObjectId, u64), SpanId>,
}

impl NodeObs {
    pub(crate) fn new(bundle: Obs, label: String, io_seen: u64) -> Self {
        NodeObs {
            bundle,
            label,
            io_seen,
            counters: BTreeMap::new(),
            open_quorum: BTreeMap::new(),
        }
    }

    pub(crate) fn bundle(&self) -> &Obs {
        &self.bundle
    }

    pub(crate) fn label(&self) -> &str {
        &self.label
    }

    /// The cost counter for one `(dimension, algo, op)` cell of this
    /// node's breakdown, resolved lazily and cached.
    pub(crate) fn cost(
        &mut self,
        dim: &'static str,
        algo: &'static str,
        op: &'static str,
    ) -> Counter {
        let NodeObs {
            bundle,
            label,
            counters,
            ..
        } = self;
        counters
            .entry((dim, algo, op))
            .or_insert_with(|| {
                bundle.metrics().counter(
                    "protocol",
                    dim,
                    &[("algo", algo), ("node", label), ("op", op)],
                )
            })
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doma_sim::NodeId;
    use doma_storage::Version;

    #[test]
    fn message_op_classification() {
        let obj = ObjectId(0);
        assert_eq!(
            op_of(&DomMsg::ClientRead {
                object: obj,
                plan: None
            }),
            "read"
        );
        assert_eq!(
            op_of(&DomMsg::ReadReq {
                object: obj,
                saving: true,
                round: 0
            }),
            "save-read"
        );
        assert_eq!(
            op_of(&DomMsg::ObjData {
                object: obj,
                version: Version(1),
                payload: vec![],
                save: false,
                round: 3
            }),
            "read"
        );
        assert_eq!(
            op_of(&DomMsg::WriteProp {
                object: obj,
                version: Version(1),
                payload: vec![],
                writer: NodeId(0)
            }),
            "write"
        );
        assert_eq!(
            op_of(&DomMsg::Invalidate {
                object: obj,
                version: Version(1)
            }),
            "invalidate"
        );
        assert_eq!(op_of(&DomMsg::ModeChange { quorum: true }), "mode-change");
        assert_eq!(op_of(&DomMsg::CatchUp { object: obj }), "recovery");
        assert_eq!(object_of(&DomMsg::ModeChange { quorum: true }), None);
        assert_eq!(object_of(&DomMsg::CatchUp { object: obj }), Some(obj));
    }

    #[test]
    fn cost_counters_are_cached_per_cell() {
        let bundle = Obs::new(8);
        let mut obs = NodeObs::new(bundle.clone(), "N0".to_string(), 0);
        obs.cost("cost.control", "da", "read").add(2);
        obs.cost("cost.control", "da", "read").inc();
        obs.cost("cost.io", "da", "write").inc();
        let snap = bundle.metrics().snapshot();
        assert_eq!(
            snap.counter(
                "protocol",
                "cost.control",
                &[("algo", "da"), ("node", "N0"), ("op", "read")]
            ),
            3
        );
        assert_eq!(snap.sum_counters("protocol", "cost.io"), 1);
    }
}

//! Driver-side request planning, shared by the sim driver and the real
//! (socket) runtime.
//!
//! [`ProtocolSim`](crate::ProtocolSim) historically owned three pieces of
//! driver state: the per-object write-version counter, the adaptive
//! [`PlanOracle`]s, and the allocation scheme each oracle believes is
//! current. The real-runtime cluster driver in `doma-net` needs *exactly*
//! the same state advanced by *exactly* the same rules — same validation,
//! same version numbering, same payload bytes, same plan mapping — or the
//! twin comparison against the sim oracle is meaningless. So the whole
//! thing lives here as [`ClientPlanner`], and both drivers call
//! [`ClientPlanner::plan`] to turn a [`Request`] into the client
//! [`DomMsg`] they inject.

use crate::sim::PlanOracle;
use crate::{DomMsg, ReadPlan, WritePlan};
use doma_core::{
    scheme_after, AllocatedRequest, Decision, DomaError, ObjectId, ProcSet, Request, Result,
};
use doma_sim::NodeId;
use doma_storage::Version;
use std::collections::BTreeMap;

/// A client request turned into the wire message a driver injects.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedRequest {
    /// The issuing node (requests are always delivered to their issuer —
    /// the client "is at" the processor that wants the operation).
    pub to: NodeId,
    /// The client message to deliver: `ClientRead` or `ClientWrite`, with
    /// the adaptive plan attached when an oracle governs the object.
    pub msg: DomMsg,
    /// The oracle's raw decision, when one ran — the sim driver records
    /// it as a `protocol.plan` obs event; `None` for SA/DA objects.
    pub decision: Option<Decision>,
}

/// The deterministic planning state of a protocol driver: write-version
/// counters, adaptive oracles, and the oracle-tracked allocation schemes.
///
/// Two drivers constructed with the same catalog and oracles that feed the
/// same request sequence through [`ClientPlanner::plan`] produce the same
/// message sequence byte for byte — the foundation of the sim-vs-socket
/// twin check.
pub struct ClientPlanner {
    n: usize,
    /// Next write version per catalogued object (doubles as the catalog
    /// membership set for validation).
    next_version: BTreeMap<ObjectId, Version>,
    /// Live decision oracles for adaptive objects. Deterministic: oracle
    /// state is a pure function of the planned request sequence.
    oracles: BTreeMap<ObjectId, Box<dyn PlanOracle>>,
    /// The allocation scheme each oracle believes is current, folded per
    /// decision with [`scheme_after`] — the `Y` the write plans'
    /// invalidation sets are computed from.
    oracle_scheme: BTreeMap<ObjectId, ProcSet>,
}

impl ClientPlanner {
    /// A planner for a cluster of `n` nodes serving `objects`. Write
    /// versions start just above [`Version::INITIAL`] (the preloaded
    /// replica); no oracles — install them with
    /// [`ClientPlanner::install_oracle`].
    pub fn new(n: usize, objects: impl IntoIterator<Item = ObjectId>) -> Self {
        ClientPlanner {
            n,
            next_version: objects
                .into_iter()
                .map(|object| (object, Version::INITIAL.next()))
                .collect(),
            oracles: BTreeMap::new(),
            oracle_scheme: BTreeMap::new(),
        }
    }

    /// Cluster size this planner validates issuers against.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Installs (and resets) the adaptive oracle governing `object`; its
    /// tracked scheme starts at the oracle's initial scheme.
    pub fn install_oracle(&mut self, object: ObjectId, mut oracle: Box<dyn PlanOracle>) {
        oracle.reset();
        self.oracle_scheme.insert(object, oracle.initial_scheme());
        self.oracles.insert(object, oracle);
    }

    /// Resets every oracle to its initial state (scheme included) — the
    /// failover driver's companion to `ModeChange { quorum: false }`.
    pub fn reset_oracles(&mut self) {
        for (object, oracle) in self.oracles.iter_mut() {
            oracle.reset();
            self.oracle_scheme.insert(*object, oracle.initial_scheme());
        }
    }

    /// Whether any object is governed by an adaptive oracle.
    pub fn has_oracles(&self) -> bool {
        !self.oracles.is_empty()
    }

    /// The highest version of `object` written so far (INITIAL if none).
    ///
    /// # Panics
    /// If `object` is not in the catalog.
    pub fn latest_version(&self, object: ObjectId) -> Version {
        Version(self.next_version[&object].0 - 1)
    }

    /// Validates `request` against the cluster and catalog, runs the
    /// object's oracle (if any), assigns the write version, and builds the
    /// client message. Errors leave the planner untouched: an invalid
    /// request advances neither oracle state nor version counters.
    pub fn plan(&mut self, object: ObjectId, request: Request) -> Result<PlannedRequest> {
        if request.issuer.index() >= self.n {
            return Err(DomaError::InvalidConfig(format!(
                "request {request} outside cluster of {}",
                self.n
            )));
        }
        if !self.next_version.contains_key(&object) {
            return Err(DomaError::InvalidConfig(format!(
                "{object} not in the cluster's catalog"
            )));
        }
        let to = NodeId(request.issuer.index());
        let planned = self.decide(object, request);
        let (read_plan, write_plan, decision) = match planned {
            Some((r, w, d)) => (r, w, Some(d)),
            None => (None, None, None),
        };
        let msg = if request.is_read() {
            DomMsg::ClientRead {
                object,
                plan: read_plan,
            }
        } else {
            let version = self.next_version[&object];
            self.next_version.insert(object, version.next());
            DomMsg::ClientWrite {
                object,
                version,
                payload: format!("payload-{}-{}", object.0, version.0).into_bytes(),
                plan: write_plan,
            }
        };
        Ok(PlannedRequest { to, msg, decision })
    }

    /// Runs the object's adaptive oracle (if any) on `request`: advances
    /// the oracle and its tracked scheme, and maps the decision to the
    /// read/write plan the issuing node will execute. Returns `None` for
    /// SA/DA objects. No validation — [`ClientPlanner::plan`] is the
    /// checked entry point.
    #[allow(clippy::type_complexity)]
    fn decide(
        &mut self,
        object: ObjectId,
        request: Request,
    ) -> Option<(Option<ReadPlan>, Option<WritePlan>, Decision)> {
        let oracle = self.oracles.get_mut(&object)?;
        let scheme = *self.oracle_scheme.get(&object)?;
        let decision = oracle.decide(request);
        let i = request.issuer;
        let pair = if request.is_read() {
            let server = if decision.exec.contains(i) {
                None
            } else {
                decision.exec.any_member()
            };
            (
                Some(ReadPlan {
                    server,
                    saving: decision.saving,
                    fallback: scheme.without(i).any_member(),
                }),
                None,
            )
        } else {
            (
                None,
                Some(WritePlan {
                    exec: decision.exec,
                    invalidate: scheme.difference(decision.exec).without(i),
                    self_invalidate: scheme.contains(i) && !decision.exec.contains(i),
                }),
            )
        };
        let step = AllocatedRequest::new(request, decision);
        self.oracle_scheme
            .insert(object, scheme_after(scheme, &step));
        Some((pair.0, pair.1, decision))
    }

    /// Deep copy (oracles included, via [`PlanOracle::clone_box`]) so a
    /// model checker's speculative branches advance independent state.
    pub fn fork(&self) -> Self {
        ClientPlanner {
            n: self.n,
            next_version: self.next_version.clone(),
            oracles: self
                .oracles
                .iter()
                .map(|(object, oracle)| (*object, oracle.clone_box()))
                .collect(),
            oracle_scheme: self.oracle_scheme.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doma_core::ProcessorId;

    const OBJ: ObjectId = ObjectId(0);

    fn planner() -> ClientPlanner {
        ClientPlanner::new(4, [OBJ])
    }

    #[test]
    fn writes_get_consecutive_versions_and_stable_payloads() {
        let mut p = planner();
        let w = Request::write(ProcessorId::new(1));
        let first = p.plan(OBJ, w).unwrap();
        let second = p.plan(OBJ, w).unwrap();
        match (&first.msg, &second.msg) {
            (
                DomMsg::ClientWrite {
                    version: v1,
                    payload: p1,
                    ..
                },
                DomMsg::ClientWrite {
                    version: v2,
                    payload: p2,
                    ..
                },
            ) => {
                assert_eq!(v1.next(), *v2);
                assert_eq!(p1, b"payload-0-1");
                assert_eq!(p2, b"payload-0-2");
            }
            other => panic!("expected two writes, got {other:?}"),
        }
        assert_eq!(p.latest_version(OBJ), Version(2));
    }

    #[test]
    fn invalid_requests_leave_state_untouched() {
        let mut p = planner();
        let err = p
            .plan(OBJ, Request::write(ProcessorId::new(9)))
            .unwrap_err();
        assert!(err.to_string().contains("outside cluster of 4"));
        let err = p
            .plan(ObjectId(7), Request::read(ProcessorId::new(0)))
            .unwrap_err();
        assert!(err.to_string().contains("not in the cluster's catalog"));
        // The failed write did not consume a version.
        assert_eq!(p.latest_version(OBJ), Version::INITIAL);
    }

    #[test]
    fn sa_objects_plan_without_decisions() {
        let mut p = planner();
        let planned = p.plan(OBJ, Request::read(ProcessorId::new(2))).unwrap();
        assert_eq!(planned.to, NodeId(2));
        assert_eq!(planned.decision, None);
        assert_eq!(
            planned.msg,
            DomMsg::ClientRead {
                object: OBJ,
                plan: None
            }
        );
        assert!(!p.has_oracles());
    }
}

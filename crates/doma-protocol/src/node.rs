//! The per-processor protocol state machine.

use crate::obs::{algo_label, object_of, op_of, NodeObs};
use crate::transport::Transport;
use crate::{DomMsg, ReadPlan, WritePlan};
use doma_core::{DomaError, ObjectId, ProcSet, ProcessorId};
use doma_sim::{Actor, Context, MsgKind, NodeId, SimTime};
use doma_storage::{CacheStats, CachedStore, IoStats, LocalStore, Version};
use std::collections::BTreeMap;

/// The object id used by the single-object convenience constructors (the
/// paper analyzes a single object).
pub(crate) const OBJECT: ObjectId = ObjectId(0);

/// The adaptive algorithm governing an object under
/// [`ProtocolConfig::Adaptive`] — used only as an observability label;
/// the actual placement decisions arrive in the client requests' plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptiveAlgo {
    /// Sliding-window convergent allocation (Wolfson–Jajodia style).
    Convergent,
    /// CDVM-style write-invalidate caching.
    WriteInvalidate,
    /// Cost-oblivious reallocation (Bender et al.).
    CostOblivious,
    /// Mobile-resource mirroring (Feldkord et al.).
    MobileMirror,
    /// Clustering-based fragment allocation.
    Clustered,
}

impl AdaptiveAlgo {
    /// The metric-label spelling of the algorithm name.
    pub fn as_str(&self) -> &'static str {
        match self {
            AdaptiveAlgo::Convergent => "convergent",
            AdaptiveAlgo::WriteInvalidate => "write-invalidate",
            AdaptiveAlgo::CostOblivious => "cost-oblivious",
            AdaptiveAlgo::MobileMirror => "mobile-mirror",
            AdaptiveAlgo::Clustered => "clustered",
        }
    }

    /// Maps a [`doma_core::DomAlgorithm::name`] to its label, if it is a
    /// known adaptive algorithm.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "Convergent" => Some(AdaptiveAlgo::Convergent),
            "WriteInvalidate" => Some(AdaptiveAlgo::WriteInvalidate),
            "CostOblivious" => Some(AdaptiveAlgo::CostOblivious),
            "MobileMirror" => Some(AdaptiveAlgo::MobileMirror),
            "Clustered" => Some(AdaptiveAlgo::Clustered),
            _ => None,
        }
    }
}

/// Which DOM algorithm governs one object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolConfig {
    /// Static allocation over the fixed scheme `Q` (read-one-write-all).
    Sa {
        /// The fixed allocation scheme.
        q: ProcSet,
    },
    /// Dynamic allocation with core `F` and a-priori floater `p`.
    Da {
        /// The always-current core set (size `t-1`).
        f: ProcSet,
        /// The designated floating member (`p ∉ F`).
        p: ProcessorId,
    },
    /// An adaptive algorithm whose placement decisions are computed by a
    /// driver-side oracle ([`crate::ProtocolSim::new_adaptive`]) and
    /// carried in the client requests' plans. Nodes execute the plans
    /// exactly; the quorum failure fallback ignores them.
    Adaptive {
        /// The availability threshold the oracle maintains.
        t: usize,
        /// The oracle's initial allocation scheme (preloaded replicas).
        initial: ProcSet,
        /// Which algorithm the oracle runs (observability label).
        algo: AdaptiveAlgo,
    },
}

impl ProtocolConfig {
    /// The availability threshold `t` implied by the configuration.
    pub fn t(&self) -> usize {
        match self {
            ProtocolConfig::Sa { q } => q.len(),
            ProtocolConfig::Da { f, .. } => f.len() + 1,
            ProtocolConfig::Adaptive { t, .. } => *t,
        }
    }

    /// The initial allocation scheme.
    pub fn initial_scheme(&self) -> ProcSet {
        match self {
            ProtocolConfig::Sa { q } => *q,
            ProtocolConfig::Da { f, p } => f.with(*p),
            ProtocolConfig::Adaptive { initial, .. } => *initial,
        }
    }

    fn da_exec_set(&self, writer: ProcessorId) -> ProcSet {
        match self {
            ProtocolConfig::Da { f, p } => {
                let core_or_floater = f.with(*p);
                if core_or_floater.contains(writer) {
                    core_or_floater
                } else {
                    f.with(writer)
                }
            }
            ProtocolConfig::Sa { q } => *q,
            ProtocolConfig::Adaptive { initial, .. } => *initial,
        }
    }
}

fn proc(n: NodeId) -> ProcessorId {
    ProcessorId::new(n.0)
}

fn node(p: ProcessorId) -> NodeId {
    NodeId(p.index())
}

/// In-flight quorum operation state (failure mode only).
#[derive(Debug, Clone)]
struct PendingQuorum {
    /// Distinct processors whose response has been counted (the local
    /// replica counts as one). A set, not a counter: under fault
    /// injection a duplicated reply must not double-count its sender, or
    /// a "majority" could be assembled from fewer distinct nodes and lose
    /// the quorum-intersection property.
    responders: ProcSet,
    /// Read-quorum size: a majority of the cluster, so it intersects
    /// every write quorum.
    needed: usize,
    /// This operation's wire round tag. Replies carrying any other round
    /// (a delayed straggler from an earlier operation, or a leftover reply
    /// to an operation that already assembled its majority) are discarded
    /// instead of being counted — their version information belongs to a
    /// different point in time.
    round: u64,
    /// Raw accepted-reply count, *not* deduplicated by sender. Only
    /// consulted when [`BugSwitches::count_duplicate_responders`] reverts
    /// the set-based dedup (regression testing); `responders` is
    /// authoritative otherwise.
    counted: usize,
    best: Option<(Version, Vec<u8>)>,
    store_result: bool,
    started: SimTime,
}

/// Test-only switches that revert individual hardening fixes, so the
/// model checker's regression suite can demonstrate each fix is load-
/// bearing: with the switch on, `doma-check` must find the interleaving
/// that violates the corresponding safety property.
///
/// Not part of the public protocol surface — never set these outside
/// tests.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BugSwitches {
    /// Revert the quorum-round wire tags: count any reply for this object
    /// toward the current operation, as the pre-hardening protocol did.
    pub ignore_round_tags: bool,
    /// Revert responder deduplication: count duplicated replies toward
    /// the quorum majority.
    pub count_duplicate_responders: bool,
    /// Revert the invalidation floor: let delayed/duplicated data
    /// messages re-validate replicas whose invalidation was already
    /// processed.
    pub no_invalidated_floor: bool,
}

/// One completed read, as observed by the issuing node — the record the
/// fault-injection invariant checker audits for one-copy semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedRead {
    /// The object read.
    pub object: ObjectId,
    /// The version returned (`None` for a quorum read that assembled a
    /// majority of `NoData` replies — possible only on an empty store).
    pub version: Option<Version>,
    /// Request-to-completion latency in ticks.
    pub latency: u64,
}

/// The node's object catalog, stored densely: ids sorted ascending with
/// the per-object configurations in matching slots.
///
/// Hot-path per-object state (`da`, `invalidated_below`, `pending`,
/// `read_started`) lives in parallel `Vec`s indexed by the catalog
/// *slot*, replacing the previous per-lookup `BTreeMap` walks. For a
/// contiguous catalog — the common case; every multi-object generator
/// produces `0..objects` — the slot is one subtraction and a bounds
/// check; non-contiguous catalogs fall back to binary search over the
/// sorted ids.
#[derive(Debug, Clone)]
struct ObjectCatalog {
    /// Object ids, ascending.
    ids: Vec<ObjectId>,
    /// Per-object configuration, aligned with `ids`.
    configs: Vec<ProtocolConfig>,
    /// `ids[0]`, the offset of the contiguous fast path.
    base: u64,
    /// Whether `ids` is exactly `base..base + ids.len()`.
    contiguous: bool,
}

impl ObjectCatalog {
    fn from_map(map: BTreeMap<ObjectId, ProtocolConfig>) -> Self {
        let ids: Vec<ObjectId> = map.keys().copied().collect();
        let configs: Vec<ProtocolConfig> = map.into_values().collect();
        let base = ids.first().map(|o| o.0).unwrap_or(0);
        let contiguous = ids
            .iter()
            .enumerate()
            .all(|(i, o)| o.0 == base.wrapping_add(i as u64));
        ObjectCatalog {
            ids,
            configs,
            base,
            contiguous,
        }
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    /// The dense slot of `object`, if catalogued.
    #[inline]
    fn slot(&self, object: ObjectId) -> Option<usize> {
        if self.contiguous {
            let idx = object.0.checked_sub(self.base)? as usize;
            (idx < self.ids.len()).then_some(idx)
        } else {
            self.ids.binary_search(&object).ok()
        }
    }

    /// The configuration of `object`, if catalogued.
    #[inline]
    fn get(&self, object: ObjectId) -> Option<&ProtocolConfig> {
        self.slot(object).map(|slot| &self.configs[slot])
    }
}

/// Per-object DA bookkeeping held by core members.
#[derive(Debug, Clone, Default)]
struct DaObjectState {
    /// Processors that joined via saving-reads and must be invalidated on
    /// the next write (core members only).
    join_list: ProcSet,
    /// Primary core member only: the current scheme member in no
    /// join-list — the original floater `p`, or the last outsider writer.
    extra: Option<ProcessorId>,
    /// Round-robin cursor for picking a serving core member.
    serve_cursor: usize,
}

/// One processor: local store + protocol state machine, serving a catalog
/// of objects each under its own SA/DA configuration.
///
/// In normal mode the node implements SA or DA exactly as specified in
/// §4.2; in quorum mode (failure fallback, §2) reads and writes go to a
/// majority.
#[derive(Debug, Clone)]
pub struct DomNode {
    id: ProcessorId,
    n: usize,
    catalog: ObjectCatalog,
    store: CachedStore,
    /// Per-slot DA bookkeeping (aligned with the catalog).
    da: Vec<DaObjectState>,
    /// Per slot, the highest version an [`DomMsg::Invalidate`] named as
    /// superseding the local replica ([`Version::INITIAL`] = no floor).
    /// Replicas older than this must never be (re-)validated or served:
    /// under fault injection a delayed or duplicated data message could
    /// otherwise resurrect a replica whose invalidation was already
    /// processed.
    invalidated_below: Vec<Version>,
    // --- failure mode ---
    quorum_mode: bool,
    /// Per-slot in-flight quorum operation (at most one per object).
    pending: Vec<Option<PendingQuorum>>,
    /// Monotone counter tagging each quorum operation this node starts
    /// (round 0 is reserved for plain forwarded reads). Deliberately NOT
    /// reset on crash: a reply to a pre-crash operation must never match a
    /// post-recovery one.
    quorum_round: u64,
    // --- metrics ---
    /// Per-slot FIFO queues of outstanding read start-times (open-loop
    /// execution can have several reads of one object in flight at once).
    read_started: Vec<Vec<SimTime>>,
    reads_completed: u64,
    read_latency_ticks: u64,
    read_latencies: Vec<u64>,
    completed_reads: Vec<CompletedRead>,
    /// Protocol-level errors (for example a request for an unconfigured
    /// object). [`Actor::on_message`] cannot return them, so they are
    /// recorded here for harnesses to assert on.
    errors: Vec<DomaError>,
    /// Reverted-fix switches for regression testing (all off normally).
    bugs: BugSwitches,
    /// Live observability attachment (see [`DomNode::set_obs`]); `None`
    /// until a bundle is attached. Deliberately excluded from
    /// [`DomNode::fingerprint`] — instrumentation must never influence
    /// state-space deduplication.
    obs: Option<NodeObs>,
}

impl DomNode {
    /// Creates a node serving a catalog of objects. Nodes in an object's
    /// initial allocation scheme are preloaded with version 0 of it (no
    /// I/O charged).
    ///
    /// `cache_capacity = 0` reproduces the paper's model (every read is a
    /// local-database I/O); a positive capacity adds the CDVM-style memory
    /// tier measured by the E16 ablation.
    pub fn with_catalog(
        id: ProcessorId,
        n: usize,
        configs: BTreeMap<ObjectId, ProtocolConfig>,
        cache_capacity: usize,
    ) -> Self {
        let catalog = ObjectCatalog::from_map(configs);
        let mut store = LocalStore::new();
        let mut da = Vec::with_capacity(catalog.len());
        for (object, config) in catalog.ids.iter().zip(&catalog.configs) {
            if config.initial_scheme().contains(id) {
                store = preload(store, *object);
            }
            let is_primary =
                matches!(config, ProtocolConfig::Da { f, .. } if f.any_member() == Some(id));
            let extra = match (is_primary, config) {
                (true, ProtocolConfig::Da { p, .. }) => Some(*p),
                _ => None,
            };
            da.push(DaObjectState {
                join_list: ProcSet::EMPTY,
                extra,
                serve_cursor: 0,
            });
        }
        let slots = catalog.len();
        DomNode {
            id,
            n,
            catalog,
            store: CachedStore::wrap(store, cache_capacity),
            da,
            invalidated_below: vec![Version::INITIAL; slots],
            quorum_mode: false,
            pending: vec![None; slots],
            quorum_round: 0,
            read_started: vec![Vec::new(); slots],
            reads_completed: 0,
            read_latency_ticks: 0,
            read_latencies: Vec::new(),
            completed_reads: Vec::new(),
            errors: Vec::new(),
            bugs: BugSwitches::default(),
            obs: None,
        }
    }

    /// Attaches the shared observability bundle: the node's cost
    /// counters (`protocol.cost.{control,data,io}` by algo/node/op),
    /// quorum spans and join/mode events all flow into it. The store's
    /// current I/O tally becomes the attribution baseline, so
    /// pre-attachment I/O is never charged to an operation.
    pub fn set_obs(&mut self, bundle: doma_obs::Obs) {
        let label = format!("N{}", self.id.index());
        let io_seen = self.io_stats().total();
        self.obs = Some(NodeObs::new(bundle, label, io_seen));
    }

    /// Detaches observability. Forks of instrumented clusters call this
    /// so speculative work is not tallied into the shared registry.
    pub fn clear_obs(&mut self) {
        self.obs = None;
    }

    /// Attributes I/O performed outside message dispatch to op `other`
    /// (e.g. a harness calling [`DomNode::recover_from_log`] directly).
    /// Drivers call this before snapshotting, after which the summed
    /// `protocol.cost.io` equals the node's exact I/O tally.
    pub fn obs_flush(&mut self) {
        self.obs_account_io("other", None);
    }

    /// End-of-dispatch accounting: the I/O delta since the cursor is
    /// charged to the handled operation, and every message the handler
    /// buffered is counted under the *sent* message's own op class (so
    /// e.g. the invalidations a write fans out land under
    /// `op=invalidate` while the propagation lands under `op=write`).
    fn obs_account<T: Transport + ?Sized>(
        &mut self,
        ctx: &T,
        op: &'static str,
        object: Option<ObjectId>,
    ) {
        if self.obs.is_none() {
            return;
        }
        let sends: Vec<(&'static str, &'static str, &'static str)> = ctx
            .pending_sends()
            .iter()
            .map(|(_, kind, msg)| {
                let dim = match kind {
                    MsgKind::Control => "cost.control",
                    MsgKind::Data => "cost.data",
                };
                let config = object_of(msg).and_then(|o| self.catalog.get(o));
                (dim, algo_label(config), op_of(msg))
            })
            .collect();
        self.obs_account_io(op, object);
        let Some(obs) = self.obs.as_mut() else { return };
        for (dim, algo, sent_op) in sends {
            obs.cost(dim, algo, sent_op).inc();
        }
    }

    fn obs_account_io(&mut self, op: &'static str, object: Option<ObjectId>) {
        let io_now = self.store.store().io_stats().total();
        let algo = algo_label(object.and_then(|o| self.catalog.get(o)));
        let Some(obs) = self.obs.as_mut() else { return };
        let delta = io_now.saturating_sub(obs.io_seen);
        obs.io_seen = io_now;
        if delta > 0 {
            obs.cost("cost.io", algo, op).add(delta);
        }
    }

    fn obs_join(&mut self, now: SimTime, object: ObjectId, joiner: NodeId) {
        let Some(obs) = self.obs.as_ref() else { return };
        obs.bundle()
            .metrics()
            .add("protocol", "joins", &[("node", obs.label())], 1);
        obs.bundle().events().record(
            now.ticks(),
            "protocol.join",
            vec![
                ("node".to_string(), obs.label().to_string()),
                ("object".to_string(), object.to_string()),
                ("joiner".to_string(), joiner.to_string()),
            ],
        );
    }

    fn obs_mode_change(&mut self, now: SimTime, quorum: bool) {
        let Some(obs) = self.obs.as_ref() else { return };
        obs.bundle()
            .metrics()
            .add("protocol", "mode_changes", &[("node", obs.label())], 1);
        obs.bundle().events().record(
            now.ticks(),
            "protocol.mode",
            vec![
                ("node".to_string(), obs.label().to_string()),
                ("quorum".to_string(), quorum.to_string()),
            ],
        );
    }

    fn obs_scheme_churn(&mut self, now: SimTime, object: ObjectId, flushed: usize) {
        let Some(obs) = self.obs.as_ref() else { return };
        obs.bundle()
            .metrics()
            .add("protocol", "scheme_churn", &[("node", obs.label())], 1);
        obs.bundle().events().record(
            now.ticks(),
            "protocol.scheme",
            vec![
                ("node".to_string(), obs.label().to_string()),
                ("object".to_string(), object.to_string()),
                ("flushed".to_string(), flushed.to_string()),
            ],
        );
    }

    /// Installs reverted-fix switches (regression tests only).
    #[doc(hidden)]
    pub fn set_bug_switches(&mut self, bugs: BugSwitches) {
        self.bugs = bugs;
    }

    /// A hash of the node's *semantic* protocol state: replica versions
    /// and validity, DA bookkeeping, invalidation floors, quorum-mode
    /// state, in-flight quorum operations, outstanding-read depth and
    /// completed-read count. Pure metrics (latencies, I/O tallies) are
    /// excluded — two states differing only in them behave identically
    /// going forward. `doma-check` combines these per-node hashes with
    /// the pending-message multiset to deduplicate states reached along
    /// different delivery schedules.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.id.hash(&mut h);
        self.quorum_mode.hash(&mut h);
        self.quorum_round.hash(&mut h);
        self.reads_completed.hash(&mut h);
        self.errors.len().hash(&mut h);
        for (slot, object) in self.catalog.ids.iter().enumerate() {
            object.hash(&mut h);
            self.replica_version_of(*object).hash(&mut h);
            self.store.holds_valid(*object).hash(&mut h);
            self.invalidated_floor(*object).hash(&mut h);
            let state = &self.da[slot];
            state.join_list.hash(&mut h);
            state.extra.hash(&mut h);
            state.serve_cursor.hash(&mut h);
            if let Some(p) = &self.pending[slot] {
                p.responders.hash(&mut h);
                p.needed.hash(&mut h);
                p.round.hash(&mut h);
                p.counted.hash(&mut h);
                p.best.as_ref().map(|(v, _)| *v).hash(&mut h);
                p.store_result.hash(&mut h);
            }
            self.read_started[slot].len().hash(&mut h);
        }
        // The record of which versions reads returned, in order: the
        // oracle audits it against a rising floor, so it is part of the
        // state a schedule can distinguish.
        for read in &self.completed_reads {
            read.object.hash(&mut h);
            read.version.hash(&mut h);
        }
        h.finish()
    }

    /// Single-object node with a memory cache (object id 0).
    pub fn with_cache(
        id: ProcessorId,
        n: usize,
        config: ProtocolConfig,
        cache_capacity: usize,
    ) -> Self {
        let mut configs = BTreeMap::new();
        configs.insert(OBJECT, config);
        Self::with_catalog(id, n, configs, cache_capacity)
    }

    /// Single-object node without a memory cache (the paper's model).
    pub fn new(id: ProcessorId, n: usize, config: ProtocolConfig) -> Self {
        Self::with_cache(id, n, config, 0)
    }

    /// This node's processor id.
    pub fn processor(&self) -> ProcessorId {
        self.id
    }

    /// Memory-cache counters (all zeros when caching is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.store.cache_stats()
    }

    /// Whether the node currently holds a valid replica of object 0.
    pub fn holds_valid(&self) -> bool {
        self.holds_valid_of(OBJECT)
    }

    /// Whether the node currently holds a valid replica of `object`.
    pub fn holds_valid_of(&self, object: ObjectId) -> bool {
        self.store.holds_valid(object)
    }

    /// The version of the local replica of object 0 (valid or stale).
    pub fn replica_version(&self) -> Option<Version> {
        self.replica_version_of(OBJECT)
    }

    /// The version of the local replica of `object` (valid or stale).
    pub fn replica_version_of(&self, object: ObjectId) -> Option<Version> {
        self.store.store().peek(object).map(|o| o.version)
    }

    /// The node's I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.store.store().io_stats()
    }

    /// Completed reads and their total latency in ticks.
    pub fn read_metrics(&self) -> (u64, u64) {
        (self.reads_completed, self.read_latency_ticks)
    }

    /// Every completed read's individual latency, in completion order.
    pub fn read_latencies(&self) -> &[u64] {
        &self.read_latencies
    }

    /// Every completed read with the version it returned, in completion
    /// order (the one-copy-semantics audit trail).
    pub fn completed_reads(&self) -> &[CompletedRead] {
        &self.completed_reads
    }

    /// Protocol-level errors recorded so far (empty on healthy runs).
    pub fn protocol_errors(&self) -> &[DomaError] {
        &self.errors
    }

    /// The core member's current join-list for object 0.
    pub fn join_list(&self) -> ProcSet {
        self.catalog
            .slot(OBJECT)
            .map(|slot| self.da[slot].join_list)
            .unwrap_or(ProcSet::EMPTY)
    }

    /// The tracked "extra" (floater) member for `object`, if any.
    #[cfg(test)]
    fn da_extra(&self, object: ObjectId) -> Option<ProcessorId> {
        let slot = self.catalog.slot(object)?;
        self.da.get(slot)?.extra
    }

    /// Whether the node is in quorum (failure) mode.
    pub fn in_quorum_mode(&self) -> bool {
        self.quorum_mode
    }

    /// Simulates losing volatile state and recovering the store from its
    /// redo log (used by failure tests around engine crash events).
    pub fn recover_from_log(&mut self) {
        self.store.crash_and_recover();
        self.clear_volatile_tables();
    }

    /// Drops the volatile per-slot state a crash loses: in-flight quorum
    /// operations and outstanding-read queues. Slot tables keep their
    /// (fixed) shape — only the contents reset.
    fn clear_volatile_tables(&mut self) {
        for p in &mut self.pending {
            *p = None;
        }
        for q in &mut self.read_started {
            q.clear();
        }
    }

    fn config(&self, object: ObjectId) -> Result<&ProtocolConfig, DomaError> {
        self.catalog.get(object).ok_or(DomaError::UnknownObject {
            node: self.id.index(),
            object: object.0,
        })
    }

    /// The catalog slot of `object`, recording [`DomaError::UnknownObject`]
    /// when uncatalogued — the shape message handlers need, since
    /// [`Actor::on_message`] cannot propagate a `Result`.
    fn slot_or_record(&mut self, object: ObjectId) -> Option<usize> {
        match self.catalog.slot(object) {
            Some(slot) => Some(slot),
            None => {
                self.errors.push(DomaError::UnknownObject {
                    node: self.id.index(),
                    object: object.0,
                });
                None
            }
        }
    }

    /// Like [`DomNode::config`] but records the error and returns `None`
    /// — the shape message handlers need, since [`Actor::on_message`]
    /// cannot propagate a `Result`.
    fn config_or_record(&mut self, object: ObjectId) -> Option<ProtocolConfig> {
        match self.config(object) {
            Ok(c) => Some(c.clone()),
            Err(e) => {
                self.errors.push(e);
                None
            }
        }
    }

    fn is_da_core(&self, object: ObjectId) -> bool {
        matches!(self.config(object), Ok(ProtocolConfig::Da { f, .. }) if f.contains(self.id))
    }

    fn is_da_primary(&self, object: ObjectId) -> bool {
        matches!(self.config(object), Ok(ProtocolConfig::Da { f, .. }) if f.any_member() == Some(self.id))
    }

    /// Whether `version` is news to the local store: strictly newer than
    /// the local replica, or the same version while the local copy is
    /// invalid (re-validation). Under fault injection, delayed or
    /// duplicated `WriteProp`/`ObjData` messages can arrive out of order;
    /// applying them blindly would regress the replica.
    /// The lowest version still allowed to (re-)validate the local
    /// replica, per processed invalidations.
    fn invalidated_floor(&self, object: ObjectId) -> Version {
        self.catalog
            .slot(object)
            .map(|slot| self.invalidated_below[slot])
            .unwrap_or(Version::INITIAL)
    }

    fn fresher_than_local(&self, object: ObjectId, version: Version) -> bool {
        if version < self.invalidated_floor(object) && !self.bugs.no_invalidated_floor {
            // An already-processed invalidation proved this version
            // obsolete; a delayed or duplicated carrier must not
            // resurrect it.
            return false;
        }
        match self.replica_version_of(object) {
            Some(local) => version > local || (version == local && !self.store.holds_valid(object)),
            None => true,
        }
    }

    fn complete_read(&mut self, object: ObjectId, version: Option<Version>, now: SimTime) {
        let Some(slot) = self.catalog.slot(object) else {
            return;
        };
        let queue = &mut self.read_started[slot];
        if !queue.is_empty() {
            // Replies are served FIFO (the engine and the bus are
            // order-preserving), so the oldest outstanding read is the
            // one completing.
            let started = queue.remove(0);
            self.reads_completed += 1;
            let latency = now.ticks() - started.ticks();
            self.read_latency_ticks += latency;
            self.read_latencies.push(latency);
            self.completed_reads.push(CompletedRead {
                object,
                version,
                latency,
            });
        }
    }

    /// All other nodes. Quorum operations contact everyone and complete
    /// once a majority of *responses* is assembled, so individual crashed
    /// peers cannot stall them.
    fn all_peers(&self) -> Vec<NodeId> {
        (0..self.n)
            .filter(|&i| i != self.id.index())
            .map(NodeId)
            .collect()
    }

    /// Read/write quorum size: a majority of the cluster.
    fn quorum_size(&self) -> usize {
        self.n / 2 + 1
    }

    fn start_quorum_read<T: Transport + ?Sized>(
        &mut self,
        ctx: &mut T,
        object: ObjectId,
        store_result: bool,
    ) {
        let Some(slot) = self.slot_or_record(object) else {
            return;
        };
        let local = self.store.input(object);
        let mut responders = ProcSet::EMPTY;
        if local.is_some() {
            responders.insert(self.id);
        }
        self.quorum_round += 1;
        let round = self.quorum_round;
        if let Some(obs) = self.obs.as_mut() {
            obs.bundle()
                .metrics()
                .add("protocol", "quorum_rounds", &[("node", obs.label())], 1);
            let span = obs.bundle().events().span_enter(
                ctx.now().ticks(),
                "protocol.quorum",
                vec![
                    ("node".to_string(), obs.label().to_string()),
                    ("object".to_string(), object.to_string()),
                    ("round".to_string(), round.to_string()),
                ],
            );
            obs.open_quorum.insert((object, round), span);
        }
        self.pending[slot] = Some(PendingQuorum {
            counted: responders.len(),
            responders,
            needed: self.quorum_size(),
            round,
            best: local,
            store_result,
            started: ctx.now(),
        });
        for peer in self.all_peers() {
            ctx.send(
                peer,
                MsgKind::Control,
                DomMsg::ReadReq {
                    object,
                    saving: false,
                    round,
                },
            );
        }
        // Degenerate single-node cluster: the local replica is the quorum.
        self.maybe_finish_quorum(ctx, object);
    }

    fn handle_client_read<T: Transport + ?Sized>(
        &mut self,
        ctx: &mut T,
        object: ObjectId,
        plan: Option<ReadPlan>,
    ) {
        if self.quorum_mode {
            let Some(slot) = self.slot_or_record(object) else {
                return;
            };
            self.read_started[slot].push(ctx.now());
            self.start_quorum_read(ctx, object, false);
            return;
        }
        let Some(config) = self.config_or_record(object) else {
            return;
        };
        let Some(slot) = self.catalog.slot(object) else {
            return;
        };
        self.read_started[slot].push(ctx.now());
        match config {
            ProtocolConfig::Sa { q } => {
                if q.contains(self.id) {
                    let got = self.store.input(object);
                    debug_assert!(got.is_some(), "SA member must hold a valid replica");
                    let version = got.map(|(v, _)| v);
                    self.complete_read(object, version, ctx.now());
                } else if let Some(server) = q.any_member() {
                    ctx.send(
                        node(server),
                        MsgKind::Control,
                        DomMsg::ReadReq {
                            object,
                            saving: false,
                            round: 0,
                        },
                    );
                } else {
                    // An empty Q is rejected at configuration time; a
                    // request that still lands here is a harness bug worth
                    // surfacing, not worth crashing the cluster for.
                    self.errors
                        .push(DomaError::InvalidConfig("SA scheme Q is empty".into()));
                }
            }
            ProtocolConfig::Da { f, .. } => {
                if self.store.holds_valid(object) {
                    let got = self.store.input(object);
                    let version = got.map(|(v, _)| v);
                    self.complete_read(object, version, ctx.now());
                } else {
                    let members: Vec<ProcessorId> = f.iter().collect();
                    let state = &mut self.da[slot];
                    let server = members[state.serve_cursor % members.len()];
                    state.serve_cursor = state.serve_cursor.wrapping_add(1);
                    ctx.send(
                        node(server),
                        MsgKind::Control,
                        DomMsg::ReadReq {
                            object,
                            saving: true,
                            round: 0,
                        },
                    );
                }
            }
            ProtocolConfig::Adaptive { .. } => {
                let Some(plan) = plan else {
                    self.errors.push(DomaError::InvalidConfig(
                        "adaptive read injected without a plan".into(),
                    ));
                    return;
                };
                match plan.server {
                    None if self.store.holds_valid(object) => {
                        let got = self.store.input(object);
                        let version = got.map(|(v, _)| v);
                        self.complete_read(object, version, ctx.now());
                    }
                    None => {
                        // The oracle believes we hold a replica, but a
                        // fault episode dropped it: fetch (saving) from a
                        // scheme member to restore the oracle's invariant.
                        if let Some(fallback) = plan.fallback {
                            ctx.send(
                                node(fallback),
                                MsgKind::Control,
                                DomMsg::ReadReq {
                                    object,
                                    saving: true,
                                    round: 0,
                                },
                            );
                        } else {
                            self.errors.push(DomaError::InvalidConfig(
                                "adaptive local read found no valid replica".into(),
                            ));
                        }
                    }
                    Some(server) => {
                        ctx.send(
                            node(server),
                            MsgKind::Control,
                            DomMsg::ReadReq {
                                object,
                                saving: plan.saving,
                                round: 0,
                            },
                        );
                    }
                }
            }
        }
    }

    fn handle_client_write<T: Transport + ?Sized>(
        &mut self,
        ctx: &mut T,
        object: ObjectId,
        version: Version,
        payload: Vec<u8>,
        plan: Option<WritePlan>,
    ) {
        if self.quorum_mode {
            // Quorum write: store locally, propagate to all peers; the
            // live ones (a majority, else the cluster is unavailable
            // anyway) apply it.
            self.store.output(object, version, payload.clone());
            for peer in self.all_peers() {
                ctx.send(
                    peer,
                    MsgKind::Data,
                    DomMsg::WriteProp {
                        object,
                        version,
                        payload: payload.clone(),
                        writer: node(self.id),
                    },
                );
            }
            return;
        }
        let Some(config) = self.config_or_record(object) else {
            return;
        };
        match config {
            ProtocolConfig::Sa { q } => {
                if q.contains(self.id) {
                    self.store.output(object, version, payload.clone());
                }
                for member in q.iter().filter(|&m| m != self.id) {
                    ctx.send(
                        node(member),
                        MsgKind::Data,
                        DomMsg::WriteProp {
                            object,
                            version,
                            payload: payload.clone(),
                            writer: node(self.id),
                        },
                    );
                }
            }
            ProtocolConfig::Da { .. } => {
                let exec = config.da_exec_set(self.id);
                debug_assert!(exec.contains(self.id), "DA writers are always in X");
                self.store.output(object, version, payload.clone());
                for member in exec.iter().filter(|&m| m != self.id) {
                    ctx.send(
                        node(member),
                        MsgKind::Data,
                        DomMsg::WriteProp {
                            object,
                            version,
                            payload: payload.clone(),
                            writer: node(self.id),
                        },
                    );
                }
                if self.is_da_core(object) {
                    // The writer is itself a core member: do its
                    // invalidation duties immediately.
                    self.da_invalidate_duties(ctx, object, version, self.id);
                }
            }
            ProtocolConfig::Adaptive { .. } => {
                let Some(plan) = plan else {
                    self.errors.push(DomaError::InvalidConfig(
                        "adaptive write injected without a plan".into(),
                    ));
                    return;
                };
                if plan.exec.contains(self.id) {
                    self.store.output(object, version, payload.clone());
                }
                for member in plan.exec.iter().filter(|&m| m != self.id) {
                    ctx.send(
                        node(member),
                        MsgKind::Data,
                        DomMsg::WriteProp {
                            object,
                            version,
                            payload: payload.clone(),
                            writer: node(self.id),
                        },
                    );
                }
                // The issuer performs the invalidation duties itself: the
                // driver already computed `Y \ X \ {i}` from the oracle's
                // scheme.
                for member in plan.invalidate.iter().filter(|&m| m != self.id) {
                    ctx.send(
                        node(member),
                        MsgKind::Control,
                        DomMsg::Invalidate { object, version },
                    );
                }
                if plan.self_invalidate && !plan.exec.contains(self.id) {
                    // A scheme member writing remotely drops its own
                    // replica without any message — the analytic model
                    // charges nothing for it.
                    if let Some(slot) = self.catalog.slot(object) {
                        let floor = &mut self.invalidated_below[slot];
                        if version > *floor {
                            *floor = version;
                        }
                    }
                    self.store.invalidate(object);
                }
            }
        }
    }

    /// A core member's duties when it learns of the write of `version` by
    /// `writer`: invalidate its join-list outside the new execution set,
    /// and (primary only) invalidate and re-track the "extra" member.
    fn da_invalidate_duties<T: Transport + ?Sized>(
        &mut self,
        ctx: &mut T,
        object: ObjectId,
        version: Version,
        writer: ProcessorId,
    ) {
        let Some(config) = self.config_or_record(object) else {
            return;
        };
        let exec = config.da_exec_set(writer);
        let spare = exec.with(writer);
        let primary = self.is_da_primary(object);
        let Some(slot) = self.catalog.slot(object) else {
            return;
        };
        let state = &mut self.da[slot];
        let flushed = state.join_list.len();
        for member in state.join_list.iter().filter(|m| !spare.contains(*m)) {
            ctx.send(
                node(member),
                MsgKind::Control,
                DomMsg::Invalidate { object, version },
            );
        }
        state.join_list = ProcSet::EMPTY;
        if primary {
            if let Some(extra) = state.extra {
                if !spare.contains(extra) {
                    ctx.send(
                        node(extra),
                        MsgKind::Control,
                        DomMsg::Invalidate { object, version },
                    );
                }
            }
            // The new extra member: the original floater if the writer is
            // core-or-floater, otherwise the writer itself.
            state.extra = match &config {
                ProtocolConfig::Da { f, p } => {
                    if f.with(*p).contains(writer) {
                        Some(*p)
                    } else {
                        Some(writer)
                    }
                }
                ProtocolConfig::Sa { .. } | ProtocolConfig::Adaptive { .. } => None,
            };
        }
        if flushed > 0 {
            self.obs_scheme_churn(ctx.now(), object, flushed);
        }
    }

    fn handle_quorum_reply<T: Transport + ?Sized>(
        &mut self,
        ctx: &mut T,
        from: NodeId,
        object: ObjectId,
        round: u64,
        reply: Option<(Version, Vec<u8>)>,
    ) {
        let Some(slot) = self.catalog.slot(object) else {
            return;
        };
        let Some(pending) = self.pending[slot].as_mut() else {
            // No operation in flight (or it already assembled its
            // majority): a straggler reply, not actionable.
            return;
        };
        if pending.round != round && !self.bugs.ignore_round_tags {
            // A delayed reply from an *earlier* quorum operation on the
            // same object. Counting it would both attribute a stale
            // version to the responder and mask the responder's fresh
            // reply as a duplicate.
            return;
        }
        let responder = proc(from);
        if pending.responders.contains(responder) && !self.bugs.count_duplicate_responders {
            // A duplicated reply carries no new information and must not
            // count toward the majority.
            return;
        }
        pending.responders.insert(responder);
        pending.counted += 1;
        if let Some((v, d)) = reply {
            match &pending.best {
                Some((bv, _)) if *bv >= v => {}
                _ => pending.best = Some((v, d)),
            }
        }
        self.maybe_finish_quorum(ctx, object);
    }

    fn maybe_finish_quorum<T: Transport + ?Sized>(&mut self, ctx: &mut T, object: ObjectId) {
        let Some(slot) = self.catalog.slot(object) else {
            return;
        };
        let finished = self.pending[slot].as_ref().is_some_and(|p| {
            let reached = if self.bugs.count_duplicate_responders {
                p.counted
            } else {
                p.responders.len()
            };
            reached >= p.needed
        });
        if finished {
            let Some(done) = self.pending[slot].take() else {
                return;
            };
            if let Some(obs) = self.obs.as_mut() {
                if let Some(span) = obs.open_quorum.remove(&(object, done.round)) {
                    obs.bundle().events().span_exit(span, ctx.now().ticks());
                }
            }
            let version = done.best.as_ref().map(|(v, _)| *v);
            if let Some((v, d)) = done.best {
                if done.store_result && self.fresher_than_local(object, v) {
                    self.store.output(object, v, d);
                }
            }
            if !self.read_started[slot].is_empty() {
                self.complete_read(object, version, ctx.now());
            } else {
                // CatchUp completion: nothing further to do.
                let _ = done.started;
            }
        }
    }
}

fn preload(mut store: LocalStore, object: ObjectId) -> LocalStore {
    // Same semantics as LocalStore::with_initial, but composable over
    // many objects: preload without charging I/O.
    let preloaded = LocalStore::with_initial(object, Version::INITIAL, b"initial".to_vec());
    if store.is_empty() {
        return preloaded;
    }
    // Merge: replay is cheap at construction time.
    for (obj, version, payload, valid) in preloaded.log().replay() {
        if valid {
            store.output(obj, version, payload);
        }
    }
    store.reset_io_stats();
    store
}

impl DomNode {
    /// Deliver one inbound message through any [`Transport`]: classify it,
    /// run the state machine, then account the step's I/O and buffered
    /// sends to observability. This is the single entry point both
    /// runtimes share — the sim engine's [`Actor::on_message`] delegates
    /// here, and `doma-net`'s event loop calls it directly, so the two
    /// execute literally the same code path.
    ///
    /// The transport's send buffer must hold only this delivery's sends
    /// when the call returns (flush it *after* `deliver`, never during).
    pub fn deliver<T: Transport + ?Sized>(&mut self, t: &mut T, from: NodeId, msg: DomMsg) {
        // Classify before handling (the handler consumes the message),
        // account after: the transport's send buffer then holds exactly
        // this dispatch's sends and the I/O cursor delta exactly its
        // I/O.
        let op = op_of(&msg);
        let object = object_of(&msg);
        self.handle_message(t, from, msg);
        self.obs_account(t, op, object);
    }

    fn handle_message<T: Transport + ?Sized>(&mut self, ctx: &mut T, from: NodeId, msg: DomMsg) {
        match msg {
            DomMsg::ClientRead { object, plan } => self.handle_client_read(ctx, object, plan),
            DomMsg::ClientWrite {
                object,
                version,
                payload,
                plan,
            } => self.handle_client_write(ctx, object, version, payload, plan),
            DomMsg::ReadReq {
                object,
                saving,
                round,
            } => {
                match self.store.input(object) {
                    Some((version, payload)) => {
                        if saving && self.is_da_core(object) {
                            // is_da_core implies the object is catalogued,
                            // so the slot lookup always succeeds.
                            let joined = match self.catalog.slot(object) {
                                Some(slot) => {
                                    let state = &mut self.da[slot];
                                    let grew = !state.join_list.contains(proc(from));
                                    state.join_list.insert(proc(from));
                                    grew
                                }
                                None => false,
                            };
                            if joined {
                                self.obs_join(ctx.now(), object, from);
                            }
                        }
                        ctx.send(
                            from,
                            MsgKind::Data,
                            DomMsg::ObjData {
                                object,
                                version,
                                payload,
                                save: saving,
                                round,
                            },
                        );
                    }
                    None => {
                        // Only possible in quorum mode (normal-mode servers
                        // always hold valid replicas — asserted by tests).
                        ctx.send(from, MsgKind::Control, DomMsg::NoData { object, round });
                    }
                }
            }
            DomMsg::ObjData {
                object,
                version,
                payload,
                save,
                round,
            } => {
                if round != 0 {
                    // A quorum reply is only meaningful to the operation
                    // that solicited it; handle_quorum_reply drops it when
                    // that operation is gone or superseded. It must never
                    // complete a forwarded read.
                    self.handle_quorum_reply(ctx, from, object, round, Some((version, payload)));
                } else {
                    if version < self.invalidated_floor(object) && !self.bugs.no_invalidated_floor {
                        // A delayed or duplicated reply carrying data an
                        // invalidation already proved obsolete: answering
                        // a read with it would violate one-copy
                        // semantics. Drop it.
                        return;
                    }
                    if save && self.fresher_than_local(object, version) {
                        self.store.output(object, version, payload);
                    }
                    self.complete_read(object, Some(version), ctx.now());
                }
            }
            DomMsg::NoData { object, round } => {
                self.handle_quorum_reply(ctx, from, object, round, None)
            }
            DomMsg::WriteProp {
                object,
                version,
                payload,
                writer,
            } => {
                // A delayed/duplicated propagation must not regress the
                // replica; core invalidation duties still run so late
                // joiners are flushed exactly once per write.
                if self.fresher_than_local(object, version) {
                    self.store.output(object, version, payload);
                    if !self.quorum_mode && self.is_da_core(object) {
                        self.da_invalidate_duties(ctx, object, version, proc(writer));
                    }
                }
            }
            DomMsg::Invalidate { object, version } => {
                if let Some(slot) = self.catalog.slot(object) {
                    let floor = &mut self.invalidated_below[slot];
                    if version > *floor {
                        *floor = version;
                    }
                }
                self.store.invalidate(object);
            }
            DomMsg::ModeChange { quorum } => {
                self.obs_mode_change(ctx.now(), quorum);
                self.quorum_mode = quorum;
                if quorum {
                    // Missing-writes transition (§2): a normal-mode write
                    // lives on only t replicas — not necessarily a
                    // majority — so quorum reads alone could miss it.
                    // Every valid holder pushes its current version to all
                    // peers (receivers keep the freshest), putting the
                    // latest committed version on a write-majority before
                    // quorum service starts.
                    let objects: Vec<ObjectId> = self.catalog.ids.clone();
                    for object in objects {
                        if !self.store.holds_valid(object) {
                            continue;
                        }
                        if let Some((version, payload)) = self.store.input(object) {
                            for peer in self.all_peers() {
                                ctx.send(
                                    peer,
                                    MsgKind::Data,
                                    DomMsg::WriteProp {
                                        object,
                                        version,
                                        payload: payload.clone(),
                                        writer: node(self.id),
                                    },
                                );
                            }
                        }
                    }
                } else {
                    // Re-entering normal mode: quorum writes replicated to
                    // everyone, but DA's invariant is that exactly
                    // F ∪ {p} hold each object (join-lists empty, floater
                    // = p). Nodes outside that set drop their replicas
                    // locally — no messages, the mode change itself was
                    // the coordination.
                    let objects: Vec<(ObjectId, ProtocolConfig)> = self
                        .catalog
                        .ids
                        .iter()
                        .copied()
                        .zip(self.catalog.configs.iter().cloned())
                        .collect();
                    for (object, config) in objects {
                        match config {
                            ProtocolConfig::Da { f, p } => {
                                if !f.with(p).contains(self.id) {
                                    self.store.invalidate(object);
                                }
                                let primary = self.is_da_primary(object);
                                let Some(slot) = self.catalog.slot(object) else {
                                    continue;
                                };
                                let state = &mut self.da[slot];
                                if f.contains(self.id) {
                                    state.join_list = ProcSet::EMPTY;
                                }
                                if primary {
                                    state.extra = Some(p);
                                }
                            }
                            ProtocolConfig::Sa { q } => {
                                // SA's scheme is exactly Q; replicas that
                                // quorum writes left elsewhere are dropped.
                                if !q.contains(self.id) {
                                    self.store.invalidate(object);
                                }
                            }
                            ProtocolConfig::Adaptive { initial, .. } => {
                                // The driver resets its oracle to the
                                // initial scheme on this transition, so the
                                // replica set snaps back to match it.
                                if !initial.contains(self.id) {
                                    self.store.invalidate(object);
                                }
                            }
                        }
                    }
                }
            }
            DomMsg::CatchUp { object } => {
                if self.quorum_mode {
                    // Missing-writes transition: quorum-read the latest
                    // version and store it locally before resuming service.
                    // Sound here because quorum-mode writes (and the
                    // mode-entry push) put the latest version on a
                    // majority, which every assembled read quorum
                    // intersects.
                    self.start_quorum_read(ctx, object, true);
                } else {
                    // In normal mode the latest write lives on only t
                    // replicas — not necessarily a majority — so a quorum
                    // read could legitimately miss it (fast NoData control
                    // replies can assemble a majority before any data
                    // arrives). The scheme members are known and always
                    // current, so fetch from them directly; the freshest
                    // reply wins and a saving fetch re-enters the join
                    // list, restoring invalidation duties.
                    let Some(config) = self.config_or_record(object) else {
                        return;
                    };
                    // Adaptive schemes move with the workload, so the
                    // initial members may no longer hold the object: ask
                    // everyone, keep the freshest reply (stale and NoData
                    // round-0 replies drop harmlessly).
                    let targets = match config {
                        ProtocolConfig::Adaptive { .. } => ProcSet::universe(self.n),
                        other => other.initial_scheme(),
                    };
                    for member in targets.iter() {
                        if member == self.id {
                            continue;
                        }
                        ctx.send(
                            node(member),
                            MsgKind::Control,
                            DomMsg::ReadReq {
                                object,
                                saving: true,
                                round: 0,
                            },
                        );
                    }
                }
            }
        }
    }
}

impl Actor<DomMsg> for DomNode {
    fn on_message(&mut self, ctx: &mut Context<DomMsg>, from: NodeId, _kind: MsgKind, msg: DomMsg) {
        self.deliver(ctx, from, msg);
    }

    fn on_crash(&mut self) {
        // Volatile state is lost; the store survives on "stable storage"
        // (its redo log). In-memory table is rebuilt on recovery.
        self.clear_volatile_tables();
        // In-flight quorum spans died with the volatile state; their
        // enter records stay in the log as evidence.
        if let Some(obs) = self.obs.as_mut() {
            obs.open_quorum.clear();
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<DomMsg>) {
        self.recover_from_log();
        self.obs_account(ctx, "recovery", None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(v: &[usize]) -> ProcSet {
        v.iter().copied().collect()
    }

    #[test]
    fn config_accessors() {
        let sa = ProtocolConfig::Sa { q: ps(&[0, 1, 2]) };
        assert_eq!(sa.t(), 3);
        assert_eq!(sa.initial_scheme(), ps(&[0, 1, 2]));
        let da = ProtocolConfig::Da {
            f: ps(&[0]),
            p: ProcessorId::new(1),
        };
        assert_eq!(da.t(), 2);
        assert_eq!(da.initial_scheme(), ps(&[0, 1]));
        assert_eq!(da.da_exec_set(ProcessorId::new(0)), ps(&[0, 1]));
        assert_eq!(da.da_exec_set(ProcessorId::new(1)), ps(&[0, 1]));
        assert_eq!(da.da_exec_set(ProcessorId::new(4)), ps(&[0, 4]));
    }

    #[test]
    fn initial_replicas_preloaded() {
        let cfg = ProtocolConfig::Da {
            f: ps(&[0]),
            p: ProcessorId::new(1),
        };
        let member = DomNode::new(ProcessorId::new(0), 4, cfg.clone());
        assert!(member.holds_valid());
        assert_eq!(member.io_stats().total(), 0);
        let outsider = DomNode::new(ProcessorId::new(3), 4, cfg);
        assert!(!outsider.holds_valid());
    }

    #[test]
    fn primary_tracks_floater() {
        let cfg = ProtocolConfig::Da {
            f: ps(&[0, 2]),
            p: ProcessorId::new(3),
        };
        let primary = DomNode::new(ProcessorId::new(0), 5, cfg.clone());
        assert!(primary.is_da_primary(OBJECT));
        assert_eq!(primary.da_extra(OBJECT), Some(ProcessorId::new(3)));
        let other_core = DomNode::new(ProcessorId::new(2), 5, cfg);
        assert!(!other_core.is_da_primary(OBJECT));
        assert_eq!(other_core.da_extra(OBJECT), None);
    }

    #[test]
    fn quorum_peers_exclude_self_and_quorum_is_majority() {
        let cfg = ProtocolConfig::Sa { q: ps(&[0, 1]) };
        let n = DomNode::new(ProcessorId::new(1), 5, cfg);
        let peers = n.all_peers();
        assert_eq!(peers.len(), 4);
        assert!(!peers.contains(&NodeId(1)));
        assert_eq!(n.quorum_size(), 3);
    }

    #[test]
    fn catalog_preloads_per_object_schemes() {
        let mut configs = BTreeMap::new();
        configs.insert(
            ObjectId(1),
            ProtocolConfig::Da {
                f: ps(&[0]),
                p: ProcessorId::new(1),
            },
        );
        configs.insert(
            ObjectId(2),
            ProtocolConfig::Da {
                f: ps(&[2]),
                p: ProcessorId::new(3),
            },
        );
        let node0 = DomNode::with_catalog(ProcessorId::new(0), 4, configs.clone(), 0);
        assert!(node0.holds_valid_of(ObjectId(1)));
        assert!(!node0.holds_valid_of(ObjectId(2)));
        assert_eq!(node0.io_stats().total(), 0, "preloads charge no I/O");
        let node2 = DomNode::with_catalog(ProcessorId::new(2), 4, configs, 0);
        assert!(!node2.holds_valid_of(ObjectId(1)));
        assert!(node2.holds_valid_of(ObjectId(2)));
    }

    #[test]
    fn unknown_object_is_an_error_not_a_panic() {
        let cfg = ProtocolConfig::Sa { q: ps(&[0, 1]) };
        let n = DomNode::new(ProcessorId::new(0), 4, cfg);
        let err = n.config(ObjectId(99)).unwrap_err();
        assert_eq!(
            err,
            DomaError::UnknownObject {
                node: 0,
                object: 99
            }
        );
        assert!(err.to_string().contains("no config"), "{err}");
    }

    #[test]
    fn unknown_object_requests_record_errors_and_send_nothing() {
        use doma_sim::{Engine, EngineConfig};
        let cfg = ProtocolConfig::Sa { q: ps(&[0, 1]) };
        let mut engine: Engine<DomMsg, DomNode> = Engine::new(EngineConfig::default());
        let a = engine.add_node(DomNode::new(ProcessorId::new(0), 2, cfg.clone()));
        engine.add_node(DomNode::new(ProcessorId::new(1), 2, cfg));
        engine.inject(
            a,
            0,
            DomMsg::ClientRead {
                object: ObjectId(9),
                plan: None,
            },
        );
        engine.inject(
            a,
            1,
            DomMsg::ClientWrite {
                object: ObjectId(9),
                version: Version(1),
                payload: vec![1],
                plan: None,
            },
        );
        engine.run_until_idle();
        let errors = engine.actor(a).protocol_errors();
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors
            .iter()
            .all(|e| *e == DomaError::UnknownObject { node: 0, object: 9 }));
        // No messages escaped: the error path is local.
        let stats = engine.net_stats().snapshot();
        assert_eq!(stats.control_sent + stats.data_sent, 0);
        assert_eq!(engine.actor(a).read_metrics(), (0, 0));
    }

    #[test]
    fn stale_write_prop_does_not_regress_the_replica() {
        use doma_sim::{Engine, EngineConfig};
        let cfg = ProtocolConfig::Sa { q: ps(&[0, 1]) };
        let mut engine: Engine<DomMsg, DomNode> = Engine::new(EngineConfig::default());
        let a = engine.add_node(DomNode::new(ProcessorId::new(0), 2, cfg.clone()));
        engine.add_node(DomNode::new(ProcessorId::new(1), 2, cfg));
        let wp = |v: u64| DomMsg::WriteProp {
            object: OBJECT,
            version: Version(v),
            payload: vec![v as u8],
            writer: NodeId(1),
        };
        engine.inject(a, 0, wp(5));
        engine.inject(a, 1, wp(3)); // late, out-of-order propagation
        engine.inject(a, 2, wp(5)); // duplicate
        engine.run_until_idle();
        assert_eq!(engine.actor(a).replica_version(), Some(Version(5)));
        assert!(engine.actor(a).holds_valid());
    }
}

//! Object-sharded parallel execution: run a multi-object schedule on K
//! independent clusters — one per object shard — and merge the results
//! deterministically.
//!
//! The paper's cost model makes objects independent (§3.1: a schedule's
//! cost decomposes into per-object costs), and the failure-free protocol
//! preserves that independence: no message, store slot or tally is
//! shared between objects. A [`MultiSchedule`] can therefore be
//! partitioned by object, each partition executed on its own
//! [`ProtocolSim`] + engine, and the partial results recombined into
//! *exactly* the sequential outcome:
//!
//! * [`SimReport`]s sum component-wise — costs, reads and latency ticks
//!   are integers, and the merged mean latency is recomputed with the
//!   same single division a sequential run performs, so even the f64 is
//!   bit-identical;
//! * per-object final holders come from exactly one shard each (the one
//!   that owns the object), so the union is exact;
//! * per-shard observability bundles fold through
//!   [`doma_obs::Obs::merge_shards`]: metric totals and key sets are
//!   byte-identical to a sequential run, event records interleave by
//!   `(time, shard, index)` with a `shard` label (event *times* stay
//!   shard-local — each shard's engine runs its own virtual clock; this
//!   is the one documented divergence from the sequential event log).
//!
//! Shard assignment reuses the same [`Placement`] policies — through the
//! same [`doma_algorithms::partition`] kernel — that the analytic
//! multi-object allocator uses for core placement, so `LoadAware`
//! balances shards by request traffic exactly as it balances processors
//! by I/O. Workers run on scoped threads via
//! [`doma_sim::shard::run_shards`]; `DOMA_SHARDS=1` in the environment
//! forces the serial fallback path, which must (and, per the parity
//! gate, does) produce identical bytes.

use crate::{DomMsg, DomNode, ProtocolConfig, ProtocolSim, SimReport};
use doma_algorithms::multi::Placement;
use doma_algorithms::partition::ShardPartitioner;
use doma_core::{CostVector, DomaError, MultiRequest, MultiSchedule, ObjectId, ProcSet, Result};
use doma_obs::Obs;
use doma_sim::shard::run_shards;
use std::collections::BTreeMap;

// Everything a shard worker moves across a thread boundary must be Send;
// asserting it on the simulator itself keeps the whole actor stack
// (engine, nodes, stores, obs handles) eligible, not just the pieces
// today's workers happen to move.
const _: () = doma_sim::shard::assert_send::<ProtocolSim>();
const _: () = doma_sim::shard::assert_send::<DomNode>();
const _: () = doma_sim::shard::assert_send::<DomMsg>();

/// One shard's input: its catalog slice and its projected sub-schedule.
/// Public so the bench harness's phase profiler can drive the same
/// partition → project → setup → execute → merge pipeline
/// [`ShardedSim::execute_multi`] composes, timing each phase.
pub type ShardInput = (BTreeMap<ObjectId, ProtocolConfig>, MultiSchedule);

/// The outcome of one sharded execution.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    /// The merged report — component-wise equal to what a sequential
    /// [`ProtocolSim::execute_multi`] of the same schedule reports.
    pub report: SimReport,
    /// Final valid-replica holders per catalog object (each collected
    /// from the one shard that owns the object).
    pub holders: BTreeMap<ObjectId, ProcSet>,
    /// Which shard each catalog object was assigned to.
    pub assignment: BTreeMap<ObjectId, usize>,
    /// The merged observability bundle, when requested via
    /// [`ShardedSim::with_obs`].
    pub obs: Option<Obs>,
}

/// What one worker hands back across the thread boundary. Public (with
/// public fields) so the phase profiler can run shards inline and feed
/// the results to [`ShardedSim::merge_outcomes`].
#[derive(Debug)]
pub struct ShardOutcome {
    /// The shard cluster's exact tallies.
    pub report: SimReport,
    /// Final valid-replica holders of the shard's objects.
    pub holders: BTreeMap<ObjectId, ProcSet>,
    /// The shard's obs bundle, when observability was requested.
    pub obs: Option<Obs>,
}

/// A sharded driver over the same catalog a sequential
/// [`ProtocolSim::new_catalog`] would serve.
///
/// Construction validates the catalog once (by probing the sequential
/// constructor); each [`ShardedSim::execute_multi`] then builds K fresh
/// per-shard clusters, runs them on scoped threads and merges. The
/// driver itself is immutable, so the same instance can execute many
/// schedules — including the same schedule at different shard counts
/// for the scaling experiment.
#[derive(Debug, Clone)]
pub struct ShardedSim {
    n: usize,
    configs: BTreeMap<ObjectId, ProtocolConfig>,
    shards: usize,
    placement: Placement,
    event_capacity: Option<usize>,
    traced: bool,
}

impl ShardedSim {
    /// A sharded driver for an `n`-node cluster serving `configs`,
    /// splitting objects into `shards` shards under `placement`.
    pub fn new(
        n: usize,
        configs: BTreeMap<ObjectId, ProtocolConfig>,
        shards: usize,
        placement: Placement,
    ) -> Result<Self> {
        if shards == 0 {
            return Err(DomaError::InvalidConfig("need at least one shard".into()));
        }
        // Probe the sequential constructor: same validation, one place.
        ProtocolSim::new_catalog(n, configs.clone())?;
        Ok(ShardedSim {
            n,
            configs,
            shards,
            placement,
            event_capacity: None,
            traced: false,
        })
    }

    /// Requests per-shard observability: every shard cluster gets a
    /// fresh bundle (event log bounded to `event_capacity`), and
    /// [`ShardedRun::obs`] carries the deterministic merge.
    pub fn with_obs(mut self, event_capacity: usize) -> Self {
        self.event_capacity = Some(event_capacity);
        self
    }

    /// Requests causal tracing on top of observability: every shard
    /// cluster additionally records message deliveries
    /// ([`ProtocolSim::attach_tracer_on`]) and per-request spans
    /// ([`ProtocolSim::enable_request_spans`]) into its obs event log.
    /// The merged log's records carry shard labels and interleave by the
    /// existing `(time, shard, index)` order, so
    /// [`doma_obs::trace::TraceModel`] reconstructs per-shard request
    /// windows from [`ShardedRun::obs`] directly.
    pub fn with_trace(mut self, event_capacity: usize) -> Self {
        self.event_capacity = Some(event_capacity);
        self.traced = true;
        self
    }

    /// The shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The placement policy assigning objects to shards.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Phase 1, shard partition: assigns every catalog object to a
    /// shard. Schedule objects are assigned on first touch (so
    /// `LoadAware` sees traffic as it accrues, one request per
    /// attribution, exactly like the analytic partitioner); catalog
    /// objects the schedule never touches are then assigned in ascending
    /// id order, so *every* object — and therefore every initial-scheme
    /// replica holder — lands in exactly one shard.
    pub fn partition(&self, schedule: &MultiSchedule) -> Result<BTreeMap<ObjectId, usize>> {
        let mut partitioner = ShardPartitioner::new(self.shards, self.placement)?;
        for &MultiRequest { object, .. } in schedule.requests() {
            if !self.configs.contains_key(&object) {
                return Err(DomaError::InvalidConfig(format!(
                    "{object} not in the cluster's catalog"
                )));
            }
            let shard = partitioner.assign(object);
            partitioner.attribute(shard, 1);
        }
        for object in self.configs.keys() {
            partitioner.assign(*object);
        }
        Ok(partitioner.assignment().clone())
    }

    /// Phase 2, projection copy: materializes each shard's catalog slice
    /// and projected sub-schedule from a [`ShardedSim::partition`]
    /// assignment. Requests keep their relative order within a shard.
    pub fn project(
        &self,
        schedule: &MultiSchedule,
        assignment: &BTreeMap<ObjectId, usize>,
    ) -> Vec<ShardInput> {
        let mut schedules: Vec<MultiSchedule> = Vec::new();
        schedules.resize_with(self.shards, MultiSchedule::default);
        for &MultiRequest { object, request } in schedule.requests() {
            let shard = assignment.get(&object).copied().unwrap_or(0);
            if let Some(s) = schedules.get_mut(shard) {
                s.push(object, request);
            }
        }
        let mut catalogs: Vec<BTreeMap<ObjectId, ProtocolConfig>> =
            vec![BTreeMap::new(); self.shards];
        for (object, config) in &self.configs {
            let shard = assignment.get(object).copied().unwrap_or(0);
            if let Some(catalog) = catalogs.get_mut(shard) {
                catalog.insert(*object, config.clone());
            }
        }
        catalogs.into_iter().zip(schedules).collect()
    }

    /// Phases 1+2 together, as the worker fan-out consumes them.
    fn split(
        &self,
        schedule: &MultiSchedule,
    ) -> Result<(BTreeMap<ObjectId, usize>, Vec<ShardInput>)> {
        let assignment = self.partition(schedule)?;
        let inputs = self.project(schedule, &assignment);
        Ok((assignment, inputs))
    }

    /// Executes an interleaved multi-object schedule across the shards
    /// and merges: the returned [`SimReport`] equals a sequential
    /// [`ProtocolSim::execute_multi`] of the same schedule on the same
    /// catalog, component for component.
    pub fn execute_multi(&self, schedule: &MultiSchedule) -> Result<ShardedRun> {
        let (assignment, inputs) = self.split(schedule)?;
        let n = self.n;
        let event_capacity = self.event_capacity;
        let traced = self.traced;
        let outcomes = run_shards(inputs, |_, (catalog, shard_schedule)| {
            Self::run_shard(n, event_capacity, traced, catalog, &shard_schedule)
        });
        let mut collected = Vec::new();
        for outcome in outcomes {
            collected.push(outcome?);
        }
        Ok(self.merge_outcomes(assignment, collected))
    }

    /// Phases 3+4 for one shard, inline (no worker thread): builds the
    /// shard cluster and runs its sub-schedule. The phase profiler times
    /// this against [`ShardedSim::merge_outcomes`] to attribute the
    /// sharded-vs-sequential wall-clock delta.
    pub fn run_shard_inline(&self, input: ShardInput) -> Result<ShardOutcome> {
        Self::run_shard(self.n, self.event_capacity, self.traced, input.0, &input.1)
    }

    /// Phase 5, report/obs merge: folds per-shard outcomes into the
    /// final [`ShardedRun`]. Outcomes must be given in shard order.
    pub fn merge_outcomes(
        &self,
        assignment: BTreeMap<ObjectId, usize>,
        outcomes: Vec<ShardOutcome>,
    ) -> ShardedRun {
        let mut report = SimReport {
            cost: CostVector::ZERO,
            final_holders: ProcSet::EMPTY,
            reads_completed: 0,
            read_latency_ticks: 0,
            mean_read_latency: 0.0,
            dropped_messages: 0,
        };
        let mut holders = BTreeMap::new();
        let mut bundles = Vec::new();
        for shard in outcomes {
            report.cost += shard.report.cost;
            for holder in shard.report.final_holders.iter() {
                report.final_holders.insert(holder);
            }
            report.reads_completed += shard.report.reads_completed;
            report.read_latency_ticks += shard.report.read_latency_ticks;
            report.dropped_messages += shard.report.dropped_messages;
            holders.extend(shard.holders);
            bundles.push(shard.obs);
        }
        // The same division a sequential report() performs — one f64
        // divide over exact integer sums — so the merged mean is
        // bit-identical, not merely close.
        report.mean_read_latency = if report.reads_completed > 0 {
            report.read_latency_ticks as f64 / report.reads_completed as f64
        } else {
            0.0
        };
        let obs = match self.event_capacity {
            Some(capacity) => {
                let master = Obs::new(capacity);
                let shard_bundles: Vec<Obs> =
                    bundles.into_iter().map(|b| b.unwrap_or_default()).collect();
                master.merge_shards(&shard_bundles);
                Some(master)
            }
            None => None,
        };
        ShardedRun {
            report,
            holders,
            assignment,
            obs,
        }
    }

    /// One worker: builds the shard's cluster, runs its sub-schedule to
    /// quiescence, and collects the pieces the merge needs. A shard
    /// with no objects (possible when K exceeds the catalog, or when
    /// `SameCore` funnels everything to shard 0) contributes a neutral
    /// outcome without building a cluster.
    fn run_shard(
        n: usize,
        event_capacity: Option<usize>,
        traced: bool,
        catalog: BTreeMap<ObjectId, ProtocolConfig>,
        schedule: &MultiSchedule,
    ) -> Result<ShardOutcome> {
        if catalog.is_empty() {
            return Ok(ShardOutcome {
                report: SimReport {
                    cost: CostVector::ZERO,
                    final_holders: ProcSet::EMPTY,
                    reads_completed: 0,
                    read_latency_ticks: 0,
                    mean_read_latency: 0.0,
                    dropped_messages: 0,
                },
                holders: BTreeMap::new(),
                obs: event_capacity.map(Obs::new),
            });
        }
        let mut sim = ProtocolSim::new_catalog(n, catalog)?;
        let obs = event_capacity.map(|capacity| sim.attach_obs(capacity));
        if traced {
            if let Some(obs) = &obs {
                sim.attach_tracer_on(obs.events().clone());
                sim.enable_request_spans();
            }
        }
        let report = sim.execute_multi(schedule)?;
        let holders = sim
            .catalog()
            .keys()
            .map(|object| (*object, sim.valid_holders_of(*object)))
            .collect();
        Ok(ShardOutcome {
            report,
            holders,
            obs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doma_core::{ProcessorId, Request};

    fn catalog(objects: u64, n: usize) -> BTreeMap<ObjectId, ProtocolConfig> {
        // Alternate SA and DA configurations around the ring.
        (0..objects)
            .map(|o| {
                let base = (o as usize) % (n - 1);
                let config = if o % 2 == 0 {
                    ProtocolConfig::Sa {
                        q: [base, base + 1].into_iter().collect(),
                    }
                } else {
                    ProtocolConfig::Da {
                        f: [base].into_iter().collect(),
                        p: ProcessorId::new(base + 1),
                    }
                };
                (ObjectId(o), config)
            })
            .collect()
    }

    fn traffic(objects: u64, requests: usize, n: usize) -> MultiSchedule {
        let mut s = MultiSchedule::default();
        for k in 0..requests {
            let object = ObjectId((k as u64 * 7 + 3) % objects);
            let issuer = (k * 5 + 1) % n;
            let request = if k % 3 == 0 {
                Request::write(issuer)
            } else {
                Request::read(issuer)
            };
            s.push(object, request);
        }
        s
    }

    #[test]
    fn construction_validates_catalog_and_shard_count() {
        assert!(ShardedSim::new(6, catalog(4, 6), 0, Placement::RoundRobin).is_err());
        assert!(ShardedSim::new(0, catalog(4, 6), 2, Placement::RoundRobin).is_err());
        assert!(ShardedSim::new(6, BTreeMap::new(), 2, Placement::RoundRobin).is_err());
        assert!(ShardedSim::new(6, catalog(4, 6), 2, Placement::RoundRobin).is_ok());
    }

    #[test]
    fn schedule_objects_outside_the_catalog_are_rejected() {
        let sharded = ShardedSim::new(6, catalog(4, 6), 2, Placement::RoundRobin).unwrap();
        let mut s = MultiSchedule::default();
        s.push(ObjectId(9), Request::read(0usize));
        assert!(sharded.execute_multi(&s).is_err());
    }

    #[test]
    fn merged_report_matches_sequential_execution() {
        let configs = catalog(6, 8);
        let schedule = traffic(6, 60, 8);
        let mut sequential = ProtocolSim::new_catalog(8, configs.clone()).unwrap();
        let expected = sequential.execute_multi(&schedule).unwrap();
        for shards in [1usize, 3, 6, 9] {
            let run = ShardedSim::new(8, configs.clone(), shards, Placement::RoundRobin)
                .unwrap()
                .execute_multi(&schedule)
                .unwrap();
            assert_eq!(run.report, expected, "K={shards} diverged");
            for object in configs.keys() {
                assert_eq!(
                    run.holders.get(object),
                    Some(&sequential.valid_holders_of(*object)),
                    "holders of {object} diverged at K={shards}"
                );
            }
        }
    }

    #[test]
    fn every_catalog_object_is_assigned_even_when_untouched() {
        let configs = catalog(5, 6);
        // Traffic touches only object 1.
        let mut schedule = MultiSchedule::default();
        schedule.push(ObjectId(1), Request::read(4usize));
        let run = ShardedSim::new(6, configs.clone(), 3, Placement::RoundRobin)
            .unwrap()
            .execute_multi(&schedule)
            .unwrap();
        assert_eq!(run.assignment.len(), configs.len());
        // Untouched objects still report their initial-scheme holders.
        let mut sequential = ProtocolSim::new_catalog(6, configs.clone()).unwrap();
        sequential.execute_multi(&schedule).unwrap();
        for object in configs.keys() {
            assert_eq!(
                run.holders.get(object),
                Some(&sequential.valid_holders_of(*object)),
                "holders of {object}"
            );
        }
    }

    #[test]
    fn merged_obs_metrics_are_byte_identical_to_sequential() {
        let configs = catalog(4, 6);
        let schedule = traffic(4, 40, 6);
        let mut sequential = ProtocolSim::new_catalog(6, configs.clone()).unwrap();
        let seq_obs = sequential.attach_obs(4096);
        sequential.execute_multi(&schedule).unwrap();
        let expected = seq_obs.metrics().snapshot().to_json();
        for shards in [1usize, 2, 4] {
            let run = ShardedSim::new(6, configs.clone(), shards, Placement::LoadAware)
                .unwrap()
                .with_obs(4096)
                .execute_multi(&schedule)
                .unwrap();
            let obs = run.obs.expect("obs requested");
            assert_eq!(
                obs.metrics().snapshot().to_json(),
                expected,
                "metrics diverged at K={shards}"
            );
            assert_eq!(
                obs.events().dropped_events(),
                seq_obs.events().dropped_events()
            );
        }
    }

    #[test]
    fn merged_events_interleave_with_shard_labels() {
        // All-DA catalog: every object's traffic emits protocol events
        // (SA request handling is event-silent), so both shards show up.
        let configs: BTreeMap<ObjectId, ProtocolConfig> = (0..4u64)
            .map(|o| {
                (
                    ObjectId(o),
                    ProtocolConfig::Da {
                        f: [o as usize].into_iter().collect(),
                        p: ProcessorId::new(o as usize + 1),
                    },
                )
            })
            .collect();
        let schedule = traffic(4, 12, 6);
        let run = ShardedSim::new(6, configs, 2, Placement::RoundRobin)
            .unwrap()
            .with_obs(4096)
            .execute_multi(&schedule)
            .unwrap();
        let events = run.obs.expect("obs requested").events().snapshot();
        assert!(!events.is_empty());
        let mut last = (0u64, 0usize);
        let mut seen_shards = std::collections::BTreeSet::new();
        for record in &events {
            let shard: usize = record
                .fields
                .iter()
                .find(|(k, _)| k == "shard")
                .map(|(_, v)| v.parse().unwrap())
                .expect("every merged record carries a shard label");
            assert!((record.time, shard) >= last, "merge order violated");
            last = (record.time, shard);
            seen_shards.insert(shard);
        }
        assert_eq!(seen_shards.len(), 2, "both shards contributed events");
    }
}

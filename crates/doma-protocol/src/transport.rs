//! The [`Transport`] trait: the narrow send/clock surface a [`DomNode`]
//! needs from whatever is carrying its messages.
//!
//! The protocol state machine in [`node`](crate::DomNode) never talks to
//! `doma-sim`'s `Engine` directly — every outbound message, every clock
//! read, and every timer request goes through this trait. That makes the
//! deterministic engine *one* implementation (the [`Context`] impl below,
//! used by every sim, fault, check, shard, and scenario path, byte-for-byte
//! unchanged) and leaves room for a second: `doma-net`'s socket-backed
//! transport, which carries the same [`DomMsg`]s over TCP or Unix domain
//! sockets and lets the real runtime be diffed against the sim oracle.
//!
//! Design constraints:
//!
//! * **Static dispatch.** Node methods are generic over `T: Transport +
//!   ?Sized`, not `&mut dyn Transport`, so the sim hot path monomorphizes
//!   to exactly the code it ran before the refactor (the `domactl perf`
//!   wall enforces this stays within budget).
//! * **Buffered sends.** `send` queues; `pending_sends` exposes the queue
//!   so the node's observability layer can tally per-message costs after
//!   a step (the engine drains the buffer after each dispatch, the socket
//!   transport after each [`DomNode::deliver`](crate::DomNode::deliver)).
//! * **Logical time.** `now` is the transport's logical clock. The engine
//!   reports simulated time; the socket transport reports a per-node
//!   delivery tick. Protocol behavior must not depend on the absolute
//!   values (they only timestamp read-latency samples and obs events).

use crate::msg::DomMsg;
use doma_sim::{Context, MsgKind, NodeId, SimTime};

/// The message-carrying surface a protocol node runs against.
///
/// Implementors buffer sends until the surrounding runtime flushes them:
/// the deterministic engine converts the buffer into scheduled delivery
/// events, the socket transport writes frames to peer connections. See the
/// [module docs](self) for the full contract.
pub trait Transport {
    /// Current logical time at this node (timestamps latency samples and
    /// obs events; never drives protocol decisions).
    fn now(&self) -> SimTime;

    /// Queue `msg` for delivery to `to`. `kind` classifies the message for
    /// network accounting (control vs data, per §1.2 of the paper).
    fn send(&mut self, to: NodeId, kind: MsgKind, msg: DomMsg);

    /// The messages queued by `send` since the last flush, in send order.
    /// The node's obs layer reads this to attribute per-message costs.
    fn pending_sends(&self) -> &[(NodeId, MsgKind, DomMsg)];

    /// Request a timer callback `delay` ticks from now, carrying `token`.
    /// The failover layer uses timers for failure detection; transports
    /// without a scheduler may ignore this (the real runtime runs only
    /// failure-free workloads, enforced by the cluster driver).
    fn set_timer(&mut self, delay: u64, token: u64);
}

impl Transport for Context<DomMsg> {
    fn now(&self) -> SimTime {
        Context::now(self)
    }

    fn send(&mut self, to: NodeId, kind: MsgKind, msg: DomMsg) {
        Context::send(self, to, kind, msg);
    }

    fn pending_sends(&self) -> &[(NodeId, MsgKind, DomMsg)] {
        Context::pending_sends(self)
    }

    fn set_timer(&mut self, delay: u64, token: u64) {
        Context::set_timer(self, delay, token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doma_core::ObjectId;

    /// A minimal in-memory transport proving the trait is implementable
    /// outside the sim engine (the real implementation lives in doma-net).
    struct Loopback {
        tick: SimTime,
        outbox: Vec<(NodeId, MsgKind, DomMsg)>,
        timers: Vec<(u64, u64)>,
    }

    impl Transport for Loopback {
        fn now(&self) -> SimTime {
            self.tick
        }
        fn send(&mut self, to: NodeId, kind: MsgKind, msg: DomMsg) {
            self.outbox.push((to, kind, msg));
        }
        fn pending_sends(&self) -> &[(NodeId, MsgKind, DomMsg)] {
            &self.outbox
        }
        fn set_timer(&mut self, delay: u64, token: u64) {
            self.timers.push((delay, token));
        }
    }

    #[test]
    fn trait_is_object_and_impl_safe() {
        let mut t = Loopback {
            tick: SimTime(7),
            outbox: Vec::new(),
            timers: Vec::new(),
        };
        assert_eq!(Transport::now(&t), SimTime(7));
        t.send(
            NodeId(2),
            MsgKind::Control,
            DomMsg::CatchUp {
                object: ObjectId(1),
            },
        );
        assert_eq!(t.pending_sends().len(), 1);
        assert_eq!(t.pending_sends()[0].0, NodeId(2));
        t.set_timer(5, 99);
        assert_eq!(t.timers, vec![(5, 99)]);
    }
}

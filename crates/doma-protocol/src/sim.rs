//! The protocol driver: executes a schedule on a simulated cluster.

use crate::node::{AdaptiveAlgo, OBJECT};
use crate::planner::ClientPlanner;
use crate::{DomMsg, DomNode, ProtocolConfig};
use doma_core::{
    CostVector, Decision, DomaError, MultiRequest, MultiSchedule, ObjectId, OnlineDom, ProcSet,
    ProcessorId, Request, Result, Schedule,
};
use doma_sim::{Engine, EngineConfig, NodeId};
use doma_storage::Version;
use std::collections::BTreeMap;

/// A driver-side decision oracle for [`ProtocolConfig::Adaptive`]
/// objects: any online DOM algorithm that can be deep-copied for cluster
/// forks. Blanket-implemented for every `Clone` [`OnlineDom`], so the
/// promoted baselines and tournament contenders all qualify as-is.
pub trait PlanOracle: OnlineDom + Send {
    /// Deep copy (object-safe stand-in for `Clone`), used by
    /// [`ProtocolSim::fork`] so a model checker's speculative branches
    /// advance independent oracle states.
    fn clone_box(&self) -> Box<dyn PlanOracle>;
}

impl<T: OnlineDom + Clone + Send + 'static> PlanOracle for T {
    fn clone_box(&self) -> Box<dyn PlanOracle> {
        Box::new(self.clone())
    }
}

/// The outcome of executing a schedule on the simulated cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Exact resource tallies: control/data messages sent on the wire and
    /// I/O operations performed against the local stores. Directly
    /// comparable to [`doma_core::cost_of_schedule`]'s totals.
    pub cost: CostVector,
    /// Processors holding a *valid* replica after the schedule — the final
    /// allocation scheme.
    pub final_holders: ProcSet,
    /// Completed reads.
    pub reads_completed: u64,
    /// Total read latency in simulator ticks, summed over completed
    /// reads. Kept as an exact integer so merged shard reports can
    /// recompute [`SimReport::mean_read_latency`] with the *same*
    /// division a sequential run performs — bit-identical f64 output.
    pub read_latency_ticks: u64,
    /// Mean read latency in simulator ticks (0 if no reads).
    pub mean_read_latency: f64,
    /// Messages dropped at crashed nodes (0 in failure-free runs).
    pub dropped_messages: u64,
}

/// Response statistics of one concurrent read burst (see
/// [`ProtocolSim::execute_read_burst`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstReport {
    /// Reads completed in the burst.
    pub completed: u64,
    /// Mean response time of the burst's reads, in ticks.
    pub mean_response: f64,
    /// Ticks from injection until the cluster went quiet.
    pub makespan: u64,
    /// Ticks the burst's messages spent queueing for the shared bus
    /// (0 with the point-to-point medium).
    pub bus_queue_wait: u64,
}

/// The outcome of an open-loop run (see
/// [`ProtocolSim::execute_open_loop`]).
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopReport {
    /// Mean read response time in ticks.
    pub mean_response: f64,
    /// Every read's latency, for percentile analysis.
    pub latencies: Vec<u64>,
    /// Total virtual time the run took.
    pub makespan: u64,
    /// Ticks spent queueing for the shared bus during the run.
    pub bus_queue_wait: u64,
}

/// A simulated cluster running SA or DA, fed one request at a time (the
/// schedule is totally ordered by assumption — §3.1).
///
/// ```
/// use doma_protocol::ProtocolSim;
/// use doma_core::{ProcSet, ProcessorId, Schedule};
///
/// // The §2 mobile configuration: base station 0 is the core.
/// let mut sim = ProtocolSim::new_da(5, ProcSet::from_iter([0]), ProcessorId::new(1)).unwrap();
/// let schedule: Schedule = "r2 r2 w3 r2".parse().unwrap();
/// let report = sim.execute(&schedule).unwrap();
/// assert_eq!(report.final_holders, ProcSet::from_iter([0, 2, 3]));
/// ```
pub struct ProtocolSim {
    engine: Engine<DomMsg, DomNode>,
    configs: BTreeMap<ObjectId, ProtocolConfig>,
    n: usize,
    /// Driver-side planning state: write-version counters, the adaptive
    /// [`PlanOracle`]s, and the oracle-tracked schemes. Deterministic: a
    /// pure function of the injected request sequence, so it is excluded
    /// from [`ProtocolSim::fingerprint`] (the model checker varies only
    /// delivery orders of already-planned messages). Shared with the real
    /// runtime via [`crate::ClientPlanner`] — both drivers plan requests
    /// identically by construction.
    planner: ClientPlanner,
    /// The attached obs bundle (set by [`ProtocolSim::attach_obs`]),
    /// kept so request-span tracing can write into its event log.
    obs: Option<doma_obs::Obs>,
    /// Whether [`ProtocolSim::execute_request_on`] brackets each request
    /// in a `protocol.request` span with its exact cost delta — opt-in,
    /// because span records change obs snapshots (and therefore golden
    /// digests). See [`ProtocolSim::enable_request_spans`].
    request_spans: bool,
    /// Monotone per-driver request counter, stamped on request spans.
    request_seq: u64,
}

impl ProtocolSim {
    /// Builds an SA cluster of `n` nodes with fixed scheme `q`.
    pub fn new_sa(n: usize, q: ProcSet) -> Result<Self> {
        Self::new_sa_with(n, q, doma_sim::NetworkConfig::default())
    }

    /// Builds an SA cluster with an explicit network model (e.g. the
    /// shared-bus medium for the contention experiments).
    pub fn new_sa_with(n: usize, q: ProcSet, network: doma_sim::NetworkConfig) -> Result<Self> {
        if q.len() < 2 {
            return Err(DomaError::InvalidConfig("SA requires |Q| >= 2".into()));
        }
        Self::build(n, ProtocolConfig::Sa { q }, network)
    }

    /// Builds a DA cluster of `n` nodes with core `f` and floater `p`.
    pub fn new_da(n: usize, f: ProcSet, p: ProcessorId) -> Result<Self> {
        Self::new_da_with(n, f, p, doma_sim::NetworkConfig::default())
    }

    /// Builds a DA cluster with an explicit network model.
    pub fn new_da_with(
        n: usize,
        f: ProcSet,
        p: ProcessorId,
        network: doma_sim::NetworkConfig,
    ) -> Result<Self> {
        if f.is_empty() || f.contains(p) {
            return Err(DomaError::InvalidConfig(
                "DA requires non-empty F with p outside F".into(),
            ));
        }
        Self::build(n, ProtocolConfig::Da { f, p }, network)
    }

    /// The §2 mobile deployment: `t = 2`, the core is the base station
    /// (processor 0), the floater is processor 1; `n` processors total.
    pub fn mobile(n: usize) -> Result<Self> {
        Self::new_da(n, ProcSet::from_iter([0usize]), ProcessorId::new(1))
    }

    /// Builds a cluster of `n` nodes governed by an adaptive algorithm:
    /// the oracle runs inside the driver, each injected request is decided
    /// by it, and the nodes execute the shipped plans exactly. The
    /// oracle's `t`/initial scheme/name must describe a valid deployment
    /// ([`AdaptiveAlgo::from_name`] must recognize the name).
    pub fn new_adaptive(n: usize, oracle: Box<dyn PlanOracle>) -> Result<Self> {
        let Some(algo) = AdaptiveAlgo::from_name(oracle.name()) else {
            return Err(DomaError::InvalidConfig(format!(
                "unknown adaptive algorithm {:?}",
                oracle.name()
            )));
        };
        let t = oracle.t();
        let initial = oracle.initial_scheme();
        let config = ProtocolConfig::Adaptive { t, initial, algo };
        let mut sim = Self::build(n, config, doma_sim::NetworkConfig::default())?;
        sim.planner.install_oracle(OBJECT, oracle);
        Ok(sim)
    }

    /// Resets every adaptive oracle to its initial state (scheme
    /// included). The failover driver calls this when it broadcasts
    /// `ModeChange { quorum: false }`: the nodes snap their replica sets
    /// back to the initial scheme on that transition, and the oracles
    /// must agree.
    pub fn reset_adaptive_oracles(&mut self) {
        self.planner.reset_oracles();
    }

    /// Whether any object in the catalog is governed by an adaptive
    /// oracle.
    pub fn has_adaptive(&self) -> bool {
        self.planner.has_oracles()
    }

    /// Builds an SA cluster whose nodes have a memory cache of
    /// `cache_capacity` objects (0 = the paper's no-cache model). For the
    /// E16 cache-sensitivity ablation.
    pub fn new_sa_cached(n: usize, q: ProcSet, cache_capacity: usize) -> Result<Self> {
        if q.len() < 2 {
            return Err(DomaError::InvalidConfig("SA requires |Q| >= 2".into()));
        }
        Self::build_cached(
            n,
            ProtocolConfig::Sa { q },
            doma_sim::NetworkConfig::default(),
            cache_capacity,
        )
    }

    /// Builds a DA cluster whose nodes have a memory cache of
    /// `cache_capacity` objects (0 = the paper's no-cache model).
    pub fn new_da_cached(
        n: usize,
        f: ProcSet,
        p: ProcessorId,
        cache_capacity: usize,
    ) -> Result<Self> {
        if f.is_empty() || f.contains(p) {
            return Err(DomaError::InvalidConfig(
                "DA requires non-empty F with p outside F".into(),
            ));
        }
        Self::build_cached(
            n,
            ProtocolConfig::Da { f, p },
            doma_sim::NetworkConfig::default(),
            cache_capacity,
        )
    }

    fn build(n: usize, config: ProtocolConfig, network: doma_sim::NetworkConfig) -> Result<Self> {
        Self::build_cached(n, config, network, 0)
    }

    fn build_cached(
        n: usize,
        config: ProtocolConfig,
        network: doma_sim::NetworkConfig,
        cache_capacity: usize,
    ) -> Result<Self> {
        let mut configs = BTreeMap::new();
        configs.insert(OBJECT, config);
        Self::build_catalog(n, configs, network, cache_capacity)
    }

    /// Builds a cluster serving a whole catalog of objects, each with its
    /// own SA/DA configuration (the multi-object extension; per-object
    /// costs are independent, and the integration tests verify the
    /// protocol's tallies match the analytic multi-object allocator).
    pub fn new_catalog(n: usize, configs: BTreeMap<ObjectId, ProtocolConfig>) -> Result<Self> {
        Self::build_catalog(n, configs, doma_sim::NetworkConfig::default(), 0)
    }

    fn build_catalog(
        n: usize,
        configs: BTreeMap<ObjectId, ProtocolConfig>,
        network: doma_sim::NetworkConfig,
        cache_capacity: usize,
    ) -> Result<Self> {
        if n == 0 || n > doma_core::MAX_PROCESSORS {
            return Err(DomaError::InvalidConfig(format!("bad cluster size {n}")));
        }
        if configs.is_empty() {
            return Err(DomaError::InvalidConfig("empty object catalog".into()));
        }
        for (object, config) in &configs {
            if !config.initial_scheme().is_subset(ProcSet::universe(n)) {
                return Err(DomaError::InvalidConfig(format!(
                    "initial scheme of {object} outside the cluster"
                )));
            }
            match config {
                ProtocolConfig::Sa { q } if q.len() < 2 => {
                    return Err(DomaError::InvalidConfig(format!(
                        "{object}: SA requires |Q| >= 2"
                    )));
                }
                ProtocolConfig::Da { f, p } if f.is_empty() || f.contains(*p) => {
                    return Err(DomaError::InvalidConfig(format!(
                        "{object}: DA requires non-empty F with p outside F"
                    )));
                }
                ProtocolConfig::Adaptive { t, initial, .. } if *t == 0 || initial.len() < *t => {
                    return Err(DomaError::InvalidConfig(format!(
                        "{object}: adaptive config requires 1 <= t <= |initial scheme|"
                    )));
                }
                _ => {}
            }
        }
        let mut engine = Engine::new(EngineConfig {
            max_events: 1_000_000,
            network,
        });
        for i in 0..n {
            engine.add_node(DomNode::with_catalog(
                ProcessorId::new(i),
                n,
                configs.clone(),
                cache_capacity,
            ));
        }
        let planner = ClientPlanner::new(n, configs.keys().copied());
        Ok(ProtocolSim {
            engine,
            configs,
            n,
            planner,
            obs: None,
            request_spans: false,
            request_seq: 0,
        })
    }

    /// The configuration of object 0 (the single-object constructors'
    /// object).
    pub fn config(&self) -> &ProtocolConfig {
        &self.configs[&OBJECT]
    }

    /// The full object catalog.
    pub fn catalog(&self) -> &BTreeMap<ObjectId, ProtocolConfig> {
        &self.configs
    }

    /// Access to the underlying engine (failure injection, inspection).
    pub fn engine_mut(&mut self) -> &mut Engine<DomMsg, DomNode> {
        &mut self.engine
    }

    /// Read-only access to the underlying engine.
    pub fn engine_ref(&self) -> &Engine<DomMsg, DomNode> {
        &self.engine
    }

    /// Attaches a message trace (bounded to `capacity` records) and
    /// returns the handle; every subsequent delivery/drop is recorded with
    /// a human-readable label.
    pub fn attach_tracer(&mut self, capacity: usize) -> doma_sim::TraceHandle {
        let trace = doma_sim::TraceHandle::new(capacity);
        self.engine.set_tracer(trace.clone(), DomMsg::label);
        trace
    }

    /// Attaches a message trace that records into an existing event log
    /// (typically [`doma_obs::Obs::events`]), so message deliveries
    /// interleave with the engine's lifecycle events and the protocol's
    /// spans in one choreography log.
    pub fn attach_tracer_on(&mut self, log: doma_obs::EventLog) -> doma_sim::TraceHandle {
        let trace = doma_sim::TraceHandle::on(log);
        self.engine.set_tracer(trace.clone(), DomMsg::label);
        trace
    }

    /// Attaches a fresh observability bundle (event log bounded to
    /// `event_capacity` records) to the engine and every node, and
    /// returns it. The engine contributes send/drop/lifecycle tallies
    /// (`sim.*`); each node contributes its cost breakdown
    /// (`protocol.cost.*` by algo/node/op), quorum spans and join/mode
    /// events. Summed over all label sets, `protocol.cost.control`,
    /// `.data` and `.io` equal [`ProtocolSim::report`]'s exact cost
    /// vector (call [`ProtocolSim::obs_flush`] first if a harness drove
    /// recovery outside message dispatch). Forks ([`ProtocolSim::fork`])
    /// do not carry the attachment.
    pub fn attach_obs(&mut self, event_capacity: usize) -> doma_obs::Obs {
        let obs = doma_obs::Obs::new(event_capacity);
        self.engine.set_obs(obs.clone());
        for i in 0..self.n {
            self.engine.actor_mut(NodeId(i)).set_obs(obs.clone());
        }
        self.obs = Some(obs.clone());
        obs
    }

    /// Turns on per-request causal spans: every subsequent
    /// [`ProtocolSim::execute_request_on`] call brackets its work between
    /// a `protocol.request` span enter/exit pair in the attached obs
    /// event log, records the adaptive oracle's decision as a
    /// `protocol.plan` point event, and emits one `protocol.request_cost`
    /// point event carrying the request's *exact* control/data/io delta
    /// (execution is strictly one-request-at-a-time, so the deltas
    /// telescope to the schedule total). Combine with
    /// [`ProtocolSim::attach_tracer_on`] over the same log so message
    /// deliveries land inside the span window —
    /// [`doma_obs::trace::TraceModel`] then reconstructs per-request
    /// critical paths. No-op until [`ProtocolSim::attach_obs`] is called.
    /// Opt-in because span records change obs snapshots (and therefore
    /// scenario golden digests).
    pub fn enable_request_spans(&mut self) {
        self.request_spans = true;
    }

    /// Opens the per-request span and captures the pre-request cost
    /// tallies; `None` unless spans are enabled and obs is attached.
    fn request_span_enter(
        &mut self,
        object: ObjectId,
        request: Request,
    ) -> Option<(doma_obs::SpanId, u64, CostVector)> {
        if !self.request_spans {
            return None;
        }
        let before = self.report().cost;
        let seq = self.request_seq;
        self.request_seq += 1;
        let obs = self.obs.as_ref()?;
        let id = obs.events().span_enter(
            self.engine.now().ticks(),
            "protocol.request",
            vec![
                ("issuer".to_string(), request.issuer.to_string()),
                ("object".to_string(), object.to_string()),
                (
                    "op".to_string(),
                    if request.is_read() { "read" } else { "write" }.to_string(),
                ),
                ("req".to_string(), seq.to_string()),
            ],
        );
        Some((id, seq, before))
    }

    /// Emits the request's exact cost delta and closes its span.
    fn request_span_exit(&mut self, span: Option<(doma_obs::SpanId, u64, CostVector)>) {
        let Some((id, seq, before)) = span else {
            return;
        };
        let after = self.report().cost;
        let Some(obs) = self.obs.as_ref() else {
            return;
        };
        let now = self.engine.now().ticks();
        obs.events().record(
            now,
            "protocol.request_cost",
            vec![
                (
                    "control".to_string(),
                    after.control.saturating_sub(before.control).to_string(),
                ),
                (
                    "data".to_string(),
                    after.data.saturating_sub(before.data).to_string(),
                ),
                (
                    "io".to_string(),
                    after.io.saturating_sub(before.io).to_string(),
                ),
                ("req".to_string(), seq.to_string()),
            ],
        );
        obs.events().span_exit(id, now);
    }

    /// Flushes per-node observability cursors: I/O performed outside
    /// message dispatch (direct [`DomNode::recover_from_log`] calls by
    /// harnesses) is attributed to op `other`, after which the
    /// registry's summed `protocol.cost.*` equals
    /// [`ProtocolSim::report`]'s cost vector exactly.
    pub fn obs_flush(&mut self) {
        for i in 0..self.n {
            self.engine.actor_mut(NodeId(i)).obs_flush();
        }
    }

    /// Executes one request against object 0 to quiescence.
    pub fn execute_request(&mut self, request: Request) -> Result<()> {
        self.execute_request_on(OBJECT, request)
    }

    /// Executes one request against `object` to quiescence. With
    /// [`ProtocolSim::enable_request_spans`] on, the work is bracketed
    /// in a `protocol.request` span carrying the exact cost delta.
    pub fn execute_request_on(&mut self, object: ObjectId, request: Request) -> Result<()> {
        let span = self.request_span_enter(object, request);
        let result = self
            .inject_request_on(object, request)
            .and_then(|_| self.run_settle());
        self.request_span_exit(span);
        result.map(|_| ())
    }

    /// Injects one request against object 0 *without* running the cluster
    /// — the model checker's entry point: it then steps individual
    /// deliveries via [`ProtocolSim::dispatch_by_seq`]. Returns the
    /// injected client event's engine sequence number.
    pub fn inject_request(&mut self, request: Request) -> Result<u64> {
        self.inject_request_on(OBJECT, request)
    }

    /// Injects one request against `object` without running the cluster.
    /// Returns the injected client event's engine sequence number.
    pub fn inject_request_on(&mut self, object: ObjectId, request: Request) -> Result<u64> {
        let planned = self.planner.plan(object, request)?;
        self.record_plan_event(object, request, planned.decision);
        Ok(self.engine.inject(planned.to, 1, planned.msg))
    }

    /// Records an oracle's decision as a `protocol.plan` obs event —
    /// request-span tracing only, because event records change obs
    /// snapshots (and therefore scenario golden digests).
    fn record_plan_event(&self, object: ObjectId, request: Request, decision: Option<Decision>) {
        let Some(decision) = decision else { return };
        if !self.request_spans {
            return;
        }
        let Some(obs) = self.obs.as_ref() else { return };
        obs.events().record(
            self.engine.now().ticks(),
            "protocol.plan",
            vec![
                (
                    "decision".to_string(),
                    format!("exec={} saving={}", decision.exec, decision.saving),
                ),
                ("object".to_string(), object.to_string()),
                (
                    "op".to_string(),
                    if request.is_read() { "read" } else { "write" }.to_string(),
                ),
            ],
        );
    }

    /// Drains the event queue, surfacing the engine's event-budget valve
    /// as an error instead of a panic.
    fn run_settle(&mut self) -> Result<u64> {
        let dispatched = self.engine.run_until_idle();
        if self.engine.budget_exhausted() {
            return Err(DomaError::EventBudgetExceeded { dispatched });
        }
        Ok(dispatched)
    }

    /// Runs the cluster to quiescence (after [`ProtocolSim::inject_request`]
    /// or fault scheduling), surfacing a tripped event budget as
    /// [`DomaError::EventBudgetExceeded`].
    pub fn settle(&mut self) -> Result<u64> {
        self.run_settle()
    }

    /// Every queued event as a model-checker choice point, labelled with
    /// the wire message it would deliver. See
    /// [`doma_sim::Engine::pending_events`].
    pub fn pending_events(&self) -> Vec<doma_sim::PendingEvent> {
        self.engine.pending_events(DomMsg::label)
    }

    /// Dispatches the queued event with the given engine sequence number
    /// (out of natural order if the checker says so). Returns `false` if
    /// no such event is queued or the event budget is exhausted.
    pub fn dispatch_by_seq(&mut self, seq: u64) -> bool {
        self.engine.dispatch_by_seq(seq)
    }

    /// Deep-copies the whole cluster: nodes, stores, in-flight messages,
    /// clocks and tallies. Forks are fully independent; engine sequence
    /// numbers continue from the same counter, so the same
    /// [`ProtocolSim::dispatch_by_seq`] calls on two forks take the same
    /// transitions — the property the model checker's search relies on.
    pub fn fork(&self) -> Self {
        let mut engine = self.engine.fork();
        // The engine's own obs attachment is not carried by its fork;
        // the cloned actors still hold theirs (shared counter handles).
        // Strip them: a model checker's speculative work must not tally
        // into the live registry.
        for i in 0..self.n {
            engine.actor_mut(NodeId(i)).clear_obs();
        }
        ProtocolSim {
            engine,
            configs: self.configs.clone(),
            n: self.n,
            planner: self.planner.fork(),
            // Forks don't carry the obs attachment (see above); span
            // tracing restarts disabled, but the sequence continues so
            // fork-recorded spans (if re-enabled) stay distinguishable.
            obs: None,
            request_spans: false,
            request_seq: self.request_seq,
        }
    }

    /// A hash of the cluster's semantic state: every node's
    /// [`DomNode::fingerprint`], liveness, and the multiset of in-flight
    /// messages (by content, not schedule position). States reached along
    /// different delivery orders fingerprint equal iff no node nor the
    /// network can distinguish them.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        for i in 0..self.n {
            let id = NodeId(i);
            self.engine.actor(id).fingerprint().hash(&mut h);
            self.engine.is_alive(id).hash(&mut h);
        }
        let mut queued: Vec<u64> = self
            .pending_events()
            .iter()
            .map(|p| p.content_hash())
            .collect();
        queued.sort_unstable();
        queued.hash(&mut h);
        h.finish()
    }

    /// Installs reverted-fix switches on every node (regression tests
    /// only — see [`crate::BugSwitches`]).
    #[doc(hidden)]
    pub fn set_bug_switches(&mut self, bugs: crate::BugSwitches) {
        for i in 0..self.n {
            self.engine.actor_mut(NodeId(i)).set_bug_switches(bugs);
        }
    }

    /// Open-loop execution: injects the schedule's requests at a fixed
    /// arrival `interval` (in ticks) *without* waiting for each to finish.
    /// Runs of consecutive reads overlap freely (legal — §3.1 allows reads
    /// between consecutive writes to execute concurrently); a write acts
    /// as a barrier: the cluster quiesces before and after it, preserving
    /// the total order of writes the model assumes.
    ///
    /// Returns per-read latencies so callers can compute percentiles —
    /// this is the "load → contention → response time" experiment of the
    /// paper's introduction, in its general form.
    pub fn execute_open_loop(
        &mut self,
        schedule: &Schedule,
        interval: u64,
    ) -> Result<OpenLoopReport> {
        let lat_before: Vec<usize> = (0..self.n)
            .map(|i| self.engine.actor(NodeId(i)).read_latencies().len())
            .collect();
        let wait_before = self.engine.bus_queue_wait();
        let start = self.engine.now();
        let mut pending_offset = 0u64;
        for request in schedule.iter() {
            if request.issuer.index() >= self.n {
                return Err(DomaError::InvalidConfig(format!(
                    "request {request} outside cluster of {}",
                    self.n
                )));
            }
            if request.is_read() {
                pending_offset += interval;
                let planned = self.planner.plan(OBJECT, request)?;
                self.record_plan_event(OBJECT, request, planned.decision);
                self.engine.inject(planned.to, pending_offset, planned.msg);
            } else {
                // Barrier: drain the in-flight reads, then the write.
                self.run_settle()?;
                pending_offset = 0;
                self.execute_request(request)?;
            }
        }
        self.run_settle()?;
        let mut latencies = Vec::new();
        #[allow(clippy::needless_range_loop)] // i is both NodeId and index
        for i in 0..self.n {
            latencies
                .extend_from_slice(&self.engine.actor(NodeId(i)).read_latencies()[lat_before[i]..]);
        }
        let mean = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
        };
        Ok(OpenLoopReport {
            mean_response: mean,
            latencies,
            makespan: self.engine.now().ticks().saturating_sub(start.ticks()),
            bus_queue_wait: self.engine.bus_queue_wait() - wait_before,
        })
    }

    /// Executes an interleaved multi-object schedule to quiescence.
    pub fn execute_multi(&mut self, schedule: &MultiSchedule) -> Result<SimReport> {
        for MultiRequest { object, request } in schedule.requests() {
            self.execute_request_on(*object, *request)?;
        }
        Ok(self.report())
    }

    /// Injects simultaneous reads of object 0 from all `readers` — see
    /// [`ProtocolSim::execute_read_burst_on`].
    pub fn execute_read_burst(&mut self, readers: &[ProcessorId]) -> Result<BurstReport> {
        self.execute_read_burst_on(OBJECT, readers)
    }

    /// Injects simultaneous reads of `object` from all `readers` (legal
    /// under the model — reads between consecutive writes may execute
    /// concurrently, §3.1) and runs to quiescence. Returns the burst's
    /// response statistics — the quantity the introduction's
    /// Ethernet-contention argument is about.
    pub fn execute_read_burst_on(
        &mut self,
        object: ObjectId,
        readers: &[ProcessorId],
    ) -> Result<BurstReport> {
        if !self.configs.contains_key(&object) {
            return Err(DomaError::InvalidConfig(format!(
                "object {object} not in the cluster catalog"
            )));
        }
        for reader in readers {
            if reader.index() >= self.n {
                return Err(DomaError::InvalidConfig(format!(
                    "reader {reader} outside cluster of {}",
                    self.n
                )));
            }
        }
        let before = self.report();
        let wait_before = self.engine.bus_queue_wait();
        let start = self.engine.now();
        for reader in readers {
            let request = Request::read(*reader);
            let planned = self.planner.plan(object, request)?;
            self.record_plan_event(object, request, planned.decision);
            self.engine.inject(planned.to, 1, planned.msg);
        }
        self.run_settle()?;
        let after = self.report();
        let completed = after.reads_completed - before.reads_completed;
        let latency = after.read_latency_ticks - before.read_latency_ticks;
        Ok(BurstReport {
            completed,
            mean_response: if completed > 0 {
                latency as f64 / completed as f64
            } else {
                0.0
            },
            makespan: self.engine.now().ticks().saturating_sub(start.ticks() + 1),
            bus_queue_wait: self.engine.bus_queue_wait() - wait_before,
        })
    }

    /// Executes a whole schedule to quiescence and reports exact tallies.
    pub fn execute(&mut self, schedule: &Schedule) -> Result<SimReport> {
        for request in schedule.iter() {
            self.execute_request(request)?;
        }
        Ok(self.report())
    }

    /// The current report (tallies since construction).
    pub fn report(&self) -> SimReport {
        let net = self.engine.net_stats().snapshot();
        let mut io = 0u64;
        let mut holders = ProcSet::EMPTY;
        let mut reads = 0u64;
        let mut latency = 0u64;
        for i in 0..self.n {
            let node = self.engine.actor(NodeId(i));
            io += node.io_stats().total();
            if node.holds_valid() {
                holders.insert(ProcessorId::new(i));
            }
            let (r, l) = node.read_metrics();
            reads += r;
            latency += l;
        }
        SimReport {
            cost: CostVector::new(net.control_sent, net.data_sent, io),
            final_holders: holders,
            reads_completed: reads,
            read_latency_ticks: latency,
            mean_read_latency: if reads > 0 {
                latency as f64 / reads as f64
            } else {
                0.0
            },
            dropped_messages: net.dropped,
        }
    }

    /// Aggregate memory-cache counters across all nodes (zeros when
    /// caching is disabled).
    pub fn cache_stats(&self) -> doma_storage::CacheStats {
        let mut total = doma_storage::CacheStats::default();
        for i in 0..self.n {
            let s = self.engine.actor(NodeId(i)).cache_stats();
            total.hits += s.hits;
            total.misses += s.misses;
        }
        total
    }

    /// The highest version of object 0 written so far (INITIAL if none).
    pub fn latest_version(&self) -> Version {
        self.planner.latest_version(OBJECT)
    }

    /// The set of nodes whose stores hold the given version of object 0
    /// *validly*.
    pub fn holders_of(&self, version: Version) -> ProcSet {
        let mut holders = ProcSet::EMPTY;
        for i in 0..self.n {
            let node = self.engine.actor(NodeId(i));
            if node.holds_valid() && node.replica_version() == Some(version) {
                holders.insert(ProcessorId::new(i));
            }
        }
        holders
    }

    /// The set of nodes holding a valid replica of `object`.
    pub fn valid_holders_of(&self, object: ObjectId) -> ProcSet {
        let mut holders = ProcSet::EMPTY;
        for i in 0..self.n {
            if self.engine.actor(NodeId(i)).holds_valid_of(object) {
                holders.insert(ProcessorId::new(i));
            }
        }
        holders
    }

    /// Convenience for tests: the object id used by the cluster.
    pub fn object() -> doma_core::ObjectId {
        OBJECT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doma_algorithms::{DynamicAllocation, StaticAllocation};
    use doma_core::run_online;

    fn ps(v: &[usize]) -> ProcSet {
        v.iter().copied().collect()
    }

    #[test]
    fn construction_validation() {
        assert!(ProtocolSim::new_sa(4, ps(&[0])).is_err());
        assert!(ProtocolSim::new_sa(0, ps(&[0, 1])).is_err());
        assert!(ProtocolSim::new_sa(3, ps(&[0, 5])).is_err());
        assert!(ProtocolSim::new_da(4, ProcSet::EMPTY, ProcessorId::new(1)).is_err());
        assert!(ProtocolSim::new_da(4, ps(&[1]), ProcessorId::new(1)).is_err());
        assert!(ProtocolSim::new_sa(4, ps(&[0, 1])).is_ok());
    }

    #[test]
    fn rejects_requests_outside_cluster() {
        let mut sim = ProtocolSim::new_sa(3, ps(&[0, 1])).unwrap();
        assert!(sim.execute_request(Request::read(7usize)).is_err());
    }

    /// The headline integration property: the simulated protocol's exact
    /// tallies equal the analytic cost engine's, message for message.
    #[test]
    fn sa_tallies_match_analytic_cost_engine() {
        let schedule: Schedule = "r2 r0 w3 r1 w0 r3 r3 w2 r2".parse().unwrap();
        let mut sim = ProtocolSim::new_sa(4, ps(&[0, 1])).unwrap();
        let report = sim.execute(&schedule).unwrap();

        let mut sa = StaticAllocation::new(ps(&[0, 1])).unwrap();
        let analytic = run_online(&mut sa, &schedule).unwrap();
        assert_eq!(report.cost, analytic.costed.total);
        assert_eq!(report.final_holders, analytic.costed.final_scheme);
        assert_eq!(report.dropped_messages, 0);
    }

    #[test]
    fn da_tallies_match_analytic_cost_engine() {
        let schedule: Schedule = "r2 r2 w3 r2 r1 w0 r3 w2 r0 r2 w1 r3".parse().unwrap();
        let mut sim = ProtocolSim::new_da(4, ps(&[0]), ProcessorId::new(1)).unwrap();
        let report = sim.execute(&schedule).unwrap();

        let mut da = DynamicAllocation::new(ps(&[0]), ProcessorId::new(1)).unwrap();
        let analytic = run_online(&mut da, &schedule).unwrap();
        assert_eq!(report.cost, analytic.costed.total);
        assert_eq!(report.final_holders, analytic.costed.final_scheme);
    }

    #[test]
    fn da_with_larger_core_matches_too() {
        let schedule: Schedule = "r4 w2 r4 r4 w4 r0 r3 w3 r4".parse().unwrap();
        let mut sim = ProtocolSim::new_da(5, ps(&[0, 1]), ProcessorId::new(2)).unwrap();
        let report = sim.execute(&schedule).unwrap();

        let mut da = DynamicAllocation::new(ps(&[0, 1]), ProcessorId::new(2)).unwrap();
        let analytic = run_online(&mut da, &schedule).unwrap();
        assert_eq!(report.cost, analytic.costed.total);
        assert_eq!(report.final_holders, analytic.costed.final_scheme);
    }

    #[test]
    fn reads_always_observe_latest_version() {
        // Linearizability at the schedule level: after each write, every
        // subsequent read (anywhere) returns the new version.
        let mut sim = ProtocolSim::new_da(4, ps(&[0]), ProcessorId::new(1)).unwrap();
        sim.execute_request(Request::write(3usize)).unwrap();
        let v1 = sim.latest_version();
        sim.execute_request(Request::read(2usize)).unwrap();
        // Reader 2 saved the object: it must hold v1.
        assert!(sim.holders_of(v1).contains(ProcessorId::new(2)));
        sim.execute_request(Request::write(0usize)).unwrap();
        let v2 = sim.latest_version();
        // 2's replica is now stale; holders of v2 are exactly {0, 1}.
        assert_eq!(sim.holders_of(v2), ps(&[0, 1]));
        assert!(!sim.holders_of(v1).contains(ProcessorId::new(2)));
    }

    #[test]
    fn local_reads_have_zero_latency_remote_reads_do_not() {
        let mut sim = ProtocolSim::new_da(4, ps(&[0]), ProcessorId::new(1)).unwrap();
        sim.execute_request(Request::read(0usize)).unwrap(); // local
        let r = sim.report();
        assert_eq!(r.reads_completed, 1);
        assert_eq!(r.mean_read_latency, 0.0);
        sim.execute_request(Request::read(3usize)).unwrap(); // remote
        let r = sim.report();
        assert_eq!(r.reads_completed, 2);
        assert!(r.mean_read_latency > 0.0);
    }

    #[test]
    fn trace_records_the_da_message_choreography() {
        let mut sim = ProtocolSim::new_da(4, ps(&[0]), ProcessorId::new(1)).unwrap();
        let trace = sim.attach_tracer(64);
        // Saving-read by 2, then a core write that must invalidate 2.
        sim.execute_request(Request::read(2usize)).unwrap();
        sim.execute_request(Request::write(0usize)).unwrap();
        let labels: Vec<String> = trace
            .snapshot()
            .iter()
            .map(|r| format!("{}->{} {}", r.from.0, r.to.0, r.label))
            .collect();
        assert_eq!(
            labels,
            vec![
                "2->0 ReadReq(obj0,saving)",
                "0->2 ObjData(obj0,v0)",
                // Deliveries are recorded in arrival order: the control
                // invalidation (latency 1) beats the data propagation
                // (latency 3).
                "0->2 Invalidate(obj0,v1)",
                "0->1 WriteProp(obj0,v1)",
            ],
            "unexpected choreography: {labels:#?}"
        );
        assert_eq!(trace.discarded(), 0);
    }

    #[test]
    fn multi_object_protocol_matches_analytic_sum() {
        use doma_core::{CostVector, MultiSchedule, ObjectId};
        use std::collections::BTreeMap;

        // Three objects under different managers on one 6-node cluster.
        let mut configs = BTreeMap::new();
        configs.insert(
            ObjectId(1),
            ProtocolConfig::Da {
                f: ps(&[0]),
                p: ProcessorId::new(1),
            },
        );
        configs.insert(
            ObjectId(2),
            ProtocolConfig::Da {
                f: ps(&[2]),
                p: ProcessorId::new(3),
            },
        );
        configs.insert(ObjectId(3), ProtocolConfig::Sa { q: ps(&[1, 4]) });

        // Interleaved multi-object traffic.
        let mut multi = MultiSchedule::default();
        for (obj, text) in [
            (1u64, "r4 r4 w5 r4"),
            (2, "w0 r1 r1 w2 r5"),
            (3, "r0 w2 r4 r3"),
        ] {
            let single: Schedule = text.parse().unwrap();
            for r in single.iter() {
                multi.push(ObjectId(obj), r);
            }
        }

        let mut sim = ProtocolSim::new_catalog(6, configs.clone()).unwrap();
        let report = sim.execute_multi(&multi).unwrap();

        // Analytic expectation: per-object independent runs, summed.
        let mut expected = CostVector::ZERO;
        for (object, schedule) in multi.per_object() {
            let analytic = match &configs[&object] {
                ProtocolConfig::Da { f, p } => {
                    let mut da = DynamicAllocation::new(*f, *p).unwrap();
                    doma_core::run_online(&mut da, &schedule).unwrap()
                }
                ProtocolConfig::Sa { q } => {
                    let mut sa = StaticAllocation::new(*q).unwrap();
                    doma_core::run_online(&mut sa, &schedule).unwrap()
                }
                ProtocolConfig::Adaptive { .. } => unreachable!("catalog is SA/DA only"),
            };
            expected += analytic.costed.total;
            assert_eq!(
                sim.valid_holders_of(object),
                analytic.costed.final_scheme,
                "replica set of {object} diverged"
            );
        }
        assert_eq!(report.cost, expected, "multi-object tallies must decompose");
    }

    #[test]
    fn read_burst_targets_the_named_object() {
        use doma_core::ObjectId;
        use std::collections::BTreeMap;
        let mut configs = BTreeMap::new();
        configs.insert(ObjectId(5), ProtocolConfig::Sa { q: ps(&[0, 1]) });
        configs.insert(ObjectId(7), ProtocolConfig::Sa { q: ps(&[2, 3]) });
        let mut sim = ProtocolSim::new_catalog(6, configs).unwrap();
        let burst = sim
            .execute_read_burst_on(ObjectId(7), &[ProcessorId::new(4), ProcessorId::new(5)])
            .unwrap();
        assert_eq!(burst.completed, 2);
        assert!(burst.mean_response > 0.0);
        // Only object 7's replicas served: object 5's holders unchanged,
        // and a burst on an uncatalogued object is rejected.
        assert_eq!(sim.valid_holders_of(ObjectId(5)), ps(&[0, 1]));
        assert!(sim
            .execute_read_burst_on(ObjectId(9), &[ProcessorId::new(0)])
            .is_err());
        assert!(sim
            .execute_read_burst_on(ObjectId(7), &[ProcessorId::new(9)])
            .is_err());
    }

    #[test]
    fn burst_report_is_burst_local() {
        // A prior read must not pollute the burst's mean: the burst delta
        // uses exact tick sums, not back-multiplied means.
        let mut sim = ProtocolSim::new_sa(4, ps(&[0, 1])).unwrap();
        sim.execute_request(Request::read(3usize)).unwrap();
        let before = sim.report();
        assert_eq!(before.reads_completed, 1);
        let burst = sim.execute_read_burst(&[ProcessorId::new(2)]).unwrap();
        assert_eq!(burst.completed, 1);
        let after = sim.report();
        assert_eq!(
            after.read_latency_ticks - before.read_latency_ticks,
            burst.mean_response as u64
        );
    }

    #[test]
    fn catalog_validation() {
        use doma_core::ObjectId;
        use std::collections::BTreeMap;
        assert!(ProtocolSim::new_catalog(4, BTreeMap::new()).is_err());
        let mut bad = BTreeMap::new();
        bad.insert(ObjectId(1), ProtocolConfig::Sa { q: ps(&[0]) });
        assert!(ProtocolSim::new_catalog(4, bad).is_err());
        let mut bad = BTreeMap::new();
        bad.insert(
            ObjectId(1),
            ProtocolConfig::Da {
                f: ps(&[1]),
                p: ProcessorId::new(1),
            },
        );
        assert!(ProtocolSim::new_catalog(4, bad).is_err());
        let mut sim_configs = BTreeMap::new();
        sim_configs.insert(ObjectId(1), ProtocolConfig::Sa { q: ps(&[0, 1]) });
        let mut sim = ProtocolSim::new_catalog(4, sim_configs).unwrap();
        // Requests against uncatalogued objects are rejected.
        assert!(sim
            .execute_request_on(ObjectId(9), Request::read(0usize))
            .is_err());
    }

    #[test]
    fn open_loop_saturates_shared_bus() {
        // 30 reads from rotating outsiders at a 1-tick arrival interval:
        // on point-to-point links the response time stays flat; on a
        // shared bus the queue builds and p95 latency blows up.
        let reads: Schedule = (0..30).map(|k| Request::read(2 + (k % 6))).collect();
        let mut p2p = ProtocolSim::new_sa(8, ps(&[0, 1])).unwrap();
        let a = p2p.execute_open_loop(&reads, 1).unwrap();
        assert_eq!(a.latencies.len(), 30);
        assert_eq!(a.mean_response, 4.0, "no contention on p2p links");
        assert_eq!(a.bus_queue_wait, 0);

        let mut bus =
            ProtocolSim::new_sa_with(8, ps(&[0, 1]), doma_sim::NetworkConfig::shared_bus(1, 3))
                .unwrap();
        let b = bus.execute_open_loop(&reads, 1).unwrap();
        assert_eq!(b.latencies.len(), 30);
        assert!(
            b.mean_response > 3.0 * a.mean_response,
            "arrival rate 1/tick exceeds bus service rate (4 ticks/read): {}",
            b.mean_response
        );
        // The queue builds over the run: the worst latency dwarfs the best.
        let max = *b.latencies.iter().max().unwrap();
        let min = *b.latencies.iter().min().unwrap();
        assert!(max > 5 * min, "queueing growth expected: {min}..{max}");
    }

    #[test]
    fn open_loop_writes_act_as_barriers() {
        // r2 r2 w0 r2: the write invalidates nothing for SA, but must be
        // ordered after the in-flight reads and before the next.
        let schedule: Schedule = "r2 r3 w0 r2".parse().unwrap();
        let mut sim = ProtocolSim::new_sa(5, ps(&[0, 1])).unwrap();
        let report = sim.execute_open_loop(&schedule, 2).unwrap();
        assert_eq!(report.latencies.len(), 3);
        // Tallies equal the closed-loop run of the same schedule: the
        // open loop changes timing, never message/I/O counts.
        let mut closed = ProtocolSim::new_sa(5, ps(&[0, 1])).unwrap();
        let closed_report = closed.execute(&schedule).unwrap();
        assert_eq!(sim.report().cost, closed_report.cost);
    }

    #[test]
    fn open_loop_under_slow_arrivals_matches_closed_loop_latency() {
        // With arrivals far slower than service, open loop == closed loop.
        let reads: Schedule = (0..10).map(|k| Request::read(2 + (k % 3))).collect();
        let mut bus =
            ProtocolSim::new_sa_with(8, ps(&[0, 1]), doma_sim::NetworkConfig::shared_bus(1, 3))
                .unwrap();
        let r = bus.execute_open_loop(&reads, 100).unwrap();
        assert_eq!(r.mean_response, 4.0, "no queueing at low load");
    }

    #[test]
    fn read_burst_contends_on_bus_but_not_point_to_point() {
        let readers: Vec<ProcessorId> = (2..8).map(ProcessorId::new).collect();

        // Point-to-point: every remote read completes in cc + cd ticks,
        // regardless of burst size.
        let mut p2p = ProtocolSim::new_sa(8, ps(&[0, 1])).unwrap();
        let r = p2p.execute_read_burst(&readers).unwrap();
        assert_eq!(r.completed, 6);
        assert_eq!(r.mean_response, 4.0);
        assert_eq!(r.bus_queue_wait, 0);

        // Shared bus: the six requests and six replies serialize.
        let mut bus =
            ProtocolSim::new_sa_with(8, ps(&[0, 1]), doma_sim::NetworkConfig::shared_bus(1, 3))
                .unwrap();
        let r = bus.execute_read_burst(&readers).unwrap();
        assert_eq!(r.completed, 6);
        assert!(
            r.mean_response > 4.0,
            "bus contention must raise response time, got {}",
            r.mean_response
        );
        assert!(r.bus_queue_wait > 0);
        assert!(r.makespan >= 6 * (1 + 3), "24 ticks of serialized traffic");
    }

    #[test]
    fn da_second_burst_is_contention_free() {
        // First burst: everyone joins via saving-reads (pays contention).
        // Second burst: all reads are local — zero response time even on
        // a saturated bus. This is DA's answer to the intro's Ethernet
        // argument.
        let readers: Vec<ProcessorId> = (2..8).map(ProcessorId::new).collect();
        let mut bus = ProtocolSim::new_da_with(
            8,
            ps(&[0]),
            ProcessorId::new(1),
            doma_sim::NetworkConfig::shared_bus(1, 3),
        )
        .unwrap();
        let first = bus.execute_read_burst(&readers).unwrap();
        assert!(first.mean_response > 4.0);
        let second = bus.execute_read_burst(&readers).unwrap();
        assert_eq!(second.completed, 6);
        assert_eq!(second.mean_response, 0.0);
        assert_eq!(second.bus_queue_wait, 0);
    }

    #[test]
    fn burst_rejects_unknown_readers() {
        let mut sim = ProtocolSim::new_sa(4, ps(&[0, 1])).unwrap();
        assert!(sim.execute_read_burst(&[ProcessorId::new(9)]).is_err());
    }

    #[test]
    fn obs_registry_decomposes_the_exact_tallies() {
        let schedule: Schedule = "r2 r2 w3 r2 r1 w0 r3 w2 r0".parse().unwrap();
        let mut sim = ProtocolSim::new_da(4, ps(&[0]), ProcessorId::new(1)).unwrap();
        let obs = sim.attach_obs(512);
        let report = sim.execute(&schedule).unwrap();
        sim.obs_flush();
        let snap = obs.metrics().snapshot();
        // The headline property, extended to the registry: the summed
        // per-(algo,node,op) breakdown equals the exact cost vector.
        assert_eq!(
            snap.sum_counters("protocol", "cost.control"),
            report.cost.control
        );
        assert_eq!(snap.sum_counters("protocol", "cost.data"), report.cost.data);
        assert_eq!(snap.sum_counters("protocol", "cost.io"), report.cost.io);
        // The engine-level send tallies agree with the protocol-level
        // decomposition (both count every ctx.send exactly once).
        assert_eq!(
            snap.counter("sim", "msgs_sent", &[("kind", "control")]),
            report.cost.control
        );
        assert_eq!(
            snap.counter("sim", "msgs_sent", &[("kind", "data")]),
            report.cost.data
        );
        // Save-reads are DA's signature op class: the breakdown shows
        // them (outsider r2 joins via a saving read).
        assert!(
            snap.metrics
                .keys()
                .any(|k| k.name == "cost.data" && k.label("op") == Some("save-read")),
            "expected a save-read data cell, got {snap}"
        );
        // Join-list growth surfaced as events and counters.
        assert!(snap.sum_counters("protocol", "joins") > 0);
        assert!(obs
            .events()
            .snapshot()
            .iter()
            .any(|e| e.name == "protocol.join"));
    }

    #[test]
    fn forks_do_not_tally_into_the_live_registry() {
        let mut sim = ProtocolSim::new_da(4, ps(&[0]), ProcessorId::new(1)).unwrap();
        let obs = sim.attach_obs(64);
        sim.execute_request(Request::read(2usize)).unwrap();
        let before = obs.metrics().snapshot();
        let mut fork = sim.fork();
        fork.execute_request(Request::read(3usize)).unwrap();
        fork.execute_request(Request::write(0usize)).unwrap();
        assert_eq!(obs.metrics().snapshot(), before, "fork leaked tallies");
        // The original keeps tallying after the fork.
        sim.execute_request(Request::read(3usize)).unwrap();
        assert!(
            obs.metrics()
                .snapshot()
                .sum_counters("protocol", "cost.control")
                > before.sum_counters("protocol", "cost.control")
        );
    }

    #[test]
    fn quorum_reads_open_and_close_spans() {
        let mut sim = ProtocolSim::new_da(4, ps(&[0]), ProcessorId::new(1)).unwrap();
        let obs = sim.attach_obs(256);
        for i in 0..4 {
            sim.engine_mut()
                .inject(NodeId(i), 1, DomMsg::ModeChange { quorum: true });
        }
        sim.settle().unwrap();
        sim.execute_request(Request::read(2usize)).unwrap();
        let events = obs.events().snapshot();
        let enters = events
            .iter()
            .filter(|e| {
                e.name == "protocol.quorum" && matches!(e.phase, doma_obs::EventPhase::Enter)
            })
            .count();
        let exits = events
            .iter()
            .filter(|e| {
                e.name == "protocol.quorum" && matches!(e.phase, doma_obs::EventPhase::Exit { .. })
            })
            .count();
        assert!(enters >= 1, "expected a quorum span, got {events:#?}");
        assert_eq!(enters, exits, "every quorum span must close: {events:#?}");
        let snap = obs.metrics().snapshot();
        assert_eq!(snap.sum_counters("protocol", "mode_changes"), 4);
        assert_eq!(
            snap.sum_counters("protocol", "quorum_rounds"),
            enters as u64
        );
    }

    /// The headline parity property extended to the adaptive algorithms:
    /// the plan-executing protocol's exact tallies equal the analytic
    /// cost engine's run of the *same* algorithm, message for message.
    fn check_adaptive_parity<A>(algo: A, schedule: &Schedule)
    where
        A: doma_core::OnlineDom + Clone + Send + 'static,
    {
        let mut analytic_algo = algo.clone();
        let name = analytic_algo.name().to_string();
        let n = 6;
        let mut sim = ProtocolSim::new_adaptive(n, Box::new(algo)).unwrap();
        let report = sim.execute(schedule).unwrap();
        let analytic = run_online(&mut analytic_algo, schedule).unwrap();
        assert_eq!(
            report.cost, analytic.costed.total,
            "{name}: protocol tallies diverged from the analytic engine"
        );
        assert_eq!(
            report.final_holders, analytic.costed.final_scheme,
            "{name}: final replica set diverged from the analytic scheme"
        );
        assert_eq!(report.dropped_messages, 0);
    }

    #[test]
    fn adaptive_tallies_match_analytic_cost_engine() {
        use doma_algorithms::{
            ClusteredAllocation, CostOblivious, MobileMirror, SlidingWindowConvergent,
            WriteInvalidateCache,
        };
        let schedule: Schedule = "r2 r2 w3 r2 r1 w0 r3 w2 r0 r2 w1 r3 r4 r4 w4 r1 r5 w5 r5 r0"
            .parse()
            .unwrap();
        let initial = ps(&[0, 1]);
        check_adaptive_parity(
            SlidingWindowConvergent::new(6, 2, initial, 8, 4).unwrap(),
            &schedule,
        );
        check_adaptive_parity(WriteInvalidateCache::new(ps(&[0])).unwrap(), &schedule);
        check_adaptive_parity(CostOblivious::new(6, 2, initial, 2).unwrap(), &schedule);
        check_adaptive_parity(MobileMirror::new(6, 2, initial).unwrap(), &schedule);
        check_adaptive_parity(ClusteredAllocation::new(6, 2, initial).unwrap(), &schedule);
    }

    #[test]
    fn adaptive_forks_advance_independent_oracles() {
        use doma_algorithms::MobileMirror;
        let mut sim =
            ProtocolSim::new_adaptive(4, Box::new(MobileMirror::new(4, 2, ps(&[0, 1])).unwrap()))
                .unwrap();
        sim.execute_request(Request::read(2usize)).unwrap();
        let mut fork = sim.fork();
        // Diverge: the fork sees a write, the original another read.
        fork.execute_request(Request::write(3usize)).unwrap();
        sim.execute_request(Request::read(3usize)).unwrap();
        // MobileMirror mirrors on read: both readers joined the
        // original's scheme, which only ever grows on reads.
        assert_eq!(sim.report().final_holders, ps(&[0, 1, 2, 3]));
        // The fork's write collapsed its scheme to the t=2 execution set
        // around the writer (recency keeps the recent reader 2).
        assert_eq!(fork.report().final_holders, ps(&[2, 3]));
        // And the two clusters kept independent version counters.
        assert_eq!(fork.latest_version(), Version(1));
        assert_eq!(sim.latest_version(), Version(0));
    }

    #[test]
    fn adaptive_rejects_unknown_oracle_names() {
        // DA is not an adaptive-plan algorithm: it has its own native
        // protocol, so the constructor refuses to wrap it.
        let da = DynamicAllocation::new(ps(&[0]), ProcessorId::new(1)).unwrap();
        assert!(ProtocolSim::new_adaptive(4, Box::new(da)).is_err());
    }

    #[test]
    fn mobile_constructor_is_base_station_da() {
        let sim = ProtocolSim::mobile(6).unwrap();
        match sim.config() {
            ProtocolConfig::Da { f, p } => {
                assert_eq!(*f, ps(&[0]));
                assert_eq!(*p, ProcessorId::new(1));
            }
            other => panic!("expected DA, got {other:?}"),
        }
    }
}

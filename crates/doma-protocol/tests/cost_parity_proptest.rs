//! Property test (satellite of the fault-injection PR): on random
//! *failure-free* schedules over random cluster shapes, the simulator's
//! [`SimReport::cost`] tallies equal `doma_core::cost_of_schedule` applied
//! to the analytic algorithm's own allocation decisions — message for
//! message, I/O for I/O.
//!
//! This complements the repo-root `protocol_parity_proptest` (fixed
//! configuration, via `run_online`) by randomizing the configuration and
//! calling the cost engine directly, so a drift in either the protocol
//! choreography or the cost table is caught even if `run_online` happens
//! to compensate.
//!
//! Failures print a `DOMA_PROP_SEED=…` replay line via the testkit
//! harness.

use doma_algorithms::{DynamicAllocation, StaticAllocation};
use doma_core::{
    cost_of_schedule, AllocationSchedule, OnlineDom, ProcSet, ProcessorId, Request, Schedule,
};
use doma_protocol::ProtocolSim;
use doma_testkit::property::{self as prop, Gen};
use doma_testkit::rng::Rng;
use doma_testkit::TestRng;

/// One sampled parity case: a cluster size, a scheme (SA's `Q`, or DA's
/// `F` plus floater as the last member), and a schedule over the cluster.
#[derive(Debug, Clone)]
struct Case {
    n: usize,
    scheme: Vec<usize>,
    schedule: Schedule,
}

struct CaseGen;

impl Gen for CaseGen {
    type Value = Case;

    fn generate(&self, rng: &mut TestRng) -> Case {
        let n = prop::range(3usize..8).generate(rng);
        let k = prop::range(2usize..n.min(4) + 1).generate(rng);
        let mut members: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut members);
        members.truncate(k);
        let len = prop::range(0usize..50).generate(rng);
        let requests: Vec<Request> = (0..len)
            .map(|_| {
                let p = prop::range(0usize..n).generate(rng);
                if prop::bools().generate(rng) {
                    Request::read(p)
                } else {
                    Request::write(p)
                }
            })
            .collect();
        Case {
            n,
            scheme: members,
            schedule: Schedule::from_requests(requests),
        }
    }

    fn shrink(&self, v: &Case) -> Vec<Case> {
        // Shrink the schedule only (halve, drop head); the shape is cheap
        // to keep fixed and usually irrelevant to a parity break.
        let requests: Vec<Request> = v.schedule.iter().collect();
        let mut out = Vec::new();
        if !requests.is_empty() {
            for shorter in [
                requests[..requests.len() / 2].to_vec(),
                requests[1..].to_vec(),
            ] {
                out.push(Case {
                    n: v.n,
                    scheme: v.scheme.clone(),
                    schedule: Schedule::from_requests(shorter),
                });
            }
        }
        out
    }
}

/// Replays the algorithm's own decisions through the analytic cost engine.
fn analytic_total<A: OnlineDom>(algo: &mut A, schedule: &Schedule) -> doma_core::CostedSchedule {
    algo.reset();
    let mut alloc = AllocationSchedule::new(algo.initial_scheme());
    for request in schedule.iter() {
        let decision = algo.decide(request);
        alloc.push(request, decision);
    }
    cost_of_schedule(&alloc, algo.t()).expect("online DA/SA schedules are always legal")
}

doma_testkit::property! {
    #[cases(48)]
    /// SA over a random `Q`: simulated tallies == cost_of_schedule.
    fn sa_cost_matches_cost_of_schedule(case in CaseGen) {
        let q: ProcSet = case.scheme.iter().copied().collect();
        let mut sim = ProtocolSim::new_sa(case.n, q).unwrap();
        let report = sim.execute(&case.schedule).unwrap();
        let costed = analytic_total(&mut StaticAllocation::new(q).unwrap(), &case.schedule);
        assert_eq!(report.cost, costed.total, "on {}", case.schedule);
        assert_eq!(report.final_holders, costed.final_scheme);
        assert_eq!(report.dropped_messages, 0);
    }

    #[cases(48)]
    /// DA over a random `F ∪ {p}`: simulated tallies == cost_of_schedule.
    fn da_cost_matches_cost_of_schedule(case in CaseGen) {
        let (last, f_members) = case.scheme.split_last().unwrap();
        let f: ProcSet = f_members.iter().copied().collect();
        let p = ProcessorId::new(*last);
        let mut sim = ProtocolSim::new_da(case.n, f, p).unwrap();
        let report = sim.execute(&case.schedule).unwrap();
        let costed = analytic_total(&mut DynamicAllocation::new(f, p).unwrap(), &case.schedule);
        assert_eq!(report.cost, costed.total, "on {}", case.schedule);
        assert_eq!(report.final_holders, costed.final_scheme);
        assert_eq!(report.dropped_messages, 0);
    }
}

//! Critical-path-equals-cost property test (ISSUE 9 tentpole proof
//! obligation): with request spans enabled, the per-request
//! `protocol.request_cost` deltas reconstructed by
//! [`doma_obs::trace::TraceModel`] sum to **exactly** the schedule's
//! analytic cost — `doma_core::cost_of_schedule` for SA and DA, and the
//! analytic engine's `run_online` of the same algorithm for each of the
//! five adaptive entrants. Execution is strictly one-request-at-a-time,
//! so the deltas telescope: any drift in the span bracketing, the cost
//! attribution or the analytic parity breaks the sum.
//!
//! Failures print a `DOMA_PROP_SEED=…` replay line via the testkit
//! harness.

use doma_algorithms::{
    ClusteredAllocation, CostOblivious, DynamicAllocation, MobileMirror, SlidingWindowConvergent,
    StaticAllocation, WriteInvalidateCache,
};
use doma_core::{
    cost_of_schedule, run_online, AllocationSchedule, CostVector, OnlineDom, ProcSet, ProcessorId,
    Request, Schedule,
};
use doma_obs::trace::TraceModel;
use doma_protocol::ProtocolSim;
use doma_testkit::property::{self as prop, Gen};
use doma_testkit::rng::Rng;
use doma_testkit::TestRng;

/// One sampled case: a cluster size, a scheme (SA's `Q`, or DA's `F`
/// plus the floater as the last member), and a schedule over the
/// cluster — the same shape the cost-parity property samples.
#[derive(Debug, Clone)]
struct Case {
    n: usize,
    scheme: Vec<usize>,
    schedule: Schedule,
}

struct CaseGen;

impl Gen for CaseGen {
    type Value = Case;

    fn generate(&self, rng: &mut TestRng) -> Case {
        let n = prop::range(3usize..8).generate(rng);
        let k = prop::range(2usize..n.min(4) + 1).generate(rng);
        let mut members: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut members);
        members.truncate(k);
        let len = prop::range(0usize..40).generate(rng);
        let requests: Vec<Request> = (0..len)
            .map(|_| {
                let p = prop::range(0usize..n).generate(rng);
                if prop::bools().generate(rng) {
                    Request::read(p)
                } else {
                    Request::write(p)
                }
            })
            .collect();
        Case {
            n,
            scheme: members,
            schedule: Schedule::from_requests(requests),
        }
    }

    fn shrink(&self, v: &Case) -> Vec<Case> {
        let requests: Vec<Request> = v.schedule.iter().collect();
        let mut out = Vec::new();
        if !requests.is_empty() {
            for shorter in [
                requests[..requests.len() / 2].to_vec(),
                requests[1..].to_vec(),
            ] {
                out.push(Case {
                    n: v.n,
                    scheme: v.scheme.clone(),
                    schedule: Schedule::from_requests(shorter),
                });
            }
        }
        out
    }
}

/// Runs `sim` traced and checks the reconstructed model against the
/// expected exact total. Returns the model for extra assertions.
fn traced_model(mut sim: ProtocolSim, schedule: &Schedule, expected: CostVector) -> TraceModel {
    let obs = sim.attach_obs(1 << 16); // ample: no truncation allowed here
    sim.attach_tracer_on(obs.events().clone());
    sim.enable_request_spans();
    let report = sim.execute(schedule).unwrap();
    assert_eq!(report.cost, expected, "sim/analytic parity on {schedule}");
    let model = TraceModel::from_obs(&obs);
    assert!(!model.truncated(), "capacity was ample");
    assert_eq!(
        model.requests.len(),
        schedule.len(),
        "one span window per request on {schedule}"
    );
    for req in &model.requests {
        assert!(req.complete, "every window closes: {req:?}");
        assert!(req.cost.is_some(), "every window carries a cost: {req:?}");
        // A request that cost messages must show them — and a critical
        // path through them; a free request must not invent any.
        let (c, d, _) = req.cost.unwrap();
        let delivered = req.messages.iter().filter(|m| m.delivered).count();
        if c + d > 0 {
            assert!(delivered > 0, "costed request with no messages: {req:?}");
            assert!(!req.critical_path().is_empty(), "{req:?}");
        }
        let path = req.critical_path();
        // The path is causally ordered and made of delivered edges.
        for pair in path.windows(2) {
            let (a, b) = (&req.messages[pair[0]], &req.messages[pair[1]]);
            assert!(a.delivered && b.delivered);
            assert_eq!(a.to, b.from, "hop mismatch in {req:?}");
            assert!(a.time <= b.time);
        }
    }
    assert_eq!(
        model.total_cost(),
        (expected.control, expected.data, expected.io),
        "per-request deltas must telescope to the analytic total on {schedule}"
    );
    model
}

/// Replays the algorithm's own decisions through the analytic cost
/// engine (the same oracle the cost-parity property uses).
fn analytic_total<A: OnlineDom>(algo: &mut A, schedule: &Schedule) -> doma_core::CostedSchedule {
    algo.reset();
    let mut alloc = AllocationSchedule::new(algo.initial_scheme());
    for request in schedule.iter() {
        let decision = algo.decide(request);
        alloc.push(request, decision);
    }
    cost_of_schedule(&alloc, algo.t()).expect("online DA/SA schedules are always legal")
}

fn check_adaptive<A>(algo: A, schedule: &Schedule)
where
    A: OnlineDom + Clone + Send + 'static,
{
    let mut analytic_algo = algo.clone();
    let name = analytic_algo.name().to_string();
    let analytic = run_online(&mut analytic_algo, schedule).unwrap();
    let sim = ProtocolSim::new_adaptive(6, Box::new(algo)).unwrap();
    let model = traced_model(sim, schedule, analytic.costed.total);
    // Adaptive requests additionally carry the oracle's plan decision.
    for req in &model.requests {
        assert!(
            req.plan.as_deref().is_some_and(|p| p.contains("exec=")),
            "{name}: span window without a protocol.plan event: {req:?}"
        );
    }
}

doma_testkit::property! {
    #[cases(32)]
    /// SA over a random `Q`: span-window cost sums == cost_of_schedule.
    fn sa_critical_path_sums_equal_cost_of_schedule(case in CaseGen) {
        let q: ProcSet = case.scheme.iter().copied().collect();
        let sim = ProtocolSim::new_sa(case.n, q).unwrap();
        let costed =
            analytic_total(&mut StaticAllocation::new(q).unwrap(), &case.schedule);
        traced_model(sim, &case.schedule, costed.total);
    }

    #[cases(32)]
    /// DA over a random `F ∪ {p}`: span-window cost sums == cost_of_schedule.
    fn da_critical_path_sums_equal_cost_of_schedule(case in CaseGen) {
        let (last, f_members) = case.scheme.split_last().unwrap();
        let f: ProcSet = f_members.iter().copied().collect();
        let p = ProcessorId::new(*last);
        let sim = ProtocolSim::new_da(case.n, f, p).unwrap();
        let costed =
            analytic_total(&mut DynamicAllocation::new(f, p).unwrap(), &case.schedule);
        traced_model(sim, &case.schedule, costed.total);
    }

    #[cases(12)]
    /// All five adaptive entrants: span-window cost sums == run_online.
    fn adaptive_critical_path_sums_equal_run_online(case in CaseGen) {
        // Fixed n = 6 cluster (the tournament shape); only the schedule
        // varies. Reject issuers outside the cluster.
        let schedule = Schedule::from_requests(
            case.schedule
                .iter()
                .map(|r| {
                    let p = r.issuer.index() % 6;
                    if r.is_read() { Request::read(p) } else { Request::write(p) }
                })
                .collect::<Vec<_>>(),
        );
        let initial: ProcSet = [0usize, 1].into_iter().collect();
        let core: ProcSet = [0usize].into_iter().collect();
        check_adaptive(
            SlidingWindowConvergent::new(6, 2, initial, 8, 4).unwrap(),
            &schedule,
        );
        check_adaptive(WriteInvalidateCache::new(core).unwrap(), &schedule);
        check_adaptive(CostOblivious::new(6, 2, initial, 2).unwrap(), &schedule);
        check_adaptive(MobileMirror::new(6, 2, initial).unwrap(), &schedule);
        check_adaptive(ClusteredAllocation::new(6, 2, initial).unwrap(), &schedule);
    }
}

//! Trace-determinism test (ISSUE 9 satellite): the same seeded workload
//! traced twice exports **byte-identical** Chrome trace-event JSON — at
//! every shard count K ∈ {1, 2, 4, 8}. The exporter is a pure function
//! of the merged event log, the log a pure function of the execution,
//! and the sharded merge a deterministic `(time, shard, index)`
//! interleave, so any wobble (map iteration order, clock leakage,
//! thread scheduling) shows up as a byte diff here.

use doma_algorithms::multi::Placement;
use doma_core::{MultiSchedule, ObjectId, ProcessorId, Request};
use doma_obs::trace::{chrome_trace, slowest_report, TraceModel};
use doma_protocol::{ProtocolConfig, ProtocolSim, ShardedSim};
use std::collections::BTreeMap;

const N: usize = 8;
const OBJECTS: u64 = 12;

/// Alternating SA/DA catalog around the ring — the shard-scaling bench's
/// shape, shrunk.
fn catalog() -> BTreeMap<ObjectId, ProtocolConfig> {
    (0..OBJECTS)
        .map(|o| {
            let base = (o as usize) % (N - 1);
            let config = if o % 2 == 0 {
                ProtocolConfig::Sa {
                    q: [base, base + 1].into_iter().collect(),
                }
            } else {
                ProtocolConfig::Da {
                    f: [base].into_iter().collect(),
                    p: ProcessorId::new(base + 1),
                }
            };
            (ObjectId(o), config)
        })
        .collect()
}

/// A fixed deterministic mixed workload (no RNG: pure arithmetic).
fn traffic(requests: usize) -> MultiSchedule {
    let mut s = MultiSchedule::default();
    for k in 0..requests {
        let object = ObjectId((k as u64 * 7 + 3) % OBJECTS);
        let issuer = (k * 5 + 1) % N;
        let request = if k % 3 == 0 {
            Request::write(issuer)
        } else {
            Request::read(issuer)
        };
        s.push(object, request);
    }
    s
}

fn sharded_chrome(shards: usize, schedule: &MultiSchedule) -> String {
    let run = ShardedSim::new(N, catalog(), shards, Placement::RoundRobin)
        .unwrap()
        .with_trace(1 << 16)
        .execute_multi(schedule)
        .unwrap();
    let obs = run.obs.expect("tracing implies obs");
    let model = TraceModel::from_obs(&obs);
    assert!(!model.truncated(), "capacity was ample at K={shards}");
    assert_eq!(
        model.requests.len(),
        schedule.len(),
        "every request gets a window at K={shards}"
    );
    chrome_trace(&model)
}

#[test]
fn chrome_json_is_byte_identical_across_reruns_at_every_shard_count() {
    let schedule = traffic(120);
    for shards in [1usize, 2, 4, 8] {
        let a = sharded_chrome(shards, &schedule);
        let b = sharded_chrome(shards, &schedule);
        assert_eq!(a, b, "K={shards} export wobbled between runs");
        assert!(a.starts_with("{\"displayTimeUnit\": \"ms\", \"traceEvents\": ["));
        assert!(
            a.contains("\"ph\": \"X\""),
            "K={shards}: no request windows"
        );
    }
}

#[test]
fn sharded_windows_carry_shard_labels_and_sum_to_sequential_cost() {
    let schedule = traffic(90);
    let mut sequential = ProtocolSim::new_catalog(N, catalog()).unwrap();
    let expected = sequential.execute_multi(&schedule).unwrap();
    for shards in [2usize, 4] {
        let run = ShardedSim::new(N, catalog(), shards, Placement::RoundRobin)
            .unwrap()
            .with_trace(1 << 16)
            .execute_multi(&schedule)
            .unwrap();
        let model = TraceModel::from_obs(&run.obs.expect("tracing implies obs"));
        let mut seen = std::collections::BTreeSet::new();
        for req in &model.requests {
            let shard = req.shard.expect("merged records carry shard labels");
            assert!(shard < shards);
            seen.insert(shard);
        }
        assert!(seen.len() > 1, "K={shards}: traffic landed on one shard");
        // The per-request deltas telescope per shard, and shards are
        // disjoint — so the model total equals the sequential total.
        assert_eq!(
            model.total_cost(),
            (expected.cost.control, expected.cost.data, expected.cost.io),
            "K={shards}"
        );
    }
}

#[test]
fn slowest_report_is_deterministic_too() {
    let schedule = traffic(60);
    let a = sharded_chrome(2, &schedule);
    let run = ShardedSim::new(N, catalog(), 2, Placement::RoundRobin)
        .unwrap()
        .with_trace(1 << 16)
        .execute_multi(&schedule)
        .unwrap();
    let model = TraceModel::from_obs(&run.obs.unwrap());
    let r1 = slowest_report(&model, 5);
    let r2 = slowest_report(&model, 5);
    assert_eq!(r1, r2);
    assert!(r1.contains("slowest 5 of 60 requests"), "{r1}");
    // And the chrome export from this run matches the helper's.
    assert_eq!(chrome_trace(&model), a);
}

//! Shard-parity gate (wired into `scripts/verify.sh`): the object-sharded
//! executor must reproduce sequential [`ProtocolSim::execute_multi`]
//! *exactly* — same total [`doma_core::CostVector`], same per-object final
//! holders, same `reads_completed` (and bit-identical mean latency, since
//! [`doma_protocol::SimReport`] is compared wholesale), and byte-identical
//! obs `protocol.cost.*` registry sums — for every shard count
//! K ∈ {1, 2, 4, 8} under every [`Placement`] policy.
//!
//! A fixed-workload matrix test carries the CI gate; a property test
//! behind it randomizes the cluster shape, the catalog (including
//! non-contiguous object ids, exercising the binary-search slot path) and
//! the schedule, so the gate does not overfit to one workload's traffic
//! pattern. Failures print a `DOMA_PROP_SEED=…` replay line.

use doma_algorithms::multi::Placement;
use doma_core::{MultiSchedule, ObjectId, ProcessorId, Request};
use doma_protocol::{ProtocolConfig, ProtocolSim, ShardedSim};
use doma_testkit::property::{self as prop, Gen};
use doma_testkit::TestRng;
use doma_workload::{MultiScheduleGen, MultiUniformWorkload};
use std::collections::BTreeMap;

const PLACEMENTS: [Placement; 3] = [
    Placement::SameCore,
    Placement::RoundRobin,
    Placement::LoadAware,
];
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The CI-gated matrix: one realistic workload, every (K, placement) cell.
#[test]
fn sharded_execution_matches_sequential_for_all_k_and_placements() {
    let n = 8;
    let objects = 32;
    let configs: BTreeMap<ObjectId, ProtocolConfig> = (0..objects)
        .map(|o| {
            let base = (o as usize) % (n - 1);
            let config = if o % 2 == 0 {
                ProtocolConfig::Sa {
                    q: [base, base + 1].into_iter().collect(),
                }
            } else {
                ProtocolConfig::Da {
                    f: [base].into_iter().collect(),
                    p: ProcessorId::new(base + 1),
                }
            };
            (ObjectId(o), config)
        })
        .collect();
    let schedule = MultiUniformWorkload::new(objects, n, 0.75)
        .unwrap()
        .generate_multi(2_000, 7);

    let mut sequential = ProtocolSim::new_catalog(n, configs.clone()).unwrap();
    let seq_obs = sequential.attach_obs(1 << 16);
    let expected = sequential.execute_multi(&schedule).unwrap();
    let expected_metrics = seq_obs.metrics().snapshot().to_json();
    let snap = seq_obs.metrics().snapshot();
    let expected_cost_sums = [
        snap.sum_counters("protocol", "cost.control"),
        snap.sum_counters("protocol", "cost.data"),
        snap.sum_counters("protocol", "cost.io"),
    ];

    for placement in PLACEMENTS {
        for shards in SHARD_COUNTS {
            let run = ShardedSim::new(n, configs.clone(), shards, placement)
                .unwrap()
                .with_obs(1 << 16)
                .execute_multi(&schedule)
                .unwrap();
            let cell = format!("K={shards}, {placement:?}");
            assert_eq!(run.report, expected, "SimReport diverged at {cell}");
            assert_eq!(
                run.report.reads_completed, expected.reads_completed,
                "reads_completed diverged at {cell}"
            );
            for object in configs.keys() {
                assert_eq!(
                    run.holders.get(object),
                    Some(&sequential.valid_holders_of(*object)),
                    "holders of {object} diverged at {cell}"
                );
            }
            let obs = run.obs.expect("obs requested");
            let merged = obs.metrics().snapshot();
            let cost_sums = [
                merged.sum_counters("protocol", "cost.control"),
                merged.sum_counters("protocol", "cost.data"),
                merged.sum_counters("protocol", "cost.io"),
            ];
            assert_eq!(
                cost_sums, expected_cost_sums,
                "cost.* sums diverged at {cell}"
            );
            assert_eq!(
                merged.to_json(),
                expected_metrics,
                "metrics registry diverged at {cell}"
            );
        }
    }
}

/// One sampled parity case: a cluster, a catalog over possibly
/// non-contiguous object ids, and an interleaved schedule.
#[derive(Debug, Clone)]
struct Case {
    n: usize,
    configs: BTreeMap<ObjectId, ProtocolConfig>,
    schedule: MultiSchedule,
}

struct CaseGen;

impl Gen for CaseGen {
    type Value = Case;

    fn generate(&self, rng: &mut TestRng) -> Case {
        let n = prop::range(3usize..9).generate(rng);
        let objects = prop::range(1usize..10).generate(rng);
        // A coin-flipped id stride: stride 1 keeps the catalog contiguous
        // (dense slot fast path), larger strides force binary search.
        let stride = if prop::bools().generate(rng) {
            1
        } else {
            prop::range(2u64..5).generate(rng)
        };
        let configs: BTreeMap<ObjectId, ProtocolConfig> = (0..objects as u64)
            .map(|o| {
                let base = prop::range(0usize..n - 1).generate(rng);
                let config = if prop::bools().generate(rng) {
                    ProtocolConfig::Sa {
                        q: [base, base + 1].into_iter().collect(),
                    }
                } else {
                    ProtocolConfig::Da {
                        f: [base].into_iter().collect(),
                        p: ProcessorId::new(base + 1),
                    }
                };
                (ObjectId(o * stride), config)
            })
            .collect();
        let ids: Vec<ObjectId> = configs.keys().copied().collect();
        let len = prop::range(0usize..80).generate(rng);
        let mut schedule = MultiSchedule::default();
        for _ in 0..len {
            let object = ids[prop::range(0usize..ids.len()).generate(rng)];
            let issuer = prop::range(0usize..n).generate(rng);
            let request = if prop::bools().generate(rng) {
                Request::read(issuer)
            } else {
                Request::write(issuer)
            };
            schedule.push(object, request);
        }
        Case {
            n,
            configs,
            schedule,
        }
    }

    fn shrink(&self, v: &Case) -> Vec<Case> {
        // Shrink the schedule only; the catalog shape is cheap to keep.
        let requests = v.schedule.requests();
        let mut out = Vec::new();
        if !requests.is_empty() {
            for shorter in [
                requests[..requests.len() / 2].to_vec(),
                requests[1..].to_vec(),
            ] {
                out.push(Case {
                    n: v.n,
                    configs: v.configs.clone(),
                    schedule: MultiSchedule::from_requests(shorter),
                });
            }
        }
        out
    }
}

doma_testkit::property! {
    #[cases(32)]
    /// Random catalogs and schedules: every (K, placement) cell of the
    /// matrix reproduces the sequential run exactly.
    fn random_catalogs_shard_to_the_same_result(case in CaseGen) {
        let mut sequential = ProtocolSim::new_catalog(case.n, case.configs.clone()).unwrap();
        let expected = sequential.execute_multi(&case.schedule).unwrap();
        for placement in PLACEMENTS {
            for shards in SHARD_COUNTS {
                let run = ShardedSim::new(case.n, case.configs.clone(), shards, placement)
                    .unwrap()
                    .execute_multi(&case.schedule)
                    .unwrap();
                assert_eq!(run.report, expected, "K={shards}, {placement:?}");
                for object in case.configs.keys() {
                    assert_eq!(
                        run.holders.get(object),
                        Some(&sequential.valid_holders_of(*object)),
                        "holders of {object} at K={shards}, {placement:?}"
                    );
                }
            }
        }
    }
}
